#!/usr/bin/env bash
# Runs the exact checks .github/workflows/ci.yml runs, locally and fully
# offline. The workspace is hermetic (zero external crates), so this needs
# nothing but a Rust toolchain with rustfmt and clippy.
#
# Every `== marker ==` below carries the exact `name:` of the ci.yml step
# it mirrors; tests/ci_parity.rs asserts the two never drift.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== Format =="
cargo fmt --all --check

echo "== Clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== chiplet-check lint (determinism/soundness rules) =="
cargo run --release -p chiplet-check -- --workspace

echo "== Elision oracle gate (workload dependence census, drift gate) =="
# The static elision oracle classifies every kernel boundary of every
# registered workload and differentially replays the engine across
# {Baseline, HMG, CPElide} x N in {2,4,7}; any soundness violation
# (MustSync boundary elided) fails the run, and --check fails on any
# drift from the committed results/CHECK_oracle.json.
cargo run --release -p chiplet-check -- --oracle --check
grep -q '"soundness_violations": 0' results/CHECK_oracle.json

echo "== Rustdoc (warnings are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

echo "== Build (release, offline) =="
cargo build --workspace --release

echo "== Test (release, offline) =="
cargo test --workspace --release -q

echo "== Smoke-run every figure binary =="
CPELIDE_SMOKE=1 cargo run --release -p cpelide-bench --bin all

echo "== Campaign determinism smoke (CPELIDE_JOBS=1 vs 8) =="
# The fleet's core contract: campaign.json is byte-identical at any
# worker count. Cache disabled so every cell actually simulates.
CPELIDE_SMOKE=1 CPELIDE_CACHE=0 CPELIDE_JOBS=1 \
  CPELIDE_RESULTS_DIR=results/jobs1 \
  cargo run --release -p cpelide-bench --bin campaign
CPELIDE_SMOKE=1 CPELIDE_CACHE=0 CPELIDE_JOBS=8 \
  CPELIDE_RESULTS_DIR=results/jobs8 \
  cargo run --release -p cpelide-bench --bin campaign
cmp results/jobs1/campaign.json results/jobs8/campaign.json

echo "== Telemetry smoke (campaign.prom prefix, fleet trace, report --obs) =="
# campaign.prom's deterministic section — everything above the clock-domain
# marker — must be byte-identical across worker counts; the fleet trace
# must be stamped wall-clock; report --obs must render from the exposition.
awk '/non-deterministic below/{exit} {print}' \
  results/jobs1/campaign.prom > results/jobs1/campaign.det.prom
awk '/non-deterministic below/{exit} {print}' \
  results/jobs8/campaign.prom > results/jobs8/campaign.det.prom
cmp results/jobs1/campaign.det.prom results/jobs8/campaign.det.prom
grep -q 'cpelide_campaign_phase_cycles' results/jobs1/campaign.prom
grep -q '"clockDomain":"wall"' results/jobs1/campaign.trace.json
CPELIDE_RESULTS_DIR=results/jobs1 \
  cargo run --release -p cpelide-bench --bin report -- --obs

echo "== Docs drift gate (EXPERIMENTS.md vs committed campaign.json) =="
cargo run --release -p cpelide-bench --bin report -- --check

echo "== Smoke-run probe with Perfetto trace export =="
# write_trace validates span balance and JSON well-formedness before the
# file lands; the greps assert the artifacts exist and are non-trivial.
CPELIDE_SMOKE=1 CPELIDE_TRACE=results/trace.json \
  cargo run --release -p cpelide-bench --bin probe
grep -q '"traceEvents"' results/trace.json
grep -q 'cpelide_kernel_cycles_bucket' results/probe.prom

echo "== CCT model check (BFS N ≤ 4 + DPOR racy flagship, census drift gate) =="
# Both engines over the Chiplet Coherence Table (exhaustive BFS and DPOR
# race-free at N ∈ {2,3,4} × 2, plus the DPOR racy N = 6 × 3 flagship);
# --check fails on violations, an invalid census, or any drift from the
# committed results/CHECK_model.json.
cargo run --release -p chiplet-check -- --model-check --check
[ "$(grep -c '"violations": 0' results/CHECK_model.json)" -eq 7 ]

echo "== Daemon smoke (serve --smoke hermetic self-test) =="
# Boots the campaign daemon on an ephemeral port, streams a two-cell
# sweep, validates /metrics with the in-repo prom parser, and shuts down
# cleanly over the wire. See DESIGN.md §16.
cargo run --release -p cpelide-bench --bin serve -- --smoke

echo "== Bench runner (fixed iterations, JSON report) =="
CHIPLET_BENCH_ITERS=3 CHIPLET_BENCH_WARMUP=1 cargo bench --workspace

echo "== Hotpath bench smoke (validated BENCH_hotpath.json) =="
# write_report schema-validates the document and resolves relative results
# paths against the workspace root (no CPELIDE_RESULTS_DIR workaround);
# the greps assert the speedup sections made it into the artifact.
CPELIDE_SMOKE=1 CHIPLET_BENCH_ITERS=3 CHIPLET_BENCH_WARMUP=1 \
  cargo bench -p cpelide-bench --bench hotpath
grep -q '"oracle_replay_flat_vs_hashmap"' results/BENCH_hotpath.json
grep -q '"placement_flat_vs_hashmap"' results/BENCH_hotpath.json
grep -q '"cells_per_sec_event"' results/BENCH_hotpath.json

echo "== Perf gate (BENCH_hotpath vs committed baseline) =="
# Ratio-of-ratios regression gate against results/BENCH_baseline.json;
# re-bless with CPELIDE_BLESS_BENCH=1 when a change legitimately moves
# the gated speedups.
cargo run --release -p cpelide-bench --bin report -- --perf-check

echo "ci-local: all checks passed"
