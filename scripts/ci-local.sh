#!/usr/bin/env bash
# Runs the exact checks .github/workflows/ci.yml runs, locally and fully
# offline. The workspace is hermetic (zero external crates), so this needs
# nothing but a Rust toolchain with rustfmt and clippy.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== fmt =="
cargo fmt --all --check

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== chiplet-check lint (determinism/soundness rules) =="
cargo run --release -p chiplet-check -- --workspace

echo "== rustdoc (warnings are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

echo "== build (release) =="
cargo build --workspace --release

echo "== test (release) =="
cargo test --workspace --release -q

echo "== smoke-run every figure binary =="
CPELIDE_SMOKE=1 cargo run --release -p cpelide-bench --bin all

echo "== campaign determinism smoke (CPELIDE_JOBS=1 vs 8) =="
# The fleet's core contract: campaign.json is byte-identical at any
# worker count. Cache disabled so every cell actually simulates.
CPELIDE_SMOKE=1 CPELIDE_CACHE=0 CPELIDE_JOBS=1 \
  CPELIDE_RESULTS_DIR=results/jobs1 \
  cargo run --release -p cpelide-bench --bin campaign
CPELIDE_SMOKE=1 CPELIDE_CACHE=0 CPELIDE_JOBS=8 \
  CPELIDE_RESULTS_DIR=results/jobs8 \
  cargo run --release -p cpelide-bench --bin campaign
cmp results/jobs1/campaign.json results/jobs8/campaign.json

echo "== docs drift gate (EXPERIMENTS.md vs committed campaign.json) =="
cargo run --release -p cpelide-bench --bin report -- --check

echo "== smoke-run probe with Perfetto trace export =="
# write_trace validates span balance and JSON well-formedness before the
# file lands; the greps assert the artifacts exist and are non-trivial.
CPELIDE_SMOKE=1 CPELIDE_TRACE=results/trace.json \
  cargo run --release -p cpelide-bench --bin probe
grep -q '"traceEvents"' results/trace.json
grep -q 'cpelide_kernel_cycles_bucket' results/probe.prom

echo "== CCT model check (exhaustive, N = 2..4) =="
# BFS over every reachable Chiplet Coherence Table state; violations or an
# invalid census fail the run.
cargo run --release -p chiplet-check -- --model-check
[ "$(grep -c '"violations": 0' results/CHECK_model.json)" -eq 3 ]

echo "== bench runner (fixed iterations) =="
CHIPLET_BENCH_ITERS=3 CHIPLET_BENCH_WARMUP=1 cargo bench --workspace

echo "== hotpath bench smoke (validated BENCH_hotpath.json) =="
# write_report schema-validates the document before it lands; the greps
# assert the flat-vs-hashmap speedup section made it into the artifact.
# CPELIDE_RESULTS_DIR is absolute because `cargo bench` runs the bench
# binary with the package directory as cwd, not the workspace root.
CPELIDE_SMOKE=1 CHIPLET_BENCH_ITERS=3 CHIPLET_BENCH_WARMUP=1 \
  CPELIDE_RESULTS_DIR="$PWD/results" \
  cargo bench -p cpelide-bench --bench hotpath
grep -q '"oracle_replay_flat_vs_hashmap"' results/BENCH_hotpath.json
grep -q '"placement_flat_vs_hashmap"' results/BENCH_hotpath.json

echo "ci-local: all checks passed"
