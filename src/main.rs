//! `cpelide-repro` — the command-line front end to the simulator.
//!
//! ```text
//! cpelide-repro list
//! cpelide-repro run --workload square --protocol cpelide --chiplets 4 [--seed N] [--stats]
//! cpelide-repro compare --workload square [--chiplets 4]
//! cpelide-repro oracle --workload hotspot3d [--chiplets 4] [--sample 17]
//! ```

use cpelide_repro::coherence::ProtocolKind;
use cpelide_repro::sim::oracle::check_coherence;
use cpelide_repro::sim::{SimConfig, Simulator};
use cpelide_repro::workloads::{self, Workload};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  cpelide-repro list\n  cpelide-repro run --workload <name> \
         [--protocol baseline|cpelide|hmg|hmg-wb|monolithic] [--chiplets N] [--seed N] [--stats]\n  \
         cpelide-repro compare --workload <name> [--chiplets N]\n  \
         cpelide-repro oracle --workload <name> [--chiplets N] [--sample K]"
    );
    ExitCode::from(2)
}

/// Minimal `--flag value` parser (no external dependencies).
struct Args {
    pairs: Vec<(String, String)>,
    flags: Vec<String>,
}

impl Args {
    fn parse(raw: &[String]) -> Option<Args> {
        let mut pairs = Vec::new();
        let mut flags = Vec::new();
        let mut it = raw.iter().peekable();
        while let Some(a) = it.next() {
            let name = a.strip_prefix("--")?;
            match it.peek() {
                Some(v) if !v.starts_with("--") => {
                    pairs.push((name.to_owned(), it.next().expect("peeked").clone()));
                }
                _ => flags.push(name.to_owned()),
            }
        }
        Some(Args { pairs, flags })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

fn find_workload(name: &str) -> Option<Workload> {
    workloads::by_name(name).or_else(|| {
        workloads::multi_stream_suite()
            .into_iter()
            .find(|w| w.name() == name.to_lowercase())
    })
}

fn parse_protocol(s: &str) -> Option<ProtocolKind> {
    Some(match s.to_lowercase().as_str() {
        "baseline" => ProtocolKind::Baseline,
        "cpelide" => ProtocolKind::CpElide,
        "hmg" => ProtocolKind::Hmg,
        "hmg-wb" | "hmgwb" | "hmg_wb" => ProtocolKind::HmgWriteBack,
        "monolithic" | "mono" => ProtocolKind::Monolithic,
        _ => return None,
    })
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = raw.first() else {
        return usage();
    };
    let Some(args) = Args::parse(&raw[1..]) else {
        return usage();
    };

    match cmd.as_str() {
        "list" => {
            println!(
                "{:<18} {:>8} {:>10} class",
                "workload", "kernels", "footprint"
            );
            for w in workloads::suite() {
                println!(
                    "{:<18} {:>8} {:>7.1}MiB {}",
                    w.name(),
                    w.kernel_count(),
                    w.footprint_bytes() as f64 / (1 << 20) as f64,
                    w.class()
                );
            }
            for w in workloads::multi_stream_suite() {
                println!(
                    "{:<18} {:>8} {:>7.1}MiB multi-stream ({} streams)",
                    w.name(),
                    w.kernel_count(),
                    w.footprint_bytes() as f64 / (1 << 20) as f64,
                    w.stream_count()
                );
            }
            ExitCode::SUCCESS
        }
        "run" => {
            let Some(name) = args.get("workload") else {
                return usage();
            };
            let Some(w) = find_workload(name) else {
                eprintln!("unknown workload {name}; try `cpelide-repro list`");
                return ExitCode::FAILURE;
            };
            let protocol = match args.get("protocol").map(parse_protocol) {
                None => ProtocolKind::CpElide,
                Some(Some(p)) => p,
                Some(None) => return usage(),
            };
            let chiplets: usize = args.get("chiplets").map_or(4, |v| v.parse().unwrap_or(4));
            let mut cfg = SimConfig::table1(chiplets, protocol);
            if let Some(seed) = args.get("seed") {
                cfg.seed = seed.parse().unwrap_or(cfg.seed);
            }
            let metrics = Simulator::new(cfg).run(&w);
            if args.has("stats") {
                print!("{}", metrics.stats_text());
            } else {
                println!("{metrics}");
            }
            ExitCode::SUCCESS
        }
        "compare" => {
            let Some(name) = args.get("workload") else {
                return usage();
            };
            let Some(w) = find_workload(name) else {
                eprintln!("unknown workload {name}");
                return ExitCode::FAILURE;
            };
            let chiplets: usize = args.get("chiplets").map_or(4, |v| v.parse().unwrap_or(4));
            let base = Simulator::new(SimConfig::table1(chiplets, ProtocolKind::Baseline)).run(&w);
            println!("{base}");
            for p in [
                ProtocolKind::CpElide,
                ProtocolKind::Hmg,
                ProtocolKind::Monolithic,
            ] {
                let m = Simulator::new(SimConfig::table1(chiplets, p)).run(&w);
                println!("{m}  ({:.2}x vs Baseline)", m.speedup_over(&base));
            }
            ExitCode::SUCCESS
        }
        "oracle" => {
            let Some(name) = args.get("workload") else {
                return usage();
            };
            let Some(w) = find_workload(name) else {
                eprintln!("unknown workload {name}");
                return ExitCode::FAILURE;
            };
            let chiplets: usize = args.get("chiplets").map_or(4, |v| v.parse().unwrap_or(4));
            let sample: usize = args.get("sample").map_or(17, |v| v.parse().unwrap_or(17));
            let r = check_coherence(&w, ProtocolKind::CpElide, chiplets, sample);
            println!(
                "checked {} reads / {} writes: {}",
                r.reads_checked,
                r.writes_recorded,
                if r.is_coherent() {
                    "coherent".to_owned()
                } else {
                    format!(
                        "{} VIOLATIONS (first: {:?})",
                        r.violations.len(),
                        r.violations[0]
                    )
                }
            );
            if r.is_coherent() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        _ => usage(),
    }
}
