//! # cpelide-repro
//!
//! A from-scratch Rust reproduction of **CPElide: Efficient Multi-Chiplet
//! GPU Implicit Synchronization** (MICRO 2024): a multi-chiplet GPU
//! memory-system simulator, the CPElide command-processor contribution, the
//! Baseline/HMG/monolithic comparison protocols, the paper's 24-workload
//! evaluation suite, and the harness that regenerates every figure and
//! table of the paper's evaluation.
//!
//! This facade crate re-exports the workspace's crates under one roof:
//!
//! * [`mem`] — caches, coarse directory, first-touch placement, HBM.
//! * [`noc`] — crossbars, inter-chiplet links, flit accounting.
//! * [`gpu`] — kernels, streams, schedulers, trace generation.
//! * [`cpelide`] — the Chiplet Coherence Table, global/local CPs, and the
//!   `hipSetAccessMode`-style labeling API.
//! * [`coherence`] — the protocol zoo behind one memory-system model.
//! * [`energy`] — the per-access energy model.
//! * [`workloads`] — the Table II applications.
//! * [`sim`] — configuration, the engine, metrics, experiments and the
//!   coherence oracle.
//!
//! # Quick start
//!
//! ```
//! use cpelide_repro::prelude::*;
//!
//! let workload = cpelide_repro::workloads::by_name("square").expect("in suite");
//! let base = Simulator::new(SimConfig::table1(4, ProtocolKind::Baseline)).run(&workload);
//! let cpe = Simulator::new(SimConfig::table1(4, ProtocolKind::CpElide)).run(&workload);
//! assert!(cpe.speedup_over(&base) > 1.0);
//! ```

pub use chiplet_coherence as coherence;
pub use chiplet_energy as energy;
pub use chiplet_gpu as gpu;
pub use chiplet_mem as mem;
pub use chiplet_noc as noc;
pub use chiplet_sim as sim;
pub use chiplet_workloads as workloads;
pub use cpelide;

/// The names most programs need, in one import.
pub mod prelude {
    pub use chiplet_coherence::{MemConfig, ProtocolKind};
    pub use chiplet_gpu::kernel::{AccessPattern, KernelSpec, TouchKind};
    pub use chiplet_gpu::table::ArrayTable;
    pub use chiplet_mem::addr::{Addr, ChipletId};
    pub use chiplet_mem::array::AccessMode;
    pub use chiplet_sim::{RunMetrics, SimConfig, Simulator};
    pub use chiplet_workloads::{ReuseClass, Workload};
    pub use cpelide::api::KernelLaunchInfo;
    pub use cpelide::cp::GlobalCp;
    pub use cpelide::hip::{HipRuntime, RangeChiplet};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_exposes_a_usable_api() {
        let w = crate::workloads::by_name("square").unwrap();
        let m = Simulator::new(SimConfig::table1(2, ProtocolKind::CpElide)).run(&w);
        assert!(m.cycles > 0.0);
    }
}
