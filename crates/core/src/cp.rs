//! The redesigned command processor: a global CP housing the Chiplet
//! Coherence Table, and per-chiplet local CPs executing its synchronization
//! requests (paper Figures 4b, 5 and 7).
//!
//! At each kernel launch the global CP checks the table once, generates the
//! necessary acquires/releases, sends them over the CP crossbar to the
//! affected local CPs, counts their acknowledgements, and only then sends
//! "launch enable" to the chiplets hosting the kernel (§III-C "Launching
//! Kernels"). The messages-and-acks choreography is returned to the caller
//! as a [`LaunchDecision`] so the simulator can charge its latency.

use crate::api::KernelLaunchInfo;
use crate::table::{ChipletCoherenceTable, SyncActions, TableStats};
use crate::{CPELIDE_PROCESS_LATENCY_US, CP_BASE_LATENCY_US};
use chiplet_mem::addr::ChipletId;

/// What the global CP decided for one kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchDecision {
    /// Chiplets whose L2 must be flushed+invalidated before launch.
    pub acquires: Vec<ChipletId>,
    /// Chiplets whose L2 dirty data must be written back before launch.
    pub releases: Vec<ChipletId>,
    /// CP processing time in microseconds for this launch (2 µs base +
    /// 6 µs CPElide table work). Hidden behind the previous kernel's
    /// execution for all but the first kernel (§IV-B).
    pub cp_latency_us: f64,
    /// Crossbar messages the decision requires (sync requests + acks +
    /// launch enables), for the traffic/energy accounting.
    pub crossbar_messages: u64,
}

impl LaunchDecision {
    /// True if no synchronization is needed (the fully elided fast path).
    pub fn is_elided(&self) -> bool {
        self.acquires.is_empty() && self.releases.is_empty()
    }
}

/// The global command processor: packet processing, table lookups, and
/// synchronization-request generation.
#[derive(Debug, Clone)]
pub struct GlobalCp {
    table: ChipletCoherenceTable,
    locals: Vec<LocalCp>,
    launches: u64,
}

impl GlobalCp {
    /// Creates a global CP (and its local CPs) for an `n`-chiplet GPU.
    pub fn new(num_chiplets: usize) -> Self {
        Self::with_table_capacity(num_chiplets, crate::TABLE_CAPACITY)
    }

    /// Creates a global CP with a custom Chiplet Coherence Table capacity
    /// (CPs are programmable; paper §III-A). Used by the table-sizing
    /// sensitivity study.
    pub fn with_table_capacity(num_chiplets: usize, capacity: usize) -> Self {
        GlobalCp {
            table: ChipletCoherenceTable::with_capacity(num_chiplets, capacity),
            locals: ChipletId::all(num_chiplets).map(LocalCp::new).collect(),
            launches: 0,
        }
    }

    /// Number of chiplets managed.
    pub fn num_chiplets(&self) -> usize {
        self.locals.len()
    }

    /// Immutable view of the coherence table.
    pub fn table(&self) -> &ChipletCoherenceTable {
        &self.table
    }

    /// The local CP for `chiplet`.
    pub fn local(&self, chiplet: ChipletId) -> &LocalCp {
        &self.locals[chiplet.index()]
    }

    /// Cumulative table statistics.
    pub fn table_stats(&self) -> TableStats {
        self.table.stats()
    }

    /// Attaches a transition auditor to the coherence table (see
    /// [`ChipletCoherenceTable::enable_audit`]).
    pub fn enable_audit(&mut self, keep_log: bool) {
        self.table.enable_audit(keep_log);
    }

    /// The table's transition auditor, if auditing is enabled.
    pub fn auditor(&self) -> Option<&chiplet_obs::TransitionAuditor> {
        self.table.auditor()
    }

    /// Processes one kernel launch end to end: table inspection, sync
    /// generation, local-CP request/ack exchange, and launch enable.
    pub fn launch_kernel(&mut self, info: &KernelLaunchInfo) -> LaunchDecision {
        self.launches += 1;
        let SyncActions { acquires, releases } = self.table.prepare_launch(info);

        // Send each sync op to its local CP and collect acks (Figure 7).
        let mut messages = 0u64;
        for &c in &acquires {
            self.locals[c.index()].execute_acquire();
            messages += 2; // request + ack
        }
        for &c in &releases {
            self.locals[c.index()].execute_release();
            messages += 2;
        }
        // Launch enable to every chiplet hosting the kernel.
        for &c in &info.chiplets {
            self.locals[c.index()].enable_launch();
            messages += 1;
        }

        LaunchDecision {
            acquires,
            releases,
            cp_latency_us: CP_BASE_LATENCY_US + CPELIDE_PROCESS_LATENCY_US,
            crossbar_messages: messages,
        }
    }
}

/// A per-chiplet local CP: executes the global CP's synchronization
/// requests against its chiplet's caches and handles local WG dispatch.
/// (The actual cache mutation is performed by the protocol layer; the local
/// CP records the operations it was asked to perform.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalCp {
    chiplet: ChipletId,
    acquires_executed: u64,
    releases_executed: u64,
    launches_enabled: u64,
}

impl LocalCp {
    /// Creates a local CP for `chiplet`.
    pub fn new(chiplet: ChipletId) -> Self {
        LocalCp {
            chiplet,
            acquires_executed: 0,
            releases_executed: 0,
            launches_enabled: 0,
        }
    }

    /// The chiplet this CP manages.
    pub fn chiplet(&self) -> ChipletId {
        self.chiplet
    }

    fn execute_acquire(&mut self) {
        self.acquires_executed += 1;
    }

    fn execute_release(&mut self) {
        self.releases_executed += 1;
    }

    fn enable_launch(&mut self) {
        self.launches_enabled += 1;
    }

    /// Acquires this local CP has executed.
    pub fn acquires_executed(&self) -> u64 {
        self.acquires_executed
    }

    /// Releases this local CP has executed.
    pub fn releases_executed(&self) -> u64 {
        self.releases_executed
    }

    /// Launch enables received.
    pub fn launches_enabled(&self) -> u64 {
        self.launches_enabled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiplet_mem::array::AccessMode;

    fn c(i: u8) -> ChipletId {
        ChipletId::new(i)
    }

    #[test]
    fn elided_launch_sends_only_enables() {
        let mut cp = GlobalCp::new(4);
        let info = KernelLaunchInfo::builder(0, ChipletId::all(4))
            .structure(
                0,
                400,
                AccessMode::ReadWrite,
                [Some(0..100), Some(100..200), Some(200..300), Some(300..400)],
            )
            .build();
        let d = cp.launch_kernel(&info);
        assert!(d.is_elided());
        assert_eq!(d.crossbar_messages, 4, "one enable per hosting chiplet");
        for i in 0..4 {
            assert_eq!(cp.local(c(i)).launches_enabled(), 1);
        }
    }

    #[test]
    fn sync_ops_reach_the_right_local_cps() {
        let mut cp = GlobalCp::new(2);
        let w0 = KernelLaunchInfo::builder(0, [c(0)])
            .structure(0, 100, AccessMode::ReadWrite, [Some(0..100), None])
            .build();
        cp.launch_kernel(&w0);
        let r1 = KernelLaunchInfo::builder(1, [c(1)])
            .structure(0, 100, AccessMode::ReadOnly, [None, Some(0..100)])
            .build();
        let d = cp.launch_kernel(&r1);
        assert_eq!(d.releases, vec![c(0)]);
        assert_eq!(cp.local(c(0)).releases_executed(), 1);
        assert_eq!(cp.local(c(1)).releases_executed(), 0);
        // release request + ack + 1 enable.
        assert_eq!(d.crossbar_messages, 3);
    }

    #[test]
    fn cp_latency_matches_paper_budget() {
        let mut cp = GlobalCp::new(2);
        let info = KernelLaunchInfo::builder(0, [c(0)])
            .structure(0, 10, AccessMode::ReadOnly, [Some(0..10), None])
            .build();
        let d = cp.launch_kernel(&info);
        assert!((d.cp_latency_us - 8.0).abs() < 1e-12);
    }
}
