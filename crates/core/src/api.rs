//! The software-side labeling API: what `hipSetAccessMode` and
//! `hipSetAccessModeRange` (paper Listings 1 and 2) convey to the global CP.
//!
//! For every kernel launch the CP receives a [`KernelLaunchInfo`]: the set
//! of chiplets the kernel's WGs are dispatched to, and for each data
//! structure the kernel touches, its access mode and the per-chiplet line
//! ranges. Ranges can come from the programmer (Listing 2), a compiler, or
//! — as in this reproduction's simulator — be derived automatically from
//! the kernel's declarative access patterns via
//! [`KernelLaunchInfo::from_spec`].

use chiplet_gpu::dispatch::DispatchPlan;
use chiplet_gpu::kernel::{KernelId, KernelSpec};
use chiplet_gpu::table::ArrayTable;
use chiplet_gpu::trace::hint_lines;
use chiplet_mem::addr::ChipletId;
use chiplet_mem::array::AccessMode;
use std::ops::Range;

/// One data structure's labels for one kernel launch: access mode plus the
/// line range each chiplet may touch (`None` = chiplet does not touch it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructureAccess {
    /// First line of the data structure (its identity, like a base address).
    pub base_line: u64,
    /// One past the structure's last line.
    pub end_line: u64,
    /// The `R` / `R/W` label.
    pub mode: AccessMode,
    /// Per-chiplet touched line ranges, indexed by chiplet id; length is the
    /// system's chiplet count.
    pub ranges: Vec<Option<Range<u64>>>,
}

impl StructureAccess {
    /// The structure's full line span.
    pub fn span(&self) -> Range<u64> {
        self.base_line..self.end_line
    }

    /// The range chiplet `c` touches, if any.
    pub fn range_for(&self, c: ChipletId) -> Option<&Range<u64>> {
        self.ranges.get(c.index()).and_then(|r| r.as_ref())
    }

    /// True if any chiplet other than `c` touches a range overlapping `r`.
    pub fn any_other_overlaps(&self, c: ChipletId, r: &Range<u64>) -> bool {
        self.ranges.iter().enumerate().any(|(i, other)| {
            i != c.index() && other.as_ref().is_some_and(|o| ranges_overlap(o, r))
        })
    }
}

/// True if two half-open ranges intersect.
pub fn ranges_overlap(a: &Range<u64>, b: &Range<u64>) -> bool {
    a.start < b.end && b.start < a.end
}

/// Union span of two ranges (smallest range covering both).
pub fn range_union(a: &Range<u64>, b: &Range<u64>) -> Range<u64> {
    a.start.min(b.start)..a.end.max(b.end)
}

/// Everything the global CP learns at one kernel launch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelLaunchInfo {
    /// Dynamic kernel id (monotonic over the run).
    pub kernel: u64,
    /// Chiplets the kernel's WGs are dispatched to.
    pub chiplets: Vec<ChipletId>,
    /// Labeled data structures.
    pub structures: Vec<StructureAccess>,
    /// Total chiplets in the system.
    pub num_chiplets: usize,
}

impl KernelLaunchInfo {
    /// Starts building launch info by hand (the `hipSetAccessModeRange`
    /// path; see the crate-level example).
    pub fn builder(
        kernel: u64,
        chiplets: impl IntoIterator<Item = ChipletId>,
    ) -> LaunchInfoBuilder {
        LaunchInfoBuilder {
            kernel,
            chiplets: chiplets.into_iter().collect(),
            structures: Vec::new(),
            num_chiplets: None,
        }
    }

    /// Derives launch info from a kernel spec and its dispatch plan — the
    /// "compiler knows the pattern" path. Per-chiplet ranges come from each
    /// array's access-pattern hint; irregular patterns conservatively label
    /// the whole structure on every scheduled chiplet.
    pub fn from_spec(
        spec: &KernelSpec,
        id: KernelId,
        arrays: &ArrayTable,
        plan: &DispatchPlan,
        num_chiplets: usize,
    ) -> Self {
        let chiplets: Vec<ChipletId> = plan.chiplets().collect();
        let structures = spec
            .arrays()
            .iter()
            .map(|acc| {
                let decl = arrays.get(acc.array);
                let span = decl.line_range();
                let mut ranges = vec![None; num_chiplets];
                for (slot, c) in chiplets.iter().enumerate() {
                    ranges[c.index()] = Some(hint_lines(&acc.pattern, decl, slot, chiplets.len()));
                }
                StructureAccess {
                    base_line: span.start,
                    end_line: span.end,
                    mode: acc.mode,
                    ranges,
                }
            })
            .collect();
        KernelLaunchInfo {
            kernel: id.get(),
            chiplets,
            structures,
            num_chiplets,
        }
    }
}

/// Builder for [`KernelLaunchInfo`].
#[derive(Debug, Clone)]
pub struct LaunchInfoBuilder {
    kernel: u64,
    chiplets: Vec<ChipletId>,
    structures: Vec<StructureAccess>,
    num_chiplets: Option<usize>,
}

impl LaunchInfoBuilder {
    /// Adds a structure: its line span, mode, and per-chiplet ranges (the
    /// iterator's length defines the system's chiplet count and must be the
    /// same for every structure).
    pub fn structure(
        mut self,
        base_line: u64,
        end_line: u64,
        mode: AccessMode,
        ranges: impl IntoIterator<Item = Option<Range<u64>>>,
    ) -> Self {
        let ranges: Vec<_> = ranges.into_iter().collect();
        assert!(base_line < end_line, "structure span must be non-empty");
        if let Some(n) = self.num_chiplets {
            assert_eq!(
                ranges.len(),
                n,
                "inconsistent chiplet counts across structures"
            );
        } else {
            self.num_chiplets = Some(ranges.len());
        }
        for r in ranges.iter().flatten() {
            assert!(
                r.start >= base_line && r.end <= end_line && r.start < r.end,
                "chiplet range {r:?} must lie inside the structure span"
            );
        }
        self.structures.push(StructureAccess {
            base_line,
            end_line,
            mode,
            ranges,
        });
        self
    }

    /// Finishes the launch info.
    ///
    /// # Panics
    ///
    /// Panics if no structures were added.
    pub fn build(self) -> KernelLaunchInfo {
        let num_chiplets = self
            .num_chiplets
            // chiplet-check: allow(no-panic) — documented panic contract
            .expect("launch info must label at least one structure");
        KernelLaunchInfo {
            kernel: self.kernel,
            chiplets: self.chiplets,
            structures: self.structures,
            num_chiplets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiplet_gpu::dispatch::StaticPartitionScheduler;
    use chiplet_gpu::kernel::{AccessPattern, TouchKind};

    #[test]
    fn builder_assembles_info() {
        let info = KernelLaunchInfo::builder(5, ChipletId::all(2))
            .structure(0, 100, AccessMode::ReadWrite, [Some(0..50), Some(50..100)])
            .structure(200, 300, AccessMode::ReadOnly, [Some(200..300), None])
            .build();
        assert_eq!(info.kernel, 5);
        assert_eq!(info.num_chiplets, 2);
        assert_eq!(info.structures.len(), 2);
        assert_eq!(
            info.structures[0].range_for(ChipletId::new(1)),
            Some(&(50..100))
        );
        assert_eq!(info.structures[1].range_for(ChipletId::new(1)), None);
    }

    #[test]
    #[should_panic(expected = "inside the structure span")]
    fn out_of_span_range_rejected() {
        let _ = KernelLaunchInfo::builder(0, ChipletId::all(1)).structure(
            10,
            20,
            AccessMode::ReadOnly,
            [Some(0..15)],
        );
    }

    #[test]
    #[should_panic(expected = "inconsistent chiplet counts")]
    fn mismatched_chiplet_counts_rejected() {
        let _ = KernelLaunchInfo::builder(0, ChipletId::all(2))
            .structure(0, 10, AccessMode::ReadOnly, [Some(0..10), None])
            .structure(20, 30, AccessMode::ReadOnly, [Some(20..30)]);
    }

    #[test]
    fn overlap_and_union_helpers() {
        assert!(ranges_overlap(&(0..10), &(9..20)));
        assert!(!ranges_overlap(&(0..10), &(10..20)));
        assert_eq!(range_union(&(0..10), &(5..20)), 0..20);
        assert_eq!(range_union(&(30..40), &(0..10)), 0..40);
    }

    #[test]
    fn any_other_overlaps_ignores_self() {
        let s = StructureAccess {
            base_line: 0,
            end_line: 100,
            mode: AccessMode::ReadWrite,
            ranges: vec![Some(0..50), Some(50..100)],
        };
        // Chiplet 0's own range doesn't count as "other".
        assert!(!s.any_other_overlaps(ChipletId::new(0), &(0..50)));
        assert!(s.any_other_overlaps(ChipletId::new(0), &(0..60)));
    }

    #[test]
    fn from_spec_derives_partitioned_hints() {
        let mut t = ArrayTable::new();
        let a = t.alloc("a", 64 * 100);
        let k = KernelSpec::builder("k")
            .wg_count(100)
            .array(a, TouchKind::LoadStore, AccessPattern::Partitioned)
            .build();
        let chiplets: Vec<_> = ChipletId::all(4).collect();
        let plan = StaticPartitionScheduler::new().plan(&k, &chiplets);
        let info = KernelLaunchInfo::from_spec(&k, KernelId::new(0), &t, &plan, 4);
        assert_eq!(info.structures.len(), 1);
        let s = &info.structures[0];
        assert_eq!(s.end_line - s.base_line, 100);
        let r0 = s.range_for(ChipletId::new(0)).unwrap();
        let r1 = s.range_for(ChipletId::new(1)).unwrap();
        assert_eq!(r0.end, r1.start, "partitions are contiguous");
        assert_eq!(s.mode, AccessMode::ReadWrite);
    }

    #[test]
    fn from_spec_irregular_labels_whole_structure() {
        let mut t = ArrayTable::new();
        let a = t.alloc("a", 64 * 100);
        let k = KernelSpec::builder("k")
            .wg_count(100)
            .array(
                a,
                TouchKind::Load,
                AccessPattern::Irregular {
                    fraction: 0.1,
                    locality: 0.5,
                },
            )
            .build();
        let chiplets: Vec<_> = ChipletId::all(2).collect();
        let plan = StaticPartitionScheduler::new().plan(&k, &chiplets);
        let info = KernelLaunchInfo::from_spec(&k, KernelId::new(0), &t, &plan, 2);
        let s = &info.structures[0];
        assert_eq!(s.range_for(ChipletId::new(0)), Some(&s.span()));
        assert_eq!(s.range_for(ChipletId::new(1)), Some(&s.span()));
    }
}
