//! The HIP-style labeling runtime from paper Listings 1 and 2.
//!
//! The paper extends AMD's open-source ROCm/HIP stack with two calls:
//!
//! ```c
//! hipSetAccessMode(square, C_d, 'R/W');               // Listing 1
//! hipSetAccessModeRange(square, C_d, 'R/W', ranges);  // Listing 2
//! hipLaunchKernelGGL(square, ..., C_d, A_d, N);
//! ```
//!
//! This module reproduces that surface: a [`HipRuntime`] collects per-kernel
//! access-mode (and optional range) annotations, and
//! [`HipRuntime::launch_kernel_ggl`] packages them into the
//! [`KernelLaunchInfo`] packet the global CP consumes. Range-less
//! annotations default to whole-structure ranges on every scheduled chiplet
//! — exactly the conservative fallback the paper describes for accesses the
//! software cannot narrow statically.
//!
//! # Example (Listing 1)
//!
//! ```
//! use cpelide::hip::{HipRuntime, RangeChiplet};
//! use cpelide::cp::GlobalCp;
//! use chiplet_mem::addr::{Addr, ChipletId};
//! use chiplet_mem::array::AccessMode;
//!
//! let mut hip = HipRuntime::new(2);
//! let a_d = hip.malloc("A_d", 64 * 1024);
//! let c_d = hip.malloc("C_d", 64 * 1024);
//! hip.set_access_mode("square", a_d, AccessMode::ReadOnly);
//! hip.set_access_mode("square", c_d, AccessMode::ReadWrite);
//!
//! let mut cp = GlobalCp::new(2);
//! let info = hip.launch_kernel_ggl("square", ChipletId::all(2));
//! let decision = cp.launch_kernel(&info);
//! assert!(decision.is_elided());
//! ```

use crate::api::{KernelLaunchInfo, StructureAccess};
use chiplet_mem::addr::{Addr, ChipletId};
use chiplet_mem::array::AccessMode;
use chiplet_mem::LINE_BYTES;
use std::collections::HashMap;
use std::ops::Range;

/// One `(start, end, logical chiplet)` tuple from Listing 2's
/// `rangeChiplet` typedef. The *logical* chiplet id is a position within
/// the set of chiplets the kernel will be scheduled on — the programmer
/// knows how many chiplets the kernel uses, not which physical ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangeChiplet {
    /// First byte of the range.
    pub start: Addr,
    /// One past the last byte.
    pub end: Addr,
    /// Logical chiplet index (slot within the dispatch).
    pub logical_chiplet: usize,
}

impl RangeChiplet {
    /// Creates a tuple, like Listing 2's `make_tuple`.
    pub fn new(start: Addr, end: Addr, logical_chiplet: usize) -> Self {
        RangeChiplet {
            start,
            end,
            logical_chiplet,
        }
    }
}

/// A device allocation handle returned by [`HipRuntime::malloc`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DevicePtr {
    base: Addr,
    bytes: u64,
}

impl DevicePtr {
    /// Base device address.
    pub fn base(self) -> Addr {
        self.base
    }

    /// Allocation size in bytes.
    pub fn bytes(self) -> u64 {
        self.bytes
    }

    fn line_span(self) -> Range<u64> {
        let first = self.base.line().get();
        first..first + self.bytes.div_ceil(LINE_BYTES)
    }
}

#[derive(Debug, Clone)]
struct Annotation {
    ptr: DevicePtr,
    mode: AccessMode,
    ranges: Option<Vec<RangeChiplet>>,
}

/// The extended-HIP runtime holding per-kernel annotations.
#[derive(Debug, Clone)]
pub struct HipRuntime {
    num_chiplets: usize,
    next_base: u64,
    annotations: HashMap<String, Vec<Annotation>>,
    launches: u64,
}

impl HipRuntime {
    /// Creates a runtime for an `n`-chiplet GPU.
    ///
    /// # Panics
    ///
    /// Panics if `num_chiplets` is 0 or exceeds 16.
    pub fn new(num_chiplets: usize) -> Self {
        assert!(
            (1..=16).contains(&num_chiplets),
            "1..=16 chiplets supported"
        );
        HipRuntime {
            num_chiplets,
            next_base: 0x1000_0000,
            annotations: HashMap::new(),
            launches: 0,
        }
    }

    /// `hipMalloc`: allocates a page-aligned device array.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn malloc(&mut self, _name: &str, bytes: u64) -> DevicePtr {
        assert!(bytes > 0, "allocation must be non-empty");
        let base = self.next_base.div_ceil(4096) * 4096;
        self.next_base = base + bytes;
        DevicePtr {
            base: Addr::new(base),
            bytes,
        }
    }

    /// `hipSetAccessMode` (Listing 1): labels `ptr`'s access mode for the
    /// next launch of `kernel`. The range defaults to the whole structure
    /// on every scheduled chiplet (the conservative fallback).
    pub fn set_access_mode(&mut self, kernel: &str, ptr: DevicePtr, mode: AccessMode) {
        self.annotations
            .entry(kernel.to_owned())
            .or_default()
            .push(Annotation {
                ptr,
                mode,
                ranges: None,
            });
    }

    /// `hipSetAccessModeRange` (Listing 2): labels mode plus per-logical-
    /// chiplet byte ranges.
    ///
    /// # Panics
    ///
    /// Panics if a range lies outside the allocation or its logical chiplet
    /// index is out of bounds for this system.
    pub fn set_access_mode_range(
        &mut self,
        kernel: &str,
        ptr: DevicePtr,
        mode: AccessMode,
        ranges: Vec<RangeChiplet>,
    ) {
        for r in &ranges {
            assert!(
                r.start.get() >= ptr.base.get()
                    && r.end.get() <= ptr.base.get() + ptr.bytes
                    && r.start.get() < r.end.get(),
                "range {:?} outside allocation {:?}",
                r,
                ptr
            );
            assert!(
                r.logical_chiplet < self.num_chiplets,
                "logical chiplet {} out of range",
                r.logical_chiplet
            );
        }
        self.annotations
            .entry(kernel.to_owned())
            .or_default()
            .push(Annotation {
                ptr,
                mode,
                ranges: Some(ranges),
            });
    }

    /// Labels a *dis-contiguous* set of sub-ranges of one allocation
    /// (paper §III-C: "CPElide supports both contiguous and dis-contiguous
    /// address ranges ... CPElide creates a chiplet vector per range").
    /// Each sub-range becomes its own tracked structure — one table row
    /// (chiplet vector) per range, exactly as the paper describes, at the
    /// cost of extra table entries.
    ///
    /// # Panics
    ///
    /// Panics like [`set_access_mode_range`](Self::set_access_mode_range),
    /// and if two sub-range groups overlap (they would alias rows).
    pub fn set_access_mode_ranges_discontiguous(
        &mut self,
        kernel: &str,
        ptr: DevicePtr,
        mode: AccessMode,
        range_groups: Vec<Vec<RangeChiplet>>,
    ) {
        let mut spans: Vec<(u64, u64)> = Vec::new();
        for group in range_groups {
            assert!(!group.is_empty(), "sub-range group must be non-empty");
            let lo = group
                .iter()
                .map(|r| r.start.get())
                .min()
                .expect("non-empty"); // chiplet-check: allow(no-panic) — asserted above
            let hi = group.iter().map(|r| r.end.get()).max().expect("non-empty"); // chiplet-check: allow(no-panic) — asserted above
            for &(a, b) in &spans {
                assert!(
                    hi <= a || lo >= b,
                    "dis-contiguous sub-ranges must not overlap"
                );
            }
            spans.push((lo, hi));
            // Each group is registered as its own structure: a narrowed
            // "allocation" covering just that sub-range's span.
            let sub_ptr = DevicePtr {
                base: Addr::new(lo / 64 * 64),
                bytes: hi - lo / 64 * 64,
            };
            self.set_access_mode_range(kernel, sub_ptr, mode, group);
        }
        let _ = ptr; // identity retained by the caller; rows are per range
    }

    /// `hipLaunchKernelGGL`: consumes `kernel`'s annotations and produces
    /// the launch packet for the global CP. `chiplets` is the physical set
    /// the stream is bound to (all chiplets for unbound streams); logical
    /// chiplet `i` maps to the `i`-th entry.
    ///
    /// # Panics
    ///
    /// Panics if the kernel has no annotations (the paper requires every
    /// data structure to be labeled) or a logical chiplet index exceeds the
    /// scheduled set.
    pub fn launch_kernel_ggl(
        &mut self,
        kernel: &str,
        chiplets: impl IntoIterator<Item = ChipletId>,
    ) -> KernelLaunchInfo {
        let chiplets: Vec<ChipletId> = chiplets.into_iter().collect();
        let labeled = self
            .annotations
            .remove(kernel)
            .unwrap_or_else(|| panic!("kernel {kernel} has no labeled data structures"));
        let id = self.launches;
        self.launches += 1;

        let structures = labeled
            .into_iter()
            .map(|a| {
                let span = a.ptr.line_span();
                let mut per_chiplet: Vec<Option<Range<u64>>> = vec![None; self.num_chiplets];
                match a.ranges {
                    None => {
                        for c in &chiplets {
                            per_chiplet[c.index()] = Some(span.clone());
                        }
                    }
                    Some(ranges) => {
                        for r in ranges {
                            let c = *chiplets.get(r.logical_chiplet).unwrap_or_else(|| {
                                panic!(
                                    "logical chiplet {} exceeds the {}-chiplet dispatch",
                                    r.logical_chiplet,
                                    chiplets.len()
                                )
                            });
                            let lines =
                                r.start.line().get()..r.end.offset(LINE_BYTES - 1).line().get();
                            let clamped = lines.start.max(span.start)..lines.end.min(span.end);
                            per_chiplet[c.index()] = Some(match per_chiplet[c.index()].take() {
                                Some(old) => old.start.min(clamped.start)..old.end.max(clamped.end),
                                None => clamped,
                            });
                        }
                    }
                }
                StructureAccess {
                    base_line: span.start,
                    end_line: span.end,
                    mode: a.mode,
                    ranges: per_chiplet,
                }
            })
            .collect();

        KernelLaunchInfo {
            kernel: id,
            chiplets,
            structures,
            num_chiplets: self.num_chiplets,
        }
    }

    /// Launches performed so far.
    pub fn launches(&self) -> u64 {
        self.launches
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listing1_defaults_to_whole_structure() {
        let mut hip = HipRuntime::new(2);
        let a = hip.malloc("A_d", 128 * 64);
        hip.set_access_mode("k", a, AccessMode::ReadOnly);
        let info = hip.launch_kernel_ggl("k", ChipletId::all(2));
        assert_eq!(info.structures.len(), 1);
        let s = &info.structures[0];
        assert_eq!(s.range_for(ChipletId::new(0)), Some(&s.span()));
        assert_eq!(s.range_for(ChipletId::new(1)), Some(&s.span()));
        assert_eq!(s.mode, AccessMode::ReadOnly);
    }

    #[test]
    fn listing2_ranges_map_logical_to_physical() {
        let mut hip = HipRuntime::new(4);
        let c = hip.malloc("C_d", 4096 * 4);
        let mid = c.base().offset(4096 * 2);
        hip.set_access_mode_range(
            "square",
            c,
            AccessMode::ReadWrite,
            vec![
                RangeChiplet::new(c.base(), mid, 0),
                RangeChiplet::new(mid, c.base().offset(4096 * 4), 1),
            ],
        );
        // Stream bound to physical chiplets 2 and 3: logical 0 -> 2.
        let info = hip.launch_kernel_ggl("square", [ChipletId::new(2), ChipletId::new(3)]);
        let s = &info.structures[0];
        assert!(s.range_for(ChipletId::new(2)).is_some());
        assert!(s.range_for(ChipletId::new(3)).is_some());
        assert_eq!(s.range_for(ChipletId::new(0)), None);
        let r2 = s.range_for(ChipletId::new(2)).unwrap();
        let r3 = s.range_for(ChipletId::new(3)).unwrap();
        assert_eq!(r2.end, r3.start, "halves are contiguous");
    }

    #[test]
    fn annotations_are_consumed_by_launch() {
        let mut hip = HipRuntime::new(2);
        let a = hip.malloc("A_d", 64);
        hip.set_access_mode("k", a, AccessMode::ReadOnly);
        let _ = hip.launch_kernel_ggl("k", ChipletId::all(2));
        assert_eq!(hip.launches(), 1);
    }

    #[test]
    #[should_panic(expected = "no labeled data structures")]
    fn unlabeled_kernel_rejected() {
        let mut hip = HipRuntime::new(2);
        let _ = hip.launch_kernel_ggl("mystery", ChipletId::all(2));
    }

    #[test]
    #[should_panic(expected = "outside allocation")]
    fn out_of_bounds_range_rejected() {
        let mut hip = HipRuntime::new(2);
        let a = hip.malloc("A_d", 4096);
        hip.set_access_mode_range(
            "k",
            a,
            AccessMode::ReadOnly,
            vec![RangeChiplet::new(a.base(), a.base().offset(8192), 0)],
        );
    }

    #[test]
    fn discontiguous_ranges_become_separate_rows() {
        let mut hip = HipRuntime::new(2);
        let a = hip.malloc("A_d", 16 * 4096);
        let sub = |page: u64, chiplet: usize| {
            RangeChiplet::new(
                a.base().offset(page * 4096),
                a.base().offset((page + 1) * 4096),
                chiplet,
            )
        };
        // Two dis-contiguous regions (pages 0-1 and pages 8-9), each split
        // across the two chiplets.
        hip.set_access_mode_ranges_discontiguous(
            "scatter",
            a,
            AccessMode::ReadWrite,
            vec![vec![sub(0, 0), sub(1, 1)], vec![sub(8, 0), sub(9, 1)]],
        );
        let info = hip.launch_kernel_ggl("scatter", ChipletId::all(2));
        assert_eq!(info.structures.len(), 2, "one chiplet vector per range");
        assert!(
            info.structures[0].end_line <= info.structures[1].base_line
                || info.structures[1].end_line <= info.structures[0].base_line
        );
        // Both rows carry both chiplets' sub-ranges.
        for s in &info.structures {
            assert!(s.range_for(ChipletId::new(0)).is_some());
            assert!(s.range_for(ChipletId::new(1)).is_some());
        }
    }

    #[test]
    #[should_panic(expected = "must not overlap")]
    fn overlapping_discontiguous_groups_rejected() {
        let mut hip = HipRuntime::new(2);
        let a = hip.malloc("A_d", 4 * 4096);
        let r = |p: u64| {
            RangeChiplet::new(
                a.base().offset(p * 4096),
                a.base().offset((p + 2) * 4096),
                0,
            )
        };
        hip.set_access_mode_ranges_discontiguous(
            "k",
            a,
            AccessMode::ReadOnly,
            vec![vec![r(0)], vec![r(1)]],
        );
    }

    #[test]
    fn mallocs_are_page_aligned_and_disjoint() {
        let mut hip = HipRuntime::new(2);
        let a = hip.malloc("a", 100);
        let b = hip.malloc("b", 100);
        assert_eq!(a.base().get() % 4096, 0);
        assert_eq!(b.base().get() % 4096, 0);
        assert!(b.base().get() >= a.base().get() + 100);
    }
}
