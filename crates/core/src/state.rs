//! The Chiplet Coherence Table's per-chiplet data-structure states and the
//! Figure 6 state machine.
//!
//! Each table entry holds a 2-bit state per chiplet describing what a data
//! structure's lines *may* be in that chiplet's L2 — a conservative,
//! coarse-grained estimate updated **at kernel launches**, not as memory
//! traffic flows (the table never needs transient states).

use std::fmt;

/// The four states of a data structure on one chiplet (paper §III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EntryState {
    /// `00` — the structure is guaranteed absent from the chiplet's L2.
    #[default]
    NotPresent,
    /// `01` — clean copies may be present and are up to date.
    Valid,
    /// `10` — the chiplet may hold the only up-to-date (dirty) copies.
    Dirty,
    /// `11` — copies may be present but are *not* up to date (another
    /// chiplet wrote the structure since this chiplet last accessed it);
    /// the chiplet must be invalidated before it may access the structure.
    Stale,
}

impl EntryState {
    /// The 2-bit encoding used in the chiplet vector.
    pub const fn encode(self) -> u8 {
        match self {
            EntryState::NotPresent => 0b00,
            EntryState::Valid => 0b01,
            EntryState::Dirty => 0b10,
            EntryState::Stale => 0b11,
        }
    }

    /// Decodes a 2-bit value.
    ///
    /// # Panics
    ///
    /// Panics if `bits > 0b11`.
    pub const fn decode(bits: u8) -> EntryState {
        match bits {
            0b00 => EntryState::NotPresent,
            0b01 => EntryState::Valid,
            0b10 => EntryState::Dirty,
            0b11 => EntryState::Stale,
            _ => panic!("entry state is two bits"),
        }
    }

    /// True if a release (flush) is required before another chiplet may
    /// observe this structure's latest values.
    pub const fn needs_release(self) -> bool {
        matches!(self, EntryState::Dirty)
    }

    /// True if an acquire (invalidate) is required before this chiplet may
    /// access the structure again.
    pub const fn needs_acquire(self) -> bool {
        matches!(self, EntryState::Stale)
    }

    /// Applies one Figure 6 event and returns the successor state.
    ///
    /// Events describe what a newly launched kernel (or a whole-cache
    /// operation triggered by another structure) does, from the perspective
    /// of the chiplet this state belongs to.
    #[must_use]
    pub fn on_event(self, event: StateEvent) -> EntryState {
        use EntryState::*;
        use StateEvent::*;
        match (self, event) {
            // Not Present: local accesses install the structure.
            (NotPresent, LocalRead) => Valid,
            (NotPresent, LocalWrite) => Dirty,
            (NotPresent, RemoteRead | RemoteWrite | CacheFlushed | CacheInvalidated) => NotPresent,

            // Valid: stays valid on local/remote reads and on flushes of
            // other structures (the ALR/ARR/Flush self-loop).
            (Valid, LocalRead | RemoteRead | CacheFlushed) => Valid,
            (Valid, LocalWrite) => Dirty,
            // Another chiplet is about to write: our clean copy goes stale.
            (Valid, RemoteWrite) => Stale,
            (Valid, CacheInvalidated) => NotPresent,

            // Dirty: stays dirty on local accesses (elided release — the
            // paper's "Stay in Dirty"). A whole-cache flush writes the data
            // back but retains clean copies, hence Valid.
            (Dirty, LocalRead | LocalWrite) => Dirty,
            (Dirty, CacheFlushed) => Valid,
            // Remote accesses to a Dirty structure require a release first;
            // the table caller issues the flush, then applies CacheFlushed
            // followed by the remote event. Applying the remote event
            // directly encodes the post-flush outcome for convenience.
            (Dirty, RemoteRead) => Valid,
            (Dirty, RemoteWrite) => Stale,
            (Dirty, CacheInvalidated) => NotPresent,

            // Stale: only an invalidation clears it; everything else leaves
            // the chiplet holding out-of-date lines.
            (Stale, CacheInvalidated) => NotPresent,
            (Stale, RemoteRead | RemoteWrite | CacheFlushed) => Stale,
            // Local accesses while Stale are protocol errors unless an
            // acquire was generated first; the table enforces that, so the
            // transition below is only reachable after invalidation.
            (Stale, LocalRead | LocalWrite) => {
                panic!("local access to a Stale structure without an acquire")
            }
        }
    }
}

impl fmt::Display for EntryState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EntryState::NotPresent => f.write_str("NotPresent"),
            EntryState::Valid => f.write_str("Valid"),
            EntryState::Dirty => f.write_str("Dirty"),
            EntryState::Stale => f.write_str("Stale"),
        }
    }
}

/// Events driving the Figure 6 state machine, from the perspective of one
/// chiplet's entry for one data structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StateEvent {
    /// A kernel on *this* chiplet reads the structure.
    LocalRead,
    /// A kernel on *this* chiplet writes the structure.
    LocalWrite,
    /// A kernel on *another* chiplet reads an overlapping range.
    RemoteRead,
    /// A kernel on *another* chiplet writes an overlapping range.
    RemoteWrite,
    /// This chiplet's whole L2 was flushed (a release, possibly triggered
    /// by a different structure).
    CacheFlushed,
    /// This chiplet's whole L2 was invalidated (an acquire).
    CacheInvalidated,
}

impl StateEvent {
    /// The stable event code shared with the `chiplet-obs` transition
    /// auditor (`chiplet_obs::audit::EVENT_*`).
    pub const fn encode(self) -> u8 {
        match self {
            StateEvent::LocalRead => 0,
            StateEvent::LocalWrite => 1,
            StateEvent::RemoteRead => 2,
            StateEvent::RemoteWrite => 3,
            StateEvent::CacheFlushed => 4,
            StateEvent::CacheInvalidated => 5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use EntryState::*;
    use StateEvent::*;

    #[test]
    fn encoding_round_trips() {
        for s in [NotPresent, Valid, Dirty, Stale] {
            assert_eq!(EntryState::decode(s.encode()), s);
        }
        assert_eq!(NotPresent.encode(), 0b00);
        assert_eq!(Valid.encode(), 0b01);
        assert_eq!(Dirty.encode(), 0b10);
        assert_eq!(Stale.encode(), 0b11);
    }

    #[test]
    fn not_present_transitions() {
        assert_eq!(NotPresent.on_event(LocalRead), Valid);
        assert_eq!(NotPresent.on_event(LocalWrite), Dirty);
        assert_eq!(NotPresent.on_event(RemoteRead), NotPresent);
        assert_eq!(NotPresent.on_event(RemoteWrite), NotPresent);
        assert_eq!(NotPresent.on_event(CacheFlushed), NotPresent);
        assert_eq!(NotPresent.on_event(CacheInvalidated), NotPresent);
    }

    #[test]
    fn valid_self_loop_on_reads_and_flush() {
        assert_eq!(Valid.on_event(LocalRead), Valid);
        assert_eq!(Valid.on_event(RemoteRead), Valid);
        assert_eq!(Valid.on_event(CacheFlushed), Valid);
    }

    #[test]
    fn valid_to_stale_on_remote_write() {
        assert_eq!(Valid.on_event(RemoteWrite), Stale);
    }

    #[test]
    fn valid_to_dirty_on_local_write() {
        assert_eq!(Valid.on_event(LocalWrite), Dirty);
    }

    #[test]
    fn dirty_stays_dirty_locally() {
        assert_eq!(Dirty.on_event(LocalRead), Dirty);
        assert_eq!(Dirty.on_event(LocalWrite), Dirty);
    }

    #[test]
    fn dirty_flush_retains_clean_copy() {
        assert_eq!(Dirty.on_event(CacheFlushed), Valid);
    }

    #[test]
    fn dirty_remote_write_ends_stale() {
        assert_eq!(Dirty.on_event(RemoteWrite), Stale);
    }

    #[test]
    fn dirty_remote_read_ends_valid() {
        assert_eq!(Dirty.on_event(RemoteRead), Valid);
    }

    #[test]
    fn stale_cleared_only_by_invalidate() {
        assert_eq!(Stale.on_event(CacheInvalidated), NotPresent);
        assert_eq!(Stale.on_event(RemoteRead), Stale);
        assert_eq!(Stale.on_event(RemoteWrite), Stale);
        assert_eq!(Stale.on_event(CacheFlushed), Stale);
    }

    #[test]
    #[should_panic(expected = "without an acquire")]
    fn local_access_to_stale_is_a_protocol_error() {
        let _ = Stale.on_event(LocalRead);
    }

    #[test]
    fn needs_flags() {
        assert!(Dirty.needs_release());
        assert!(!Valid.needs_release());
        assert!(Stale.needs_acquire());
        assert!(!Dirty.needs_acquire());
    }

    #[test]
    fn display_nonempty() {
        for s in [NotPresent, Valid, Dirty, Stale] {
            assert!(!format!("{s}").is_empty());
        }
    }
}
