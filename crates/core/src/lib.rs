//! **CPElide** — the paper's contribution: command-processor-driven elision
//! of implicit synchronization in multi-chiplet GPUs.
//!
//! Conventional chiplet GPUs conservatively invalidate every chiplet's L2 at
//! each kernel launch (implicit *acquire*) and flush all dirty L2 data at
//! each kernel completion (implicit *release*), destroying inter-kernel L2
//! locality. CPElide exploits the fact that the GPU's command processor (CP)
//! already sees every kernel launch, its data structures (via the
//! `hipSetAccessMode`/`hipSetAccessModeRange` labels of [`api`]), and the
//! chiplets its work-groups are dispatched to. A *Chiplet Coherence Table*
//! ([`table`]) in the global CP tracks each data structure's state on each
//! chiplet (Not-Present / Valid / Dirty / Stale, [`state`]) and generates
//! per-chiplet acquires and releases **only when a cross-chiplet dependence
//! actually requires them** — lazily, on demand ([`cp`]).
//!
//! # Quick start
//!
//! ```
//! use cpelide::api::KernelLaunchInfo;
//! use cpelide::cp::GlobalCp;
//! use chiplet_mem::array::AccessMode;
//! use chiplet_mem::addr::ChipletId;
//!
//! // A 2-chiplet GPU; kernel 0 writes lines 0..100 on chiplet 0 and
//! // 100..200 on chiplet 1 of one array.
//! let mut cp = GlobalCp::new(2);
//! let k0 = KernelLaunchInfo::builder(0, ChipletId::all(2))
//!     .structure(0, 200, AccessMode::ReadWrite, [Some(0..100), Some(100..200)])
//!     .build();
//! let d0 = cp.launch_kernel(&k0);
//! assert!(d0.acquires.is_empty() && d0.releases.is_empty());
//!
//! // Kernel 1 re-reads the same partitions on the same chiplets: both the
//! // acquire and the release are elided and L2 locality is preserved.
//! let k1 = KernelLaunchInfo::builder(1, ChipletId::all(2))
//!     .structure(0, 200, AccessMode::ReadOnly, [Some(0..100), Some(100..200)])
//!     .build();
//! let d1 = cp.launch_kernel(&k1);
//! assert!(d1.acquires.is_empty() && d1.releases.is_empty());
//! ```
#![warn(missing_docs)]

pub mod api;
pub mod coarsen;
pub mod cp;
pub mod hip;
pub mod state;
pub mod table;

pub use api::{KernelLaunchInfo, LaunchInfoBuilder, StructureAccess};
pub use cp::{GlobalCp, LaunchDecision, LocalCp};
pub use hip::{DevicePtr, HipRuntime, RangeChiplet};
pub use state::{EntryState, StateEvent};
pub use table::{ChipletCoherenceTable, SyncActions, TableStats};

/// CP processing latency per kernel launch, before CPElide's additions
/// (paper §IV-B: "the modeled local/global CP latency is 2 µs").
pub const CP_BASE_LATENCY_US: f64 = 2.0;

/// Extra CP latency for CPElide's table reads/writes and acquire/release
/// generation (paper §IV-B: "the CP requires 6 µs to perform CPElide's new
/// operations"). Hidden for all but the first kernel because kernels are
/// enqueued ahead of launch.
pub const CPELIDE_PROCESS_LATENCY_US: f64 = 6.0;

/// The CP clock in GHz (paper §IV-B: 1.5 GHz).
pub const CP_CLOCK_GHZ: f64 = 1.5;

/// CP private-memory access latency in CP cycles (paper §IV-B: 31 cycles).
pub const CP_MEMORY_LATENCY_CYCLES: u64 = 31;

/// Maximum data structures tracked per kernel before coarsening kicks in
/// (paper §III-A: 8, from the observation that most GPU programs access
/// ≤ 8 structures per kernel).
pub const MAX_STRUCTURES_PER_KERNEL: usize = 8;

/// Kernels of history the table is sized for (paper §III-A: structures are
/// reused within ~4 kernels; sized conservatively to 8).
pub const TABLE_KERNEL_DEPTH: usize = 8;

/// Total Chiplet Coherence Table capacity (8 structures × 8 kernels).
pub const TABLE_CAPACITY: usize = MAX_STRUCTURES_PER_KERNEL * TABLE_KERNEL_DEPTH;

/// Approximate bytes of CP private memory one table entry occupies for an
/// `n`-chiplet system (paper §III-A: 1 B chiplet vector + 1 bit mode +
/// 28 B ranges + 4 B base ≈ 33–34 B ⇒ ~2 KB total for 64 entries).
pub fn table_entry_bytes(chiplets: usize) -> usize {
    let chiplet_vector = (2 * chiplets).div_ceil(8); // 2 bits per chiplet
    let mode = 1; // stored as a byte in practice
    let ranges = 28;
    let base = 4;
    chiplet_vector + mode + ranges + base
}

/// Total table bytes for an `n`-chiplet system.
pub fn table_bytes(chiplets: usize) -> usize {
    TABLE_CAPACITY * table_entry_bytes(chiplets)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_fits_in_cp_private_memory() {
        // Paper: ~2 KB for a 4-chiplet system.
        let bytes = table_bytes(4);
        assert!((2048..=2432).contains(&bytes), "got {bytes}");
    }

    #[test]
    fn capacity_is_64_entries() {
        assert_eq!(TABLE_CAPACITY, 64);
    }
}
