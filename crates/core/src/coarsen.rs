//! Coarsening of data-structure labels (paper §III-B).
//!
//! The Chiplet Coherence Table budgets [`crate::MAX_STRUCTURES_PER_KERNEL`]
//! structures per kernel. If a kernel labels more, CPElide merges entries:
//! first structures that are *contiguous in memory*, then the structures
//! *closest to one another*, always keeping the more conservative access
//! mode and the union of per-chiplet ranges. Merging may cover unaccessed
//! gap bytes — harmless for correctness (the gap is simply synchronized
//! along with its neighbours), at worst costing extra acquires/releases.

use crate::api::{range_union, StructureAccess};
use chiplet_mem::addr::LINES_PER_PAGE;

/// Merges two structure labels into one conservative label.
fn merge(a: &StructureAccess, b: &StructureAccess) -> StructureAccess {
    debug_assert_eq!(a.ranges.len(), b.ranges.len());
    let ranges = a
        .ranges
        .iter()
        .zip(&b.ranges)
        .map(|(x, y)| match (x, y) {
            (Some(x), Some(y)) => Some(range_union(x, y)),
            (Some(x), None) => Some(x.clone()),
            (None, Some(y)) => Some(y.clone()),
            (None, None) => None,
        })
        .collect();
    StructureAccess {
        base_line: a.base_line.min(b.base_line),
        end_line: a.end_line.max(b.end_line),
        mode: a.mode.merge(b.mode),
        ranges,
    }
}

/// Gap in lines between two structure spans (0 if adjacent or overlapping).
fn gap(a: &StructureAccess, b: &StructureAccess) -> u64 {
    if a.end_line <= b.base_line {
        b.base_line - a.end_line
    } else {
        a.base_line.saturating_sub(b.end_line)
    }
}

/// Coarsens `structures` down to at most `budget` labels.
///
/// Pass 1 merges pairs within one page of each other (page-aligned
/// back-to-back allocations are "contiguous in memory"); pass 2 repeatedly
/// merges the closest remaining pair. The result preserves every labeled
/// line and every chiplet's coverage.
///
/// # Panics
///
/// Panics if `budget` is zero.
pub fn coarsen_structures(structures: &[StructureAccess], budget: usize) -> Vec<StructureAccess> {
    assert!(budget > 0, "budget must be positive");
    let mut out: Vec<StructureAccess> = structures.to_vec();
    out.sort_by_key(|s| s.base_line);

    // Pass 1: contiguous merges (gap within one page).
    let mut i = 0;
    while out.len() > budget && i + 1 < out.len() {
        if gap(&out[i], &out[i + 1]) <= LINES_PER_PAGE {
            let merged = merge(&out[i], &out[i + 1]);
            out[i] = merged;
            out.remove(i + 1);
        } else {
            i += 1;
        }
    }

    // Pass 2: closest-pair merges until within budget.
    while out.len() > budget {
        let mut best = (0usize, u64::MAX);
        for j in 0..out.len() - 1 {
            let g = gap(&out[j], &out[j + 1]);
            if g < best.1 {
                best = (j, g);
            }
        }
        let merged = merge(&out[best.0], &out[best.0 + 1]);
        out[best.0] = merged;
        out.remove(best.0 + 1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiplet_mem::array::AccessMode;

    fn s(base: u64, end: u64, mode: AccessMode) -> StructureAccess {
        StructureAccess {
            base_line: base,
            end_line: end,
            mode,
            ranges: vec![Some(base..end), None],
        }
    }

    #[test]
    fn within_budget_is_untouched() {
        let v = vec![
            s(0, 10, AccessMode::ReadOnly),
            s(1000, 1010, AccessMode::ReadWrite),
        ];
        let out = coarsen_structures(&v, 8);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn contiguous_structures_merge_first() {
        // 0..10 and 10..20 are adjacent; 100000.. is far away.
        let v = vec![
            s(0, 10, AccessMode::ReadOnly),
            s(10, 20, AccessMode::ReadWrite),
            s(100_000, 100_010, AccessMode::ReadOnly),
        ];
        let out = coarsen_structures(&v, 2);
        assert_eq!(out.len(), 2);
        let merged = out.iter().find(|x| x.base_line == 0).unwrap();
        assert_eq!(merged.end_line, 20);
        assert_eq!(merged.mode, AccessMode::ReadWrite, "conservative mode");
        assert_eq!(merged.ranges[0], Some(0..20), "ranges unioned");
    }

    #[test]
    fn closest_pairs_merge_when_nothing_contiguous() {
        let v = vec![
            s(0, 10, AccessMode::ReadOnly),
            s(1_000, 1_010, AccessMode::ReadOnly),
            s(1_200, 1_210, AccessMode::ReadOnly), // closest to previous
            s(50_000, 50_010, AccessMode::ReadOnly),
        ];
        let out = coarsen_structures(&v, 3);
        assert_eq!(out.len(), 3);
        assert!(
            out.iter()
                .any(|x| x.base_line == 1_000 && x.end_line == 1_210),
            "the 1000/1200 pair should merge: {out:?}"
        );
    }

    #[test]
    fn coverage_is_preserved() {
        let v: Vec<_> = (0..12u64)
            .map(|i| s(i * 500, i * 500 + 100, AccessMode::ReadWrite))
            .collect();
        let out = coarsen_structures(&v, 8);
        assert!(out.len() <= 8);
        for orig in &v {
            assert!(
                out.iter()
                    .any(|m| m.base_line <= orig.base_line && m.end_line >= orig.end_line),
                "structure {orig:?} lost"
            );
        }
    }

    #[test]
    fn merges_to_single_entry_if_needed() {
        let v: Vec<_> = (0..20u64)
            .map(|i| s(i * 10_000, i * 10_000 + 10, AccessMode::ReadOnly))
            .collect();
        let out = coarsen_structures(&v, 1);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].base_line, 0);
        assert_eq!(out[0].end_line, 19 * 10_000 + 10);
    }
}
