//! The Chiplet Coherence Table and CPElide's lazy acquire/release algorithm
//! (paper §III).
//!
//! The table lives in the global CP's private memory. Each row tracks one
//! data structure: its base address (identity), the last touched address
//! range per chiplet, its access mode, and a 2-bit state per chiplet
//! ([`EntryState`]). At every kernel launch [`ChipletCoherenceTable::prepare_launch`]
//! inspects the kernel's labeled structures **once** and decides which
//! chiplets' L2s must be invalidated (acquires) and/or flushed (releases)
//! before the kernel may issue memory accesses; everything else is elided.
//!
//! Because the CP can only operate on whole L2 caches (paper §VI,
//! "Fine-grained Hardware Range Based Flush"), a generated acquire or
//! release affects *every* structure cached on that chiplet; the table
//! applies those whole-cache side effects to all rows.

use crate::api::{range_union, ranges_overlap, KernelLaunchInfo, StructureAccess};
use crate::coarsen::coarsen_structures;
use crate::state::{EntryState, StateEvent};
use crate::{MAX_STRUCTURES_PER_KERNEL, TABLE_CAPACITY};
use chiplet_mem::addr::{ChipletId, LINES_PER_PAGE};
use chiplet_mem::array::AccessMode;
use chiplet_obs::TransitionAuditor;
use std::fmt;
use std::ops::Range;

/// One first-touch placement record: a structure span plus the per-chiplet
/// home ranges fixed for it at dispatch time.
pub type HomeRecord = (Range<u64>, Vec<Option<Range<u64>>>);

/// One table row.
#[derive(Debug, Clone, PartialEq, Eq)]
struct TableEntry {
    /// Stable identity for the audit trail: survives row motion within
    /// `entries`, but a structure that is removed and later re-tracked
    /// gets a fresh id (it is a new residency episode).
    id: u32,
    base_line: u64,
    end_line: u64,
    mode: AccessMode,
    /// Last touched range per chiplet (union over launches while resident).
    ranges: Vec<Option<Range<u64>>>,
    /// First-touch proxy: the range each chiplet covered when the structure
    /// was first dispatched. Under first-touch placement those pages are
    /// homed at that chiplet, and a chiplet's L2 can only cache lines homed
    /// there — so staleness and dirtiness checks are confined to this
    /// range. The global CP knows it because it performed the dispatch.
    home_ranges: Vec<Option<Range<u64>>>,
    states: Vec<EntryState>,
    last_use: u64,
}

impl TableEntry {
    fn new(id: u32, s: &StructureAccess, n: usize, kernel: u64) -> Self {
        TableEntry {
            id,
            base_line: s.base_line,
            end_line: s.end_line,
            mode: s.mode,
            ranges: vec![None; n],
            home_ranges: s
                .ranges
                .iter()
                .map(|o| o.as_ref().map(page_aligned))
                .collect(),
            states: vec![EntryState::NotPresent; n],
            last_use: kernel,
        }
    }

    fn span(&self) -> Range<u64> {
        self.base_line..self.end_line
    }

    fn all_not_present(&self) -> bool {
        self.states.iter().all(|&s| s == EntryState::NotPresent)
    }

    /// The lines chiplet `j` may actually hold in its L2 for this
    /// structure: what it touched, intersected with what is homed there.
    fn cacheable(&self, j: ChipletId) -> Option<Range<u64>> {
        let tracked = self.ranges[j.index()].as_ref()?;
        let home = self.home_ranges[j.index()].as_ref()?;
        let r = tracked.start.max(home.start)..tracked.end.min(home.end);
        (r.start < r.end).then_some(r)
    }
}

/// Widens a line range to page boundaries.
///
/// First-touch placement is page-granular: when a partition boundary cuts
/// through a page, the single chiplet that touched the page first homes
/// *all* of its lines — including lines past the boundary that the
/// line-granular hint attributes to the neighbour. Home claims must
/// therefore be tracked at page granularity, or a chiplet's dirty/stale
/// lines in a boundary-straddling page escape the [`TableEntry::cacheable`]
/// bound and the CP elides a release/acquire it actually needed (observable
/// as stale reads whenever an array's lines don't divide page-aligned
/// across the chiplets, e.g. 8192 lines on 3 chiplets). Widening a home
/// claim only ever produces extra synchronization, never less.
fn page_aligned(r: &Range<u64>) -> Range<u64> {
    let start = r.start - r.start % LINES_PER_PAGE;
    let end = r.end.div_ceil(LINES_PER_PAGE) * LINES_PER_PAGE;
    start..end
}

/// True if `range` lies entirely within the merged union of the chiplets'
/// home ranges (i.e. every page it can touch already has a home).
///
/// Runs on the CCT lookup path for every local access classification, so it
/// advances a cover frontier over the (at most chiplet-count) intervals in
/// place rather than collecting and sorting them.
fn covered_by_homes(homes: &[Option<Range<u64>>], range: &Range<u64>) -> bool {
    let mut cursor = range.start;
    loop {
        // Furthest the cover extends using intervals that reach `cursor`.
        let mut best = cursor;
        for iv in homes.iter().flatten() {
            if iv.start <= cursor {
                best = best.max(iv.end.min(range.end));
            }
        }
        if best >= range.end {
            return true;
        }
        if best == cursor {
            return false; // gap at `cursor`: no interval extends the cover
        }
        cursor = best;
    }
}

/// The per-chiplet synchronization operations one kernel launch requires.
///
/// Acquires are whole-L2 **flush-then-invalidate** operations (dirty lines
/// must not be lost); releases are whole-L2 dirty flushes that retain clean
/// copies. Per the paper's lazy ordering, the consumer performs acquires and
/// releases after the previous kernel completes but before the new kernel's
/// first memory access.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SyncActions {
    /// Chiplets whose L2 must be invalidated (acquire).
    pub acquires: Vec<ChipletId>,
    /// Chiplets whose L2 dirty data must be written back (release).
    pub releases: Vec<ChipletId>,
}

impl SyncActions {
    /// True if the launch needs no synchronization at all — the fully
    /// elided fast path.
    pub fn is_empty(&self) -> bool {
        self.acquires.is_empty() && self.releases.is_empty()
    }

    /// Chiplets involved in any operation (deduplicated).
    pub fn touched_chiplets(&self) -> Vec<ChipletId> {
        let mut v = self.acquires.clone();
        for &c in &self.releases {
            if !v.contains(&c) {
                v.push(c);
            }
        }
        v
    }
}

/// Cumulative table statistics for the evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Kernel launches processed.
    pub launches: u64,
    /// Whole-L2 acquires generated.
    pub acquires_issued: u64,
    /// Whole-L2 releases generated.
    pub releases_issued: u64,
    /// Per-chiplet acquires the baseline would have performed but CPElide
    /// skipped (`launches * chiplets - issued`).
    pub acquires_elided: u64,
    /// Per-chiplet releases the baseline would have performed but skipped.
    pub releases_elided: u64,
    /// High-water mark of live entries (paper: ≤ 11 across all workloads).
    pub max_live_entries: usize,
    /// Launches whose structure list had to be coarsened (> 8 structures).
    pub coarsenings: u64,
    /// Entries evicted for capacity (paper: never happens; kept for safety).
    pub evictions: u64,
}

/// The Chiplet Coherence Table (paper Figure 5).
///
/// # Example
///
/// ```
/// use cpelide::table::ChipletCoherenceTable;
/// use cpelide::api::KernelLaunchInfo;
/// use cpelide::state::EntryState;
/// use chiplet_mem::array::AccessMode;
/// use chiplet_mem::addr::ChipletId;
///
/// let mut t = ChipletCoherenceTable::new(2);
/// let k = KernelLaunchInfo::builder(0, ChipletId::all(2))
///     .structure(0, 100, AccessMode::ReadWrite, [Some(0..50), Some(50..100)])
///     .build();
/// assert!(t.prepare_launch(&k).is_empty());
/// assert_eq!(t.state_of(0, ChipletId::new(0)), EntryState::Dirty);
/// ```
#[derive(Debug, Clone)]
pub struct ChipletCoherenceTable {
    num_chiplets: usize,
    capacity: usize,
    entries: Vec<TableEntry>,
    /// First-touch placement record per structure span. Page homes are
    /// fixed at dispatch time and outlive table residency, so this log
    /// survives row removal: a recreated row must not re-infer narrower
    /// homes from the new launch alone, or a chiplet's dirty/stale lines
    /// could escape the [`TableEntry::cacheable`] bound (unsound elision).
    /// The CP can always re-derive this because it performed every
    /// dispatch.
    home_log: Vec<HomeRecord>,
    stats: TableStats,
    next_entry_id: u32,
    /// Optional transition audit trail (see `chiplet-obs`). When enabled,
    /// every state transition applied by [`ChipletCoherenceTable::prepare_launch`]
    /// is re-validated against the Figure 6 relation; an illegal transition
    /// panics in debug/test builds and is counted in release builds.
    audit: Option<TransitionAuditor>,
}

/// Applies one state event to `states[chiplet]`, recording it into the
/// auditor when one is attached. A free function so callers can borrow
/// `entries` and `audit` disjointly.
fn apply_event(
    audit: &mut Option<TransitionAuditor>,
    entry_id: u32,
    chiplet: usize,
    kernel: u64,
    state: &mut EntryState,
    ev: StateEvent,
) {
    let from = *state;
    let to = from.on_event(ev);
    if let Some(a) = audit {
        let res = a.record(
            entry_id,
            chiplet as u32,
            kernel,
            from.encode(),
            ev.encode(),
            to.encode(),
        );
        if cfg!(debug_assertions) {
            if let Err(e) = res {
                panic!("{e}");
            }
        }
    }
    *state = to;
}

impl ChipletCoherenceTable {
    /// Creates a table for an `n`-chiplet system with the paper's 64-entry
    /// capacity.
    pub fn new(num_chiplets: usize) -> Self {
        Self::with_capacity(num_chiplets, TABLE_CAPACITY)
    }

    /// Creates a table with a custom capacity (CPs are programmable, so the
    /// size can be raised at the cost of CP memory; paper §III-A).
    ///
    /// # Panics
    ///
    /// Panics if `num_chiplets` is 0 or exceeds 16, or `capacity` is 0.
    pub fn with_capacity(num_chiplets: usize, capacity: usize) -> Self {
        assert!(
            (1..=16).contains(&num_chiplets),
            "1..=16 chiplets supported"
        );
        assert!(capacity > 0, "table must hold at least one entry");
        ChipletCoherenceTable {
            num_chiplets,
            capacity,
            entries: Vec::new(),
            home_log: Vec::new(),
            stats: TableStats::default(),
            next_entry_id: 0,
            audit: None,
        }
    }

    /// Attaches a [`TransitionAuditor`]: every subsequent state transition
    /// is validated against the Figure 6 relation and tallied into
    /// per-structure residency counts. `keep_log` additionally retains the
    /// full transition sequence (use for short runs only).
    pub fn enable_audit(&mut self, keep_log: bool) {
        let mut a = TransitionAuditor::new();
        a.keep_log(keep_log);
        self.audit = Some(a);
    }

    /// The attached auditor, if [`enable_audit`] was called.
    ///
    /// [`enable_audit`]: ChipletCoherenceTable::enable_audit
    pub fn auditor(&self) -> Option<&TransitionAuditor> {
        self.audit.as_ref()
    }

    /// Merged home ranges of every `home_log` record overlapping `span`,
    /// or `None` if the span has never been dispatched.
    fn homes_on_record(&self, span: &Range<u64>) -> Option<Vec<Option<Range<u64>>>> {
        let mut found: Option<Vec<Option<Range<u64>>>> = None;
        for (r, hs) in &self.home_log {
            if !ranges_overlap(r, span) {
                continue;
            }
            let homes = found.get_or_insert_with(|| vec![None; self.num_chiplets]);
            for (h, old) in homes.iter_mut().zip(hs) {
                if let Some(o) = old {
                    *h = Some(match h.take() {
                        Some(cur) => range_union(&cur, o),
                        None => o.clone(),
                    });
                }
            }
        }
        found
    }

    /// Records (and coalesces) the first-touch homes for `span`. Widening
    /// a home only ever produces extra synchronization, so merging by
    /// union is always safe.
    fn record_homes(&mut self, mut span: Range<u64>, mut homes: Vec<Option<Range<u64>>>) {
        while let Some(pos) = self
            .home_log
            .iter()
            .position(|(r, _)| ranges_overlap(r, &span))
        {
            let (r, hs) = self.home_log.swap_remove(pos);
            span = span.start.min(r.start)..span.end.max(r.end);
            for (h, old) in homes.iter_mut().zip(hs) {
                if let Some(o) = old {
                    *h = Some(match h.take() {
                        Some(cur) => range_union(&cur, &o),
                        None => o,
                    });
                }
            }
        }
        self.home_log.push((span, homes));
    }

    /// The system's chiplet count.
    pub fn num_chiplets(&self) -> usize {
        self.num_chiplets
    }

    /// Live (resident) entries.
    pub fn live_entries(&self) -> usize {
        self.entries.len()
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> TableStats {
        self.stats
    }

    /// The tracked state of the structure whose span contains `line` on
    /// `chiplet` ([`EntryState::NotPresent`] if untracked).
    pub fn state_of(&self, line: u64, chiplet: ChipletId) -> EntryState {
        self.entries
            .iter()
            .find(|e| e.span().contains(&line))
            .map(|e| e.states[chiplet.index()])
            .unwrap_or(EntryState::NotPresent)
    }

    fn find_entry(&self, s: &StructureAccess) -> Option<usize> {
        self.entries
            .iter()
            .position(|e| ranges_overlap(&e.span(), &s.span()))
    }

    /// The heart of CPElide: processes one kernel launch, returning the
    /// acquires and releases that must be performed before the kernel's
    /// first memory access. All table state transitions happen here, at
    /// launch time (paper §III-B: "the table's state transitions occur at
    /// kernel launches").
    pub fn prepare_launch(&mut self, info: &KernelLaunchInfo) -> SyncActions {
        self.stats.launches += 1;
        assert_eq!(
            info.num_chiplets, self.num_chiplets,
            "launch info sized for a different system"
        );

        // Coarsen if the kernel accesses more structures than the per-kernel
        // budget (paper §III-B "Coarsening Data Structure Labels").
        let coarsened;
        let budget = MAX_STRUCTURES_PER_KERNEL.min(self.capacity);
        let structures: &[StructureAccess] = if info.structures.len() > budget {
            self.stats.coarsenings += 1;
            coarsened = coarsen_structures(&info.structures, budget);
            &coarsened
        } else {
            &info.structures
        };

        let mut acquires: Vec<ChipletId> = Vec::new();
        let mut releases: Vec<ChipletId> = Vec::new();
        let push_unique = |v: &mut Vec<ChipletId>, c: ChipletId| {
            if !v.contains(&c) {
                v.push(c);
            }
        };

        // Phase 1: decide required synchronization by scanning the launch's
        // structures against the table.
        for s in structures {
            let Some(idx) = self.find_entry(s) else {
                continue;
            };
            let entry = &self.entries[idx];
            for j in ChipletId::all(self.num_chiplets) {
                let state = entry.states[j.index()];
                // Release rule (§III-C "Generating Release Requests"):
                // flush chiplet j's dirty data only if some *other* chiplet
                // is about to access a range overlapping what j dirtied.
                if state.needs_release() {
                    if let Some(dirty_range) = entry.cacheable(j) {
                        if s.any_other_overlaps(j, &dirty_range) {
                            push_unique(&mut releases, j);
                        }
                    }
                }
                // Acquire rule (§III-C "Generating Acquire Requests"):
                // invalidate chiplet j only if it is about to access a
                // structure that is Stale there.
                if state.needs_acquire() && s.range_for(j).is_some() {
                    push_unique(&mut acquires, j);
                }
                // Scheduled-bystander rule: chiplet j participates in this
                // kernel while *another* chiplet's labeled range overlaps
                // what j may still hold cached (Valid or Dirty) — if the
                // kernel writes the structure, j's copies of the overlap
                // would go stale mid-kernel. j must be acquired (flush +
                // invalidate) before launch. Disjoint per-chiplet labels
                // (the common partitioned case) never trigger this.
                if s.mode.writes()
                    && s.range_for(j).is_some()
                    && matches!(state, EntryState::Valid | EntryState::Dirty)
                {
                    if let Some(cacheable) = entry.cacheable(j) {
                        if s.any_other_overlaps(j, &cacheable) {
                            push_unique(&mut acquires, j);
                        }
                    }
                }
            }
        }

        // Capacity handling: make room for new structures by conservatively
        // synchronizing away the least-recently-used entries (never observed
        // in the paper's workloads, but required for safety).
        let new_structures = structures
            .iter()
            .filter(|s| self.find_entry(s).is_none())
            .count();
        while self.entries.len() + new_structures > self.capacity && !self.entries.is_empty() {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_use)
                .map(|(i, _)| i)
                // chiplet-check: allow(no-panic) — loop guard proves non-empty
                .expect("capacity > 0 and entries over capacity");
            let victim = self.entries.remove(lru);
            self.stats.evictions += 1;
            for j in ChipletId::all(self.num_chiplets) {
                match victim.states[j.index()] {
                    EntryState::Dirty => push_unique(&mut releases, j),
                    EntryState::Stale | EntryState::Valid => push_unique(&mut acquires, j),
                    EntryState::NotPresent => {}
                }
            }
        }

        // Phase 2: apply whole-cache side effects of the generated
        // operations to *every* entry (an L2 flush/invalidate is not
        // range-scoped; paper §VI).
        for &j in &releases {
            for e in &mut self.entries {
                apply_event(
                    &mut self.audit,
                    e.id,
                    j.index(),
                    info.kernel,
                    &mut e.states[j.index()],
                    StateEvent::CacheFlushed,
                );
            }
        }
        for &j in &acquires {
            for e in &mut self.entries {
                // An acquire flushes dirty lines before dropping the cache,
                // so no data is lost.
                for ev in [StateEvent::CacheFlushed, StateEvent::CacheInvalidated] {
                    apply_event(
                        &mut self.audit,
                        e.id,
                        j.index(),
                        info.kernel,
                        &mut e.states[j.index()],
                        ev,
                    );
                }
            }
        }

        // Phase 3: apply the launch's own accesses — local events for the
        // scheduled chiplets, remote events for bystanders whose cached
        // ranges overlap what is being accessed.
        for s in structures {
            let idx = match self.find_entry(s) {
                Some(i) => i,
                None => {
                    let id = self.next_entry_id;
                    self.next_entry_id += 1;
                    let mut e = TableEntry::new(id, s, self.num_chiplets, info.kernel);
                    if let Some(homes) = self.homes_on_record(&e.span()) {
                        e.home_ranges = homes;
                    }
                    self.entries.push(e);
                    self.entries.len() - 1
                }
            };
            let audit = &mut self.audit;
            let entry = &mut self.entries[idx];
            entry.last_use = info.kernel;
            entry.mode = s.mode;
            // Grow the tracked span if a coarsened structure widened it.
            entry.base_line = entry.base_line.min(s.base_line);
            entry.end_line = entry.end_line.max(s.end_line);

            // Remote events first, evaluated against pre-launch ranges.
            for j in ChipletId::all(self.num_chiplets) {
                if s.range_for(j).is_some() {
                    continue; // local accessor, handled below
                }
                let Some(cached) = entry.cacheable(j) else {
                    continue;
                };
                let overlapping_writer_or_reader = s.ranges.iter().enumerate().any(|(k, r)| {
                    k != j.index() && r.as_ref().is_some_and(|r| ranges_overlap(r, &cached))
                });
                if overlapping_writer_or_reader {
                    let ev = if s.mode.writes() {
                        StateEvent::RemoteWrite
                    } else {
                        StateEvent::RemoteRead
                    };
                    apply_event(
                        audit,
                        entry.id,
                        j.index(),
                        info.kernel,
                        &mut entry.states[j.index()],
                        ev,
                    );
                }
            }

            // Local events: the scheduled chiplets will hold the structure
            // Valid (reads) or Dirty (writes) once the kernel runs.
            for j in ChipletId::all(self.num_chiplets) {
                let Some(new_range) = s.range_for(j).cloned() else {
                    continue;
                };
                debug_assert!(
                    entry.states[j.index()] != EntryState::Stale,
                    "stale chiplet must have been acquired before local access"
                );
                let ev = if s.mode.writes() {
                    StateEvent::LocalWrite
                } else {
                    StateEvent::LocalRead
                };
                apply_event(
                    audit,
                    entry.id,
                    j.index(),
                    info.kernel,
                    &mut entry.states[j.index()],
                    ev,
                );
                // First-touch home tracking: if this access may reach pages
                // no chiplet has claimed yet, chiplet j becomes their home
                // (conservatively widening j's home range — widening only
                // ever produces *extra* synchronization, never less).
                let home_claim = page_aligned(&new_range);
                let claimed = covered_by_homes(&entry.home_ranges, &home_claim);
                match (&entry.home_ranges[j.index()], claimed) {
                    (None, _) => entry.home_ranges[j.index()] = Some(home_claim),
                    (Some(old), false) => {
                        entry.home_ranges[j.index()] = Some(range_union(old, &home_claim));
                    }
                    _ => {}
                }
                entry.ranges[j.index()] = Some(match &entry.ranges[j.index()] {
                    Some(old) => range_union(old, &new_range),
                    None => new_range,
                });
            }

            // Persist the (possibly widened) homes beyond this row's
            // residency in the table.
            let (span, homes) = (entry.span(), entry.home_ranges.clone());
            self.record_homes(span, homes);
        }

        // Phase 4: drop rows whose chiplet vector is all Not-Present
        // (§III-C "Removing Entries") and clear ranges of Not-Present
        // chiplets on surviving rows.
        for e in &mut self.entries {
            for j in 0..self.num_chiplets {
                if e.states[j] == EntryState::NotPresent {
                    e.ranges[j] = None;
                }
            }
        }
        self.entries.retain(|e| !e.all_not_present());

        // Bookkeeping for the evaluation.
        self.stats.max_live_entries = self.stats.max_live_entries.max(self.entries.len());
        self.stats.acquires_issued += acquires.len() as u64;
        self.stats.releases_issued += releases.len() as u64;
        self.stats.acquires_elided += (self.num_chiplets - acquires.len()) as u64;
        self.stats.releases_elided += (self.num_chiplets - releases.len()) as u64;

        SyncActions { acquires, releases }
    }
}

/// A read-only copy of one table row, exposed for external analysis. The
/// `chiplet-check` model checker canonicalizes reachable CCT states through
/// this view and re-derives the elision rules against it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntrySnapshot {
    /// The structure's tracked line span.
    pub span: Range<u64>,
    /// Current access-mode label.
    pub mode: AccessMode,
    /// Per-chiplet Figure 6 state.
    pub states: Vec<EntryState>,
    /// Per-chiplet tracked (touched) line ranges.
    pub ranges: Vec<Option<Range<u64>>>,
    /// Per-chiplet first-touch home ranges.
    pub home_ranges: Vec<Option<Range<u64>>>,
}

impl EntrySnapshot {
    /// The lines chiplet `j` may actually hold in its L2 for this row —
    /// the same tracked ∩ home bound [`ChipletCoherenceTable::prepare_launch`]
    /// reasons with.
    pub fn cacheable(&self, j: ChipletId) -> Option<Range<u64>> {
        let tracked = self.ranges[j.index()].as_ref()?;
        let home = self.home_ranges[j.index()].as_ref()?;
        let r = tracked.start.max(home.start)..tracked.end.min(home.end);
        (r.start < r.end).then_some(r)
    }
}

impl ChipletCoherenceTable {
    /// Read-only snapshots of the live rows, sorted by span start (row
    /// order inside the table is an implementation detail).
    pub fn snapshot(&self) -> Vec<EntrySnapshot> {
        let mut rows: Vec<EntrySnapshot> = self
            .entries
            .iter()
            .map(|e| EntrySnapshot {
                span: e.span(),
                mode: e.mode,
                states: e.states.clone(),
                ranges: e.ranges.clone(),
                home_ranges: e.home_ranges.clone(),
            })
            .collect();
        rows.sort_by_key(|r| (r.span.start, r.span.end));
        rows
    }

    /// The persistent first-touch home log (span → per-chiplet homes),
    /// sorted by span start. Homes outlive row residency, so this is part
    /// of the table's behavioral state alongside [`snapshot`].
    ///
    /// [`snapshot`]: ChipletCoherenceTable::snapshot
    pub fn home_log_snapshot(&self) -> Vec<HomeRecord> {
        let mut log = self.home_log.clone();
        log.sort_by_key(|(r, _)| (r.start, r.end));
        log
    }
}

impl fmt::Display for ChipletCoherenceTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "ChipletCoherenceTable ({} chiplets, {}/{} entries)",
            self.num_chiplets,
            self.entries.len(),
            self.capacity
        )?;
        for e in &self.entries {
            write!(f, "  [{:#x}..{:#x}) {}:", e.base_line, e.end_line, e.mode)?;
            for (j, st) in e.states.iter().enumerate() {
                write!(f, " c{j}={st}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::KernelLaunchInfo;

    fn c(i: u8) -> ChipletId {
        ChipletId::new(i)
    }

    /// Kernel touching one structure, partitioned over both chiplets.
    fn partitioned(kernel: u64, mode: AccessMode) -> KernelLaunchInfo {
        KernelLaunchInfo::builder(kernel, ChipletId::all(2))
            .structure(0, 100, mode, [Some(0..50), Some(50..100)])
            .build()
    }

    #[test]
    fn first_launch_needs_no_sync() {
        let mut t = ChipletCoherenceTable::new(2);
        let a = t.prepare_launch(&partitioned(0, AccessMode::ReadWrite));
        assert!(a.is_empty());
        assert_eq!(t.live_entries(), 1);
        assert_eq!(t.state_of(10, c(0)), EntryState::Dirty);
        assert_eq!(t.state_of(60, c(1)), EntryState::Dirty);
    }

    #[test]
    fn same_partition_rewrite_elides_everything() {
        let mut t = ChipletCoherenceTable::new(2);
        t.prepare_launch(&partitioned(0, AccessMode::ReadWrite));
        let a = t.prepare_launch(&partitioned(1, AccessMode::ReadWrite));
        assert!(a.is_empty(), "stay-in-Dirty elision failed: {a:?}");
        assert_eq!(t.stats().releases_issued, 0);
        assert_eq!(t.stats().releases_elided, 4);
    }

    #[test]
    fn read_only_sharing_stays_valid_everywhere() {
        let mut t = ChipletCoherenceTable::new(2);
        // Both chiplets read the whole structure, twice.
        let shared = |k| {
            KernelLaunchInfo::builder(k, ChipletId::all(2))
                .structure(0, 100, AccessMode::ReadOnly, [Some(0..100), Some(0..100)])
                .build()
        };
        assert!(t.prepare_launch(&shared(0)).is_empty());
        assert!(t.prepare_launch(&shared(1)).is_empty());
        assert_eq!(t.state_of(0, c(0)), EntryState::Valid);
        assert_eq!(t.state_of(0, c(1)), EntryState::Valid);
    }

    #[test]
    fn producer_consumer_across_chiplets_releases_then_acquires() {
        let mut t = ChipletCoherenceTable::new(2);
        // Kernel 0: chiplet 0 writes lines 0..100.
        let k0 = KernelLaunchInfo::builder(0, [c(0)])
            .structure(0, 100, AccessMode::ReadWrite, [Some(0..100), None])
            .build();
        assert!(t.prepare_launch(&k0).is_empty());
        // Kernel 1: chiplet 1 reads the same lines -> release chiplet 0.
        let k1 = KernelLaunchInfo::builder(1, [c(1)])
            .structure(0, 100, AccessMode::ReadOnly, [None, Some(0..100)])
            .build();
        let a1 = t.prepare_launch(&k1);
        assert_eq!(a1.releases, vec![c(0)]);
        assert!(a1.acquires.is_empty());
        // Chiplet 0 retains a clean, still-valid copy after the flush.
        assert_eq!(t.state_of(0, c(0)), EntryState::Valid);
        assert_eq!(t.state_of(0, c(1)), EntryState::Valid);
    }

    #[test]
    fn remote_writer_makes_reader_stale_then_acquire_on_return() {
        let mut t = ChipletCoherenceTable::new(2);
        // Kernel 0: chiplet 0 reads lines 0..100 (Valid on 0).
        let k0 = KernelLaunchInfo::builder(0, [c(0)])
            .structure(0, 100, AccessMode::ReadOnly, [Some(0..100), None])
            .build();
        t.prepare_launch(&k0);
        // Kernel 1: chiplet 1 writes the same lines -> chiplet 0 Stale.
        let k1 = KernelLaunchInfo::builder(1, [c(1)])
            .structure(0, 100, AccessMode::ReadWrite, [None, Some(0..100)])
            .build();
        let a1 = t.prepare_launch(&k1);
        assert!(a1.is_empty(), "clean reader needs no flush: {a1:?}");
        assert_eq!(t.state_of(0, c(0)), EntryState::Stale);
        // Kernel 2: chiplet 0 reads again -> acquire chiplet 0, release 1.
        let k2 = KernelLaunchInfo::builder(2, [c(0)])
            .structure(0, 100, AccessMode::ReadOnly, [Some(0..100), None])
            .build();
        let a2 = t.prepare_launch(&k2);
        assert_eq!(a2.acquires, vec![c(0)]);
        assert_eq!(a2.releases, vec![c(1)]);
        assert_eq!(t.state_of(0, c(0)), EntryState::Valid);
    }

    #[test]
    fn disjoint_ranges_on_other_chiplets_elide_release() {
        let mut t = ChipletCoherenceTable::new(2);
        // Chiplet 0 dirties 0..50; chiplet 1 dirties 50..100.
        t.prepare_launch(&partitioned(0, AccessMode::ReadWrite));
        // New kernel: chiplet 1 reads only its own half -> no overlap with
        // chiplet 0's dirty range -> nothing to do.
        let k1 = KernelLaunchInfo::builder(1, [c(1)])
            .structure(0, 100, AccessMode::ReadOnly, [None, Some(50..100)])
            .build();
        let a = t.prepare_launch(&k1);
        assert!(a.is_empty(), "{a:?}");
        assert_eq!(t.state_of(0, c(0)), EntryState::Dirty, "0 stays dirty");
    }

    #[test]
    fn whole_cache_release_side_effect_cleans_other_structures() {
        let mut t = ChipletCoherenceTable::new(2);
        // Chiplet 0 dirties structure A (lines 0..100) and B (200..300).
        let k0 = KernelLaunchInfo::builder(0, [c(0)])
            .structure(0, 100, AccessMode::ReadWrite, [Some(0..100), None])
            .structure(200, 300, AccessMode::ReadWrite, [Some(200..300), None])
            .build();
        t.prepare_launch(&k0);
        // Chiplet 1 reads structure A -> release chiplet 0; the whole-L2
        // flush also writes B's dirty data back (B becomes Valid on 0).
        let k1 = KernelLaunchInfo::builder(1, [c(1)])
            .structure(0, 100, AccessMode::ReadOnly, [None, Some(0..100)])
            .build();
        let a = t.prepare_launch(&k1);
        assert_eq!(a.releases, vec![c(0)]);
        assert_eq!(t.state_of(250, c(0)), EntryState::Valid);
        // A later cross-chiplet read of B needs no further release.
        let k2 = KernelLaunchInfo::builder(2, [c(1)])
            .structure(200, 300, AccessMode::ReadOnly, [None, Some(200..300)])
            .build();
        assert!(t.prepare_launch(&k2).is_empty());
    }

    #[test]
    fn write_after_stale_acquires_and_re_stales_bystander() {
        let mut t = ChipletCoherenceTable::new(2);
        let k0 = KernelLaunchInfo::builder(0, [c(0)])
            .structure(0, 100, AccessMode::ReadOnly, [Some(0..100), None])
            .build();
        t.prepare_launch(&k0);
        assert_eq!(t.live_entries(), 1);
        // Chiplet 1 writes it (0 goes Stale); then chiplet 0 writes it back:
        // acquire chiplet 0, release chiplet 1, and chiplet 1's fresh clean
        // copy immediately goes Stale again because 0 is the new writer.
        let k1 = KernelLaunchInfo::builder(1, [c(1)])
            .structure(0, 100, AccessMode::ReadWrite, [None, Some(0..100)])
            .build();
        t.prepare_launch(&k1);
        let k2 = KernelLaunchInfo::builder(2, [c(0)])
            .structure(0, 100, AccessMode::ReadWrite, [Some(0..100), None])
            .build();
        let a2 = t.prepare_launch(&k2);
        assert_eq!(a2.acquires, vec![c(0)]);
        assert_eq!(a2.releases, vec![c(1)]);
        assert_eq!(t.state_of(0, c(0)), EntryState::Dirty);
        assert_eq!(t.state_of(0, c(1)), EntryState::Stale);
    }

    #[test]
    fn entry_removed_when_all_not_present() {
        let mut t = ChipletCoherenceTable::new(2);
        // Structure A: Valid on chiplet 0 only.
        let k0 = KernelLaunchInfo::builder(0, [c(0)])
            .structure(0, 100, AccessMode::ReadOnly, [Some(0..100), None])
            .build();
        t.prepare_launch(&k0);
        // Structure B: read by 0, then written by 1 -> B Stale on 0.
        let k1 = KernelLaunchInfo::builder(1, [c(0)])
            .structure(200, 300, AccessMode::ReadOnly, [Some(200..300), None])
            .build();
        t.prepare_launch(&k1);
        let k2 = KernelLaunchInfo::builder(2, [c(1)])
            .structure(200, 300, AccessMode::ReadWrite, [None, Some(200..300)])
            .build();
        t.prepare_launch(&k2);
        assert_eq!(t.live_entries(), 2);
        // Chiplet 0 re-reads B -> acquire on 0 invalidates its whole L2,
        // so structure A (Valid only on 0) becomes all-Not-Present and its
        // row is removed.
        let k3 = KernelLaunchInfo::builder(3, [c(0)])
            .structure(200, 300, AccessMode::ReadOnly, [Some(200..300), None])
            .build();
        let a3 = t.prepare_launch(&k3);
        assert_eq!(a3.acquires, vec![c(0)]);
        assert_eq!(t.live_entries(), 1, "structure A's row must be dropped");
        assert_eq!(t.state_of(0, c(0)), EntryState::NotPresent);
    }

    #[test]
    fn capacity_eviction_synchronizes_conservatively() {
        let mut t = ChipletCoherenceTable::with_capacity(2, 2);
        for k in 0..2u64 {
            let base = k * 1000;
            let info = KernelLaunchInfo::builder(k, [c(0)])
                .structure(
                    base,
                    base + 100,
                    AccessMode::ReadWrite,
                    [Some(base..base + 100), None],
                )
                .build();
            assert!(t.prepare_launch(&info).is_empty());
        }
        assert_eq!(t.live_entries(), 2);
        // A third structure forces the LRU entry out; its dirty chiplet must
        // be released.
        let info = KernelLaunchInfo::builder(2, [c(0)])
            .structure(5000, 5100, AccessMode::ReadWrite, [Some(5000..5100), None])
            .build();
        let a = t.prepare_launch(&info);
        assert_eq!(a.releases, vec![c(0)]);
        assert_eq!(t.stats().evictions, 1);
        assert!(t.live_entries() <= 2);
    }

    #[test]
    fn coarsening_kicks_in_above_eight_structures() {
        let mut t = ChipletCoherenceTable::new(2);
        let mut b = KernelLaunchInfo::builder(0, [c(0)]);
        for i in 0..10u64 {
            let base = i * 100; // contiguous structures
            b = b.structure(
                base,
                base + 100,
                AccessMode::ReadWrite,
                [Some(base..base + 100), None],
            );
        }
        let a = t.prepare_launch(&b.build());
        assert!(a.is_empty());
        assert_eq!(t.stats().coarsenings, 1);
        assert!(t.live_entries() <= 8);
        // All lines remain tracked despite the merge.
        assert_eq!(t.state_of(950, c(0)), EntryState::Dirty);
    }

    #[test]
    fn stats_track_max_entries() {
        let mut t = ChipletCoherenceTable::new(4);
        for i in 0..5u64 {
            let base = i * 1000;
            let info = KernelLaunchInfo::builder(i, [c(0)])
                .structure(
                    base,
                    base + 10,
                    AccessMode::ReadOnly,
                    [Some(base..base + 10), None, None, None],
                )
                .build();
            t.prepare_launch(&info);
        }
        assert_eq!(t.stats().max_live_entries, 5);
        assert_eq!(t.stats().launches, 5);
    }

    #[test]
    #[should_panic(expected = "different system")]
    fn mismatched_system_size_rejected() {
        let mut t = ChipletCoherenceTable::new(4);
        let info = partitioned(0, AccessMode::ReadOnly); // built for 2
        t.prepare_launch(&info);
    }

    #[test]
    fn audit_trail_records_legal_run_without_violations() {
        let mut t = ChipletCoherenceTable::new(2);
        t.enable_audit(true);
        // Producer on chiplet 0, consumer on chiplet 1, then the producer
        // returns: exercises local writes, releases, remote staleness and
        // an acquire — every class of Figure 6 edge.
        let k0 = KernelLaunchInfo::builder(0, [c(0)])
            .structure(0, 100, AccessMode::ReadWrite, [Some(0..100), None])
            .build();
        t.prepare_launch(&k0);
        let k1 = KernelLaunchInfo::builder(1, [c(1)])
            .structure(0, 100, AccessMode::ReadWrite, [None, Some(0..100)])
            .build();
        t.prepare_launch(&k1);
        let k2 = KernelLaunchInfo::builder(2, [c(0)])
            .structure(0, 100, AccessMode::ReadOnly, [Some(0..100), None])
            .build();
        t.prepare_launch(&k2);

        let a = t.auditor().expect("audit enabled");
        assert_eq!(a.violations(), 0);
        assert!(a.transitions() >= 5, "got {}", a.transitions());
        assert_eq!(a.log().len() as u64, a.transitions());
        assert!(a.residency()[0].total() > 0);
        assert!(a.summary_text().contains("0 violations"));
    }

    #[test]
    fn audit_random_legal_launch_sequences_never_trip_the_auditor() {
        use chiplet_harness::prop::{check, PropConfig};
        use chiplet_harness::prop_assert;
        use chiplet_harness::rng::Xoshiro256;

        /// A random but *well-formed* kernel launch sequence: arbitrary
        /// chiplet subsets, modes and subranges over a small structure
        /// pool. The table itself only ever applies legal Figure 6 events
        /// for such inputs, so the auditor must stay silent.
        fn gen_launches(rng: &mut Xoshiro256, size: usize) -> (usize, Vec<KernelLaunchInfo>) {
            let nc = 1 + rng.next_below(4) as usize;
            let launches = (1 + rng.next_below(size.max(1) as u64)) as usize;
            let infos = (0..launches as u64)
                .map(|k| {
                    let nstruct = 1 + rng.next_below(2);
                    let mut b = KernelLaunchInfo::builder(k, ChipletId::all(nc));
                    // Each data structure carries one label per kernel, so
                    // the bases within a launch must be distinct.
                    let mut bases: Vec<u64> = Vec::new();
                    for _ in 0..nstruct {
                        let base = loop {
                            let cand = rng.next_below(4) * 1000;
                            if !bases.contains(&cand) {
                                break cand;
                            }
                        };
                        bases.push(base);
                        let mode = if rng.next_bool() {
                            AccessMode::ReadWrite
                        } else {
                            AccessMode::ReadOnly
                        };
                        let mut ranges: Vec<Option<std::ops::Range<u64>>> = (0..nc)
                            .map(|_| {
                                rng.next_bool().then(|| {
                                    let start = base + rng.next_below(90);
                                    let len = 1 + rng.next_below(100 - (start - base));
                                    start..start + len
                                })
                            })
                            .collect();
                        if ranges.iter().all(Option::is_none) {
                            ranges[0] = Some(base..base + 100);
                        }
                        b = b.structure(base, base + 100, mode, ranges);
                    }
                    b.build()
                })
                .collect();
            (nc, infos)
        }

        check(
            "cct_audit_accepts_legal_sequences",
            &PropConfig::with_cases(64),
            gen_launches,
            |(nc, infos)| {
                let mut t = ChipletCoherenceTable::new(*nc);
                t.enable_audit(false);
                for info in infos {
                    t.prepare_launch(info);
                }
                let a = t.auditor().expect("audit enabled");
                prop_assert!(
                    a.violations() == 0,
                    "auditor tripped on a legal sequence: {}",
                    a.summary_text()
                );
                Ok(())
            },
        );
    }
}
