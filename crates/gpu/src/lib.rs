//! GPU execution-model substrate: kernels, work-groups, streams, software
//! queues, schedulers, and the generation of per-chiplet memory access
//! streams from declarative access patterns.
//!
//! The paper's CP (command processor) pipeline is: software enqueues kernel
//! *packets* onto stream-bound software queues; the packet processor maps
//! them to hardware compute queues; the queue scheduler picks a kernel; and
//! the WG scheduler partitions its work-groups across chiplets using static
//! kernel-wide partitioning (paper §II-B, §IV-C1). This crate models that
//! pipeline and, for each (kernel, chiplet) pair, produces the cache-line
//! access stream the chiplet's CUs would issue.

pub mod dispatch;
pub mod kernel;
pub mod occupancy;
pub mod stream;
pub mod table;
pub mod trace;

pub use dispatch::{DispatchPlan, StaticPartitionScheduler};
pub use kernel::{AccessPattern, ArrayAccess, KernelBuilder, KernelId, KernelSpec, TouchKind};
pub use occupancy::{occupancy_fraction, occupancy_wavefronts, CuResources, KernelResources};
pub use stream::{KernelPacket, SoftwareQueue, StreamId};
pub use table::ArrayTable;
pub use trace::{AccessEvent, TraceGenerator};
