//! GPU streams and software queues.
//!
//! The driver/runtime enqueues kernels as packets onto per-stream software
//! queues (paper §II-B). The CP maintains intra-stream, inter-kernel
//! ordering but may run different streams concurrently. Single-stream
//! applications therefore execute kernels strictly in order, while
//! multi-stream workloads (paper §VI) execute one kernel per stream
//! concurrently on disjoint chiplet subsets.

use crate::kernel::{KernelId, KernelSpec};
use chiplet_mem::addr::ChipletId;
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

/// Identifies a GPU stream (HIP/CUDA stream).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct StreamId(u32);

impl StreamId {
    /// Creates a stream id.
    pub const fn new(id: u32) -> Self {
        StreamId(id)
    }

    /// The raw id.
    pub const fn get(self) -> u32 {
        self.0
    }
}

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stream{}", self.0)
    }
}

/// A kernel dispatch packet as it travels from runtime to CP: the kernel
/// spec plus the stream it belongs to and the chiplets its stream is bound
/// to (via `hipSetDevice`; empty binding = all chiplets).
#[derive(Debug, Clone)]
pub struct KernelPacket {
    /// Dynamic launch id (assigned in enqueue order).
    pub id: KernelId,
    /// The kernel being launched.
    pub spec: Arc<KernelSpec>,
    /// Originating stream.
    pub stream: StreamId,
    /// Chiplet binding of the stream; `None` means all chiplets.
    pub binding: Option<Vec<ChipletId>>,
}

/// A multi-stream software queue feeding the CP's packet processor.
///
/// # Example
///
/// ```
/// use chiplet_gpu::stream::{SoftwareQueue, StreamId};
/// use chiplet_gpu::kernel::{KernelSpec, AccessPattern, TouchKind};
/// use chiplet_mem::array::ArrayId;
/// use std::sync::Arc;
///
/// let k = Arc::new(KernelSpec::builder("k")
///     .array(ArrayId::new(0), TouchKind::Load, AccessPattern::Partitioned)
///     .build());
/// let mut q = SoftwareQueue::new();
/// q.enqueue(StreamId::new(0), k.clone(), None);
/// q.enqueue(StreamId::new(1), k, None);
/// // One packet per stream forms a concurrent round.
/// assert_eq!(q.next_round().len(), 2);
/// assert!(q.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct SoftwareQueue {
    streams: Vec<(StreamId, VecDeque<KernelPacket>)>,
    next_id: u64,
}

impl SoftwareQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues a kernel on `stream`, optionally bound to specific chiplets.
    /// Returns the assigned dynamic kernel id.
    pub fn enqueue(
        &mut self,
        stream: StreamId,
        spec: Arc<KernelSpec>,
        binding: Option<Vec<ChipletId>>,
    ) -> KernelId {
        let id = KernelId::new(self.next_id);
        self.next_id += 1;
        let packet = KernelPacket {
            id,
            spec,
            stream,
            binding,
        };
        if let Some((_, q)) = self.streams.iter_mut().find(|(s, _)| *s == stream) {
            q.push_back(packet);
        } else {
            let mut q = VecDeque::new();
            q.push_back(packet);
            self.streams.push((stream, q));
        }
        id
    }

    /// Pops the next *round* of concurrently executable packets: the head
    /// packet of every non-empty stream (intra-stream order preserved,
    /// streams concurrent). Single-stream applications get rounds of one.
    pub fn next_round(&mut self) -> Vec<KernelPacket> {
        let round: Vec<KernelPacket> = self
            .streams
            .iter_mut()
            .filter_map(|(_, q)| q.pop_front())
            .collect();
        self.streams.retain(|(_, q)| !q.is_empty());
        round
    }

    /// Total queued packets across streams.
    pub fn len(&self) -> usize {
        self.streams.iter().map(|(_, q)| q.len()).sum()
    }

    /// True if no packets are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of distinct streams currently holding packets.
    pub fn active_streams(&self) -> usize {
        self.streams.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{AccessPattern, TouchKind};
    use chiplet_mem::array::ArrayId;

    fn spec(name: &str) -> Arc<KernelSpec> {
        Arc::new(
            KernelSpec::builder(name)
                .array(ArrayId::new(0), TouchKind::Load, AccessPattern::Partitioned)
                .build(),
        )
    }

    #[test]
    fn single_stream_preserves_order() {
        let mut q = SoftwareQueue::new();
        let a = q.enqueue(StreamId::new(0), spec("a"), None);
        let b = q.enqueue(StreamId::new(0), spec("b"), None);
        assert!(a < b);
        let r1 = q.next_round();
        assert_eq!(r1.len(), 1);
        assert_eq!(r1[0].spec.name(), "a");
        let r2 = q.next_round();
        assert_eq!(r2[0].spec.name(), "b");
        assert!(q.next_round().is_empty());
    }

    #[test]
    fn streams_run_concurrently() {
        let mut q = SoftwareQueue::new();
        q.enqueue(StreamId::new(0), spec("a0"), None);
        q.enqueue(StreamId::new(0), spec("a1"), None);
        q.enqueue(StreamId::new(1), spec("b0"), None);
        assert_eq!(q.active_streams(), 2);
        let r1 = q.next_round();
        assert_eq!(r1.len(), 2);
        let names: Vec<_> = r1.iter().map(|p| p.spec.name().to_owned()).collect();
        assert!(names.contains(&"a0".to_owned()) && names.contains(&"b0".to_owned()));
        let r2 = q.next_round();
        assert_eq!(r2.len(), 1);
        assert_eq!(r2[0].spec.name(), "a1");
    }

    #[test]
    fn binding_travels_with_packet() {
        let mut q = SoftwareQueue::new();
        q.enqueue(
            StreamId::new(0),
            spec("a"),
            Some(vec![ChipletId::new(0), ChipletId::new(1)]),
        );
        let r = q.next_round();
        assert_eq!(
            r[0].binding.as_deref(),
            Some(&[ChipletId::new(0), ChipletId::new(1)][..])
        );
    }

    #[test]
    fn ids_increase_across_streams() {
        let mut q = SoftwareQueue::new();
        let a = q.enqueue(StreamId::new(0), spec("a"), None);
        let b = q.enqueue(StreamId::new(5), spec("b"), None);
        assert!(b > a);
    }
}
