//! CU occupancy: how many wavefronts a compute unit can keep in flight,
//! given Table I's per-CU budgets (4 SIMD units × 10 wavefront slots,
//! 256 KB vector registers, 12.5 KB scalar registers, 64 KB LDS).
//!
//! Occupancy bounds memory-level parallelism: a kernel that exhausts
//! registers or LDS runs fewer concurrent wavefronts and hides less miss
//! latency. This is the §VI "Kernel Fusion" trade-off in mechanism form —
//! fused kernels raise per-wavefront register/LDS demand and lose
//! occupancy, which is why fusion "may not scale".

/// Per-CU hardware budgets (Table I defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CuResources {
    /// SIMD units per CU.
    pub simd_units: u32,
    /// Maximum wavefront slots per SIMD unit.
    pub max_wf_per_simd: u32,
    /// Vector register file bytes per CU.
    pub vgpr_bytes: u64,
    /// Scalar register file bytes per CU.
    pub sgpr_bytes: u64,
    /// LDS bytes per CU.
    pub lds_bytes: u64,
}

impl Default for CuResources {
    /// Table I: 4 SIMD/CU, 10 WF/SIMD, 256 KB vector + 12.5 KB scalar
    /// registers per CU, 64 KB LDS per CU.
    fn default() -> Self {
        CuResources {
            simd_units: 4,
            max_wf_per_simd: 10,
            vgpr_bytes: 256 * 1024,
            sgpr_bytes: 12_800,
            lds_bytes: 64 * 1024,
        }
    }
}

impl CuResources {
    /// Maximum wavefronts a CU can host irrespective of kernel demands.
    pub fn max_wavefronts(&self) -> u32 {
        self.simd_units * self.max_wf_per_simd
    }
}

/// One kernel's per-wavefront / per-workgroup resource demands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelResources {
    /// Vector register bytes per wavefront (64 lanes × 4 B × VGPRs).
    pub vgpr_bytes_per_wf: u64,
    /// Scalar register bytes per wavefront.
    pub sgpr_bytes_per_wf: u64,
    /// LDS bytes per workgroup.
    pub lds_bytes_per_wg: u64,
    /// Wavefronts per workgroup.
    pub wf_per_wg: u32,
}

impl Default for KernelResources {
    /// A light kernel: 32 VGPRs (8 KB/WF), 64 B scalars, no LDS, 4 WFs/WG —
    /// full occupancy on the Table I CU.
    fn default() -> Self {
        KernelResources {
            vgpr_bytes_per_wf: 8 * 1024,
            sgpr_bytes_per_wf: 64,
            lds_bytes_per_wg: 0,
            wf_per_wg: 4,
        }
    }
}

/// Wavefronts per CU the kernel can sustain: the minimum over the slot,
/// vector-register, scalar-register and LDS constraints (rounded down to a
/// whole number of workgroups, as hardware allocates WG-granularity).
///
/// # Example
///
/// ```
/// use chiplet_gpu::occupancy::{occupancy_wavefronts, CuResources, KernelResources};
///
/// let cu = CuResources::default();
/// assert_eq!(occupancy_wavefronts(&cu, &KernelResources::default()), 32);
/// // A register-hungry kernel (64 KB of VGPRs per wavefront) fits 4 WFs.
/// let fat = KernelResources { vgpr_bytes_per_wf: 64 * 1024, ..Default::default() };
/// assert_eq!(occupancy_wavefronts(&cu, &fat), 4);
/// ```
pub fn occupancy_wavefronts(cu: &CuResources, k: &KernelResources) -> u32 {
    let by_slots = cu.max_wavefronts();
    let by_vgpr = cu
        .vgpr_bytes
        .checked_div(k.vgpr_bytes_per_wf)
        .map_or(by_slots, |v| v as u32);
    let by_sgpr = cu
        .sgpr_bytes
        .checked_div(k.sgpr_bytes_per_wf)
        .map_or(by_slots, |v| v as u32);
    let by_lds_wgs = cu
        .lds_bytes
        .checked_div(k.lds_bytes_per_wg)
        .map_or(u32::MAX, |v| v as u32);
    let wf_cap = by_slots.min(by_vgpr).min(by_sgpr);
    // Hardware schedules whole workgroups.
    let wg_cap = (wf_cap / k.wf_per_wg.max(1)).min(by_lds_wgs);
    wg_cap * k.wf_per_wg.max(1)
}

/// Occupancy as a fraction of the CU's wavefront slots, in `(0, 1]`.
/// Zero-fitting kernels (demands exceeding the CU) clamp to one workgroup's
/// worth, as hardware still runs them one WG at a time.
pub fn occupancy_fraction(cu: &CuResources, k: &KernelResources) -> f64 {
    let wfs = occupancy_wavefronts(cu, k).max(k.wf_per_wg.max(1));
    f64::from(wfs.min(cu.max_wavefronts())) / f64::from(cu.max_wavefronts())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_kernel_reaches_full_occupancy() {
        let cu = CuResources::default();
        assert_eq!(cu.max_wavefronts(), 40);
        // 256KB / 8KB = 32 WFs (vgpr-bound below the 40-slot cap).
        assert_eq!(occupancy_wavefronts(&cu, &KernelResources::default()), 32);
        assert!(occupancy_fraction(&cu, &KernelResources::default()) >= 0.8);
    }

    #[test]
    fn lds_bounds_workgroups() {
        let cu = CuResources::default();
        // 32 KB LDS per WG: only 2 WGs fit -> 8 wavefronts.
        let k = KernelResources {
            lds_bytes_per_wg: 32 * 1024,
            ..Default::default()
        };
        assert_eq!(occupancy_wavefronts(&cu, &k), 8);
    }

    #[test]
    fn scalar_registers_can_bound_too() {
        let cu = CuResources::default();
        let k = KernelResources {
            sgpr_bytes_per_wf: 3200, // 12.5 KB / 3.2 KB = 4 WFs
            ..Default::default()
        };
        assert_eq!(occupancy_wavefronts(&cu, &k), 4);
    }

    #[test]
    fn zero_demands_hit_the_slot_cap() {
        let cu = CuResources::default();
        let k = KernelResources {
            vgpr_bytes_per_wf: 0,
            sgpr_bytes_per_wf: 0,
            lds_bytes_per_wg: 0,
            wf_per_wg: 4,
        };
        assert_eq!(occupancy_wavefronts(&cu, &k), 40);
        assert!((occupancy_fraction(&cu, &k) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn oversized_kernel_clamps_to_one_workgroup() {
        let cu = CuResources::default();
        let k = KernelResources {
            vgpr_bytes_per_wf: 512 * 1024, // exceeds the whole file
            ..Default::default()
        };
        assert_eq!(occupancy_wavefronts(&cu, &k), 0);
        assert!(occupancy_fraction(&cu, &k) > 0.0, "still runs, serially");
    }

    #[test]
    fn fusion_tradeoff_is_visible() {
        // Fusing three stages triples register and LDS demand: occupancy
        // drops, which is the paper's SVI caveat.
        let cu = CuResources::default();
        let unfused = KernelResources::default();
        let fused = KernelResources {
            vgpr_bytes_per_wf: 3 * unfused.vgpr_bytes_per_wf,
            lds_bytes_per_wg: 24 * 1024,
            ..unfused
        };
        assert!(occupancy_fraction(&cu, &fused) < occupancy_fraction(&cu, &unfused) / 2.0);
    }
}
