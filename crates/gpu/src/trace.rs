//! Per-chiplet memory access trace generation.
//!
//! Given a kernel spec, its dispatch plan, and the application's array
//! table, this module produces the sequence of cache-line accesses one
//! chiplet's CUs issue: the input the memory-subsystem simulation consumes.
//! Streams are deterministic — irregular patterns derive their PRNG seed
//! from (generator seed, kernel id, chiplet, array), so every protocol
//! configuration replays the identical trace.

use crate::dispatch::DispatchPlan;
use crate::kernel::{AccessPattern, KernelId, KernelSpec, TouchKind};
use crate::table::ArrayTable;
use chiplet_harness::rng::{mix64, Xoshiro256};
use chiplet_mem::addr::{ChipletId, LineAddr};
use chiplet_mem::array::{ArrayDecl, ArrayId};
use std::ops::Range;

/// One cache-line access issued by a chiplet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessEvent {
    /// The array the access belongs to.
    pub array: ArrayId,
    /// The line touched.
    pub line: LineAddr,
    /// True for a store, false for a load.
    pub write: bool,
}

/// Splits `total` (a half-open line-index range) into `width` contiguous
/// slices and returns slice `slot`. Earlier slots absorb the remainder.
pub fn partition_lines(total: Range<u64>, slot: usize, width: usize) -> Range<u64> {
    assert!(slot < width, "slot {slot} out of range for width {width}");
    let len = total.end - total.start;
    let (w, s) = (width as u64, slot as u64);
    let base = len / w;
    let extra = len % w;
    let start = total.start + s * base + s.min(extra);
    let size = base + u64::from(s < extra);
    start..start + size
}

/// The conservative contiguous line range a chiplet in `slot` of `width`
/// may touch under `pattern` — the address-range *hint* the software layer
/// passes to the CP via `hipSetAccessModeRange` (paper Listing 2).
///
/// Irregular patterns return the whole array (software cannot statically
/// narrow them, so the label must conservatively cover every possible
/// access; paper §III-C "Indirect & Irregular Accesses") — except
/// owner-local gathers (`locality == 1.0`), whose accesses provably stay
/// inside the chiplet's own partition, so the compiler can emit the
/// partition range.
pub fn hint_lines(
    pattern: &AccessPattern,
    decl: &ArrayDecl,
    slot: usize,
    width: usize,
) -> Range<u64> {
    let all = decl.line_range();
    match *pattern {
        AccessPattern::Partitioned => partition_lines(all, slot, width),
        AccessPattern::PartitionedHalo { halo_lines } => {
            let p = partition_lines(all.clone(), slot, width);
            p.start.saturating_sub(halo_lines).max(all.start)..(p.end + halo_lines).min(all.end)
        }
        AccessPattern::Irregular { locality, .. } if locality >= 1.0 => {
            partition_lines(all, slot, width)
        }
        AccessPattern::Shared | AccessPattern::Irregular { .. } => all,
        AccessPattern::Slice { start, end } => {
            let len = all.end - all.start;
            let sub = all.start + (len as f64 * start) as u64
                ..all.start + (len as f64 * end).ceil() as u64;
            partition_lines(sub, slot, width)
        }
    }
}

/// The statically derivable line footprint of one array access for one
/// chiplet slot: the contiguous range the chiplet *may* touch, and whether
/// the trace generator provably touches *exactly* that range.
///
/// Partitioned, halo, slice, and shared patterns are deterministic — the
/// generated trace covers [`hint_lines`] line-for-line, so `exact` is
/// true and the range doubles as the must-footprint. Irregular patterns
/// sample a random subset of the hint range, so `exact` is false and the
/// must-footprint is empty: static analysis may assume nothing beyond
/// "every access lands inside `may`".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineFootprint {
    /// Half-open global line-index range covering every possible access.
    pub may: Range<u64>,
    /// True when the trace touches exactly `may` (must = may).
    pub exact: bool,
}

impl LineFootprint {
    /// The must-footprint: `may` when exact, empty otherwise.
    pub fn must(&self) -> Range<u64> {
        if self.exact {
            self.may.clone()
        } else {
            self.may.start..self.may.start
        }
    }
}

/// The static footprint of `pattern` for slice `slot` of `width` — the
/// abstract-interpretation counterpart of [`TraceGenerator::lines_for`].
/// Soundness (every generated access lands inside `may`) and exactness
/// (non-irregular patterns cover `may` line-for-line) are pinned by the
/// `footprint_*` tests below.
pub fn line_footprint(
    pattern: &AccessPattern,
    decl: &ArrayDecl,
    slot: usize,
    width: usize,
) -> LineFootprint {
    LineFootprint {
        may: hint_lines(pattern, decl, slot, width),
        exact: !matches!(pattern, AccessPattern::Irregular { .. }),
    }
}

/// One chiplet's static footprint on one array, as scheduled by a
/// dispatch plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FootprintEntry {
    /// The chiplet executing this slice of the kernel.
    pub chiplet: ChipletId,
    /// The array touched.
    pub array: ArrayId,
    /// Load / store / load-store.
    pub touch: TouchKind,
    /// The may/must line range.
    pub footprint: LineFootprint,
}

impl KernelSpec {
    /// Static per-chiplet footprints for every array this kernel touches
    /// under `plan` — one entry per (chiplet, array), in plan order. This
    /// is the introspection surface the static elision oracle consumes:
    /// it mirrors exactly how [`TraceGenerator::chiplet_trace`] maps plan
    /// slots to line ranges.
    pub fn line_footprints(&self, arrays: &ArrayTable, plan: &DispatchPlan) -> Vec<FootprintEntry> {
        let width = plan.width();
        let mut out = Vec::with_capacity(width * self.arrays().len());
        for (slot, chiplet) in plan.chiplets().enumerate() {
            for acc in self.arrays() {
                let decl = arrays.get(acc.array);
                out.push(FootprintEntry {
                    chiplet,
                    array: acc.array,
                    touch: acc.touch,
                    footprint: line_footprint(&acc.pattern, decl, slot, width),
                });
            }
        }
        out
    }
}

/// Deterministic trace generator.
#[derive(Debug, Clone, Copy)]
pub struct TraceGenerator {
    seed: u64,
}

impl TraceGenerator {
    /// Creates a generator; all irregular-pattern randomness derives from
    /// `seed`.
    pub fn new(seed: u64) -> Self {
        TraceGenerator { seed }
    }

    fn rng_for(&self, kernel: KernelId, chiplet: ChipletId, array: ArrayId) -> Xoshiro256 {
        // SplitMix64 avalanche over the identifying tuple.
        let z = self
            .seed
            .wrapping_add(kernel.get().wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add((chiplet.index() as u64) << 32)
            .wrapping_add(u64::from(array.get()).wrapping_mul(0xBF58_476D_1CE4_E5B9));
        Xoshiro256::seed_from_u64(mix64(z))
    }

    /// The lines one chiplet touches in one array (single sweep, in issue
    /// order).
    pub fn lines_for(
        &self,
        pattern: &AccessPattern,
        decl: &ArrayDecl,
        kernel: KernelId,
        chiplet: ChipletId,
        slot: usize,
        width: usize,
    ) -> Vec<LineAddr> {
        let all = decl.line_range();
        match *pattern {
            AccessPattern::Partitioned
            | AccessPattern::Shared
            | AccessPattern::PartitionedHalo { .. }
            | AccessPattern::Slice { .. } => hint_lines(pattern, decl, slot, width)
                .map(LineAddr::new)
                .collect(),
            AccessPattern::Irregular { fraction, locality } => {
                let total = all.end - all.start;
                let own = partition_lines(all.clone(), slot, width);
                // Strong scaling: `fraction` of the array is visited by the
                // *kernel as a whole*; each chiplet performs its 1/width
                // share of those visits (paper SIV-E).
                let count = ((total as f64) * fraction / width as f64).round() as u64;
                let mut rng = self.rng_for(kernel, chiplet, decl.id());
                (0..count)
                    .map(|_| {
                        let r = rng.next_f64();
                        if r < locality && own.end > own.start {
                            LineAddr::new(rng.gen_range(own.clone()))
                        } else {
                            LineAddr::new(rng.gen_range(all.clone()))
                        }
                    })
                    .collect()
            }
        }
    }

    /// The full interleaved access trace a chiplet issues for `kernel`.
    ///
    /// Arrays are interleaved line-by-line (mirroring `a[i], b[i], c[i]`
    /// loop bodies); each array's line list is repeated `sweeps` times;
    /// `LoadStore` touches emit a load then a store per line.
    ///
    /// Returns an empty trace if the chiplet is not in the plan.
    pub fn chiplet_trace(
        &self,
        kernel: &KernelSpec,
        id: KernelId,
        arrays: &ArrayTable,
        plan: &DispatchPlan,
        chiplet: ChipletId,
    ) -> Vec<AccessEvent> {
        let Some(slot) = plan.slot_of(chiplet) else {
            return Vec::new();
        };
        let width = plan.width();

        struct PerArray {
            array: ArrayId,
            touch: TouchKind,
            lines: Vec<LineAddr>,
            sweeps: u32,
        }

        let lists: Vec<PerArray> = kernel
            .arrays()
            .iter()
            .map(|acc| {
                let decl = arrays.get(acc.array);
                PerArray {
                    array: acc.array,
                    touch: acc.touch,
                    lines: self.lines_for(&acc.pattern, decl, id, chiplet, slot, width),
                    sweeps: acc.sweeps,
                }
            })
            .collect();

        let total: usize = lists
            .iter()
            .map(|l| l.lines.len() * l.sweeps as usize)
            .sum();
        let mut events = Vec::with_capacity(total * 2);
        let max_len = lists
            .iter()
            .map(|l| l.lines.len() * l.sweeps as usize)
            .max()
            .unwrap_or(0);

        for i in 0..max_len {
            for l in &lists {
                let n = l.lines.len();
                if n == 0 || i >= n * l.sweeps as usize {
                    continue;
                }
                let line = l.lines[i % n];
                match l.touch {
                    TouchKind::Load => events.push(AccessEvent {
                        array: l.array,
                        line,
                        write: false,
                    }),
                    TouchKind::Store => events.push(AccessEvent {
                        array: l.array,
                        line,
                        write: true,
                    }),
                    TouchKind::LoadStore => {
                        events.push(AccessEvent {
                            array: l.array,
                            line,
                            write: false,
                        });
                        events.push(AccessEvent {
                            array: l.array,
                            line,
                            write: true,
                        });
                    }
                }
            }
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::StaticPartitionScheduler;
    use crate::kernel::KernelSpec;

    fn setup(bytes: u64) -> (ArrayTable, ArrayId) {
        let mut t = ArrayTable::new();
        let id = t.alloc("a", bytes);
        (t, id)
    }

    #[test]
    fn partition_covers_exactly_once() {
        let total = 0..100u64;
        let mut covered = Vec::new();
        for slot in 0..3 {
            covered.extend(partition_lines(total.clone(), slot, 3));
        }
        covered.sort_unstable();
        assert_eq!(covered, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn partition_handles_remainders() {
        assert_eq!(partition_lines(0..10, 0, 4), 0..3);
        assert_eq!(partition_lines(0..10, 1, 4), 3..6);
        assert_eq!(partition_lines(0..10, 2, 4), 6..8);
        assert_eq!(partition_lines(0..10, 3, 4), 8..10);
    }

    #[test]
    fn halo_extends_but_clamps() {
        let (t, id) = setup(64 * 100);
        let d = t.get(id);
        let h = AccessPattern::PartitionedHalo { halo_lines: 5 };
        let first = hint_lines(&h, d, 0, 4);
        let mid = hint_lines(&h, d, 1, 4);
        let all = d.line_range();
        assert_eq!(first.start, all.start, "no halo before array start");
        assert_eq!(first.end - first.start, 30);
        assert_eq!(mid.end - mid.start, 35);
    }

    #[test]
    fn shared_and_irregular_hint_whole_array() {
        let (t, id) = setup(64 * 100);
        let d = t.get(id);
        assert_eq!(hint_lines(&AccessPattern::Shared, d, 2, 4), d.line_range());
        assert_eq!(
            hint_lines(
                &AccessPattern::Irregular {
                    fraction: 0.1,
                    locality: 0.9
                },
                d,
                0,
                4
            ),
            d.line_range()
        );
    }

    #[test]
    fn slice_narrows_before_partitioning() {
        let (t, id) = setup(64 * 100);
        let d = t.get(id);
        let s = AccessPattern::Slice {
            start: 0.5,
            end: 1.0,
        };
        let r0 = hint_lines(&s, d, 0, 2);
        let r1 = hint_lines(&s, d, 1, 2);
        let base = d.line_range().start;
        assert_eq!(r0, base + 50..base + 75);
        assert_eq!(r1, base + 75..base + 100);
    }

    #[test]
    fn irregular_is_deterministic_and_sized() {
        let (t, id) = setup(64 * 1000);
        let d = t.get(id);
        let g = TraceGenerator::new(42);
        let p = AccessPattern::Irregular {
            fraction: 0.25,
            locality: 1.0,
        };
        let l1 = g.lines_for(&p, d, KernelId::new(3), ChipletId::new(1), 1, 4);
        let l2 = g.lines_for(&p, d, KernelId::new(3), ChipletId::new(1), 1, 4);
        assert_eq!(l1, l2, "same seed tuple must replay");
        // 1000 lines x 0.25 kernel-wide, split over 4 chiplets.
        assert_eq!(l1.len(), 63);
        let own = partition_lines(d.line_range(), 1, 4);
        assert!(
            l1.iter().all(|l| own.contains(&l.get())),
            "locality=1 stays local"
        );
    }

    #[test]
    fn irregular_locality_zero_spreads() {
        let (t, id) = setup(64 * 4000);
        let d = t.get(id);
        let g = TraceGenerator::new(7);
        let p = AccessPattern::Irregular {
            fraction: 1.0,
            locality: 0.0,
        };
        let lines = g.lines_for(&p, d, KernelId::new(0), ChipletId::new(0), 0, 4);
        let own = partition_lines(d.line_range(), 0, 4);
        let local = lines.iter().filter(|l| own.contains(&l.get())).count();
        let frac = local as f64 / lines.len() as f64;
        assert!(
            (frac - 0.25).abs() < 0.05,
            "expected ~1/4 local, got {frac}"
        );
    }

    #[test]
    fn trace_interleaves_arrays_and_respects_touch() {
        let mut t = ArrayTable::new();
        let a = t.alloc("a", 64 * 8);
        let b = t.alloc("b", 64 * 8);
        let k = KernelSpec::builder("k")
            .wg_count(8)
            .array(a, TouchKind::Load, AccessPattern::Partitioned)
            .array(b, TouchKind::Store, AccessPattern::Partitioned)
            .build();
        let plan = StaticPartitionScheduler::new().plan(&k, &ChipletId::all(2).collect::<Vec<_>>());
        let g = TraceGenerator::new(0);
        let trace = g.chiplet_trace(&k, KernelId::new(0), &t, &plan, ChipletId::new(0));
        // 4 lines per array per chiplet, interleaved a,b,a,b...
        assert_eq!(trace.len(), 8);
        assert_eq!(trace[0].array, a);
        assert!(!trace[0].write);
        assert_eq!(trace[1].array, b);
        assert!(trace[1].write);
    }

    #[test]
    fn loadstore_emits_read_then_write() {
        let mut t = ArrayTable::new();
        let a = t.alloc("a", 64 * 4);
        let k = KernelSpec::builder("k")
            .wg_count(4)
            .array(a, TouchKind::LoadStore, AccessPattern::Partitioned)
            .build();
        let plan = StaticPartitionScheduler::new().plan(&k, &[ChipletId::new(0)]);
        let g = TraceGenerator::new(0);
        let trace = g.chiplet_trace(&k, KernelId::new(0), &t, &plan, ChipletId::new(0));
        assert_eq!(trace.len(), 8);
        assert!(!trace[0].write && trace[1].write);
        assert_eq!(trace[0].line, trace[1].line);
    }

    #[test]
    fn sweeps_repeat_lines() {
        let mut t = ArrayTable::new();
        let a = t.alloc("a", 64 * 4);
        let k = KernelSpec::builder("k")
            .wg_count(4)
            .array_swept(a, TouchKind::Load, AccessPattern::Partitioned, 3)
            .build();
        let plan = StaticPartitionScheduler::new().plan(&k, &[ChipletId::new(0)]);
        let g = TraceGenerator::new(0);
        let trace = g.chiplet_trace(&k, KernelId::new(0), &t, &plan, ChipletId::new(0));
        assert_eq!(trace.len(), 12);
    }

    #[test]
    fn unscheduled_chiplet_gets_empty_trace() {
        let mut t = ArrayTable::new();
        let a = t.alloc("a", 64 * 4);
        let k = KernelSpec::builder("k")
            .wg_count(4)
            .array(a, TouchKind::Load, AccessPattern::Partitioned)
            .build();
        let plan = StaticPartitionScheduler::new().plan(&k, &[ChipletId::new(0)]);
        let g = TraceGenerator::new(0);
        assert!(g
            .chiplet_trace(&k, KernelId::new(0), &t, &plan, ChipletId::new(3))
            .is_empty());
    }

    /// Every pattern's generated trace stays inside the static `may`
    /// footprint, and exact patterns cover it line-for-line — the
    /// contract the elision oracle's abstract domain rests on.
    #[test]
    fn footprint_bounds_and_exactness_match_the_generator() {
        let (t, a) = setup(64 * 200);
        let decl = t.get(a);
        let patterns = [
            AccessPattern::Partitioned,
            AccessPattern::PartitionedHalo { halo_lines: 3 },
            AccessPattern::Shared,
            AccessPattern::Slice {
                start: 0.25,
                end: 0.75,
            },
            AccessPattern::Irregular {
                fraction: 0.5,
                locality: 0.0,
            },
            AccessPattern::Irregular {
                fraction: 0.5,
                locality: 1.0,
            },
        ];
        let g = TraceGenerator::new(7);
        for pattern in &patterns {
            for width in [1usize, 3, 4] {
                for slot in 0..width {
                    let fp = line_footprint(pattern, decl, slot, width);
                    let lines = g.lines_for(
                        pattern,
                        decl,
                        KernelId::new(1),
                        ChipletId::new(slot as u8),
                        slot,
                        width,
                    );
                    for l in &lines {
                        assert!(
                            fp.may.contains(&l.get()),
                            "{pattern:?} slot {slot}/{width}: line {} outside may {:?}",
                            l.get(),
                            fp.may
                        );
                    }
                    if fp.exact {
                        let mut got: Vec<u64> = lines.iter().map(|l| l.get()).collect();
                        got.sort_unstable();
                        got.dedup();
                        let want: Vec<u64> = fp.may.clone().collect();
                        assert_eq!(got, want, "{pattern:?} slot {slot}/{width} must be exact");
                        assert_eq!(fp.must(), fp.may);
                    } else {
                        assert!(fp.must().is_empty(), "irregular must-footprint is empty");
                    }
                }
            }
        }
    }

    #[test]
    fn kernel_footprints_enumerate_plan_by_chiplet_and_array() {
        let mut t = ArrayTable::new();
        let a = t.alloc("a", 64 * 120);
        let b = t.alloc("b", 64 * 120);
        let k = KernelSpec::builder("k")
            .wg_count(8)
            .array(a, TouchKind::Load, AccessPattern::Partitioned)
            .array(b, TouchKind::Store, AccessPattern::Shared)
            .build();
        let chiplets: Vec<ChipletId> = (0..3).map(ChipletId::new).collect();
        let plan = StaticPartitionScheduler::new().plan(&k, &chiplets);
        let fps = k.line_footprints(&t, &plan);
        assert_eq!(fps.len(), 3 * 2);
        // Partitioned slices tile the array; the shared store spans it on
        // every chiplet.
        let decl_a = t.get(a);
        let mut covered = Vec::new();
        for e in fps.iter().filter(|e| e.array == a) {
            assert_eq!(e.touch, TouchKind::Load);
            covered.extend(e.footprint.may.clone());
        }
        covered.sort_unstable();
        assert_eq!(covered, decl_a.line_range().collect::<Vec<_>>());
        for e in fps.iter().filter(|e| e.array == b) {
            assert_eq!(e.footprint.may, t.get(b).line_range());
            assert!(e.footprint.exact);
        }
    }

    #[test]
    fn builder_span_points_at_the_definition_site() {
        let (t, a) = setup(64 * 4);
        let _ = t;
        let k = KernelSpec::builder("spanned")
            .array(a, TouchKind::Load, AccessPattern::Partitioned)
            .build();
        assert!(
            k.span().file.ends_with("trace.rs"),
            "span file {} should be the caller",
            k.span().file
        );
        assert!(k.span().line > 0);
        let moved = KernelSpec::builder("spanned")
            .array(a, TouchKind::Load, AccessPattern::Partitioned)
            .build();
        assert_eq!(k, moved, "spans are provenance, not identity");
        assert_ne!(k.span().line, moved.span().line);
    }
}
