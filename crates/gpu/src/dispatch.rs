//! Work-group dispatch: static kernel-wide partitioning across chiplets and
//! round-robin WG placement onto CUs within a chiplet.
//!
//! The paper's configurations use *static, kernel-wide WG partitioning*
//! (§IV-C1): a kernel's WGs are divided into contiguous groups, one group
//! per chiplet, and each chiplet's local CP round-robins its group across
//! local CUs. A kernel may be bound to a subset of chiplets (multi-stream
//! workloads bind stream *i* to chiplet(s) *j* via `hipSetDevice`).

use crate::kernel::KernelSpec;
use chiplet_mem::addr::ChipletId;

/// The placement of one kernel's WGs: which chiplets participate and how
/// many WGs each receives. A chiplet's *slot* (its position in the plan)
/// determines which array slice its WGs cover under partitioned patterns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DispatchPlan {
    assignments: Vec<(ChipletId, u32)>,
}

impl DispatchPlan {
    /// Creates a plan from explicit per-chiplet WG counts.
    ///
    /// # Panics
    ///
    /// Panics if empty or if any chiplet appears twice.
    pub fn new(assignments: Vec<(ChipletId, u32)>) -> Self {
        assert!(!assignments.is_empty(), "plan must cover >= 1 chiplet");
        for (i, (c, _)) in assignments.iter().enumerate() {
            assert!(
                !assignments[..i].iter().any(|(d, _)| d == c),
                "chiplet {c} assigned twice"
            );
        }
        DispatchPlan { assignments }
    }

    /// Chiplets participating, in slot order.
    pub fn chiplets(&self) -> impl Iterator<Item = ChipletId> + '_ {
        self.assignments.iter().map(|&(c, _)| c)
    }

    /// Number of participating chiplets.
    pub fn width(&self) -> usize {
        self.assignments.len()
    }

    /// The slot (partition index) of `chiplet`, if it participates.
    pub fn slot_of(&self, chiplet: ChipletId) -> Option<usize> {
        self.assignments.iter().position(|&(c, _)| c == chiplet)
    }

    /// WGs assigned to `chiplet` (0 if not participating).
    pub fn wgs_for(&self, chiplet: ChipletId) -> u32 {
        self.assignments
            .iter()
            .find(|&&(c, _)| c == chiplet)
            .map(|&(_, w)| w)
            .unwrap_or(0)
    }

    /// Total WGs across all chiplets.
    pub fn total_wgs(&self) -> u32 {
        self.assignments.iter().map(|&(_, w)| w).sum()
    }
}

/// The static kernel-wide WG partitioning scheduler (paper §IV-C1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StaticPartitionScheduler;

impl StaticPartitionScheduler {
    /// Creates the scheduler.
    pub fn new() -> Self {
        StaticPartitionScheduler
    }

    /// Partitions `kernel`'s WGs as evenly as possible over `chiplets`,
    /// earlier chiplets receiving the remainder. Chiplets that would get
    /// zero WGs (more chiplets than WGs) are dropped from the plan.
    ///
    /// # Example
    ///
    /// ```
    /// use chiplet_gpu::dispatch::StaticPartitionScheduler;
    /// use chiplet_gpu::kernel::{KernelSpec, AccessPattern, TouchKind};
    /// use chiplet_mem::addr::ChipletId;
    /// use chiplet_mem::array::ArrayId;
    ///
    /// let k = KernelSpec::builder("k")
    ///     .wg_count(10)
    ///     .array(ArrayId::new(0), TouchKind::Load, AccessPattern::Partitioned)
    ///     .build();
    /// let chiplets: Vec<_> = ChipletId::all(4).collect();
    /// let plan = StaticPartitionScheduler::new().plan(&k, &chiplets);
    /// assert_eq!(plan.total_wgs(), 10);
    /// assert_eq!(plan.wgs_for(ChipletId::new(0)), 3); // 3,3,2,2
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `chiplets` is empty.
    pub fn plan(&self, kernel: &KernelSpec, chiplets: &[ChipletId]) -> DispatchPlan {
        assert!(!chiplets.is_empty(), "must schedule on >= 1 chiplet");
        let n = chiplets.len() as u32;
        let wgs = kernel.wg_count();
        let base = wgs / n;
        let extra = wgs % n;
        let assignments: Vec<(ChipletId, u32)> = chiplets
            .iter()
            .enumerate()
            .map(|(i, &c)| (c, base + u32::from((i as u32) < extra)))
            .filter(|&(_, w)| w > 0)
            .collect();
        DispatchPlan::new(assignments)
    }
}

/// Round-robin placement of a chiplet's `wg` index onto one of `cus` CUs —
/// the local CP's local dispatcher behaviour (paper §II-B).
pub fn wg_to_cu(wg: u32, cus: u32) -> u32 {
    assert!(cus > 0, "chiplet must have CUs");
    wg % cus
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{AccessPattern, TouchKind};
    use chiplet_mem::array::ArrayId;

    fn kernel(wgs: u32) -> KernelSpec {
        KernelSpec::builder("k")
            .wg_count(wgs)
            .array(ArrayId::new(0), TouchKind::Load, AccessPattern::Partitioned)
            .build()
    }

    fn chiplets(n: usize) -> Vec<ChipletId> {
        ChipletId::all(n).collect()
    }

    #[test]
    fn even_partition() {
        let plan = StaticPartitionScheduler::new().plan(&kernel(8), &chiplets(4));
        for c in ChipletId::all(4) {
            assert_eq!(plan.wgs_for(c), 2);
        }
        assert_eq!(plan.total_wgs(), 8);
    }

    #[test]
    fn remainder_goes_to_early_chiplets() {
        let plan = StaticPartitionScheduler::new().plan(&kernel(10), &chiplets(4));
        assert_eq!(plan.wgs_for(ChipletId::new(0)), 3);
        assert_eq!(plan.wgs_for(ChipletId::new(1)), 3);
        assert_eq!(plan.wgs_for(ChipletId::new(2)), 2);
        assert_eq!(plan.wgs_for(ChipletId::new(3)), 2);
    }

    #[test]
    fn tiny_kernels_drop_idle_chiplets() {
        let plan = StaticPartitionScheduler::new().plan(&kernel(2), &chiplets(4));
        assert_eq!(plan.width(), 2);
        assert_eq!(plan.total_wgs(), 2);
        assert_eq!(plan.wgs_for(ChipletId::new(3)), 0);
    }

    #[test]
    fn slots_follow_plan_order() {
        let plan = DispatchPlan::new(vec![(ChipletId::new(2), 5), (ChipletId::new(0), 5)]);
        assert_eq!(plan.slot_of(ChipletId::new(2)), Some(0));
        assert_eq!(plan.slot_of(ChipletId::new(0)), Some(1));
        assert_eq!(plan.slot_of(ChipletId::new(1)), None);
    }

    #[test]
    #[should_panic(expected = "assigned twice")]
    fn duplicate_chiplet_rejected() {
        let _ = DispatchPlan::new(vec![(ChipletId::new(0), 1), (ChipletId::new(0), 2)]);
    }

    #[test]
    fn wg_round_robin() {
        assert_eq!(wg_to_cu(0, 60), 0);
        assert_eq!(wg_to_cu(59, 60), 59);
        assert_eq!(wg_to_cu(60, 60), 0);
    }
}
