//! Kernel specifications: what a GPU kernel computes and how it touches its
//! data structures.
//!
//! A [`KernelSpec`] is declarative: it lists the arrays the kernel accesses,
//! each with an [`AccessMode`] label (the information the paper's
//! `hipSetAccessMode` API conveys to the CP), an [`AccessPattern`] describing
//! *which part* of the array each chiplet's work-groups touch (the
//! `hipSetAccessModeRange` information), and enough intensity parameters
//! (compute per line, LDS traffic, intra-kernel sweeps) for the timing model.

use chiplet_mem::array::{AccessMode, ArrayId};
use std::fmt;

/// Globally unique (per run) dynamic kernel launch identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct KernelId(u64);

impl KernelId {
    /// Creates a kernel id.
    pub const fn new(id: u64) -> Self {
        KernelId(id)
    }

    /// The raw id.
    pub const fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for KernelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "kernel#{}", self.0)
    }
}

/// Which memory operations the kernel issues to an array.
///
/// The [`AccessMode`] label (R vs R/W) is what CPElide *tracks*; `TouchKind`
/// additionally distinguishes pure producers (`Store`) from update-in-place
/// (`LoadStore`) so the cache model issues the right mix of reads and writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TouchKind {
    /// Loads only (mode must be `R`).
    Load,
    /// Stores only (an output array; mode `R/W`).
    Store,
    /// Load-modify-store of each line (mode `R/W`).
    LoadStore,
}

impl TouchKind {
    /// The access-mode label implied by this touch kind.
    pub fn implied_mode(self) -> AccessMode {
        match self {
            TouchKind::Load => AccessMode::ReadOnly,
            TouchKind::Store | TouchKind::LoadStore => AccessMode::ReadWrite,
        }
    }
}

/// Which lines of an array each chiplet's work-group partition touches.
///
/// Patterns are evaluated against the *set of chiplets the kernel is
/// scheduled on* (static kernel-wide partitioning), so the same spec adapts
/// to 2-, 4-, 6- or 7-chiplet GPUs.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessPattern {
    /// Chiplet `i` of `n` touches the `i`-th contiguous `1/n` slice — the
    /// canonical regular GPGPU pattern (BabelStream, Square, ...).
    Partitioned,
    /// Partitioned, plus `halo_lines` lines of each neighbouring slice —
    /// stencils (Hotspot, Hotspot3D, SRAD).
    PartitionedHalo {
        /// Lines read beyond each partition boundary.
        halo_lines: u64,
    },
    /// Every scheduled chiplet touches the whole array (shared read-only
    /// weights in the RNNs, broadcast lookup tables).
    Shared,
    /// Partitioned within a sub-range of the array: `start..end` as
    /// fractions of the array's lines (Gaussian's shrinking trailing
    /// submatrix, LUD's moving diagonal blocks, NW's anti-diagonals).
    Slice {
        /// Fraction of the array where the active region begins.
        start: f64,
        /// Fraction of the array where the active region ends.
        end: f64,
    },
    /// Irregular gather/scatter: the kernel as a whole touches `fraction`
    /// of the array's lines, pseudo-randomly chosen and split evenly across
    /// the scheduled chiplets (strong scaling); with probability `locality`
    /// a chiplet's touch falls in its own partition slice, otherwise
    /// anywhere (graph workloads: BFS, SSSP, Color; indirect HPC: Pennant,
    /// Lulesh; BTree lookups).
    Irregular {
        /// Fraction of the array's lines the kernel touches, in `[0, 1]`.
        fraction: f64,
        /// Probability a touch lands in the chiplet's own slice, in `[0, 1]`.
        locality: f64,
    },
}

impl AccessPattern {
    /// Validates pattern parameters, panicking with a clear message on
    /// nonsensical fractions. Called by [`KernelBuilder::array`].
    fn validate(&self) {
        match *self {
            AccessPattern::Slice { start, end } => {
                assert!(
                    (0.0..=1.0).contains(&start) && (0.0..=1.0).contains(&end) && start < end,
                    "slice fractions must satisfy 0 <= start < end <= 1"
                );
            }
            AccessPattern::Irregular { fraction, locality } => {
                assert!(
                    (0.0..=1.0).contains(&fraction) && (0.0..=1.0).contains(&locality),
                    "irregular fraction and locality must be in [0, 1]"
                );
            }
            _ => {}
        }
    }
}

/// One array the kernel accesses.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayAccess {
    /// Which array.
    pub array: ArrayId,
    /// The R / R/W label passed to the CP.
    pub mode: AccessMode,
    /// What the hardware actually does to the lines.
    pub touch: TouchKind,
    /// Which lines each chiplet touches.
    pub pattern: AccessPattern,
    /// How many times the kernel sweeps its portion of this array
    /// (intra-kernel temporal reuse; ≥ 1).
    pub sweeps: u32,
}

/// Where a kernel was defined: the source file and line of the builder
/// call (captured via `#[track_caller]`) or the spec-text line (set
/// explicitly by the workload-spec parser). Static-analysis diagnostics
/// cite this span so a finding points at the kernel's definition, not at
/// the analyzer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecSpan {
    /// Source file (a real path for builder-defined kernels, a synthetic
    /// name like `<spec>` for parsed workload text).
    pub file: String,
    /// 1-based line number within `file`.
    pub line: u32,
}

impl fmt::Display for SpecSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.file, self.line)
    }
}

/// A kernel specification: the unit the CP schedules.
#[derive(Debug, Clone)]
pub struct KernelSpec {
    name: String,
    arrays: Vec<ArrayAccess>,
    wg_count: u32,
    compute_per_line: f64,
    lds_per_line: f64,
    l1_hit_rate: f64,
    mlp: f64,
    span: SpecSpan,
}

/// Behavioral equality: the definition span is provenance, not semantics —
/// two kernels built at different source lines but describing the same
/// accesses compare equal.
impl PartialEq for KernelSpec {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.arrays == other.arrays
            && self.wg_count == other.wg_count
            && self.compute_per_line == other.compute_per_line
            && self.lds_per_line == other.lds_per_line
            && self.l1_hit_rate == other.l1_hit_rate
            && self.mlp == other.mlp
    }
}

impl KernelSpec {
    /// Starts building a kernel named `name`.
    #[track_caller]
    pub fn builder(name: impl Into<String>) -> KernelBuilder {
        KernelBuilder::new(name)
    }

    /// The kernel's definition site (builder call or spec-text line).
    pub fn span(&self) -> &SpecSpan {
        &self.span
    }

    /// The kernel's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Arrays the kernel accesses, in declaration order.
    pub fn arrays(&self) -> &[ArrayAccess] {
        &self.arrays
    }

    /// Number of work-groups.
    pub fn wg_count(&self) -> u32 {
        self.wg_count
    }

    /// ALU cycles per accessed line (per CU-aggregate; compute-bound kernels
    /// have large values, streaming kernels near zero).
    pub fn compute_per_line(&self) -> f64 {
        self.compute_per_line
    }

    /// LDS accesses per global line touched (drives LDS energy).
    pub fn lds_per_line(&self) -> f64 {
        self.lds_per_line
    }

    /// Fraction of accesses that hit in the (write-through, kernel-boundary
    /// invalidated) L1 — identical across protocols, per workload.
    pub fn l1_hit_rate(&self) -> f64 {
        self.l1_hit_rate
    }

    /// Memory-level parallelism: how many outstanding misses overlap, i.e.
    /// the divisor converting summed miss latency into stall cycles.
    pub fn mlp(&self) -> f64 {
        self.mlp
    }

    /// The access entry for `array`, if the kernel touches it.
    pub fn access_for(&self, array: ArrayId) -> Option<&ArrayAccess> {
        self.arrays.iter().find(|a| a.array == array)
    }
}

impl fmt::Display for KernelSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}({} arrays, {} WGs)",
            self.name,
            self.arrays.len(),
            self.wg_count
        )
    }
}

/// Builder for [`KernelSpec`] (C-BUILDER).
///
/// # Example
///
/// ```
/// use chiplet_gpu::kernel::{KernelSpec, AccessPattern, TouchKind};
/// use chiplet_mem::array::{AccessMode, ArrayId};
///
/// let square = KernelSpec::builder("square")
///     .wg_count(2048)
///     .array(ArrayId::new(0), TouchKind::Load, AccessPattern::Partitioned)
///     .array(ArrayId::new(1), TouchKind::Store, AccessPattern::Partitioned)
///     .compute_per_line(2.0)
///     .build();
/// assert_eq!(square.arrays().len(), 2);
/// assert_eq!(square.arrays()[0].mode, AccessMode::ReadOnly);
/// ```
#[derive(Debug, Clone)]
pub struct KernelBuilder {
    name: String,
    arrays: Vec<ArrayAccess>,
    wg_count: u32,
    compute_per_line: f64,
    lds_per_line: f64,
    l1_hit_rate: f64,
    mlp: f64,
    span: SpecSpan,
}

impl KernelBuilder {
    /// Creates a builder with GPU-typical defaults: 1024 WGs, memory-bound
    /// (no compute), no LDS, 50 % L1 hit rate, MLP of 32. The caller's
    /// source location becomes the kernel's [`SpecSpan`].
    #[track_caller]
    pub fn new(name: impl Into<String>) -> Self {
        let loc = std::panic::Location::caller();
        KernelBuilder {
            name: name.into(),
            arrays: Vec::new(),
            wg_count: 1024,
            compute_per_line: 0.0,
            lds_per_line: 0.0,
            l1_hit_rate: 0.5,
            mlp: 32.0,
            span: SpecSpan {
                file: loc.file().to_owned(),
                line: loc.line(),
            },
        }
    }

    /// Overrides the captured definition span (used by the workload-spec
    /// parser so diagnostics cite the spec text, not the parser).
    pub fn span(mut self, file: impl Into<String>, line: u32) -> Self {
        self.span = SpecSpan {
            file: file.into(),
            line,
        };
        self
    }

    /// Adds an array access; the mode label is implied by the touch kind.
    pub fn array(mut self, array: ArrayId, touch: TouchKind, pattern: AccessPattern) -> Self {
        pattern.validate();
        self.arrays.push(ArrayAccess {
            array,
            mode: touch.implied_mode(),
            touch,
            pattern,
            sweeps: 1,
        });
        self
    }

    /// Adds an array access with explicit sweep count (intra-kernel reuse).
    pub fn array_swept(
        mut self,
        array: ArrayId,
        touch: TouchKind,
        pattern: AccessPattern,
        sweeps: u32,
    ) -> Self {
        pattern.validate();
        assert!(sweeps >= 1, "sweeps must be at least 1");
        self.arrays.push(ArrayAccess {
            array,
            mode: touch.implied_mode(),
            touch,
            pattern,
            sweeps,
        });
        self
    }

    /// Sets the work-group count.
    pub fn wg_count(mut self, wgs: u32) -> Self {
        assert!(wgs > 0, "kernel must have at least one work-group");
        self.wg_count = wgs;
        self
    }

    /// Sets ALU cycles per accessed line.
    pub fn compute_per_line(mut self, cycles: f64) -> Self {
        assert!(cycles >= 0.0);
        self.compute_per_line = cycles;
        self
    }

    /// Sets LDS accesses per global line touched.
    pub fn lds_per_line(mut self, accesses: f64) -> Self {
        assert!(accesses >= 0.0);
        self.lds_per_line = accesses;
        self
    }

    /// Sets the workload's L1 hit rate in `[0, 1]`.
    pub fn l1_hit_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "l1 hit rate must be in [0,1]");
        self.l1_hit_rate = rate;
        self
    }

    /// Sets the memory-level-parallelism factor (≥ 1).
    pub fn mlp(mut self, mlp: f64) -> Self {
        assert!(mlp >= 1.0, "mlp must be >= 1");
        self.mlp = mlp;
        self
    }

    /// Finishes the kernel.
    ///
    /// # Panics
    ///
    /// Panics if the kernel accesses no arrays.
    pub fn build(self) -> KernelSpec {
        assert!(
            !self.arrays.is_empty(),
            "kernel {} must access at least one array",
            self.name
        );
        KernelSpec {
            name: self.name,
            arrays: self.arrays,
            wg_count: self.wg_count,
            compute_per_line: self.compute_per_line,
            lds_per_line: self.lds_per_line,
            l1_hit_rate: self.l1_hit_rate,
            mlp: self.mlp,
            span: self.span,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(i: u32) -> ArrayId {
        ArrayId::new(i)
    }

    #[test]
    fn builder_defaults_and_overrides() {
        let k = KernelSpec::builder("k")
            .array(a(0), TouchKind::Load, AccessPattern::Partitioned)
            .wg_count(64)
            .compute_per_line(3.5)
            .lds_per_line(1.0)
            .l1_hit_rate(0.7)
            .mlp(16.0)
            .build();
        assert_eq!(k.name(), "k");
        assert_eq!(k.wg_count(), 64);
        assert!((k.compute_per_line() - 3.5).abs() < 1e-12);
        assert!((k.lds_per_line() - 1.0).abs() < 1e-12);
        assert!((k.l1_hit_rate() - 0.7).abs() < 1e-12);
        assert!((k.mlp() - 16.0).abs() < 1e-12);
    }

    #[test]
    fn touch_kind_implies_mode() {
        assert_eq!(TouchKind::Load.implied_mode(), AccessMode::ReadOnly);
        assert_eq!(TouchKind::Store.implied_mode(), AccessMode::ReadWrite);
        assert_eq!(TouchKind::LoadStore.implied_mode(), AccessMode::ReadWrite);
    }

    #[test]
    #[should_panic(expected = "at least one array")]
    fn empty_kernel_rejected() {
        let _ = KernelSpec::builder("empty").build();
    }

    #[test]
    #[should_panic(expected = "slice fractions")]
    fn bad_slice_rejected() {
        let _ = KernelSpec::builder("k").array(
            a(0),
            TouchKind::Load,
            AccessPattern::Slice {
                start: 0.9,
                end: 0.1,
            },
        );
    }

    #[test]
    #[should_panic(expected = "irregular fraction")]
    fn bad_irregular_rejected() {
        let _ = KernelSpec::builder("k").array(
            a(0),
            TouchKind::Load,
            AccessPattern::Irregular {
                fraction: 1.5,
                locality: 0.5,
            },
        );
    }

    #[test]
    fn access_for_finds_entry() {
        let k = KernelSpec::builder("k")
            .array(a(0), TouchKind::Load, AccessPattern::Partitioned)
            .array(a(1), TouchKind::Store, AccessPattern::Shared)
            .build();
        assert!(k.access_for(a(1)).is_some());
        assert!(k.access_for(a(7)).is_none());
        assert_eq!(k.access_for(a(1)).unwrap().mode, AccessMode::ReadWrite);
    }

    #[test]
    fn swept_arrays_record_sweeps() {
        let k = KernelSpec::builder("k")
            .array_swept(a(0), TouchKind::LoadStore, AccessPattern::Partitioned, 4)
            .build();
        assert_eq!(k.arrays()[0].sweeps, 4);
    }

    #[test]
    fn kernel_id_ordering() {
        assert!(KernelId::new(1) < KernelId::new(2));
        assert_eq!(format!("{}", KernelId::new(3)), "kernel#3");
    }
}
