//! The per-application array allocation table.

use chiplet_mem::addr::Addr;
use chiplet_mem::array::{ArrayDecl, ArrayId};

/// An application's global-memory allocations, laid out page-aligned and
/// back-to-back (as the paper's modified, page-aligned workloads are).
///
/// # Example
///
/// ```
/// use chiplet_gpu::table::ArrayTable;
///
/// let mut t = ArrayTable::new();
/// let a = t.alloc("A_d", 2 << 20);
/// let b = t.alloc("B_d", 2 << 20);
/// assert_ne!(a, b);
/// assert!(t.get(b).base() >= t.get(a).end());
/// ```
#[derive(Debug, Clone, Default)]
pub struct ArrayTable {
    arrays: Vec<ArrayDecl>,
    next_base: Addr,
}

impl ArrayTable {
    /// Creates an empty table; allocations start at a non-zero base to mimic
    /// a real virtual address space.
    pub fn new() -> Self {
        ArrayTable {
            arrays: Vec::new(),
            next_base: Addr::new(0x1000_0000),
        }
    }

    /// Allocates `bytes` page-aligned and returns the new array's id.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn alloc(&mut self, name: impl Into<String>, bytes: u64) -> ArrayId {
        let id = ArrayId::new(self.arrays.len() as u32);
        let decl = ArrayDecl::new_after(id, name, self.next_base, bytes);
        self.next_base = decl.end();
        self.arrays.push(decl);
        id
    }

    /// The declaration for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not allocated from this table.
    pub fn get(&self, id: ArrayId) -> &ArrayDecl {
        &self.arrays[id.get() as usize]
    }

    /// All declarations in allocation order.
    pub fn iter(&self) -> impl Iterator<Item = &ArrayDecl> {
        self.arrays.iter()
    }

    /// Number of arrays.
    pub fn len(&self) -> usize {
        self.arrays.len()
    }

    /// True if no arrays were allocated.
    pub fn is_empty(&self) -> bool {
        self.arrays.is_empty()
    }

    /// Total allocated bytes (the application's device footprint).
    pub fn footprint_bytes(&self) -> u64 {
        self.arrays.iter().map(|a| a.bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_page_aligned_and_disjoint() {
        let mut t = ArrayTable::new();
        let a = t.alloc("a", 1000);
        let b = t.alloc("b", 64);
        let (da, db) = (t.get(a).clone(), t.get(b).clone());
        assert_eq!(da.base().get() % 4096, 0);
        assert_eq!(db.base().get() % 4096, 0);
        assert!(db.base().get() >= da.end().get());
    }

    #[test]
    fn footprint_sums_sizes() {
        let mut t = ArrayTable::new();
        t.alloc("a", 100);
        t.alloc("b", 200);
        assert_eq!(t.footprint_bytes(), 300);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn ids_are_sequential() {
        let mut t = ArrayTable::new();
        assert_eq!(t.alloc("a", 1).get(), 0);
        assert_eq!(t.alloc("b", 1).get(), 1);
    }
}
