//! Per-access energy model for the GPU memory subsystem (Figure 9).
//!
//! The paper leverages prior per-access GPU energy models, scaled to
//! multi-chiplet GPUs, and reports memory-subsystem energy only, split into
//! L1 instruction/data caches, LDS, L2, NOC and DRAM. Since CPElide only
//! changes *event counts* (hits vs misses, flits, DRAM touches), a
//! per-access energy table is exactly the right fidelity. The default
//! magnitudes follow the public literature the paper cites (EIE/Dally's
//! keynote-style numbers, O'Connor et al. for HBM): pJ-class SRAM accesses,
//! tens-of-pJ per-flit link energy with inter-chiplet crossings costing
//! several times on-die hops, and nJ-class DRAM line accesses.

use chiplet_noc::traffic::FlitCounter;
use std::ops::{Add, AddAssign};

/// Per-access energies in picojoules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// One L1I lookup.
    pub l1i_pj: f64,
    /// One L1D lookup.
    pub l1d_pj: f64,
    /// One LDS (local data share / scratchpad) access.
    pub lds_pj: f64,
    /// One L2 lookup.
    pub l2_pj: f64,
    /// One LLC (L3) lookup.
    pub l3_pj: f64,
    /// One flit over an intra-chiplet crossbar hop.
    pub noc_local_flit_pj: f64,
    /// One flit over an inter-chiplet link (interposer crossing).
    pub noc_remote_flit_pj: f64,
    /// One 64 B HBM access.
    pub dram_pj: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            l1i_pj: 20.0,
            l1d_pj: 25.0,
            lds_pj: 15.0,
            l2_pj: 60.0,
            l3_pj: 120.0,
            noc_local_flit_pj: 20.0,
            noc_remote_flit_pj: 80.0,
            dram_pj: 2000.0,
        }
    }
}

/// Raw event counts the energy model consumes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnergyCounts {
    /// L1 instruction-cache accesses.
    pub l1i_accesses: u64,
    /// L1 data-cache accesses.
    pub l1d_accesses: u64,
    /// LDS accesses.
    pub lds_accesses: u64,
    /// L2 accesses (hits and misses both touch the arrays).
    pub l2_accesses: u64,
    /// LLC accesses.
    pub l3_accesses: u64,
    /// Flits that stayed on-die (L1-L2 plus L2-L3 categories).
    pub noc_local_flits: u64,
    /// Flits that crossed an inter-chiplet link.
    pub noc_remote_flits: u64,
    /// 64 B HBM accesses (reads + writes).
    pub dram_accesses: u64,
}

impl EnergyCounts {
    /// Folds a flit counter into the local/remote NOC counts.
    pub fn add_traffic(&mut self, t: FlitCounter) {
        self.noc_local_flits += t.l1_l2 + t.l2_l3;
        self.noc_remote_flits += t.remote;
    }
}

impl Add for EnergyCounts {
    type Output = EnergyCounts;

    fn add(self, r: EnergyCounts) -> EnergyCounts {
        EnergyCounts {
            l1i_accesses: self.l1i_accesses + r.l1i_accesses,
            l1d_accesses: self.l1d_accesses + r.l1d_accesses,
            lds_accesses: self.lds_accesses + r.lds_accesses,
            l2_accesses: self.l2_accesses + r.l2_accesses,
            l3_accesses: self.l3_accesses + r.l3_accesses,
            noc_local_flits: self.noc_local_flits + r.noc_local_flits,
            noc_remote_flits: self.noc_remote_flits + r.noc_remote_flits,
            dram_accesses: self.dram_accesses + r.dram_accesses,
        }
    }
}

impl AddAssign for EnergyCounts {
    fn add_assign(&mut self, r: EnergyCounts) {
        *self = *self + r;
    }
}

/// Memory-subsystem energy by component, in picojoules (Figure 9's split,
/// with the LLC reported separately — the paper folds it into its NOC/DRAM
/// path; EXPERIMENTS.md discusses the mapping).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// L1 instruction caches.
    pub l1i: f64,
    /// L1 data caches.
    pub l1d: f64,
    /// LDS scratchpads.
    pub lds: f64,
    /// L2 caches.
    pub l2: f64,
    /// Shared LLC.
    pub l3: f64,
    /// Interconnect (intra-chiplet + inter-chiplet flits).
    pub noc: f64,
    /// HBM.
    pub dram: f64,
}

impl EnergyBreakdown {
    /// Total memory-subsystem energy in picojoules.
    pub fn total(&self) -> f64 {
        self.l1i + self.l1d + self.lds + self.l2 + self.l3 + self.noc + self.dram
    }
}

impl Add for EnergyBreakdown {
    type Output = EnergyBreakdown;

    fn add(self, r: EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            l1i: self.l1i + r.l1i,
            l1d: self.l1d + r.l1d,
            lds: self.lds + r.lds,
            l2: self.l2 + r.l2,
            l3: self.l3 + r.l3,
            noc: self.noc + r.noc,
            dram: self.dram + r.dram,
        }
    }
}

impl EnergyModel {
    /// Evaluates the model over a set of event counts.
    ///
    /// # Example
    ///
    /// ```
    /// use chiplet_energy::{EnergyCounts, EnergyModel};
    ///
    /// let m = EnergyModel::default();
    /// let counts = EnergyCounts { dram_accesses: 10, ..Default::default() };
    /// let e = m.evaluate(&counts);
    /// assert!((e.dram - 20_000.0).abs() < 1e-9); // 10 x 2 nJ
    /// assert!(e.total() > 0.0);
    /// ```
    pub fn evaluate(&self, c: &EnergyCounts) -> EnergyBreakdown {
        EnergyBreakdown {
            l1i: c.l1i_accesses as f64 * self.l1i_pj,
            l1d: c.l1d_accesses as f64 * self.l1d_pj,
            lds: c.lds_accesses as f64 * self.lds_pj,
            l2: c.l2_accesses as f64 * self.l2_pj,
            l3: c.l3_accesses as f64 * self.l3_pj,
            noc: c.noc_local_flits as f64 * self.noc_local_flit_pj
                + c.noc_remote_flits as f64 * self.noc_remote_flit_pj,
            dram: c.dram_accesses as f64 * self.dram_pj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiplet_noc::traffic::TrafficClass;

    #[test]
    fn dram_dominates_per_access() {
        let m = EnergyModel::default();
        assert!(m.dram_pj > m.l3_pj);
        assert!(m.l3_pj > m.l2_pj);
        assert!(m.l2_pj > m.l1d_pj);
        assert!(m.noc_remote_flit_pj > m.noc_local_flit_pj);
    }

    #[test]
    fn evaluate_scales_linearly() {
        let m = EnergyModel::default();
        let c1 = EnergyCounts {
            l2_accesses: 100,
            ..Default::default()
        };
        let c2 = EnergyCounts {
            l2_accesses: 200,
            ..Default::default()
        };
        assert!((2.0 * m.evaluate(&c1).l2 - m.evaluate(&c2).l2).abs() < 1e-9);
    }

    #[test]
    fn add_traffic_splits_local_and_remote() {
        let mut t = FlitCounter::new();
        t.record(TrafficClass::L1ToL2, 10);
        t.record(TrafficClass::L2ToL3, 5);
        t.record(TrafficClass::Remote, 7);
        let mut c = EnergyCounts::default();
        c.add_traffic(t);
        assert_eq!(c.noc_local_flits, 15);
        assert_eq!(c.noc_remote_flits, 7);
    }

    #[test]
    fn counts_and_breakdowns_add() {
        let a = EnergyCounts {
            l1d_accesses: 1,
            dram_accesses: 2,
            ..Default::default()
        };
        let b = EnergyCounts {
            l1d_accesses: 3,
            ..Default::default()
        };
        let s = a + b;
        assert_eq!(s.l1d_accesses, 4);
        assert_eq!(s.dram_accesses, 2);
        let m = EnergyModel::default();
        let e = m.evaluate(&a) + m.evaluate(&b);
        assert!((e.l1d - m.evaluate(&s).l1d).abs() < 1e-9);
    }

    #[test]
    fn breakdown_total_sums_components() {
        let e = EnergyBreakdown {
            l1i: 1.0,
            l1d: 2.0,
            lds: 3.0,
            l2: 4.0,
            l3: 5.0,
            noc: 6.0,
            dram: 7.0,
        };
        assert!((e.total() - 28.0).abs() < 1e-12);
    }
}
