//! The linter's rule catalogue and per-file analysis.
//!
//! Every rule enforces a repo-specific invariant that the test suite can
//! only probe dynamically — mostly determinism properties the 18-snapshot
//! golden gate relies on. Findings carry `file:line` spans; a finding can
//! be suppressed with an inline pragma:
//!
//! ```text
//! // chiplet-check: allow(no-panic) — why panicking is intended here
//! // chiplet-check: allow-file(sim-thread) — why, for the whole file
//! ```
//!
//! A same-line or directly-preceding `allow(...)` suppresses that rule on
//! the next code line; `allow-file(...)` suppresses it for the whole file.

use crate::lexer::{lex, test_regions, Lexed, Tok};

/// One rule's identity and documentation line (surfaced by `--rules`).
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable kebab-case id, used in pragmas and JSON output.
    pub id: &'static str,
    /// Where the rule applies.
    pub scope: &'static str,
    /// One-line description.
    pub summary: &'static str,
}

/// Crates whose iteration order feeds metrics: `HashMap`/`HashSet`
/// iteration there can silently break the golden determinism gate.
pub const HASH_ITER_CRATES: &[&str] = &["sim", "core", "coherence", "noc"];

/// Crates on the simulation path: wall-clock reads, spawned threads and
/// environment reads there would make runs timing- or host-dependent.
pub const SIM_PATH_CRATES: &[&str] = &[
    "core",
    "coherence",
    "energy",
    "gpu",
    "mem",
    "noc",
    "obs",
    "sim",
    "workloads",
];

/// The full rule catalogue.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "hash-iter",
        scope: "crates: sim, core, coherence, noc",
        summary: "no HashMap/HashSet iteration (ordering nondeterminism would \
                  silently break the golden determinism gate)",
    },
    RuleInfo {
        id: "wall-clock",
        scope: "simulation-path crates",
        summary: "no std::time / Instant::now / SystemTime (simulated time only)",
    },
    RuleInfo {
        id: "sim-thread",
        scope: "simulation-path crates",
        summary: "no thread spawning on the simulation path (scheduling \
                  nondeterminism)",
    },
    RuleInfo {
        id: "sim-env",
        scope: "simulation-path crates",
        summary: "no environment reads on the simulation path (host-dependent \
                  behaviour)",
    },
    RuleInfo {
        id: "no-panic",
        scope: "library code (tests, bins, benches and examples exempt)",
        summary: "no unwrap()/expect() in library code",
    },
    RuleInfo {
        id: "banned-import",
        scope: "whole workspace",
        summary: "no rand/proptest/criterion imports (the workspace is \
                  hermetic; chiplet-harness replaces them)",
    },
    RuleInfo {
        id: "stale-todo",
        scope: "whole workspace",
        summary: "TODO/FIXME/XXX/HACK markers must carry an owner or ticket, \
                  e.g. TODO(#12)",
    },
    RuleInfo {
        id: "fleet-capture",
        scope: "whole workspace",
        summary: "no shared-mutable-state captures (Rc/RefCell/Mutex/RwLock, \
                  .lock()/.borrow_mut()) inside fleet parallel_map job \
                  arguments — job execution order is unspecified, only the \
                  result order is deterministic",
    },
    RuleInfo {
        id: "unused-allow",
        scope: "whole workspace",
        summary: "every allow pragma must suppress at least one finding \
                  (dead pragmas rot into false documentation of a hazard \
                  that no longer exists); not itself suppressible",
    },
];

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id from [`RULES`].
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// How a file participates in linting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code: all rules apply.
    Lib,
    /// Binaries, benches, tests, examples, build scripts: exempt from
    /// `no-panic` (panicking is their error-reporting strategy).
    BinLike,
}

/// The lint context for one file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileClass {
    /// Workspace crate directory name (`sim`, `core`, ...); empty for the
    /// root facade package.
    pub crate_name: String,
    /// Library vs bin-like.
    pub kind: FileKind,
}

/// Derives the lint context from a workspace-relative path.
pub fn classify(rel_path: &str) -> FileClass {
    let crate_name = rel_path
        .strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("")
        .to_owned();
    let bin_like = rel_path
        .split('/')
        .any(|seg| matches!(seg, "tests" | "benches" | "examples" | "bin"))
        || rel_path.ends_with("main.rs")
        || rel_path.ends_with("build.rs");
    FileClass {
        crate_name,
        kind: if bin_like {
            FileKind::BinLike
        } else {
            FileKind::Lib
        },
    }
}

// ------------------------------------------------------------- pragmas

/// One parsed `allow(...)`/`allow-file(...)` entry, with a usage bit so
/// the `unused-allow` rule can flag pragmas that suppress nothing.
#[derive(Debug)]
struct Allow {
    /// Line of the pragma comment.
    line: u32,
    /// The rule id it names.
    rule: String,
    /// `allow-file(...)` vs `allow(...)`.
    file_scope: bool,
    /// Set once the pragma suppresses at least one finding.
    used: bool,
}

#[derive(Debug, Default)]
struct Pragmas {
    allows: Vec<Allow>,
}

fn parse_pragmas(lx: &Lexed) -> Pragmas {
    let mut p = Pragmas::default();
    for c in &lx.comments {
        let Some(pos) = c.text.find("chiplet-check:") else {
            continue;
        };
        // Documentation that *quotes* a pragma (`// chiplet-check: ...`
        // inside a doc comment or fenced example) nests a second `//`
        // between the comment's own opening marker (the first two chars
        // of `text`) and the pragma; that is prose about pragmas, not one.
        if c.text[..pos].get(2..).is_some_and(|p| p.contains("//")) {
            continue;
        }
        let rest = &c.text[pos + "chiplet-check:".len()..];
        let rest = rest.trim_start();
        let (file_scope, rest) = if let Some(r) = rest.strip_prefix("allow-file(") {
            (true, r)
        } else if let Some(r) = rest.strip_prefix("allow(") {
            (false, r)
        } else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            continue;
        };
        for rule in rest[..close].split(',') {
            let rule = rule.trim().to_owned();
            if rule.is_empty() {
                continue;
            }
            p.allows.push(Allow {
                line: c.line,
                rule,
                file_scope,
                used: false,
            });
        }
    }
    p
}

impl Pragmas {
    /// True if a finding of `rule` at `line` is suppressed, marking every
    /// pragma that matched as used. `code_lines` is the sorted set of
    /// lines holding at least one token: an `allow` pragma covers its own
    /// line plus the next code line after it; `allow-file` covers the
    /// whole file. All matches are marked (no short-circuit) so a line
    /// pragma shadowed by a file pragma is not misreported as unused.
    fn suppressed(&mut self, rule: &str, line: u32, code_lines: &[u32]) -> bool {
        let mut hit = false;
        for a in &mut self.allows {
            if a.rule != rule {
                continue;
            }
            let matches = a.file_scope
                || a.line == line
                || (a.line < line
                    && code_lines
                        .iter()
                        .find(|&&cl| cl > a.line)
                        .is_some_and(|&first| first == line));
            if matches {
                a.used = true;
                hit = true;
            }
        }
        hit
    }
}

// ------------------------------------------------------- rule helpers

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// Identifiers bound to a `HashMap`/`HashSet` anywhere in the file: struct
/// fields, `let` bindings and parameters (`name: HashMap<...>` possibly
/// through wrappers like `Vec<HashMap<...>>`), plus `name = HashMap::new()`
/// style initialisations. A lexical approximation — the allow pragma is
/// the escape hatch for false positives.
fn hash_bound_names(lx: &Lexed) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for i in 0..lx.tokens.len() {
        let is_hash = matches!(lx.ident(i), Some("HashMap" | "HashSet"));
        if !is_hash {
            continue;
        }
        // Walk back over type syntax to the owning `name :`, stopping at
        // statement boundaries or `=` (value position).
        let mut j = i;
        let mut name: Option<&str> = None;
        let mut steps = 0;
        while j > 0 && steps < 24 {
            j -= 1;
            steps += 1;
            match &lx.tokens[j].tok {
                Tok::Punct(";") | Tok::Punct("{") | Tok::Punct("}") => break,
                Tok::Punct("=") => {
                    // Value position (`name = HashMap::new()`): the bound
                    // name sits directly before the `=`, optionally behind
                    // `mut`.
                    let mut k = j;
                    while k > 0 {
                        k -= 1;
                        match lx.ident(k) {
                            Some("mut") => continue,
                            Some(id) => {
                                name = Some(id);
                                break;
                            }
                            None => break,
                        }
                    }
                    break;
                }
                Tok::Punct(":") => {
                    if let Some(id) = lx.ident(j.wrapping_sub(1)) {
                        name = Some(id);
                    }
                    break;
                }
                _ => {}
            }
        }
        if let Some(n) = name {
            if n != "mut" && !names.iter().any(|x| x == n) {
                names.push(n.to_owned());
            }
        }
    }
    names
}

/// Base identifiers of the receiver chain ending just before token `dot`
/// (e.g. `self.l2[c.index()].iter_mut()` yields `l2`, `index`, `c`).
fn receiver_idents(lx: &Lexed, dot: usize) -> Vec<String> {
    let mut out = Vec::new();
    let mut j = dot; // index of the `.` token; receiver ends at dot-1
    let mut steps = 0;
    while j > 0 && steps < 48 {
        j -= 1;
        steps += 1;
        match &lx.tokens[j].tok {
            Tok::Punct("]") | Tok::Punct(")") => {
                // Skip the bracketed group.
                let (open, close) = if lx.is_punct(j, "]") {
                    ("[", "]")
                } else {
                    ("(", ")")
                };
                let mut depth = 1usize;
                while j > 0 && depth > 0 {
                    j -= 1;
                    if lx.is_punct(j, close) {
                        depth += 1;
                    } else if lx.is_punct(j, open) {
                        depth -= 1;
                    } else if let Some(id) = lx.ident(j) {
                        out.push(id.to_owned());
                    }
                }
            }
            Tok::Ident(id) => out.push(id.clone()),
            Tok::Punct(".") | Tok::Punct("::") | Tok::Punct("?") => {}
            _ => break,
        }
    }
    out
}

fn path_seq(lx: &Lexed, i: usize, a: &str, b: &str) -> bool {
    lx.is_ident(i, a) && lx.is_punct(i + 1, "::") && lx.is_ident(i + 2, b)
}

// ------------------------------------------------------------ analysis

/// Lints one file's source text. `rel_path` selects which rules apply
/// (crate scoping and bin-likeness).
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Finding> {
    let class = classify(rel_path);
    let lx = lex(src);
    let mut pragmas = parse_pragmas(&lx);
    let regions = test_regions(&lx);
    let in_test = |ix: usize| regions.iter().any(|&(s, e)| ix >= s && ix < e);

    let mut code_lines: Vec<u32> = lx.tokens.iter().map(|t| t.line).collect();
    code_lines.dedup();

    let mut findings: Vec<Finding> = Vec::new();
    let mut push = |rule: &'static str, line: u32, message: String| {
        if pragmas.suppressed(rule, line, &code_lines)
            || findings.iter().any(|f| f.rule == rule && f.line == line)
        {
            return;
        }
        findings.push(Finding {
            rule,
            file: rel_path.to_owned(),
            line,
            message,
        });
    };

    let crate_str = class.crate_name.as_str();
    let hash_scope = HASH_ITER_CRATES.contains(&crate_str);
    let sim_scope = SIM_PATH_CRATES.contains(&crate_str);

    let hash_names = if hash_scope {
        hash_bound_names(&lx)
    } else {
        Vec::new()
    };

    for i in 0..lx.tokens.len() {
        let line = lx.tokens[i].line;

        // --- hash-iter -------------------------------------------------
        if hash_scope {
            // `recv.iter()` style: a hash-bound name in the receiver chain.
            if i >= 1
                && lx.is_punct(i - 1, ".")
                && lx.is_punct(i + 1, "(")
                && lx.ident(i).is_some_and(|m| ITER_METHODS.contains(&m))
            {
                let recv = receiver_idents(&lx, i - 1);
                if let Some(n) = recv.iter().find(|n| hash_names.contains(n)) {
                    push(
                        "hash-iter",
                        line,
                        format!(
                            "iteration over hash collection `{n}` (order is \
                             nondeterministic); use BTreeMap/sorted keys or \
                             justify with an allow pragma"
                        ),
                    );
                }
            }
            // `for x in &name` / `for x in name` style.
            if lx.is_ident(i, "in") && (1..=8).any(|d| i >= d && lx.is_ident(i - d, "for")) {
                let mut j = i + 1;
                while lx.is_punct(j, "&") || lx.is_ident(j, "mut") {
                    j += 1;
                }
                if let Some(id) = lx.ident(j) {
                    if hash_names.iter().any(|n| n == id) {
                        push(
                            "hash-iter",
                            line,
                            format!(
                                "`for` loop over hash collection `{id}` (order \
                                 is nondeterministic)"
                            ),
                        );
                    }
                }
            }
        }

        // --- wall-clock / sim-thread / sim-env -------------------------
        if sim_scope {
            if path_seq(&lx, i, "std", "time")
                || path_seq(&lx, i, "Instant", "now")
                || path_seq(&lx, i, "SystemTime", "now")
                || lx.is_ident(i, "SystemTime")
            {
                push(
                    "wall-clock",
                    line,
                    "wall-clock time on the simulation path; model time in \
                     cycles instead"
                        .to_owned(),
                );
            }
            if path_seq(&lx, i, "std", "thread")
                || path_seq(&lx, i, "thread", "spawn")
                || (i >= 1 && lx.is_punct(i - 1, ".") && lx.is_ident(i, "spawn"))
            {
                push(
                    "sim-thread",
                    line,
                    "thread use on the simulation path; keep the engine \
                     single-threaded or justify determinism with an allow \
                     pragma"
                        .to_owned(),
                );
            }
            if path_seq(&lx, i, "std", "env")
                || path_seq(&lx, i, "env", "var")
                || path_seq(&lx, i, "env", "var_os")
            {
                push(
                    "sim-env",
                    line,
                    "environment read on the simulation path; thread \
                     configuration through SimConfig instead"
                        .to_owned(),
                );
            }
        }

        // --- no-panic --------------------------------------------------
        if class.kind == FileKind::Lib
            && !in_test(i)
            && i >= 1
            && lx.is_punct(i - 1, ".")
            && lx.is_punct(i + 1, "(")
        {
            if let Some(m @ ("unwrap" | "expect")) = lx.ident(i) {
                push(
                    "no-panic",
                    line,
                    format!(
                        "`.{m}()` in library code; return a Result or justify \
                         the invariant with an allow pragma"
                    ),
                );
            }
        }

        // --- fleet-capture ---------------------------------------------
        // At a `parallel_map(...)`/`parallel_map_ok(...)`/
        // `parallel_map_telemetry(...)` call site, scan the balanced
        // argument list (which contains the job closure) for
        // shared-mutable-state constructs. Definitions (`fn parallel_map`)
        // are skipped; type positions outside the call are not scanned.
        if lx.ident(i).is_some_and(|id| {
            matches!(
                id,
                "parallel_map" | "parallel_map_ok" | "parallel_map_telemetry"
            )
        }) && lx.is_punct(i + 1, "(")
            && !(i >= 1 && lx.is_ident(i - 1, "fn"))
        {
            let mut depth = 1usize;
            let mut j = i + 2;
            while j < lx.tokens.len() && depth > 0 {
                if lx.is_punct(j, "(") {
                    depth += 1;
                } else if lx.is_punct(j, ")") {
                    depth -= 1;
                } else if let Some(id @ ("Rc" | "RefCell" | "Mutex" | "RwLock")) = lx.ident(j) {
                    push(
                        "fleet-capture",
                        lx.tokens[j].line,
                        format!(
                            "`{id}` inside a fleet job; jobs must be pure \
                             functions of their item (execution order is \
                             unspecified, only result order is deterministic)"
                        ),
                    );
                } else if j >= 1
                    && lx.is_punct(j - 1, ".")
                    && lx.is_punct(j + 1, "(")
                    && matches!(lx.ident(j), Some("lock" | "borrow_mut"))
                {
                    let m = lx.ident(j).unwrap_or_default();
                    push(
                        "fleet-capture",
                        lx.tokens[j].line,
                        format!(
                            "`.{m}()` inside a fleet job; jobs must not \
                             share mutable state (execution order is \
                             unspecified)"
                        ),
                    );
                }
                j += 1;
            }
        }

        // --- banned-import ---------------------------------------------
        if let Some(id @ ("rand" | "proptest" | "criterion")) = lx.ident(i) {
            let used = lx.is_punct(i + 1, "::")
                || (i >= 1 && lx.is_ident(i - 1, "use"))
                || (i >= 2 && lx.is_ident(i - 1, "crate") && lx.is_ident(i - 2, "extern"));
            if used {
                push(
                    "banned-import",
                    line,
                    format!(
                        "external crate `{id}` is banned; the workspace is \
                         hermetic (chiplet-harness provides RNG, property \
                         tests and benches)"
                    ),
                );
            }
        }
    }

    // --- stale-todo (comment-based) ------------------------------------
    for c in &lx.comments {
        for marker in ["TODO", "FIXME", "XXX", "HACK"] {
            let mut start = 0usize;
            while let Some(pos) = c.text[start..].find(marker) {
                let abs = start + pos;
                start = abs + marker.len();
                let before_ok = abs == 0 || !c.text.as_bytes()[abs - 1].is_ascii_alphanumeric();
                let after = c.text[abs + marker.len()..].trim_start();
                let after_boundary = !c.text.as_bytes()[abs + marker.len()..]
                    .first()
                    .is_some_and(|b| b.is_ascii_alphanumeric());
                if !before_ok || !after_boundary {
                    continue;
                }
                let has_ref = after.starts_with('(')
                    && after[1..].split(')').next().is_some_and(|s| !s.is_empty());
                if !has_ref {
                    let line =
                        c.line + c.text[..abs].bytes().filter(|&b| b == b'\n').count() as u32;
                    if !pragmas.suppressed("stale-todo", line, &code_lines)
                        && !findings
                            .iter()
                            .any(|f| f.rule == "stale-todo" && f.line == line)
                    {
                        findings.push(Finding {
                            rule: "stale-todo",
                            file: rel_path.to_owned(),
                            line,
                            message: format!(
                                "bare `{marker}` marker; tag an owner or \
                                 ticket like `{marker}(#12)` so it stays \
                                 actionable"
                            ),
                        });
                    }
                }
            }
        }
    }

    // --- unused-allow ---------------------------------------------------
    // Deliberately not suppressible: an `allow(unused-allow)` pragma could
    // only ever justify itself, so it is reported like any other dead one.
    for a in &pragmas.allows {
        if a.used {
            continue;
        }
        let scope = if a.file_scope { "allow-file" } else { "allow" };
        let message = if RULES.iter().any(|r| r.id == a.rule) {
            format!(
                "`{scope}({})` suppresses no finding; delete the stale \
                 pragma (or restore the justification it documented)",
                a.rule
            )
        } else {
            format!(
                "`{scope}({})` names no known rule; see --rules for the \
                 catalogue",
                a.rule
            )
        };
        findings.push(Finding {
            rule: "unused-allow",
            file: rel_path.to_owned(),
            line: a.line,
            message,
        });
    }

    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_scopes_paths() {
        assert_eq!(classify("crates/sim/src/engine.rs").crate_name, "sim");
        assert_eq!(classify("crates/sim/src/engine.rs").kind, FileKind::Lib);
        assert_eq!(
            classify("crates/bench/benches/hotpath.rs").kind,
            FileKind::BinLike
        );
        assert_eq!(classify("src/main.rs").kind, FileKind::BinLike);
        assert_eq!(classify("src/lib.rs").kind, FileKind::Lib);
        assert_eq!(classify("crates/mem/tests/x.rs").kind, FileKind::BinLike);
        assert_eq!(classify("examples/quickstart.rs").kind, FileKind::BinLike);
    }

    #[test]
    fn hash_names_found_through_wrappers() {
        let lx = lex(
            "struct S { l2: Vec<HashMap<LineAddr, Entry>>, homes: HashMap<PageAddr, ChipletId> }\n\
             fn f() { let mut m = HashMap::new(); }",
        );
        let names = hash_bound_names(&lx);
        assert!(names.contains(&"l2".to_owned()));
        assert!(names.contains(&"homes".to_owned()));
        assert!(names.contains(&"m".to_owned()));
    }

    #[test]
    fn hash_iteration_flagged_only_in_scoped_crates() {
        let src = "use std::collections::HashMap;\n\
                   fn f(m: &mut HashMap<u32, u32>) { for (k, v) in m.iter_mut() { let _ = (k, v); } }";
        assert!(lint_source("crates/sim/src/x.rs", src)
            .iter()
            .any(|f| f.rule == "hash-iter"));
        assert!(lint_source("crates/workloads/src/x.rs", src)
            .iter()
            .all(|f| f.rule != "hash-iter"));
    }

    #[test]
    fn hash_lookup_is_not_iteration() {
        let src = "use std::collections::HashMap;\n\
                   fn f(m: &HashMap<u32, u32>) -> Option<&u32> { m.get(&1) }";
        assert!(lint_source("crates/sim/src/x.rs", src).is_empty());
    }

    #[test]
    fn indexed_receiver_chain_resolves() {
        let src = "struct S { l2: Vec<HashMap<u64, u64>> }\n\
                   impl S { fn f(&mut self, c: usize) { for x in self.l2[c].iter_mut() { let _ = x; } } }";
        let f = lint_source("crates/sim/src/x.rs", src);
        assert!(
            f.iter().any(|f| f.rule == "hash-iter" && f.line == 2),
            "{f:?}"
        );
    }

    #[test]
    fn wall_clock_and_thread_and_env_scoped() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n\
                   fn g() { std::thread::spawn(|| {}); }\n\
                   fn h() { let _ = std::env::var(\"X\"); }";
        let f = lint_source("crates/sim/src/x.rs", src);
        assert!(f.iter().any(|f| f.rule == "wall-clock" && f.line == 1));
        assert!(f.iter().any(|f| f.rule == "sim-thread" && f.line == 2));
        assert!(f.iter().any(|f| f.rule == "sim-env" && f.line == 3));
        // The harness crate is exempt (it is the bench/obs toolkit).
        assert!(lint_source("crates/harness/src/x.rs", src).is_empty());
    }

    #[test]
    fn enum_variant_named_instant_is_fine() {
        let src = "enum Phase { Instant }\nfn f() -> Phase { Phase::Instant }";
        assert!(lint_source("crates/obs/src/x.rs", src).is_empty());
    }

    #[test]
    fn unwrap_flagged_in_lib_not_in_tests_or_bins() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
                   #[cfg(test)]\nmod tests { fn t(x: Option<u32>) { x.unwrap(); } }";
        let f = lint_source("crates/mem/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "no-panic");
        assert_eq!(f[0].line, 1);
        assert!(lint_source("crates/mem/tests/x.rs", src).is_empty());
    }

    #[test]
    fn unwrap_or_variants_not_flagged() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0).max(x.unwrap_or_default()) }";
        assert!(lint_source("crates/mem/src/x.rs", src).is_empty());
    }

    #[test]
    fn fleet_capture_flags_shared_state_only_inside_job_args() {
        let src = "use std::rc::Rc;\n\
                   fn f(items: &[u32], seen: Rc<Vec<u32>>) {\n\
                   parallel_map(items, 4, |v| {\n\
                   let shared = Rc::clone(&seen);\n\
                   shared.lock();\n\
                   });\n\
                   }";
        let f = lint_source("crates/harness/src/x.rs", src);
        let fleet: Vec<_> = f.iter().filter(|f| f.rule == "fleet-capture").collect();
        assert_eq!(fleet.len(), 2, "{f:?}");
        assert_eq!(fleet[0].line, 4, "Rc inside the call args");
        assert_eq!(fleet[1].line, 5, ".lock() inside the call args");
    }

    #[test]
    fn fleet_capture_skips_definitions_and_pure_jobs() {
        // The definition itself mentions Mutex internally — not a call site.
        let def = "pub fn parallel_map(items: &[u32]) { let m = Mutex::new(0); m.lock(); }";
        assert!(lint_source("crates/harness/src/x.rs", def).is_empty());
        // A pure job closure is fine.
        let pure = "fn f(items: &[u32]) { parallel_map_ok(items, 4, |v| v * 2); }";
        assert!(lint_source("crates/harness/src/x.rs", pure).is_empty());
    }

    #[test]
    fn banned_imports_flagged_everywhere() {
        for src in [
            "use rand::Rng;",
            "extern crate criterion;",
            "fn f() { let x = proptest::string(); }",
        ] {
            assert!(
                lint_source("crates/harness/src/x.rs", src)
                    .iter()
                    .any(|f| f.rule == "banned-import"),
                "{src}"
            );
        }
        // A local variable merely named `rand` is fine.
        assert!(lint_source("crates/harness/src/x.rs", "fn f() { let rand = 3; }").is_empty());
    }

    #[test]
    fn stale_todo_requires_reference() {
        let f = lint_source("crates/sim/src/x.rs", "// TODO fix this later\nfn f() {}");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "stale-todo");
        assert!(lint_source("crates/sim/src/x.rs", "// TODO(#42): tracked\nfn f() {}").is_empty());
        // Markers embedded in words don't fire.
        assert!(lint_source("crates/sim/src/x.rs", "// the HACKMEM trick\nfn f() {}").is_empty());
    }

    #[test]
    fn allow_pragma_suppresses_same_and_next_code_line() {
        let same = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // chiplet-check: allow(no-panic) invariant";
        assert!(lint_source("crates/mem/src/x.rs", same).is_empty());
        let above = "// chiplet-check: allow(no-panic) — checked by caller\n\
                     fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        assert!(lint_source("crates/mem/src/x.rs", above).is_empty());
        // A pragma does not leak past the next code line — the unwrap on
        // line 3 still fires, and the pragma itself is now dead.
        let leak = "// chiplet-check: allow(no-panic)\n\
                    fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n\
                    fn g(x: Option<u32>) -> u32 { x.unwrap() }";
        let f = lint_source("crates/mem/src/x.rs", leak);
        assert_eq!(f.len(), 2, "{f:?}");
        assert_eq!((f[0].rule, f[0].line), ("unused-allow", 1));
        assert_eq!((f[1].rule, f[1].line), ("no-panic", 3));
    }

    #[test]
    fn allow_file_pragma_covers_whole_file() {
        let src = "// chiplet-check: allow-file(no-panic) — CLI support crate\n\
                   fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
                   fn g(x: Option<u32>) -> u32 { x.expect(\"set\") }";
        assert!(lint_source("crates/mem/src/x.rs", src).is_empty());
    }

    #[test]
    fn raw_strings_and_nested_comments_hide_rule_triggers() {
        // Rule triggers quoted inside a raw string or a nested block
        // comment must not fire; the real unwrap after them must, at the
        // correct (line-synced) span.
        let src = "fn f() -> &'static str {\n\
                   \x20   r#\"std::time::Instant::now() .unwrap() \"quoted\" TODO bare\"#\n\
                   }\n\
                   /* nested /* std::thread::spawn(std::env::var) */ .expect( */\n\
                   fn g(x: Option<u32>) -> u32 { x.unwrap() }";
        let f = lint_source("crates/sim/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!((f[0].rule, f[0].line), ("no-panic", 5));
    }

    #[test]
    fn unused_allow_flags_dead_and_unknown_pragmas() {
        // A pragma whose rule never fires on its covered line is dead.
        let dead = "// chiplet-check: allow(no-panic) — nothing panics here\n\
                    fn f(a: u32) -> u32 { a + 1 }";
        let f = lint_source("crates/mem/src/x.rs", dead);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!((f[0].rule, f[0].line), ("unused-allow", 1));
        assert!(
            f[0].message.contains("suppresses no finding"),
            "{}",
            f[0].message
        );

        // An unknown rule id can never suppress anything; say so.
        let unknown = "// chiplet-check: allow(no-painc)\n\
                       fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        let f = lint_source("crates/mem/src/x.rs", unknown);
        assert_eq!(f.len(), 2, "{f:?}");
        assert_eq!(f[0].rule, "unused-allow");
        assert!(f[0].message.contains("no known rule"), "{}", f[0].message);
        assert_eq!(f[1].rule, "no-panic");

        // A dead file-scope pragma is reported at its own line.
        let dead_file = "// chiplet-check: allow-file(sim-thread)\n\
                         fn f(a: u32) -> u32 { a }";
        let f = lint_source("crates/sim/src/x.rs", dead_file);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(
            f[0].message.contains("allow-file(sim-thread)"),
            "{}",
            f[0].message
        );
    }

    #[test]
    fn unused_allow_is_not_suppressible() {
        // Both pragmas are dead, and the first cannot excuse the second.
        let src = "// chiplet-check: allow(unused-allow)\n\
                   // chiplet-check: allow(no-panic)\n\
                   fn f(a: u32) -> u32 { a }";
        let f = lint_source("crates/mem/src/x.rs", src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.rule == "unused-allow"));
    }

    #[test]
    fn live_pragmas_are_not_flagged_unused() {
        // One pragma suppressing two same-line candidates is used once
        // and silent; a file pragma used anywhere in the file is silent.
        let line = "fn f(a: Option<u32>, b: Option<u32>) -> u32 \
                    { a.unwrap() + b.unwrap() } // chiplet-check: allow(no-panic) — invariant";
        assert!(lint_source("crates/mem/src/x.rs", line).is_empty());
        let file = "// chiplet-check: allow-file(no-panic) — abort-by-contract crate\n\
                    fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
                    fn g(a: u32) -> u32 { a }";
        assert!(lint_source("crates/mem/src/x.rs", file).is_empty());
        // A line pragma shadowed by a live file pragma still counts as
        // used (both match the same finding; neither is reported).
        let shadowed = "// chiplet-check: allow-file(no-panic)\n\
                        // chiplet-check: allow(no-panic)\n\
                        fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        assert!(lint_source("crates/mem/src/x.rs", shadowed).is_empty());
    }

    #[test]
    fn doc_quoted_pragma_examples_are_not_pragmas() {
        // Prose quoting the pragma syntax (nested `//` as in this very
        // module's docs) must not register as a dead pragma.
        let src = "//! ```text\n\
                   //! // chiplet-check: allow(no-panic) — why\n\
                   //! ```\n\
                   /// honors `// chiplet-check: allow(<rule>)` pragmas\n\
                   pub fn f(a: u32) -> u32 { a }";
        assert!(lint_source("crates/mem/src/x.rs", src).is_empty());
    }

    #[test]
    fn findings_dedupe_per_line_and_sort() {
        let src = "fn f(a: Option<u32>, b: Option<u32>) -> u32 { a.unwrap() + b.unwrap() }";
        let f = lint_source("crates/mem/src/x.rs", src);
        assert_eq!(f.len(), 1, "one finding per (rule, line)");
    }
}
