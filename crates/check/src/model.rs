//! Exhaustive model checker for the CCT (paper Figure 6) state machine.
//!
//! The checker drives the *real* `cpelide::table::ChipletCoherenceTable` —
//! not a re-implementation — through every reachable state under a bounded
//! but complete action alphabet, for N ∈ {2, 3, 4} chiplets × 2 arrays.
//! States are canonicalized through the table's public snapshot view
//! (rows + the persistent first-touch home log, which outlives row
//! residency and therefore belongs in the state key) and explored by BFS
//! until the frontier is empty, so every state the alphabet can produce is
//! visited exactly once.
//!
//! The action alphabet is race-free by construction (the paper's CCT is
//! only defined for data-race-free kernels): per launch, a structure's
//! per-chiplet ranges are either pairwise disjoint partitions, a single
//! writer, or arbitrary concurrent readers.
//!
//! On every transition the checker asserts four safety properties:
//!
//! 1. **Single un-flushed writer (write/write coherence):** a local write
//!    never overlaps dirty lines another chiplet was allowed to keep — a
//!    lost-update hazard, since the stale dirty line could later be
//!    flushed over the newer data. This is the sound statement of the
//!    paper's "one Dirty owner" at the metadata level: the naive "at most
//!    one chiplet Dirty per entry" is intentionally false for CPElide (a
//!    partitioned write leaves every chiplet Dirty on disjoint slices),
//!    and even "no two Dirty chiplets with overlapping cacheable ranges"
//!    is false, because tracked ranges are over-approximations — a
//!    flushed chiplet keeps its wide tracked range while Valid and may
//!    re-dirty only a slice of it.
//! 2. **Stale-needs-acquire:** a chiplet that was Stale on a structure is
//!    never granted local access to it without appearing in the launch's
//!    acquire set.
//! 3. **No unreachable dirty data:** if a chiplet holds Dirty lines and
//!    another chiplet's launch range overlaps them, the holder appears in
//!    the release set (or the acquire set — an acquire flushes before it
//!    invalidates); an elided release must mean no other chiplet can read
//!    the lines it skipped flushing.
//! 4. **Figure 6 legality, cross-validated:** every state transition the
//!    table applies is re-checked against `chiplet_obs::audit::legal`, an
//!    independent transcription of the Figure 6 relation — both through
//!    the table's attached auditor and by replaying the transition log
//!    here. A panic inside `prepare_launch` is also caught and reported
//!    as a violation.

use chiplet_harness::json::Json;
use chiplet_mem::addr::{ChipletId, LINES_PER_PAGE};
use chiplet_mem::array::AccessMode;
use chiplet_obs::audit::{legal, STATE_DIRTY, STATE_STALE};
use cpelide::api::{ranges_overlap, KernelLaunchInfo};
use cpelide::table::{ChipletCoherenceTable, EntrySnapshot, SyncActions};
use std::collections::{BTreeSet, VecDeque};
use std::fmt::Write as _;
use std::ops::Range;

/// Hard cap on visited states per system size: the reachable space is
/// finite (every tracked/home range lives in a small union lattice over
/// page-aligned slices), so hitting this cap means the model is wrong —
/// it is reported as a violation instead of hanging CI.
const STATE_LIMIT: usize = 500_000;

/// How many violation descriptions to keep verbatim (the census always
/// carries the full count).
const MAX_REPORTED: usize = 8;

/// `(span, mode, per-chiplet ranges)` of one labeled structure.
type StructureSpec = (Range<u64>, AccessMode, Vec<Option<Range<u64>>>);

/// One launch from the action alphabet.
#[derive(Debug, Clone)]
struct Action {
    name: String,
    /// One [`StructureSpec`] per labeled structure.
    structures: Vec<StructureSpec>,
}

impl Action {
    fn launch(&self, n: usize) -> KernelLaunchInfo {
        let scheduled = (0..n)
            .filter(|&j| self.structures.iter().any(|(_, _, rs)| rs[j].is_some()))
            .map(|j| ChipletId::new(j as u8));
        let mut b = KernelLaunchInfo::builder(0, scheduled);
        for (span, mode, ranges) in &self.structures {
            b = b.structure(span.start, span.end, *mode, ranges.clone());
        }
        b.build()
    }
}

/// Page-aligned slice `j` of the `n`-page array at `base`.
fn slice(base: u64, j: usize) -> Range<u64> {
    base + j as u64 * LINES_PER_PAGE..base + (j as u64 + 1) * LINES_PER_PAGE
}

/// The complete action alphabet for an `n`-chiplet system over two
/// disjoint arrays (each `n` pages, so partition slices are page-aligned).
fn alphabet(n: usize) -> Vec<Action> {
    let bases = [0u64, 1024 * LINES_PER_PAGE];
    let span = |base: u64| base..base + n as u64 * LINES_PER_PAGE;
    let mut actions = Vec::new();
    for (ai, &base) in bases.iter().enumerate() {
        let name = |op: &str| format!("{op}-{}", (b'A' + ai as u8) as char);
        let partition: Vec<Option<Range<u64>>> = (0..n).map(|j| Some(slice(base, j))).collect();
        // Concurrent whole-array readers, restricted to the two
        // representative chiplets: letting every chiplet track full-array
        // ranges makes the reachable range/home lattice explode
        // combinatorially at n ≥ 3 without reaching new transition kinds.
        let all_full: Vec<Option<Range<u64>>> =
            (0..n).map(|j| (j < 2).then(|| span(base))).collect();
        actions.push(Action {
            name: name("part-write"),
            structures: vec![(span(base), AccessMode::ReadWrite, partition.clone())],
        });
        actions.push(Action {
            name: name("part-read"),
            structures: vec![(span(base), AccessMode::ReadOnly, partition)],
        });
        actions.push(Action {
            name: name("shared-read"),
            structures: vec![(span(base), AccessMode::ReadOnly, all_full)],
        });
        // Whole-array accesses by two representative chiplets. At n = 2
        // this is every chiplet; at n ≥ 3 chiplets beyond the first two
        // are symmetric bystanders that still traverse every Figure 6
        // edge (local via the partitioned/shared actions, remote/stale/
        // flush/invalidate via chiplet 0 and 1's full accesses) — giving
        // a full-coverage alphabet whose reachable space stays tractable.
        for j in 0..n.min(2) {
            let solo: Vec<Option<Range<u64>>> =
                (0..n).map(|k| (k == j).then(|| span(base))).collect();
            actions.push(Action {
                name: format!("{}-c{j}", name("full-write")),
                structures: vec![(span(base), AccessMode::ReadWrite, solo.clone())],
            });
            actions.push(Action {
                name: format!("{}-c{j}", name("full-read")),
                structures: vec![(span(base), AccessMode::ReadOnly, solo)],
            });
        }
    }
    // Multi-structure launches exercise the whole-cache side-effect paths
    // (a release/acquire generated for one structure flushes the other).
    let partition_of =
        |base: u64| -> Vec<Option<Range<u64>>> { (0..n).map(|j| Some(slice(base, j))).collect() };
    actions.push(Action {
        name: "part-write-AB".to_owned(),
        structures: bases
            .iter()
            .map(|&b| (span(b), AccessMode::ReadWrite, partition_of(b)))
            .collect(),
    });
    actions.push(Action {
        name: "shared-read-AB".to_owned(),
        structures: bases
            .iter()
            .map(|&b| {
                let all: Vec<Option<Range<u64>>> =
                    (0..n).map(|j| (j < 2).then(|| span(b))).collect();
                (span(b), AccessMode::ReadOnly, all)
            })
            .collect(),
    });
    actions
}

/// Canonical key for a table state: sorted row snapshots plus the sorted
/// home log. Excludes `last_use`/stats/audit tallies, which cannot affect
/// behavior at these bounds (capacity 64 with ≤ 2 live rows means the
/// LRU eviction path is unreachable).
fn state_key(t: &ChipletCoherenceTable) -> String {
    let mut s = String::new();
    let opt = |s: &mut String, r: &Option<Range<u64>>| match r {
        Some(r) => {
            let _ = write!(s, "{}-{}", r.start, r.end);
        }
        None => s.push('_'),
    };
    for row in t.snapshot() {
        let _ = write!(s, "[{}-{} {:?}", row.span.start, row.span.end, row.mode);
        for j in 0..row.states.len() {
            let _ = write!(s, " {}:", row.states[j].encode());
            opt(&mut s, &row.ranges[j]);
            s.push('/');
            opt(&mut s, &row.home_ranges[j]);
        }
        s.push(']');
    }
    s.push('|');
    for (span, homes) in t.home_log_snapshot() {
        let _ = write!(s, "({}-{}", span.start, span.end);
        for h in &homes {
            s.push(' ');
            opt(&mut s, h);
        }
        s.push(')');
    }
    s
}

/// Exploration results for one system size.
#[derive(Debug, Clone)]
pub struct Census {
    /// System size checked.
    pub chiplets: usize,
    /// Action alphabet size.
    pub actions: usize,
    /// Distinct reachable states (including the empty initial table).
    pub states: usize,
    /// Transitions explored (`states × actions` when the cap is not hit).
    pub transitions: usize,
    /// Maximum BFS depth at which a new state appeared.
    pub max_depth: usize,
    /// Maximum live table rows in any reachable state.
    pub max_live_entries: usize,
    /// Transitions requiring no synchronization at all (elisions whose
    /// safety the invariants vouch for).
    pub elided_transitions: usize,
    /// Whole-L2 acquires generated across all transitions.
    pub acquires_issued: u64,
    /// Whole-L2 releases generated across all transitions.
    pub releases_issued: u64,
    /// Total invariant violations (0 for a sound table).
    pub violation_count: usize,
    /// First few violation descriptions.
    pub violations: Vec<String>,
}

impl Census {
    fn violation(&mut self, msg: String) {
        if self.violations.len() < MAX_REPORTED {
            self.violations.push(msg);
        }
        self.violation_count += 1;
    }
}

/// Checks invariants 1–3 for one transition; invariant 4 is checked by
/// the caller from the audit log. All three reason about the *pre*-launch
/// snapshot against the launch's declared ranges and the sync decision:
/// a chiplet's dirty lines survive phase 2 un-flushed exactly when it is
/// in neither the release nor the acquire set (an acquire flushes before
/// it invalidates).
fn check_invariants(
    pre: &[EntrySnapshot],
    action: &Action,
    sync: &SyncActions,
    n: usize,
    census: &mut Census,
) {
    let flushed = |k: usize| {
        let ck = ChipletId::new(k as u8);
        sync.releases.contains(&ck) || sync.acquires.contains(&ck)
    };
    // Invariant 1: single un-flushed writer. For every local write range,
    // no *other* chiplet may retain overlapping dirty lines through the
    // launch (its stale dirty copy could later flush over newer data).
    for (span, mode, rs) in &action.structures {
        if !mode.writes() {
            continue;
        }
        for row in pre {
            if !ranges_overlap(span, &row.span) {
                continue;
            }
            for (j, write) in rs.iter().enumerate() {
                let Some(write) = write else { continue };
                for k in 0..n {
                    if k == j || row.states[k].encode() != STATE_DIRTY || flushed(k) {
                        continue;
                    }
                    let Some(dirty) = row.cacheable(ChipletId::new(k as u8)) else {
                        continue;
                    };
                    if ranges_overlap(write, &dirty) {
                        census.violation(format!(
                            "[n={n}] action {}: chiplet {j} writes {write:?} \
                             of {:?} while chiplet {k} keeps un-flushed \
                             dirty lines {dirty:?} (lost-update hazard)",
                            action.name, row.span
                        ));
                    }
                }
            }
        }
    }
    for row in pre {
        for j in 0..n {
            let cj = ChipletId::new(j as u8);
            let state = row.states[j].encode();
            if state == STATE_STALE {
                let touches = action
                    .structures
                    .iter()
                    .any(|(span, _, rs)| rs[j].is_some() && ranges_overlap(span, &row.span));
                if touches && !sync.acquires.contains(&cj) {
                    census.violation(format!(
                        "[n={n}] action {}: chiplet {j} was Stale on \
                         {:?} but got local access without an acquire",
                        action.name, row.span
                    ));
                }
            }
            if state == STATE_DIRTY {
                let Some(dirty) = row.cacheable(cj) else {
                    continue;
                };
                let other_reads = action.structures.iter().any(|(span, _, rs)| {
                    ranges_overlap(span, &row.span)
                        && rs.iter().enumerate().any(|(k, r)| {
                            k != j && r.as_ref().is_some_and(|r| ranges_overlap(r, &dirty))
                        })
                });
                if other_reads && !flushed(j) {
                    census.violation(format!(
                        "[n={n}] action {}: chiplet {j} held dirty lines \
                         {dirty:?} of {:?} that another chiplet accesses, \
                         but its release was elided",
                        action.name, row.span
                    ));
                }
            }
        }
    }
}

/// Exhaustively explores the reachable CCT state space for an `n`-chiplet
/// system and returns the census.
pub fn check_system(n: usize) -> Census {
    explore(n, STATE_LIMIT, true)
}

/// BFS core. `cap` bounds visited states; exceeding it is a violation
/// only when `overflow_is_violation` (the unit tests use a small cap as
/// a deliberately partial but fast exploration — CI's `--model-check`
/// run is the exhaustive one).
fn explore(n: usize, cap: usize, overflow_is_violation: bool) -> Census {
    let actions = alphabet(n);
    let mut census = Census {
        chiplets: n,
        actions: actions.len(),
        states: 0,
        transitions: 0,
        max_depth: 0,
        max_live_entries: 0,
        elided_transitions: 0,
        acquires_issued: 0,
        releases_issued: 0,
        violation_count: 0,
        violations: Vec::new(),
    };

    let initial = ChipletCoherenceTable::new(n);
    let mut visited: BTreeSet<String> = BTreeSet::new();
    visited.insert(state_key(&initial));
    let mut frontier: VecDeque<(ChipletCoherenceTable, usize)> = VecDeque::new();
    frontier.push_back((initial, 0));
    census.states = 1;

    while let Some((state, depth)) = frontier.pop_front() {
        census.max_live_entries = census.max_live_entries.max(state.live_entries());
        for action in &actions {
            census.transitions += 1;
            let info = action.launch(n);
            let pre = state.snapshot();
            let mut next = state.clone();
            // A fresh auditor per transition keeps the Figure 6 log local
            // to this edge (and bounded), instead of accumulating along
            // the whole BFS path.
            next.enable_audit(true);
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let sync = next.prepare_launch(&info);
                (next, sync)
            }));
            let (next, sync) = match outcome {
                Ok(v) => v,
                Err(payload) => {
                    let msg = payload
                        .downcast_ref::<String>()
                        .map(String::as_str)
                        .or_else(|| payload.downcast_ref::<&str>().copied())
                        .unwrap_or("non-string panic payload");
                    census.violation(format!(
                        "[n={n}] action {} panicked in prepare_launch: {msg}",
                        action.name
                    ));
                    continue;
                }
            };
            // Invariant 4: the table's own auditor plus an independent
            // replay of its log against the Figure 6 relation.
            if let Some(a) = next.auditor() {
                if a.violations() != 0 {
                    census.violation(format!(
                        "[n={n}] action {}: auditor flagged {} illegal \
                         transition(s); first: {}",
                        action.name,
                        a.violations(),
                        a.first_violation()
                            .map(|e| e.to_string())
                            .unwrap_or_default()
                    ));
                }
                for tr in a.log() {
                    if legal(tr.from, tr.event) != Some(tr.to) {
                        census.violation(format!(
                            "[n={n}] action {}: transition disagrees with \
                             chiplet_obs::audit::legal: {tr}",
                            action.name
                        ));
                    }
                }
            }
            check_invariants(&pre, action, &sync, n, &mut census);
            if sync.is_empty() {
                census.elided_transitions += 1;
            }
            census.acquires_issued += sync.acquires.len() as u64;
            census.releases_issued += sync.releases.len() as u64;

            if visited.insert(state_key(&next)) {
                census.states += 1;
                census.max_depth = census.max_depth.max(depth + 1);
                if census.states > cap {
                    if overflow_is_violation {
                        census.violation(format!(
                            "[n={n}] state space exceeded the {cap}-state \
                             cap; the finiteness argument is broken"
                        ));
                    }
                    return census;
                }
                frontier.push_back((next, depth + 1));
            }
        }
    }
    census
}

/// Runs the checker for every bound and assembles the validated census
/// report.
pub fn run(bounds: &[usize]) -> (Vec<Census>, Json) {
    let censuses: Vec<Census> = bounds.iter().map(|&n| check_system(n)).collect();
    let json = census_json(&censuses);
    (censuses, json)
}

/// The JSON census document for `results/CHECK_model.json`.
pub fn census_json(censuses: &[Census]) -> Json {
    let systems: Vec<Json> = censuses
        .iter()
        .map(|c| {
            Json::object()
                .with("chiplets", c.chiplets as u64)
                .with("actions", c.actions as u64)
                .with("states", c.states as u64)
                .with("transitions", c.transitions as u64)
                .with("max_depth", c.max_depth as u64)
                .with("max_live_entries", c.max_live_entries as u64)
                .with("elided_transitions", c.elided_transitions as u64)
                .with("acquires_issued", c.acquires_issued)
                .with("releases_issued", c.releases_issued)
                .with("violations", c.violation_count as u64)
                .with(
                    "violation_samples",
                    c.violations
                        .iter()
                        .map(|v| Json::from(v.clone()))
                        .collect::<Vec<Json>>(),
                )
        })
        .collect();
    Json::object()
        .with("tool", "chiplet-check")
        .with("mode", "model-check")
        .with(
            "invariants",
            vec![
                Json::from("single-unflushed-writer"),
                Json::from("stale-needs-acquire"),
                Json::from("no-unreachable-dirty-data"),
                Json::from("figure6-legality-cross-validated"),
            ],
        )
        .with("arrays", 2u64)
        .with("systems", systems)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_chiplet_space_prefix_is_clean_and_nontrivial() {
        // A capped exploration keeps the debug-mode test fast; the
        // exhaustive run (39k/137k states per bound, zero violations)
        // is CI's release-mode `--model-check` step.
        let c = explore(2, 2_000, false);
        assert_eq!(c.violation_count, 0, "{:?}", c.violations);
        assert!(c.states > 2_000, "suspiciously small space: {}", c.states);
        assert!(c.elided_transitions > 0, "no elisions ever proven safe");
        assert!(c.max_live_entries == 2, "both arrays must go live");
    }

    #[test]
    fn alphabet_is_race_free() {
        for n in 2..=4 {
            for a in alphabet(n) {
                for (_, mode, rs) in &a.structures {
                    let writers = rs.iter().flatten().count();
                    if *mode == AccessMode::ReadWrite && writers > 1 {
                        // Multiple writers must be pairwise disjoint.
                        for j in 0..rs.len() {
                            for k in j + 1..rs.len() {
                                if let (Some(a), Some(b)) = (&rs[j], &rs[k]) {
                                    assert!(!ranges_overlap(a, b), "racy write action {a:?}/{b:?}");
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn census_json_validates() {
        let c = check_system(2);
        let text = census_json(&[c]).render();
        chiplet_harness::json::validate(&text).unwrap(); // chiplet-check: allow(no-panic)
    }

    #[test]
    fn state_key_distinguishes_home_log() {
        // Two tables with identical rows but different home logs must not
        // merge: homes outlive residency and change future elisions.
        let t1 = ChipletCoherenceTable::new(2);
        let mut t2 = ChipletCoherenceTable::new(2);
        let info = KernelLaunchInfo::builder(0, [ChipletId::new(0)])
            .structure(
                0,
                2 * LINES_PER_PAGE,
                AccessMode::ReadOnly,
                [Some(0..2 * LINES_PER_PAGE), None],
            )
            .build();
        t2.prepare_launch(&info);
        // Invalidate chiplet 0 via a remote write + re-read cycle would be
        // long; instead just compare non-empty vs empty logs directly.
        assert_ne!(state_key(&t1), state_key(&t2));
        assert!(!t2.home_log_snapshot().is_empty());
    }
}
