//! Shared model-checking core for the CCT (paper Figure 6) state machine,
//! plus the exhaustive BFS engine.
//!
//! Both engines — [`Bfs`] here and [`crate::dpor::Dpor`] — drive the
//! *real* `cpelide::table::ChipletCoherenceTable` (never a
//! re-implementation) through states reachable under a bounded but
//! complete action alphabet ([`crate::alphabet`]), behind one
//! [`Explorer`] seam. States are canonicalized through the table's
//! public snapshot view (rows plus the persistent first-touch home log,
//! which outlives row residency and therefore belongs in the state key).
//!
//! On every transition (`step`) the checker asserts four safety
//! properties:
//!
//! 1. **Single un-flushed writer (write/write coherence):** a local write
//!    never overlaps dirty lines another chiplet was allowed to keep — a
//!    lost-update hazard, since the stale dirty line could later be
//!    flushed over the newer data. This is the sound statement of the
//!    paper's "one Dirty owner" at the metadata level: the naive "at most
//!    one chiplet Dirty per entry" is intentionally false for CPElide (a
//!    partitioned write leaves every chiplet Dirty on disjoint slices),
//!    and even "no two Dirty chiplets with overlapping cacheable ranges"
//!    is false, because tracked ranges are over-approximations — a
//!    flushed chiplet keeps its wide tracked range while Valid and may
//!    re-dirty only a slice of it. (Under the racy alphabet overlapping
//!    *same-launch* writers are exempt from each other — the race itself
//!    is undefined behavior at the data level — but both must still be
//!    flushed before anyone else looks, which invariant 3 enforces.)
//! 2. **Stale-needs-acquire:** a chiplet that was Stale on a structure is
//!    never granted local access to it without appearing in the launch's
//!    acquire set.
//! 3. **No unreachable dirty data:** if a chiplet holds Dirty lines and
//!    another chiplet's launch range overlaps them, the holder appears in
//!    the release set (or the acquire set — an acquire flushes before it
//!    invalidates); an elided release must mean no other chiplet can read
//!    the lines it skipped flushing.
//! 4. **Figure 6 legality, cross-validated:** every state transition the
//!    table applies is re-checked against `chiplet_obs::audit::legal`, an
//!    independent transcription of the Figure 6 relation — both through
//!    the table's attached auditor and by replaying the transition log
//!    here. A panic inside `prepare_launch` is also caught and reported
//!    as a violation.
//!
//! The [`Mutation`] seam deliberately corrupts what the invariant layer
//! sees — emulating known-bad table variants (a skipped flush edge, an
//! unconditional release elision, a dropped invalidation, an illegal
//! Figure 6 edge) — so the mutation-kill suite can prove each invariant
//! actually fires on the bug class it claims to catch.

use crate::alphabet::{build, Action, AlphabetSpec};
use chiplet_harness::json::Json;
use chiplet_mem::addr::ChipletId;
use chiplet_obs::audit::{legal, STATE_DIRTY, STATE_STALE};
use cpelide::api::ranges_overlap;
use cpelide::table::{ChipletCoherenceTable, EntrySnapshot, SyncActions};
use std::collections::{BTreeSet, VecDeque};
use std::fmt;
use std::fmt::Write as _;
use std::ops::Range;

/// Hard cap on visited states per system size: the reachable space is
/// finite (every tracked/home range lives in a small union lattice over
/// page-aligned slices), so hitting this cap means the model is wrong —
/// it is reported as a violation instead of hanging CI.
pub const STATE_LIMIT: usize = 500_000;

/// How many violation descriptions to keep verbatim (the census always
/// carries the full count).
const MAX_REPORTED: usize = 8;

/// The safety properties the checker asserts, used to classify
/// violations (and to let the mutation-kill suite assert that each
/// invariant fires on the bug class it exists for).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Invariant {
    /// Invariant 1: single un-flushed writer.
    SingleWriter,
    /// Invariant 2: stale-needs-acquire.
    StaleNeedsAcquire,
    /// Invariant 3: no unreachable dirty data.
    UnreachableDirty,
    /// Invariant 4: Figure 6 legality (auditor, independent replay, or a
    /// caught panic inside `prepare_launch`).
    Fig6Legality,
    /// The exploration itself broke its finiteness argument (state cap).
    Finiteness,
}

impl Invariant {
    /// Census name of the invariant.
    pub fn name(self) -> &'static str {
        match self {
            Invariant::SingleWriter => "single-unflushed-writer",
            Invariant::StaleNeedsAcquire => "stale-needs-acquire",
            Invariant::UnreachableDirty => "no-unreachable-dirty-data",
            Invariant::Fig6Legality => "figure6-legality-cross-validated",
            Invariant::Finiteness => "finite-state-space",
        }
    }
}

/// One invariant violation found during exploration.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which safety property failed.
    pub invariant: Invariant,
    /// Human-readable description with the acting launch and ranges.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.invariant.name(), self.message)
    }
}

/// Checker self-test seam: a deliberate corruption of what the invariant
/// layer observes, emulating a known-bad table variant. Used by the
/// mutation-kill suite to prove the checker detects what it claims to
/// detect — the production table must never be run with one of these in
/// a census build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Drop one edge from every non-empty release set (a table that
    /// "forgets" one required flush).
    SkipFlushEdge,
    /// Clear the release set entirely (a table that elides every release
    /// unconditionally).
    ElideReleases,
    /// Clear the acquire set entirely (a table that never invalidates).
    DropInvalidations,
    /// Corrupt the first audited transition's destination state before
    /// the independent Figure 6 replay (a table whose state machine takes
    /// an illegal edge).
    CorruptTransition,
}

/// Exploration results for one engine × alphabet configuration.
#[derive(Debug, Clone)]
pub struct Census {
    /// Engine that produced this census (`"bfs"` or `"dpor"`).
    pub engine: &'static str,
    /// System size checked.
    pub chiplets: usize,
    /// Disjoint arrays in the alphabet.
    pub arrays: usize,
    /// Whether the racy two-stream actions were included.
    pub racy: bool,
    /// Action alphabet size.
    pub actions: usize,
    /// Distinct reachable states visited (including the empty initial
    /// table).
    pub states: usize,
    /// Transitions executed (`states × actions` for BFS; strictly fewer
    /// for DPOR on any shared configuration).
    pub transitions: usize,
    /// Maximum depth (boundaries from the initial table) at which a new
    /// state appeared.
    pub max_depth: usize,
    /// Maximum live table rows in any reachable state.
    pub max_live_entries: usize,
    /// Transitions requiring no synchronization at all (elisions whose
    /// safety the invariants vouch for).
    pub elided_transitions: usize,
    /// Whole-L2 acquires generated across all transitions.
    pub acquires_issued: u64,
    /// Whole-L2 releases generated across all transitions.
    pub releases_issued: u64,
    /// DPOR only: actions skipped because they were in a sleep set.
    pub sleep_skips: usize,
    /// DPOR only: node expansions skipped because the state was already
    /// explored under a sleep set subsumed by the current one.
    pub node_prunes: usize,
    /// Depth bound the exploration ran under (0 = unbounded, run to the
    /// natural closure of the reachable space).
    pub depth_cap: usize,
    /// Total invariant violations (0 for a sound table).
    pub violation_count: usize,
    /// Bitmask of [`Invariant`]s that fired at least once — unlike the
    /// samples below, never truncated, so it is order-independent across
    /// engines.
    pub fired_mask: u8,
    /// First few violations verbatim.
    pub violations: Vec<Violation>,
}

impl Census {
    pub(crate) fn new(
        engine: &'static str,
        spec: &AlphabetSpec,
        actions: usize,
        depth_cap: usize,
    ) -> Self {
        Census {
            engine,
            chiplets: spec.chiplets,
            arrays: spec.arrays,
            racy: spec.racy,
            actions,
            states: 0,
            transitions: 0,
            max_depth: 0,
            max_live_entries: 0,
            elided_transitions: 0,
            acquires_issued: 0,
            releases_issued: 0,
            sleep_skips: 0,
            node_prunes: 0,
            depth_cap,
            violation_count: 0,
            fired_mask: 0,
            violations: Vec::new(),
        }
    }

    pub(crate) fn violation(&mut self, invariant: Invariant, message: String) {
        self.fired_mask |= 1 << invariant as u8;
        if self.violations.len() < MAX_REPORTED {
            self.violations.push(Violation { invariant, message });
        }
        self.violation_count += 1;
    }

    /// True if `invariant` fired at least once during the exploration
    /// (tracked exhaustively via [`Census::fired_mask`], not just the
    /// sampled violations).
    pub fn fired(&self, invariant: Invariant) -> bool {
        self.fired_mask >> invariant as u8 & 1 == 1
    }

    /// Census names of every invariant that fired, sorted — an
    /// order-independent verdict summary two engines can be compared on.
    pub fn fired_kinds(&self) -> Vec<&'static str> {
        let mut kinds: Vec<&'static str> = [
            Invariant::SingleWriter,
            Invariant::StaleNeedsAcquire,
            Invariant::UnreachableDirty,
            Invariant::Fig6Legality,
            Invariant::Finiteness,
        ]
        .into_iter()
        .filter(|&i| self.fired(i))
        .map(Invariant::name)
        .collect();
        kinds.sort_unstable();
        kinds
    }
}

/// One engine's full exploration result: the census plus the set of
/// visited state fingerprints, for cross-engine coverage checks.
#[derive(Debug, Clone)]
pub struct Exploration {
    /// Aggregate counters and violations.
    pub census: Census,
    /// 128-bit FNV-1a fingerprints of every distinct visited state.
    pub visited: BTreeSet<u128>,
}

/// A model-checking engine: explores the CCT state space induced by an
/// alphabet spec and returns the census plus visited-state fingerprints.
/// The seam the BFS and DPOR engines share — and the one a HALCONE or
/// multi-stream table model can later plug into.
pub trait Explorer {
    /// Engine name recorded in the census (`"bfs"`, `"dpor"`).
    fn engine(&self) -> &'static str;
    /// Runs the exploration.
    fn explore(&self, spec: &AlphabetSpec) -> Exploration;
}

/// Canonical key for a table state: sorted row snapshots plus the sorted
/// home log. Excludes `last_use`/stats/audit tallies, which cannot affect
/// behavior at these bounds (capacity 64 with a handful of live rows
/// means the LRU eviction path is unreachable).
pub(crate) fn state_key(t: &ChipletCoherenceTable) -> String {
    let mut s = String::new();
    let opt = |s: &mut String, r: &Option<Range<u64>>| match r {
        Some(r) => {
            let _ = write!(s, "{}-{}", r.start, r.end);
        }
        None => s.push('_'),
    };
    for row in t.snapshot() {
        let _ = write!(s, "[{}-{} {:?}", row.span.start, row.span.end, row.mode);
        for j in 0..row.states.len() {
            let _ = write!(s, " {}:", row.states[j].encode());
            opt(&mut s, &row.ranges[j]);
            s.push('/');
            opt(&mut s, &row.home_ranges[j]);
        }
        s.push(']');
    }
    s.push('|');
    for (span, homes) in t.home_log_snapshot() {
        let _ = write!(s, "({}-{}", span.start, span.end);
        for h in &homes {
            s.push(' ');
            opt(&mut s, h);
        }
        s.push(')');
    }
    s
}

/// 128-bit FNV-1a over the canonical state key. Collisions at the
/// explored scales (≤ tens of millions of states) are vanishingly
/// unlikely (≈ n²/2¹²⁹), and a collision can only ever *merge* two
/// states — shrinking the census, never hiding a violation on an
/// executed transition.
pub(crate) fn fingerprint(t: &ChipletCoherenceTable) -> u128 {
    const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013B;
    let mut h = OFFSET;
    for b in state_key(t).as_bytes() {
        h ^= u128::from(*b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Checks invariants 1–3 for one transition; invariant 4 is checked by
/// [`step`] from the audit log. All three reason about the *pre*-launch
/// snapshot against the launch's declared ranges and the sync decision:
/// a chiplet's dirty lines survive phase 2 un-flushed exactly when it is
/// in neither the release nor the acquire set (an acquire flushes before
/// it invalidates).
fn check_invariants(
    pre: &[EntrySnapshot],
    action: &Action,
    sync: &SyncActions,
    n: usize,
    census: &mut Census,
) {
    let flushed = |k: usize| {
        let ck = ChipletId::new(k as u8);
        sync.releases.contains(&ck) || sync.acquires.contains(&ck)
    };
    // Invariant 1: single un-flushed writer. For every local write range,
    // no *other* chiplet may retain overlapping dirty lines through the
    // launch (its stale dirty copy could later flush over newer data).
    // Racy same-launch co-writers are exempt from each other: the data
    // race is undefined at the line level, but their dirty metadata is
    // still covered by invariant 3 at every later boundary.
    for (span, mode, rs) in &action.structures {
        if !mode.writes() {
            continue;
        }
        for row in pre {
            if !ranges_overlap(span, &row.span) {
                continue;
            }
            for (j, write) in rs.iter().enumerate() {
                let Some(write) = write else { continue };
                for (k, co) in rs.iter().enumerate().take(n) {
                    if k == j || row.states[k].encode() != STATE_DIRTY || flushed(k) {
                        continue;
                    }
                    if action.racy && co.is_some() {
                        continue; // racy co-writer of this same launch
                    }
                    let Some(dirty) = row.cacheable(ChipletId::new(k as u8)) else {
                        continue;
                    };
                    if ranges_overlap(write, &dirty) {
                        census.violation(
                            Invariant::SingleWriter,
                            format!(
                                "[n={n}] action {}: chiplet {j} writes {write:?} \
                                 of {:?} while chiplet {k} keeps un-flushed \
                                 dirty lines {dirty:?} (lost-update hazard)",
                                action.name, row.span
                            ),
                        );
                    }
                }
            }
        }
    }
    for row in pre {
        for j in 0..n {
            let cj = ChipletId::new(j as u8);
            let state = row.states[j].encode();
            if state == STATE_STALE {
                let touches = action
                    .structures
                    .iter()
                    .any(|(span, _, rs)| rs[j].is_some() && ranges_overlap(span, &row.span));
                if touches && !sync.acquires.contains(&cj) {
                    census.violation(
                        Invariant::StaleNeedsAcquire,
                        format!(
                            "[n={n}] action {}: chiplet {j} was Stale on \
                             {:?} but got local access without an acquire",
                            action.name, row.span
                        ),
                    );
                }
            }
            if state == STATE_DIRTY {
                let Some(dirty) = row.cacheable(cj) else {
                    continue;
                };
                let other_reads = action.structures.iter().any(|(span, _, rs)| {
                    ranges_overlap(span, &row.span)
                        && rs.iter().enumerate().any(|(k, r)| {
                            k != j && r.as_ref().is_some_and(|r| ranges_overlap(r, &dirty))
                        })
                });
                if other_reads && !flushed(j) {
                    census.violation(
                        Invariant::UnreachableDirty,
                        format!(
                            "[n={n}] action {}: chiplet {j} held dirty lines \
                             {dirty:?} of {:?} that another chiplet accesses, \
                             but its release was elided",
                            action.name, row.span
                        ),
                    );
                }
            }
        }
    }
}

/// Executes one transition of the model: clones `state`, drives the real
/// table's `prepare_launch` under a fresh per-edge auditor, replays the
/// audit log against the independent Figure 6 relation, applies the
/// optional [`Mutation`], and checks invariants 1–3 against the
/// pre-snapshot. Returns the successor table and the *real* (unmutated)
/// sync decision, or `None` when `prepare_launch` panicked (recorded as
/// a violation). Shared verbatim by both engines so their verdicts can
/// only differ in *which* transitions they execute, never in how one is
/// judged.
pub(crate) fn step(
    state: &ChipletCoherenceTable,
    action: &Action,
    n: usize,
    mutation: Option<Mutation>,
    census: &mut Census,
) -> Option<(ChipletCoherenceTable, SyncActions)> {
    census.transitions += 1;
    let info = action.launch(n);
    let pre = state.snapshot();
    let mut next = state.clone();
    // A fresh auditor per transition keeps the Figure 6 log local to this
    // edge (and bounded), instead of accumulating along the whole path.
    next.enable_audit(true);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let sync = next.prepare_launch(&info);
        (next, sync)
    }));
    let (next, mut sync) = match outcome {
        Ok(v) => v,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("non-string panic payload");
            census.violation(
                Invariant::Fig6Legality,
                format!(
                    "[n={n}] action {} panicked in prepare_launch: {msg}",
                    action.name
                ),
            );
            return None;
        }
    };
    // Invariant 4: the table's own auditor plus an independent replay of
    // its log against the Figure 6 relation.
    if let Some(a) = next.auditor() {
        if a.violations() != 0 {
            census.violation(
                Invariant::Fig6Legality,
                format!(
                    "[n={n}] action {}: auditor flagged {} illegal \
                     transition(s); first: {}",
                    action.name,
                    a.violations(),
                    a.first_violation()
                        .map(|e| e.to_string())
                        .unwrap_or_default()
                ),
            );
        }
        for (i, tr) in a.log().iter().enumerate() {
            let to = if i == 0 && mutation == Some(Mutation::CorruptTransition) {
                tr.to ^ 0b01 // a known-bad state machine takes a wrong edge
            } else {
                tr.to
            };
            if legal(tr.from, tr.event) != Some(to) {
                census.violation(
                    Invariant::Fig6Legality,
                    format!(
                        "[n={n}] action {}: transition disagrees with \
                         chiplet_obs::audit::legal: {tr}",
                        action.name
                    ),
                );
            }
        }
    }
    // Mutations corrupt only what the invariant layer *sees*; the edge
    // itself returns the real sync decision, because the table already
    // applied the real flushes/invalidations inside `prepare_launch` —
    // DPOR's elision-based commutation must be judged on what actually
    // happened to the cache, or mutated runs would explore unsoundly.
    let real = sync.clone();
    match mutation {
        Some(Mutation::SkipFlushEdge) => {
            sync.releases.pop();
        }
        Some(Mutation::ElideReleases) => sync.releases.clear(),
        Some(Mutation::DropInvalidations) => sync.acquires.clear(),
        Some(Mutation::CorruptTransition) | None => {}
    }
    check_invariants(&pre, action, &sync, n, census);
    if sync.is_empty() {
        census.elided_transitions += 1;
    }
    census.acquires_issued += sync.acquires.len() as u64;
    census.releases_issued += sync.releases.len() as u64;
    Some((next, real))
}

/// The exhaustive BFS engine: visits every reachable state exactly once
/// and expands the full alphabet from each — the ground-truth census the
/// DPOR engine is differentially validated against.
#[derive(Debug, Clone)]
pub struct Bfs {
    /// Visited-state cap; exceeding it records a [`Invariant::Finiteness`]
    /// violation when `overflow_is_violation` is set.
    pub state_cap: usize,
    /// Depth bound in kernel boundaries (0 = unbounded): states at the
    /// bound are counted but not expanded. Lets the differential and
    /// property suites compare both engines over identical depth-bounded
    /// spaces.
    pub depth_cap: usize,
    /// Whether hitting the cap is a violation (census runs) or just an
    /// early stop (fast partial explorations in unit tests).
    pub overflow_is_violation: bool,
    /// Checker self-test seam; `None` for every census run.
    pub mutation: Option<Mutation>,
}

impl Bfs {
    /// The exhaustive configuration census runs use.
    pub fn exhaustive() -> Self {
        Bfs {
            state_cap: STATE_LIMIT,
            depth_cap: 0,
            overflow_is_violation: true,
            mutation: None,
        }
    }

    /// A deliberately partial but fast exploration (unit tests).
    pub fn capped(state_cap: usize) -> Self {
        Bfs {
            state_cap,
            depth_cap: 0,
            overflow_is_violation: false,
            mutation: None,
        }
    }

    /// Same exploration with a [`Mutation`] injected.
    pub fn with_mutation(mut self, m: Mutation) -> Self {
        self.mutation = Some(m);
        self
    }
}

impl Explorer for Bfs {
    fn engine(&self) -> &'static str {
        "bfs"
    }

    fn explore(&self, spec: &AlphabetSpec) -> Exploration {
        let n = spec.chiplets;
        let actions = build(spec);
        let mut census = Census::new(self.engine(), spec, actions.len(), self.depth_cap);

        let initial = ChipletCoherenceTable::new(n);
        let mut visited: BTreeSet<u128> = BTreeSet::new();
        visited.insert(fingerprint(&initial));
        let mut frontier: VecDeque<(ChipletCoherenceTable, usize)> = VecDeque::new();
        frontier.push_back((initial, 0));
        census.states = 1;

        'bfs: while let Some((state, depth)) = frontier.pop_front() {
            if self.depth_cap > 0 && depth >= self.depth_cap {
                continue; // frontier: state counted, not expanded
            }
            census.max_live_entries = census.max_live_entries.max(state.live_entries());
            for action in &actions {
                let Some((next, _)) = step(&state, action, n, self.mutation, &mut census) else {
                    continue;
                };
                if visited.insert(fingerprint(&next)) {
                    census.states += 1;
                    census.max_depth = census.max_depth.max(depth + 1);
                    if census.states > self.state_cap {
                        if self.overflow_is_violation {
                            census.violation(
                                Invariant::Finiteness,
                                format!(
                                    "[n={n}] state space exceeded the {}-state \
                                     cap; the finiteness argument is broken",
                                    self.state_cap
                                ),
                            );
                        }
                        break 'bfs;
                    }
                    frontier.push_back((next, depth + 1));
                }
            }
        }
        Exploration { census, visited }
    }
}

/// The census runs CI gates on: the exhaustive BFS at N ∈ {2,3,4} × 2
/// race-free arrays (the historical ground truth), the DPOR engine on
/// the same configurations (differential evidence: identical states and
/// verdicts, strictly fewer executed transitions), and the DPOR engine
/// at N = 6 chiplets × 3 arrays under the racy two-stream alphabet —
/// beyond BFS reach.
pub fn census_plan() -> Vec<(AlphabetSpec, Box<dyn Explorer>)> {
    let mut plan: Vec<(AlphabetSpec, Box<dyn Explorer>)> = Vec::new();
    for n in [2usize, 3, 4] {
        plan.push((
            AlphabetSpec::race_free(n, 2),
            Box::new(Bfs::exhaustive()) as Box<dyn Explorer>,
        ));
    }
    for n in [2usize, 3, 4] {
        plan.push((
            AlphabetSpec::race_free(n, 2),
            Box::new(crate::dpor::Dpor::exhaustive()),
        ));
    }
    plan.push((
        AlphabetSpec::racy(6, 3),
        Box::new(crate::dpor::Dpor::flagship()),
    ));
    plan
}

/// Runs the full census plan (optionally filtered to one engine name)
/// and assembles the validated census report.
pub fn run(engine_filter: Option<&str>) -> (Vec<Census>, Json) {
    let censuses: Vec<Census> = census_plan()
        .into_iter()
        .filter(|(_, e)| engine_filter.is_none_or(|f| f == e.engine()))
        .map(|(spec, e)| e.explore(&spec).census)
        .collect();
    let json = census_json(&censuses);
    (censuses, json)
}

/// The JSON census document for `results/CHECK_model.json`.
pub fn census_json(censuses: &[Census]) -> Json {
    let runs: Vec<Json> = censuses
        .iter()
        .map(|c| {
            Json::object()
                .with("engine", c.engine)
                .with("chiplets", c.chiplets as u64)
                .with("arrays", c.arrays as u64)
                .with("racy", c.racy)
                .with("actions", c.actions as u64)
                .with("states", c.states as u64)
                .with("transitions", c.transitions as u64)
                .with("max_depth", c.max_depth as u64)
                .with("max_live_entries", c.max_live_entries as u64)
                .with("elided_transitions", c.elided_transitions as u64)
                .with("acquires_issued", c.acquires_issued)
                .with("releases_issued", c.releases_issued)
                .with("sleep_set_prunes", (c.sleep_skips + c.node_prunes) as u64)
                .with("sleep_skips", c.sleep_skips as u64)
                .with("node_prunes", c.node_prunes as u64)
                .with("depth_cap", c.depth_cap as u64)
                .with("violations", c.violation_count as u64)
                .with(
                    "violation_samples",
                    c.violations
                        .iter()
                        .map(|v| Json::from(v.to_string()))
                        .collect::<Vec<Json>>(),
                )
        })
        .collect();
    Json::object()
        .with("tool", "chiplet-check")
        .with("mode", "model-check")
        .with(
            "invariants",
            vec![
                Json::from(Invariant::SingleWriter.name()),
                Json::from(Invariant::StaleNeedsAcquire.name()),
                Json::from(Invariant::UnreachableDirty.name()),
                Json::from(Invariant::Fig6Legality.name()),
            ],
        )
        .with("runs", runs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiplet_mem::addr::LINES_PER_PAGE;
    use chiplet_mem::array::AccessMode;
    use cpelide::api::KernelLaunchInfo;

    #[test]
    fn two_chiplet_space_prefix_is_clean_and_nontrivial() {
        // A capped exploration keeps the debug-mode test fast; the
        // exhaustive run (39k/137k states per bound, zero violations)
        // is CI's release-mode `--model-check` step.
        let x = Bfs::capped(2_000).explore(&AlphabetSpec::race_free(2, 2));
        let c = x.census;
        assert_eq!(c.violation_count, 0, "{:?}", c.violations);
        assert!(c.states > 2_000, "suspiciously small space: {}", c.states);
        assert!(c.elided_transitions > 0, "no elisions ever proven safe");
        assert!(c.max_live_entries == 2, "both arrays must go live");
        assert_eq!(x.visited.len(), c.states, "census counts visited keys");
    }

    #[test]
    fn racy_alphabet_prefix_is_clean() {
        // The racy two-stream actions must not let the production table
        // elide its way into a lost update (nor panic).
        let c = Bfs::capped(2_000).explore(&AlphabetSpec::racy(2, 2)).census;
        assert_eq!(c.violation_count, 0, "{:?}", c.violations);
        assert!(c.racy);
    }

    #[test]
    fn census_json_validates() {
        let c = Bfs::capped(500)
            .explore(&AlphabetSpec::race_free(2, 2))
            .census;
        let text = census_json(&[c]).render();
        chiplet_harness::json::validate(&text).unwrap();
    }

    #[test]
    fn state_key_distinguishes_home_log() {
        // Two tables with identical rows but different home logs must not
        // merge: homes outlive residency and change future elisions.
        let t1 = ChipletCoherenceTable::new(2);
        let mut t2 = ChipletCoherenceTable::new(2);
        let info = KernelLaunchInfo::builder(0, [ChipletId::new(0)])
            .structure(
                0,
                2 * LINES_PER_PAGE,
                AccessMode::ReadOnly,
                [Some(0..2 * LINES_PER_PAGE), None],
            )
            .build();
        t2.prepare_launch(&info);
        assert_ne!(state_key(&t1), state_key(&t2));
        assert_ne!(fingerprint(&t1), fingerprint(&t2));
        assert!(!t2.home_log_snapshot().is_empty());
    }

    #[test]
    fn racy_read_write_pair_is_detected_not_ignored() {
        // A genuinely racy *read/write* pair — the same array labeled
        // twice in one launch, stream 0 writing while stream 1 reads —
        // is beyond the CCT's contract (the reader observes mid-launch
        // staleness). The checker must surface that as a Figure 6
        // violation (caught panic on the Stale local access), never
        // explore past it silently. This is why the census alphabet's
        // racy actions are write/write: those the table must (and does)
        // handle conservatively.
        let n = 2;
        let span = 0..n as u64 * LINES_PER_PAGE;
        let mut census = Census::new("test", &AlphabetSpec::racy(n, 1), 1, 0);
        let mut table = ChipletCoherenceTable::new(n);
        // Prime chiplet 1 with a Valid copy so the racy write stales it.
        let prime = KernelLaunchInfo::builder(0, [ChipletId::new(1)])
            .structure(
                span.start,
                span.end,
                AccessMode::ReadOnly,
                [None, Some(span.clone())],
            )
            .build();
        table.prepare_launch(&prime);
        let racy_pair = Action {
            name: "racy-rw-pair".into(),
            structures: vec![
                (
                    span.clone(),
                    AccessMode::ReadWrite,
                    vec![Some(span.clone()), None],
                ),
                (
                    span.clone(),
                    AccessMode::ReadOnly,
                    vec![None, Some(span.clone())],
                ),
            ],
            arrays_touched: 1,
            racy: true,
        };
        let out = step(&table, &racy_pair, n, None, &mut census);
        assert!(
            out.is_none(),
            "the racy read/write pair must not be absorbed"
        );
        assert!(
            census.fired(Invariant::Fig6Legality),
            "expected a Figure 6 violation, got {:?}",
            census.violations
        );
    }
}
