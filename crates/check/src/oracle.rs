//! The static elision oracle: spec-level dependence analysis over every
//! registered workload, cross-checked against the real engine.
//!
//! # What it proves
//!
//! CPElide's premise is that the CP can *prove* many inter-kernel
//! boundaries need no acquire/release. This module derives that proof
//! obligation independently of the runtime CCT: it abstract-interprets
//! each kernel's `AccessPattern`/`TouchKind` footprints into the
//! page-granular interval domain of [`crate::footprint`], evolves a
//! per-(array, chiplet) dirty/cached/stale state across kernel
//! boundaries, and classifies every boundary:
//!
//! - [`Verdict::MustSync`] — a *must*-level cross-chiplet dependence
//!   (RAW/WAW on definitely-unflushed pages, or a definite stale read)
//!   exists: any sound boundary-synchronizing protocol has to perform at
//!   least one acquire/release here.
//! - [`Verdict::MayElide`] — even the *may*-level footprints admit no
//!   dependence and no launching chiplet may hold stale pages: any sync
//!   performed here is provably unnecessary (quantified as headroom).
//! - [`Verdict::Unknown`] — a may-level dependence exists but widening
//!   (irregular footprints) prevents a must-level proof either way.
//!
//! Footprint exactness comes from `chiplet_gpu::trace::line_footprint`:
//! partitioned/halo/slice/shared patterns touch exactly their hint range
//! (must = may), irregular patterns are widened (must = ∅, may = hint).
//! The two set families live at different granularities, mirroring the
//! CCT: *may*-sets are page-widened (the granularity of the CCT's
//! first-touch home claims — `page_aligned()` in `cpelide`; arrays are
//! page-aligned so widening never aliases a neighbor), while *must*-sets
//! stay line-granular, because the CCT's release/acquire overlap tests
//! run on exact hint line ranges and a must-level dependence claim has
//! to denote real data flow. Page-widening the must side would turn the
//! metadata-level false sharing of a page-straddling partition boundary
//! (any array whose lines don't divide page-aligned across chiplets,
//! e.g. n=7) into a phantom `MustSync` that the engine rightly elides.
//!
//! # The two analyses
//!
//! **Static pass** ([`analyze_static`]): evolves the state under the
//! minimal demand-driven schedule — whole-GPU sync applied exactly at
//! non-`MayElide` boundaries — and reports the classification census
//! with `file:line` diagnostics pointing at kernel definition sites
//! ([`chiplet_gpu::kernel::SpecSpan`]).
//!
//! **Differential sanitizer** ([`differential`]): replays the workload
//! through the real [`chiplet_sim::Simulator`] with the per-boundary
//! event log enabled, re-classifies each boundary in lockstep with the
//! engine's *observed* per-chiplet acquire/release/bulk-sync operations,
//! and asserts (a) soundness — no boundary the oracle marks `MustSync`
//! was elided — and (b) completeness — `MayElide` boundaries that were
//! nevertheless synced are reported as elision headroom. Feeding the
//! observed ops back into the abstract state is what makes the soundness
//! assertion exact: the engine's conservative whole-L2 syncs may
//! legitimately discharge a dependence early, and the oracle must not
//! call the later boundary `MustSync` once it has.
//!
//! HMG keeps L2s continuously coherent and performs no boundary
//! operations at all; its lockstep replay models that as an implicit
//! whole-GPU sync per round, so the soundness assertion holds vacuously
//! and headroom is zero by construction.

use crate::footprint::IntervalSet;
use chiplet_coherence::ProtocolKind;
use chiplet_gpu::dispatch::{DispatchPlan, StaticPartitionScheduler};
use chiplet_gpu::kernel::{KernelSpec, TouchKind};
use chiplet_gpu::stream::SoftwareQueue;
use chiplet_gpu::trace::line_footprint;
use chiplet_harness::json::Json;
use chiplet_mem::addr::ChipletId;
use chiplet_sim::config::SimConfig;
use chiplet_sim::engine::{effective_binding, Simulator};
use chiplet_workloads::Workload;
use std::sync::Arc;

/// The chiplet counts the oracle sweeps (the paper's 2/4 design points
/// plus the non-power-of-2 stressor that exposed the PR 3 CCT hole).
pub const CHIPLET_COUNTS: [usize; 3] = [2, 4, 7];

/// The boundary-protocol matrix of the differential sanitizer.
pub const PROTOCOLS: [ProtocolKind; 3] = [
    ProtocolKind::Baseline,
    ProtocolKind::Hmg,
    ProtocolKind::CpElide,
];

/// The kind of inter-kernel dependence behind a [`Verdict::MustSync`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepKind {
    /// Reader needs definitely-unflushed data another chiplet wrote.
    Raw,
    /// Writer overwrites pages another chiplet holds dirty.
    Waw,
    /// Launcher definitely holds stale pages it is about to read.
    StaleRead,
}

impl DepKind {
    fn label(self) -> &'static str {
        match self {
            DepKind::Raw => "RAW",
            DepKind::Waw => "WAW",
            DepKind::StaleRead => "stale-read",
        }
    }
}

/// One proved dependence: the diagnostic payload of a `MustSync`.
#[derive(Debug, Clone)]
pub struct Dep {
    /// Dependence kind.
    pub kind: DepKind,
    /// Array the dependence is on.
    pub array: String,
    /// First overlapping line range (page-widened), for the message.
    pub lines: (u64, u64),
    /// Kernel that produced the conflicting state, with its definition
    /// span (`file:line`) and the chiplet holding the state.
    pub from: String,
    /// Kernel/chiplet that needs the sync at this boundary, with span.
    pub to: String,
}

impl std::fmt::Display for Dep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} on `{}` lines {}..{}: {} -> {}",
            self.kind.label(),
            self.array,
            self.lines.0,
            self.lines.1,
            self.from,
            self.to
        )
    }
}

/// The oracle's classification of one kernel boundary.
#[derive(Debug, Clone)]
pub enum Verdict {
    /// A must-level dependence requires at least one sync op here.
    MustSync {
        /// The proved dependences (at least one).
        deps: Vec<Dep>,
    },
    /// No may-level dependence exists: sync here is provably unnecessary.
    MayElide {
        /// Human-readable proof sketch.
        proof: String,
    },
    /// May-level dependence without a must-level proof (widening loss).
    Unknown {
        /// What the widened footprints could not decide.
        reason: String,
    },
}

impl Verdict {
    /// Short tag for tables.
    pub fn tag(&self) -> &'static str {
        match self {
            Verdict::MustSync { .. } => "must-sync",
            Verdict::MayElide { .. } => "may-elide",
            Verdict::Unknown { .. } => "unknown",
        }
    }
}

/// One chiplet's footprint on one array in one round: `may` page-widened,
/// `must` line-granular (see the module docs on granularity).
#[derive(Debug, Clone)]
struct AccessFp {
    array: usize,
    touch: TouchKind,
    may: IntervalSet,
    must: IntervalSet,
}

/// One launching chiplet in one round: the kernel it runs (for
/// diagnostics) and its footprints.
#[derive(Debug, Clone)]
struct LaunchFp {
    chiplet: usize,
    kernel: Arc<KernelSpec>,
    accesses: Vec<AccessFp>,
}

/// One kernel boundary: every (kernel x chiplet) slice launched together.
#[derive(Debug, Clone)]
struct RoundFp {
    kernels: usize,
    launches: Vec<LaunchFp>,
}

/// Per-(array, chiplet) abstract state. `src` fields remember the kernel
/// (name + span) that produced the state, for diagnostics.
#[derive(Debug, Clone, Default)]
struct CellState {
    dirty_may: IntervalSet,
    dirty_must: IntervalSet,
    cached_may: IntervalSet,
    cached_must: IntervalSet,
    stale_may: IntervalSet,
    stale_must: IntervalSet,
    dirty_src: Option<String>,
    stale_src: Option<String>,
}

/// The abstract machine: `cells[array][chiplet]`.
#[derive(Debug, Clone)]
struct OracleState {
    cells: Vec<Vec<CellState>>,
}

impl OracleState {
    fn new(arrays: usize, chiplets: usize) -> Self {
        OracleState {
            cells: vec![vec![CellState::default(); chiplets]; arrays],
        }
    }

    /// Whole-L2 release of `c`: its dirty data reaches the LLC.
    fn release(&mut self, c: usize) {
        for per_array in &mut self.cells {
            let cell = &mut per_array[c];
            cell.dirty_may.clear();
            cell.dirty_must.clear();
            cell.dirty_src = None;
        }
    }

    /// Whole-L2 acquire of `c`: flush + invalidate, nothing cached or
    /// stale remains.
    fn acquire(&mut self, c: usize) {
        for per_array in &mut self.cells {
            let cell = &mut per_array[c];
            cell.dirty_may.clear();
            cell.dirty_must.clear();
            cell.cached_may.clear();
            cell.cached_must.clear();
            cell.stale_may.clear();
            cell.stale_must.clear();
            cell.dirty_src = None;
            cell.stale_src = None;
        }
    }

    /// Fused release + acquire (Baseline's bulk op, HMG's implicit
    /// continuous coherence, the static schedule's demand sync).
    fn bulk(&mut self, c: usize) {
        self.acquire(c);
    }

    /// Applies one round's execution effects: launchers cache what they
    /// touch; writes dirty their pages and stale-mark every other
    /// chiplet's overlapping cached copies. `stale_must` marking uses the
    /// pre-round `cached_must` snapshot (a copy definitely cached before
    /// this round is definitely stale after a definite overwrite;
    /// same-round read/write interleavings are racy and stay may-level).
    fn apply_round(&mut self, round: &RoundFp) {
        let pre_cached_must: Vec<Vec<IntervalSet>> = self
            .cells
            .iter()
            .map(|per_array| per_array.iter().map(|c| c.cached_must.clone()).collect())
            .collect();
        // Caching effects first.
        for l in &round.launches {
            for fp in &l.accesses {
                let cell = &mut self.cells[fp.array][l.chiplet];
                cell.cached_may.union_with(&fp.may);
                cell.cached_must.union_with(&fp.must);
            }
        }
        // Then write effects.
        for l in &round.launches {
            let src = format!("{}@{}", l.kernel.name(), l.kernel.span());
            for fp in &l.accesses {
                if !fp.touch.implied_mode().writes() {
                    continue;
                }
                for (o, pre_must) in pre_cached_must[fp.array].iter().enumerate() {
                    if o == l.chiplet {
                        let cell = &mut self.cells[fp.array][o];
                        cell.dirty_may.union_with(&fp.may);
                        cell.dirty_must.union_with(&fp.must);
                        cell.dirty_src = Some(src.clone());
                    } else {
                        let may_hit = self.cells[fp.array][o].cached_may.intersection(&fp.may);
                        let must_hit = pre_must.intersection(&fp.must);
                        let cell = &mut self.cells[fp.array][o];
                        if !may_hit.is_empty() {
                            cell.stale_may.union_with(&may_hit);
                            cell.stale_src = Some(src.clone());
                        }
                        cell.stale_must.union_with(&must_hit);
                    }
                }
            }
        }
    }
}

/// Builds the per-round footprints of `workload` on `n` chiplets,
/// mirroring the engine's dispatch exactly: the same [`SoftwareQueue`]
/// round construction, the same binding clamp
/// ([`chiplet_sim::engine::effective_binding`]), and the same zero-WG
/// chiplet dropping inside [`StaticPartitionScheduler::plan`].
fn build_rounds(workload: &Workload, n: usize) -> Vec<RoundFp> {
    let mut queue = SoftwareQueue::new();
    for l in workload.launches() {
        queue.enqueue(l.stream, l.spec.clone(), l.binding.clone());
    }
    let all: Vec<ChipletId> = ChipletId::all(n).collect();
    let scheduler = StaticPartitionScheduler::new();
    let arrays = workload.arrays();
    let index_of = |id: chiplet_mem::array::ArrayId| id.get() as usize;

    let mut rounds = Vec::new();
    while !queue.is_empty() {
        let round = queue.next_round();
        let mut launches: Vec<LaunchFp> = Vec::new();
        let kernels = round.len();
        for packet in round {
            let chiplets = effective_binding(&packet, &all, n);
            let plan: DispatchPlan = scheduler.plan(&packet.spec, &chiplets);
            let width = plan.width();
            for (slot, chiplet) in plan.chiplets().enumerate() {
                let mut accesses = Vec::with_capacity(packet.spec.arrays().len());
                for acc in packet.spec.arrays() {
                    let decl = arrays.get(acc.array);
                    let fp = line_footprint(&acc.pattern, decl, slot, width);
                    accesses.push(AccessFp {
                        array: index_of(acc.array),
                        touch: acc.touch,
                        // May-sets are page-widened (CCT metadata
                        // granularity: more Unknown, never unsound);
                        // must-sets stay line-granular because a must
                        // dependence claims real data flow, and the CCT's
                        // own overlap tests run on exact hint line ranges
                        // (page-widening only its *home* claims). Widening
                        // `must` would invent cross-chiplet dependences on
                        // partition boundaries that straddle a page
                        // (e.g. babelstream at n=7) which the engine
                        // correctly proves disjoint and elides.
                        may: IntervalSet::from_range(fp.may.clone()).page_widen(),
                        must: IntervalSet::from_range(fp.must()),
                    });
                }
                launches.push(LaunchFp {
                    chiplet: chiplet.index(),
                    kernel: packet.spec.clone(),
                    accesses,
                });
            }
        }
        rounds.push(RoundFp { kernels, launches });
    }
    rounds
}

/// Classifies the boundary *before* `round` executes, given the abstract
/// state left by everything prior.
fn classify(state: &OracleState, round: &RoundFp, array_names: &[String]) -> Verdict {
    let mut deps: Vec<Dep> = Vec::new();
    let mut may_reason: Option<String> = None;

    for l in &round.launches {
        let to = format!("{}@{}", l.kernel.name(), l.kernel.span());
        for fp in &l.accesses {
            let per_array = &state.cells[fp.array];
            let aname = &array_names[fp.array];
            // RAW/WAW against other chiplets' unflushed writes.
            for (i, cell) in per_array.iter().enumerate() {
                if i == l.chiplet {
                    continue;
                }
                if let Some(ov) = cell.dirty_must.first_overlap(&fp.must) {
                    deps.push(Dep {
                        kind: if fp.touch == TouchKind::Store {
                            DepKind::Waw
                        } else {
                            DepKind::Raw
                        },
                        array: aname.clone(),
                        lines: ov,
                        from: cell
                            .dirty_src
                            .clone()
                            .unwrap_or_else(|| format!("chiplet {i}")),
                        to: format!("{to} on chiplet {}", l.chiplet),
                    });
                } else if may_reason.is_none() && cell.dirty_may.intersects(&fp.may) {
                    may_reason = Some(format!(
                        "widened footprint of {to} may overlap unflushed pages of {} on \
                         `{aname}` (chiplet {i})",
                        cell.dirty_src.as_deref().unwrap_or("an earlier kernel"),
                    ));
                }
            }
            // Definite stale read by the launcher itself.
            let own = &per_array[l.chiplet];
            if fp.touch != TouchKind::Store {
                if let Some(ov) = own.stale_must.first_overlap(&fp.must) {
                    deps.push(Dep {
                        kind: DepKind::StaleRead,
                        array: aname.clone(),
                        lines: ov,
                        from: own
                            .stale_src
                            .clone()
                            .unwrap_or_else(|| "an earlier writer".to_owned()),
                        to: format!("{to} on chiplet {}", l.chiplet),
                    });
                }
            }
        }
        // Scheduled-bystander rule: a launcher holding possibly-stale
        // pages cannot be proven elidable even if this kernel does not
        // touch them (the CCT conservatively acquires it).
        if may_reason.is_none() {
            for (a, per_array) in state.cells.iter().enumerate() {
                let cell = &per_array[l.chiplet];
                if !cell.stale_may.is_empty() {
                    may_reason = Some(format!(
                        "launcher {to} (chiplet {}) may hold stale pages of `{}` written by {}",
                        l.chiplet,
                        array_names[a],
                        cell.stale_src.as_deref().unwrap_or("an earlier kernel"),
                    ));
                }
            }
        }
    }

    if !deps.is_empty() {
        Verdict::MustSync { deps }
    } else if let Some(reason) = may_reason {
        Verdict::Unknown { reason }
    } else {
        Verdict::MayElide {
            proof: "no launcher footprint overlaps another chiplet's possibly-unflushed \
                    pages and no launcher may hold stale pages"
                .to_owned(),
        }
    }
}

/// The static classification of one workload at one chiplet count.
#[derive(Debug, Clone)]
pub struct StaticCell {
    /// Chiplet count analyzed.
    pub chiplets: usize,
    /// Kernel boundaries (engine rounds) classified.
    pub boundaries: u64,
    /// Boundaries proved to need sync.
    pub must_sync: u64,
    /// Boundaries proved elidable.
    pub may_elide: u64,
    /// Boundaries the widening could not decide.
    pub unknown: u64,
    /// `file:line` diagnostics for the must-sync boundaries (one line per
    /// boundary, first dependence cited).
    pub diagnostics: Vec<String>,
}

/// Classifies every boundary of `workload` at `n` chiplets under the
/// minimal demand-driven schedule: whole-GPU sync applied exactly at
/// non-`MayElide` boundaries (a sound protocol cannot elide `Unknown`).
pub fn analyze_static(workload: &Workload, n: usize) -> StaticCell {
    let rounds = build_rounds(workload, n);
    let array_names: Vec<String> = workload
        .arrays()
        .iter()
        .map(|d| d.name().to_owned())
        .collect();
    let mut state = OracleState::new(array_names.len(), n);
    let mut cell = StaticCell {
        chiplets: n,
        boundaries: rounds.len() as u64,
        must_sync: 0,
        may_elide: 0,
        unknown: 0,
        diagnostics: Vec::new(),
    };
    for (r, round) in rounds.iter().enumerate() {
        let verdict = classify(&state, round, &array_names);
        match &verdict {
            Verdict::MustSync { deps } => {
                cell.must_sync += 1;
                cell.diagnostics.push(format!(
                    "boundary {r} must-sync: {}{}",
                    deps[0],
                    if deps.len() > 1 {
                        format!(" (+{} more)", deps.len() - 1)
                    } else {
                        String::new()
                    }
                ));
            }
            Verdict::MayElide { .. } => cell.may_elide += 1,
            Verdict::Unknown { .. } => cell.unknown += 1,
        }
        if !matches!(verdict, Verdict::MayElide { .. }) {
            for c in 0..n {
                state.bulk(c);
            }
        }
        state.apply_round(round);
    }
    cell
}

/// One differential-sanitizer run: workload x protocol x chiplet count.
#[derive(Debug, Clone)]
pub struct DiffCell {
    /// Protocol replayed.
    pub protocol: ProtocolKind,
    /// Chiplet count replayed.
    pub chiplets: usize,
    /// Kernel boundaries observed (must equal the static round count).
    pub boundaries: u64,
    /// Boundaries where the engine performed at least one sync op.
    pub synced: u64,
    /// Boundaries the engine fully elided.
    pub elided: u64,
    /// Soundness violations: oracle `MustSync`, engine elided.
    pub violations: Vec<String>,
    /// `MayElide` boundaries the engine nevertheless synced.
    pub headroom_boundaries: u64,
    /// Simulated cycles the engine spent syncing `MayElide` boundaries.
    pub headroom_sync_cycles: f64,
}

/// Replays `workload` x `protocol` x `n` through the real engine with
/// the event log enabled and re-classifies every boundary in lockstep
/// with the observed per-chiplet sync operations.
pub fn differential(workload: &Workload, protocol: ProtocolKind, n: usize) -> DiffCell {
    let mut cfg = SimConfig::table1(n, protocol);
    cfg.record_events = true;
    let metrics = Simulator::new(cfg).run(workload);

    let rounds = build_rounds(workload, n);
    let array_names: Vec<String> = workload
        .arrays()
        .iter()
        .map(|d| d.name().to_owned())
        .collect();
    let mut state = OracleState::new(array_names.len(), n);

    let events = metrics.events.events();
    let boundaries: Vec<_> = events
        .iter()
        .filter(|e| e.label == "kernel_boundary")
        .collect();

    let mut cell = DiffCell {
        protocol,
        chiplets: n,
        boundaries: boundaries.len() as u64,
        synced: 0,
        elided: 0,
        violations: Vec::new(),
        headroom_boundaries: 0,
        headroom_sync_cycles: 0.0,
    };

    // The mirror must reproduce the engine's round structure exactly;
    // any drift is itself a finding.
    if rounds.len() != boundaries.len() {
        cell.violations.push(format!(
            "round-mirror drift: oracle built {} rounds, engine logged {} boundaries",
            rounds.len(),
            boundaries.len()
        ));
        return cell;
    }

    for (r, round) in rounds.iter().enumerate() {
        let b = boundaries[r];
        if b.field("kernels") != Some(round.kernels as f64) {
            cell.violations.push(format!(
                "round-mirror drift at boundary {r}: oracle saw {} kernel(s), engine {}",
                round.kernels,
                b.field("kernels").unwrap_or(-1.0)
            ));
            return cell;
        }
        let ops = b.field("acquires").unwrap_or(0.0) + b.field("releases").unwrap_or(0.0);
        let engine_synced = ops > 0.0;
        if engine_synced {
            cell.synced += 1;
        } else {
            cell.elided += 1;
        }

        let verdict = classify(&state, round, &array_names);
        match &verdict {
            Verdict::MustSync { deps } if !engine_synced && protocol != ProtocolKind::Hmg => {
                cell.violations.push(format!(
                    "SOUNDNESS: {} n={n} boundary {r} elided but {}",
                    protocol.label(),
                    deps[0]
                ));
            }
            Verdict::MayElide { .. } if engine_synced => {
                cell.headroom_boundaries += 1;
                cell.headroom_sync_cycles += b.field("sync_cycles").unwrap_or(0.0);
            }
            _ => {}
        }

        // Lockstep state update from the engine's observed operations.
        if protocol == ProtocolKind::Hmg {
            // Continuously coherent: every dependence is discharged by
            // the hardware protocol, not at boundaries.
            for c in 0..n {
                state.bulk(c);
            }
        } else {
            let rf = r as f64;
            for e in events {
                if e.field("round") != Some(rf) {
                    continue;
                }
                let Some(c) = e.field("chiplet") else {
                    continue;
                };
                let c = c as usize;
                match e.label.as_str() {
                    "acquire" => state.acquire(c),
                    "release" => state.release(c),
                    "bulk_sync" => state.bulk(c),
                    _ => {}
                }
            }
        }
        state.apply_round(round);
    }
    cell
}

/// The full oracle report over every registered workload.
#[derive(Debug, Clone)]
pub struct OracleReport {
    /// Per-workload results, in registry order.
    pub workloads: Vec<WorkloadReport>,
}

/// One workload's static census and differential table.
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    /// Workload name.
    pub name: String,
    /// Dynamic kernel launches.
    pub kernels: u64,
    /// Static classification per chiplet count.
    pub static_cells: Vec<StaticCell>,
    /// Differential sanitizer per protocol x chiplet count.
    pub diff_cells: Vec<DiffCell>,
}

impl OracleReport {
    /// Total soundness violations across every cell (must be zero).
    pub fn violation_count(&self) -> u64 {
        self.workloads
            .iter()
            .flat_map(|w| &w.diff_cells)
            .map(|c| c.violations.len() as u64)
            .sum()
    }

    /// Total `MayElide` boundaries the engine synced anyway.
    pub fn headroom_boundaries(&self) -> u64 {
        self.workloads
            .iter()
            .flat_map(|w| &w.diff_cells)
            .map(|c| c.headroom_boundaries)
            .sum()
    }

    /// The schema the committed `results/CHECK_oracle.json` pins.
    pub fn to_json(&self) -> Json {
        let mut workloads = Vec::new();
        for w in &self.workloads {
            let statics: Vec<Json> = w
                .static_cells
                .iter()
                .map(|s| {
                    Json::object()
                        .with("chiplets", s.chiplets as u64)
                        .with("boundaries", s.boundaries)
                        .with("must_sync", s.must_sync)
                        .with("may_elide", s.may_elide)
                        .with("unknown", s.unknown)
                })
                .collect();
            let diffs: Vec<Json> = w
                .diff_cells
                .iter()
                .map(|d| {
                    Json::object()
                        .with("protocol", d.protocol.label())
                        .with("chiplets", d.chiplets as u64)
                        .with("boundaries", d.boundaries)
                        .with("synced", d.synced)
                        .with("elided", d.elided)
                        .with("violations", d.violations.len() as u64)
                        .with("headroom_boundaries", d.headroom_boundaries)
                        .with("headroom_sync_cycles", d.headroom_sync_cycles)
                })
                .collect();
            workloads.push(
                Json::object()
                    .with("workload", w.name.as_str())
                    .with("kernels", w.kernels)
                    .with("static", statics)
                    .with("differential", diffs),
            );
        }
        Json::object()
            .with("tool", "chiplet-check")
            .with("mode", "oracle")
            .with("page_lines", chiplet_mem::addr::LINES_PER_PAGE)
            .with(
                "chiplet_counts",
                CHIPLET_COUNTS
                    .iter()
                    .map(|&n| Json::from(n as u64))
                    .collect::<Vec<Json>>(),
            )
            .with(
                "protocols",
                PROTOCOLS
                    .iter()
                    .map(|p| Json::from(p.label()))
                    .collect::<Vec<Json>>(),
            )
            .with("soundness_violations", self.violation_count())
            .with("headroom_boundaries", self.headroom_boundaries())
            .with("workloads", workloads)
    }
}

/// Runs the full oracle: static census plus differential sanitizer over
/// every registered workload x [`PROTOCOLS`] x [`CHIPLET_COUNTS`].
pub fn run() -> OracleReport {
    let mut workloads = Vec::new();
    for name in chiplet_workloads::known_names() {
        // chiplet-check: allow(no-panic) — known_names() only yields registered workloads
        let w = chiplet_workloads::lookup(&name).expect("registered workload");
        let mut report = WorkloadReport {
            name: name.clone(),
            kernels: w.kernel_count() as u64,
            static_cells: Vec::new(),
            diff_cells: Vec::new(),
        };
        for &n in &CHIPLET_COUNTS {
            report.static_cells.push(analyze_static(&w, n));
        }
        for &p in &PROTOCOLS {
            for &n in &CHIPLET_COUNTS {
                report.diff_cells.push(differential(&w, p, n));
            }
        }
        workloads.push(report);
    }
    OracleReport { workloads }
}
