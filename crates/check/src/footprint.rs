//! The abstract domain of the static elision oracle: page-granular
//! interval sets over cache-line indices.
//!
//! The oracle reasons about kernel footprints from the address-range
//! hints the software layer passes to the CP, so its conclusions are
//! statements about what the *engine's metadata* must contain, not about
//! one simulated trace. An [`IntervalSet`] is a sorted list of disjoint
//! half-open line-index ranges; [`IntervalSet::page_widen`] rounds every
//! range outward to page boundaries, mirroring `cpelide`'s
//! `page_aligned()` widening of home claims (arrays are page-aligned
//! allocations, so widening never crosses into a neighboring array). The
//! oracle page-widens only its *may*-sets; must-sets stay line-granular
//! (see `crate::oracle` on why).
//!
//! Exactness comes from `chiplet_gpu::trace::line_footprint`: partitioned
//! / halo / slice / shared patterns generate exactly their hint range
//! (`exact`, so may = must), while irregular patterns only bound the
//! range (`may` only, must = ∅).

use std::fmt;
use std::ops::Range;

/// Lines per page, re-exported for the oracle's widening.
pub use chiplet_mem::addr::LINES_PER_PAGE;

/// A set of cache-line indices stored as sorted, disjoint, non-empty
/// half-open ranges.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IntervalSet {
    ranges: Vec<(u64, u64)>,
}

impl IntervalSet {
    /// The empty set.
    pub fn new() -> Self {
        IntervalSet { ranges: Vec::new() }
    }

    /// A set holding one range (empty ranges yield the empty set).
    pub fn from_range(r: Range<u64>) -> Self {
        let mut s = IntervalSet::new();
        s.insert(r);
        s
    }

    /// True when no line is in the set.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Number of lines in the set.
    pub fn len(&self) -> u64 {
        self.ranges.iter().map(|&(s, e)| e - s).sum()
    }

    /// The disjoint ranges, in ascending order.
    pub fn ranges(&self) -> &[(u64, u64)] {
        &self.ranges
    }

    /// Removes every line.
    pub fn clear(&mut self) {
        self.ranges.clear();
    }

    /// Inserts `r`, merging with any overlapping or adjacent ranges.
    pub fn insert(&mut self, r: Range<u64>) {
        if r.start >= r.end {
            return;
        }
        let (mut start, mut end) = (r.start, r.end);
        // Find the insertion window: all existing ranges that overlap or
        // touch [start, end) get merged into it.
        let lo = self.ranges.partition_point(|&(_, e)| e < start);
        let mut hi = lo;
        while hi < self.ranges.len() && self.ranges[hi].0 <= end {
            start = start.min(self.ranges[hi].0);
            end = end.max(self.ranges[hi].1);
            hi += 1;
        }
        self.ranges.splice(lo..hi, std::iter::once((start, end)));
    }

    /// Unions `other` into `self`.
    pub fn union_with(&mut self, other: &IntervalSet) {
        for &(s, e) in &other.ranges {
            self.insert(s..e);
        }
    }

    /// True when the sets share at least one line.
    pub fn intersects(&self, other: &IntervalSet) -> bool {
        self.first_overlap(other).is_some()
    }

    /// The first (lowest) overlapping range between the sets, if any —
    /// the span oracle diagnostics cite.
    pub fn first_overlap(&self, other: &IntervalSet) -> Option<(u64, u64)> {
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.ranges.len() && j < other.ranges.len() {
            let (as_, ae) = self.ranges[i];
            let (bs, be) = other.ranges[j];
            let s = as_.max(bs);
            let e = ae.min(be);
            if s < e {
                return Some((s, e));
            }
            if ae <= be {
                i += 1;
            } else {
                j += 1;
            }
        }
        None
    }

    /// The set of lines present in both sets.
    pub fn intersection(&self, other: &IntervalSet) -> IntervalSet {
        let mut out = IntervalSet::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.ranges.len() && j < other.ranges.len() {
            let (as_, ae) = self.ranges[i];
            let (bs, be) = other.ranges[j];
            let s = as_.max(bs);
            let e = ae.min(be);
            if s < e {
                out.insert(s..e);
            }
            if ae <= be {
                i += 1;
            } else {
                j += 1;
            }
        }
        out
    }

    /// Widens every range outward to page boundaries — the granularity
    /// the CCT tracks. A line footprint touching any line of a page
    /// commits the whole page to the metadata.
    pub fn page_widen(&self) -> IntervalSet {
        let mut out = IntervalSet::new();
        for &(s, e) in &self.ranges {
            let ws = (s / LINES_PER_PAGE) * LINES_PER_PAGE;
            let we = e.div_ceil(LINES_PER_PAGE) * LINES_PER_PAGE;
            out.insert(ws..we);
        }
        out
    }
}

impl fmt::Display for IntervalSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.ranges.is_empty() {
            return write!(f, "∅");
        }
        for (idx, &(s, e)) in self.ranges.iter().enumerate() {
            if idx > 0 {
                write!(f, ",")?;
            }
            write!(f, "{s}..{e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ranges: &[(u64, u64)]) -> IntervalSet {
        let mut s = IntervalSet::new();
        for &(a, b) in ranges {
            s.insert(a..b);
        }
        s
    }

    #[test]
    fn insert_merges_overlapping_and_adjacent() {
        let mut s = IntervalSet::new();
        s.insert(10..20);
        s.insert(30..40);
        s.insert(20..30); // bridges the two
        assert_eq!(s.ranges(), &[(10, 40)]);
        s.insert(5..12);
        assert_eq!(s.ranges(), &[(5, 40)]);
        s.insert(50..50); // empty: no-op
        assert_eq!(s.ranges(), &[(5, 40)]);
    }

    #[test]
    fn insert_keeps_disjoint_ranges_sorted() {
        let s = set(&[(50, 60), (10, 20), (30, 40)]);
        assert_eq!(s.ranges(), &[(10, 20), (30, 40), (50, 60)]);
        assert_eq!(s.len(), 30);
    }

    #[test]
    fn intersection_and_overlap() {
        let a = set(&[(0, 10), (20, 30), (40, 50)]);
        let b = set(&[(5, 25), (45, 60)]);
        assert!(a.intersects(&b));
        assert_eq!(a.first_overlap(&b), Some((5, 10)));
        assert_eq!(a.intersection(&b).ranges(), &[(5, 10), (20, 25), (45, 50)]);
        let c = set(&[(10, 20), (30, 40)]);
        assert!(!a.intersects(&c));
        assert_eq!(a.first_overlap(&c), None);
        assert!(a.intersection(&c).is_empty());
    }

    #[test]
    fn page_widen_rounds_outward() {
        let p = LINES_PER_PAGE;
        let s = set(&[(1, 2), (p + 3, p + 5), (3 * p, 3 * p + 1)]);
        // First two ranges land in pages 0 and 1 (adjacent -> merged).
        assert_eq!(s.page_widen().ranges(), &[(0, 2 * p), (3 * p, 4 * p)]);
        // Widening is idempotent.
        assert_eq!(s.page_widen().page_widen(), s.page_widen());
    }

    #[test]
    fn union_and_clear() {
        let mut a = set(&[(0, 5)]);
        a.union_with(&set(&[(3, 8), (10, 12)]));
        assert_eq!(a.ranges(), &[(0, 8), (10, 12)]);
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.len(), 0);
    }
}
