//! `chiplet-check`: zero-dependency static analysis for the CPElide
//! workspace.
//!
//! Two engines behind one CLI (`cargo run -p chiplet-check`):
//!
//! - [`rules`] + [`walk`]: a token-scanner *linter* enforcing the
//!   repo-specific determinism and soundness invariants that the dynamic
//!   test suite can only probe one seed at a time — no hash-order
//!   iteration where it could leak into metrics, no wall-clock/thread/env
//!   use on the simulation path, no panicking calls in library code, no
//!   banned external crates, no unowned to-do markers. Diagnostics carry
//!   `file:line` spans and honor `// chiplet-check: allow(<rule>)`
//!   pragmas; see [`rules::RULES`] for the catalogue.
//! - [`model`]: an exhaustive BFS *model checker* that drives the real
//!   [`cpelide::table::ChipletCoherenceTable`] through every state
//!   reachable under a race-free action alphabet (N ∈ {2,3,4} chiplets ×
//!   2 arrays), asserting the paper's Figure 6 safety invariants on every
//!   transition and cross-validating against `chiplet_obs::audit`.
//!
//! The lexer ([`lexer`]) is a minimal hand-rolled Rust scanner: the
//! workspace stays free of `syn`/`proc-macro2` like every other crate.

pub mod lexer;
pub mod model;
pub mod rules;
pub mod walk;
