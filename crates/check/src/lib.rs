//! `chiplet-check`: zero-dependency static analysis for the CPElide
//! workspace.
//!
//! Three engines behind one CLI (`cargo run -p chiplet-check`):
//!
//! - [`rules`] + [`walk`]: a token-scanner *linter* enforcing the
//!   repo-specific determinism and soundness invariants that the dynamic
//!   test suite can only probe one seed at a time — no hash-order
//!   iteration where it could leak into metrics, no wall-clock/thread/env
//!   use on the simulation path, no panicking calls in library code, no
//!   banned external crates, no unowned to-do markers. Diagnostics carry
//!   `file:line` spans and honor `// chiplet-check: allow(<rule>)`
//!   pragmas; see [`rules::RULES`] for the catalogue.
//! - [`model`] + [`dpor`]: two *model-checking* engines behind one
//!   [`model::Explorer`] seam, both driving the real
//!   [`cpelide::table::ChipletCoherenceTable`] through the states
//!   reachable under a parameterized action alphabet ([`alphabet`]) and
//!   asserting the paper's Figure 6 safety invariants on every
//!   transition, cross-validated against `chiplet_obs::audit`. The
//!   exhaustive BFS covers N ∈ {2,3,4} chiplets × 2 race-free arrays;
//!   the DPOR engine (sleep sets over an elision-derived independence
//!   relation) pushes the census to N = 6 chiplets × 3 arrays including
//!   the racy two-stream alphabet.
//! - [`oracle`] + [`footprint`]: a *static elision oracle* that
//!   abstract-interprets every registered workload's kernel footprints
//!   into a page-granular interval domain, classifies each kernel
//!   boundary `MustSync`/`MayElide`/`Unknown` from the inter-kernel
//!   dependence relation, and differentially replays the real engine
//!   (event log in lockstep) to assert soundness — no `MustSync`
//!   boundary was elided — and quantify elision headroom.
//!
//! The lexer ([`lexer`]) is a minimal hand-rolled Rust scanner: the
//! workspace stays free of `syn`/`proc-macro2` like every other crate.

pub mod alphabet;
pub mod dpor;
pub mod footprint;
pub mod lexer;
pub mod model;
pub mod oracle;
pub mod rules;
pub mod walk;
