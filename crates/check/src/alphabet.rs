//! The model checker's action alphabet over the CCT, parameterized by
//! system size, array count, and raciness — shared by the BFS and DPOR
//! engines.
//!
//! Each [`Action`] is one kernel-boundary launch built from labeled
//! structures over a set of disjoint arrays. The race-free core follows
//! the paper's data-race-free contract (per launch, a structure's
//! per-chiplet ranges are disjoint partitions, a single writer, or
//! concurrent readers); the *racy* extension adds launches where two
//! streams' chiplets write overlapping ranges of the same array between
//! boundaries — the input class ROADMAP item 4's concurrent streams
//! produce, which the CCT must survive conservatively (never elide its
//! way into a lost update) even though DRF semantics no longer hold.
//!
//! The alphabet also carries the *static* half of the DPOR independence
//! relation: [`Action::arrays_touched`] is a bitmask of the arrays a
//! launch labels, and two actions can only commute when those masks are
//! disjoint ([`statically_independent`]). The dynamic half — both
//! launches must be fully elided, because a generated acquire/release is
//! a whole-L2 operation that rewrites *every* array's rows — lives in
//! the explorer (`dpor`).

use chiplet_mem::addr::ChipletId;
use chiplet_mem::addr::LINES_PER_PAGE;
use chiplet_mem::array::AccessMode;
use cpelide::api::KernelLaunchInfo;
use std::ops::Range;

/// `(span, mode, per-chiplet ranges)` of one labeled structure.
pub type StructureSpec = (Range<u64>, AccessMode, Vec<Option<Range<u64>>>);

/// One launch from the action alphabet.
#[derive(Debug, Clone)]
pub struct Action {
    /// Human-readable label used in violation reports.
    pub name: String,
    /// One [`StructureSpec`] per labeled structure.
    pub structures: Vec<StructureSpec>,
    /// Bitmask of the arrays this launch labels (bit `i` = array `i`) —
    /// the static half of the DPOR independence relation.
    pub arrays_touched: u64,
    /// True if this action's per-chiplet ranges race (overlapping writer
    /// ranges) — only generated when the spec asks for a racy alphabet.
    pub racy: bool,
}

impl Action {
    /// Builds the launch info for an `n`-chiplet system.
    pub fn launch(&self, n: usize) -> KernelLaunchInfo {
        let scheduled = (0..n)
            .filter(|&j| self.structures.iter().any(|(_, _, rs)| rs[j].is_some()))
            .map(|j| ChipletId::new(j as u8));
        let mut b = KernelLaunchInfo::builder(0, scheduled);
        for (span, mode, ranges) in &self.structures {
            b = b.structure(span.start, span.end, *mode, ranges.clone());
        }
        b.build()
    }
}

/// What alphabet to generate: system size, disjoint array count, and
/// whether to include the racy two-stream variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlphabetSpec {
    /// Chiplet count of the checked system.
    pub chiplets: usize,
    /// Number of disjoint arrays (each `chiplets` pages long, so partition
    /// slices stay page-aligned).
    pub arrays: usize,
    /// Include the racy overlapping-writer actions.
    pub racy: bool,
}

impl AlphabetSpec {
    /// The race-free alphabet the BFS census has always used.
    pub fn race_free(chiplets: usize, arrays: usize) -> Self {
        AlphabetSpec {
            chiplets,
            arrays,
            racy: false,
        }
    }

    /// The alphabet extended with racy two-stream actions.
    pub fn racy(chiplets: usize, arrays: usize) -> Self {
        AlphabetSpec {
            chiplets,
            arrays,
            racy: true,
        }
    }

    /// Compact label for census output, e.g. `n=6 arrays=3 racy`.
    pub fn label(&self) -> String {
        format!(
            "n={} arrays={}{}",
            self.chiplets,
            self.arrays,
            if self.racy { " racy" } else { "" }
        )
    }
}

/// Upper-case letter naming array `ai` (`A`, `B`, `C`, …).
fn array_letter(ai: usize) -> char {
    (b'A' + ai as u8) as char
}

/// Base line of array `ai`: arrays are spaced far apart so their spans,
/// page homes, and coarsened unions can never collide.
fn array_base(ai: usize) -> u64 {
    ai as u64 * 1024 * LINES_PER_PAGE
}

/// Page-aligned slice `j` of the array at `base`.
fn slice(base: u64, j: usize) -> Range<u64> {
    base + j as u64 * LINES_PER_PAGE..base + (j as u64 + 1) * LINES_PER_PAGE
}

/// True when two actions touch disjoint array sets — the *static* half
/// of the independence relation. Statically independent actions still
/// conflict dynamically whenever either one generates synchronization
/// (whole-L2 flushes/invalidates rewrite every array's rows).
pub fn statically_independent(a: &Action, b: &Action) -> bool {
    a.arrays_touched & b.arrays_touched == 0
}

/// Builds the complete action alphabet for `spec`.
///
/// Per array: partitioned write/read, concurrent shared read, and
/// whole-array read/write by each of the two representative chiplets
/// (full-array actions are confined to two representatives: at `n = 2`
/// that is every chiplet; at `n ≥ 3` the remaining chiplets are symmetric
/// bystanders that still traverse every Figure 6 edge, keeping the
/// reachable range/home lattice tractable). Cross-array: a partitioned
/// write and a shared read labeling *every* array in one launch, which
/// exercise the whole-cache side-effect coupling between arrays. Racy
/// (when `spec.racy`): per array, a two-stream overlapping write (both
/// representatives write the full span) and a skewed variant (one stream
/// writes the full span while the other writes the upper half).
pub fn build(spec: &AlphabetSpec) -> Vec<Action> {
    let n = spec.chiplets;
    let span = |ai: usize| {
        let base = array_base(ai);
        base..base + n as u64 * LINES_PER_PAGE
    };
    let mut actions = Vec::new();
    for ai in 0..spec.arrays {
        let base = array_base(ai);
        let bit = 1u64 << ai;
        let name = |op: &str| format!("{op}-{}", array_letter(ai));
        let partition: Vec<Option<Range<u64>>> = (0..n).map(|j| Some(slice(base, j))).collect();
        // Concurrent whole-array readers, restricted to the two
        // representative chiplets: letting every chiplet track full-array
        // ranges makes the reachable range/home lattice explode
        // combinatorially at n ≥ 3 without reaching new transition kinds.
        let all_full: Vec<Option<Range<u64>>> = (0..n).map(|j| (j < 2).then(|| span(ai))).collect();
        actions.push(Action {
            name: name("part-write"),
            structures: vec![(span(ai), AccessMode::ReadWrite, partition.clone())],
            arrays_touched: bit,
            racy: false,
        });
        actions.push(Action {
            name: name("part-read"),
            structures: vec![(span(ai), AccessMode::ReadOnly, partition)],
            arrays_touched: bit,
            racy: false,
        });
        actions.push(Action {
            name: name("shared-read"),
            structures: vec![(span(ai), AccessMode::ReadOnly, all_full)],
            arrays_touched: bit,
            racy: false,
        });
        for j in 0..n.min(2) {
            let solo: Vec<Option<Range<u64>>> =
                (0..n).map(|k| (k == j).then(|| span(ai))).collect();
            actions.push(Action {
                name: format!("{}-c{j}", name("full-write")),
                structures: vec![(span(ai), AccessMode::ReadWrite, solo.clone())],
                arrays_touched: bit,
                racy: false,
            });
            actions.push(Action {
                name: format!("{}-c{j}", name("full-read")),
                structures: vec![(span(ai), AccessMode::ReadOnly, solo)],
                arrays_touched: bit,
                racy: false,
            });
        }
        if spec.racy {
            // Two streams write the same array between boundaries: both
            // representatives label overlapping ReadWrite ranges in one
            // launch. Not DRF — the CCT cannot make the data race safe —
            // but its *metadata* must stay conservative: both writers end
            // up Dirty on overlapping ranges, and every later boundary
            // must flush/invalidate them before anyone else looks.
            let both_full: Vec<Option<Range<u64>>> =
                (0..n).map(|j| (j < 2).then(|| span(ai))).collect();
            actions.push(Action {
                name: name("racy-write"),
                structures: vec![(span(ai), AccessMode::ReadWrite, both_full)],
                arrays_touched: bit,
                racy: true,
            });
            // Skewed overlap: stream 0 writes the whole array while
            // stream 1 writes only the upper half — asymmetric tracked
            // ranges and home claims, racy only on the overlap.
            let upper = base + (n as u64 / 2) * LINES_PER_PAGE..span(ai).end;
            let skew: Vec<Option<Range<u64>>> = (0..n)
                .map(|j| match j {
                    0 => Some(span(ai)),
                    1 => Some(upper.clone()),
                    _ => None,
                })
                .collect();
            actions.push(Action {
                name: name("racy-skew"),
                structures: vec![(span(ai), AccessMode::ReadWrite, skew)],
                arrays_touched: bit,
                racy: true,
            });
        }
    }
    // Multi-structure launches exercise the whole-cache side-effect paths
    // (a release/acquire generated for one structure flushes the others).
    let every_array: String = (0..spec.arrays).map(array_letter).collect();
    let all_mask = (1u64 << spec.arrays) - 1;
    let partition_of = |ai: usize| -> Vec<Option<Range<u64>>> {
        (0..n).map(|j| Some(slice(array_base(ai), j))).collect()
    };
    actions.push(Action {
        name: format!("part-write-{every_array}"),
        structures: (0..spec.arrays)
            .map(|ai| (span(ai), AccessMode::ReadWrite, partition_of(ai)))
            .collect(),
        arrays_touched: all_mask,
        racy: false,
    });
    actions.push(Action {
        name: format!("shared-read-{every_array}"),
        structures: (0..spec.arrays)
            .map(|ai| {
                let all: Vec<Option<Range<u64>>> =
                    (0..n).map(|j| (j < 2).then(|| span(ai))).collect();
                (span(ai), AccessMode::ReadOnly, all)
            })
            .collect(),
        arrays_touched: all_mask,
        racy: false,
    });
    assert!(
        actions.len() <= 64,
        "alphabet must fit a u64 sleep-set mask"
    );
    actions
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpelide::api::ranges_overlap;

    #[test]
    fn race_free_alphabet_is_race_free() {
        for n in 2..=4 {
            for arrays in 1..=3 {
                for a in build(&AlphabetSpec::race_free(n, arrays)) {
                    assert!(!a.racy);
                    for (_, mode, rs) in &a.structures {
                        if *mode != AccessMode::ReadWrite {
                            continue;
                        }
                        for j in 0..rs.len() {
                            for k in j + 1..rs.len() {
                                if let (Some(a), Some(b)) = (&rs[j], &rs[k]) {
                                    assert!(!ranges_overlap(a, b), "racy write action {a:?}/{b:?}");
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn racy_alphabet_contains_overlapping_writers() {
        let actions = build(&AlphabetSpec::racy(4, 2));
        let racy: Vec<_> = actions.iter().filter(|a| a.racy).collect();
        assert_eq!(racy.len(), 4, "two racy variants per array");
        for a in racy {
            let (_, mode, rs) = &a.structures[0];
            assert_eq!(*mode, AccessMode::ReadWrite);
            let (r0, r1) = (rs[0].as_ref().unwrap(), rs[1].as_ref().unwrap());
            assert!(ranges_overlap(r0, r1), "{}: writers must overlap", a.name);
        }
    }

    #[test]
    fn alphabet_sizes() {
        // 7 per-array actions + 2 cross-array composites, +2 racy per array.
        assert_eq!(build(&AlphabetSpec::race_free(4, 2)).len(), 16);
        assert_eq!(build(&AlphabetSpec::race_free(4, 3)).len(), 23);
        assert_eq!(build(&AlphabetSpec::racy(6, 3)).len(), 29);
    }

    #[test]
    fn static_independence_is_array_disjointness() {
        let actions = build(&AlphabetSpec::racy(4, 2));
        let by_name = |n: &str| actions.iter().find(|a| a.name == n).unwrap();
        assert!(statically_independent(
            by_name("part-write-A"),
            by_name("part-read-B")
        ));
        assert!(!statically_independent(
            by_name("part-write-A"),
            by_name("racy-write-A")
        ));
        // Cross-array composites conflict with everything.
        for a in &actions {
            assert!(!statically_independent(a, by_name("part-write-AB")));
        }
    }

    #[test]
    fn arrays_are_disjoint_and_page_aligned() {
        let actions = build(&AlphabetSpec::race_free(3, 3));
        let mut spans: Vec<Range<u64>> = Vec::new();
        for a in &actions {
            for (span, _, _) in &a.structures {
                assert_eq!(span.start % LINES_PER_PAGE, 0);
                if !spans.contains(span) {
                    spans.push(span.clone());
                }
            }
        }
        for i in 0..spans.len() {
            for j in i + 1..spans.len() {
                assert!(!ranges_overlap(&spans[i], &spans[j]));
            }
        }
    }
}
