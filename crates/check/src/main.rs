//! The `chiplet-check` CLI.
//!
//! ```text
//! cargo run --release -p chiplet-check -- --workspace            # lint the tree
//! cargo run --release -p chiplet-check -- --model-check          # full census (both engines)
//! cargo run --release -p chiplet-check -- --model-check --engine dpor
//! cargo run --release -p chiplet-check -- --model-check --check  # census drift gate
//! cargo run --release -p chiplet-check -- --oracle               # static elision oracle
//! cargo run --release -p chiplet-check -- --oracle --check       # oracle drift gate
//! cargo run --release -p chiplet-check                           # all three engines
//! ```
//!
//! Exits 0 when clean, 1 on any finding, invariant violation, soundness
//! violation, or artifact drift, 2 on usage or I/O errors. `--json`
//! prints the lint report as validated JSON instead of human-readable
//! lines; the model checker writes its census to
//! `results/CHECK_model.json` and the elision oracle writes its census
//! to `results/CHECK_oracle.json` (override the directory with
//! `CPELIDE_RESULTS_DIR`). `--engine {bfs,dpor}` restricts the
//! model-check plan to one engine and prints without writing (a partial
//! census must never overwrite the committed artifact); `--check`
//! regenerates the selected censuses and fails if they differ
//! byte-for-byte from the committed artifacts instead of overwriting
//! them (`--check` and `--engine` are mutually exclusive).

use chiplet_check::model;
use chiplet_check::oracle;
use chiplet_check::rules::RULES;
use chiplet_check::walk;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: chiplet-check [--workspace] [--model-check] [--oracle] \
                     [--engine bfs|dpor] [--check] [--json] [--root <dir>] [--rules]";

fn main() -> ExitCode {
    let mut lint = false;
    let mut model_check = false;
    let mut oracle_check = false;
    let mut json = false;
    let mut drift_check = false;
    let mut engine: Option<String> = None;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--workspace" => lint = true,
            "--model-check" => model_check = true,
            "--oracle" => oracle_check = true,
            "--json" => json = true,
            "--check" => drift_check = true,
            "--engine" => match args.next().as_deref() {
                Some(e @ ("bfs" | "dpor")) => engine = Some(e.to_string()),
                Some(other) => {
                    eprintln!("unknown engine `{other}` (expected bfs or dpor)\n{USAGE}");
                    return ExitCode::from(2);
                }
                None => {
                    eprintln!("--engine needs a name (bfs or dpor)\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--root needs a directory\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--rules" => {
                for r in RULES {
                    println!("{:<14} {:<44} {}", r.id, r.scope, r.summary);
                }
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    if !lint && !model_check && !oracle_check {
        lint = true;
        model_check = true;
        oracle_check = true;
    }
    if drift_check && engine.is_some() {
        eprintln!("--check compares the full census; it cannot be combined with --engine\n{USAGE}");
        return ExitCode::from(2);
    }
    if oracle_check && engine.is_some() {
        eprintln!(
            "--engine restricts the model checker; it cannot be combined with --oracle\n{USAGE}"
        );
        return ExitCode::from(2);
    }

    let mut failed = false;

    if lint {
        let root = root.unwrap_or_else(walk::workspace_root);
        let report = match walk::lint_tree(&root) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("chiplet-check: cannot walk {}: {e}", root.display());
                return ExitCode::from(2);
            }
        };
        if json {
            let text = walk::lint_report_json(&report).render();
            if let Err(e) = chiplet_harness::json::validate(&text) {
                eprintln!("chiplet-check: internal error: report JSON invalid: {e}");
                return ExitCode::from(2);
            }
            println!("{text}");
        } else {
            for f in &report.findings {
                println!("{f}");
            }
            println!(
                "chiplet-check: {} file(s) scanned, {} finding(s)",
                report.files_scanned,
                report.findings.len()
            );
        }
        failed |= !report.clean();
    }

    if model_check {
        let (censuses, census) = model::run(engine.as_deref());
        for c in &censuses {
            println!(
                "model-check [{}] n={} arrays={}{}: {} states, {} transitions \
                 ({} actions), depth {}{}, {} fully elided, {} acquires, \
                 {} releases, {} sleep-set prune(s), {} violation(s)",
                c.engine,
                c.chiplets,
                c.arrays,
                if c.racy { " racy" } else { "" },
                c.states,
                c.transitions,
                c.actions,
                c.max_depth,
                if c.depth_cap > 0 {
                    format!(" (cap {})", c.depth_cap)
                } else {
                    String::new()
                },
                c.elided_transitions,
                c.acquires_issued,
                c.releases_issued,
                c.sleep_skips + c.node_prunes,
                c.violation_count
            );
            for v in &c.violations {
                eprintln!("  violation: {v}");
            }
            failed |= c.violation_count != 0;
        }
        let text = census.render();
        if let Err(e) = chiplet_harness::json::validate(&text) {
            eprintln!("chiplet-check: internal error: census JSON invalid: {e}");
            return ExitCode::from(2);
        }
        let dir = std::env::var_os("CPELIDE_RESULTS_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| walk::workspace_root().join("results"));
        let path = dir.join("CHECK_model.json");
        if engine.is_some() {
            // A single-engine run is a partial census: never overwrite
            // the committed full artifact.
            println!("model-check: partial census (--engine) not written");
        } else if drift_check {
            // Drift gate: the regenerated census must match the committed
            // artifact byte-for-byte (re-bless by rerunning without
            // --check and committing the result).
            match std::fs::read_to_string(&path) {
                Ok(committed) if committed == text => {
                    println!("model-check: census matches {}", path.display());
                }
                Ok(_) => {
                    eprintln!(
                        "chiplet-check: census drift: regenerated census differs \
                         from {}; rerun --model-check and commit the new artifact",
                        path.display()
                    );
                    failed = true;
                }
                Err(e) => {
                    eprintln!("chiplet-check: cannot read {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
        } else {
            if let Err(e) = std::fs::create_dir_all(&dir) {
                eprintln!("chiplet-check: cannot create {}: {e}", dir.display());
                return ExitCode::from(2);
            }
            if let Err(e) = std::fs::write(&path, text) {
                eprintln!("chiplet-check: cannot write {}: {e}", path.display());
                return ExitCode::from(2);
            }
            println!("model-check: census written to {}", path.display());
        }
    }

    if oracle_check {
        let report = oracle::run();
        for w in &report.workloads {
            for s in &w.static_cells {
                println!(
                    "oracle [{}] n={}: {} boundaries: {} must-sync, {} may-elide, {} unknown",
                    w.name, s.chiplets, s.boundaries, s.must_sync, s.may_elide, s.unknown
                );
                for d in &s.diagnostics {
                    println!("  {d}");
                }
            }
            for d in &w.diff_cells {
                println!(
                    "oracle [{}] {} n={}: {} boundaries, {} synced, {} elided, \
                     {} violation(s), {} elidable-but-synced ({:.0} sync cycles headroom)",
                    w.name,
                    d.protocol.label(),
                    d.chiplets,
                    d.boundaries,
                    d.synced,
                    d.elided,
                    d.violations.len(),
                    d.headroom_boundaries,
                    d.headroom_sync_cycles
                );
                for v in &d.violations {
                    eprintln!("  violation: {v}");
                }
            }
        }
        failed |= report.violation_count() != 0;
        let text = report.to_json().render();
        if let Err(e) = chiplet_harness::json::validate(&text) {
            eprintln!("chiplet-check: internal error: oracle JSON invalid: {e}");
            return ExitCode::from(2);
        }
        let dir = std::env::var_os("CPELIDE_RESULTS_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| walk::workspace_root().join("results"));
        let path = dir.join("CHECK_oracle.json");
        if drift_check {
            match std::fs::read_to_string(&path) {
                Ok(committed) if committed == text => {
                    println!("oracle: census matches {}", path.display());
                }
                Ok(_) => {
                    eprintln!(
                        "chiplet-check: oracle drift: regenerated census differs \
                         from {}; rerun --oracle and commit the new artifact",
                        path.display()
                    );
                    failed = true;
                }
                Err(e) => {
                    eprintln!("chiplet-check: cannot read {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
        } else {
            if let Err(e) = std::fs::create_dir_all(&dir) {
                eprintln!("chiplet-check: cannot create {}: {e}", dir.display());
                return ExitCode::from(2);
            }
            if let Err(e) = std::fs::write(&path, text) {
                eprintln!("chiplet-check: cannot write {}: {e}", path.display());
                return ExitCode::from(2);
            }
            println!("oracle: census written to {}", path.display());
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
