//! The `chiplet-check` CLI.
//!
//! ```text
//! cargo run --release -p chiplet-check -- --workspace     # lint the tree
//! cargo run --release -p chiplet-check -- --model-check   # CCT exhaustive check
//! cargo run --release -p chiplet-check                    # both
//! ```
//!
//! Exits 0 when clean, 1 on any finding or invariant violation, 2 on
//! usage or I/O errors. `--json` prints the lint report as validated JSON
//! instead of human-readable lines; the model checker always writes its
//! census to `results/CHECK_model.json` (override the directory with
//! `CPELIDE_RESULTS_DIR`).

use chiplet_check::model;
use chiplet_check::rules::RULES;
use chiplet_check::walk;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: chiplet-check [--workspace] [--model-check] [--json] \
                     [--root <dir>] [--rules]";

fn main() -> ExitCode {
    let mut lint = false;
    let mut model_check = false;
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--workspace" => lint = true,
            "--model-check" => model_check = true,
            "--json" => json = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--root needs a directory\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--rules" => {
                for r in RULES {
                    println!("{:<14} {:<44} {}", r.id, r.scope, r.summary);
                }
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    if !lint && !model_check {
        lint = true;
        model_check = true;
    }

    let mut failed = false;

    if lint {
        let root = root.unwrap_or_else(walk::workspace_root);
        let report = match walk::lint_tree(&root) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("chiplet-check: cannot walk {}: {e}", root.display());
                return ExitCode::from(2);
            }
        };
        if json {
            let text = walk::lint_report_json(&report).render();
            if let Err(e) = chiplet_harness::json::validate(&text) {
                eprintln!("chiplet-check: internal error: report JSON invalid: {e}");
                return ExitCode::from(2);
            }
            println!("{text}");
        } else {
            for f in &report.findings {
                println!("{f}");
            }
            println!(
                "chiplet-check: {} file(s) scanned, {} finding(s)",
                report.files_scanned,
                report.findings.len()
            );
        }
        failed |= !report.clean();
    }

    if model_check {
        let bounds = [2usize, 3, 4];
        let (censuses, census) = model::run(&bounds);
        for c in &censuses {
            println!(
                "model-check n={}: {} states, {} transitions ({} actions), \
                 depth {}, {} fully elided, {} acquires, {} releases, \
                 {} violation(s)",
                c.chiplets,
                c.states,
                c.transitions,
                c.actions,
                c.max_depth,
                c.elided_transitions,
                c.acquires_issued,
                c.releases_issued,
                c.violation_count
            );
            for v in &c.violations {
                eprintln!("  violation: {v}");
            }
            failed |= c.violation_count != 0;
        }
        let text = census.render();
        if let Err(e) = chiplet_harness::json::validate(&text) {
            eprintln!("chiplet-check: internal error: census JSON invalid: {e}");
            return ExitCode::from(2);
        }
        let dir = std::env::var_os("CPELIDE_RESULTS_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| walk::workspace_root().join("results"));
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("chiplet-check: cannot create {}: {e}", dir.display());
            return ExitCode::from(2);
        }
        let path = dir.join("CHECK_model.json");
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("chiplet-check: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("model-check: census written to {}", path.display());
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
