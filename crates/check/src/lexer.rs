//! A minimal Rust token scanner — just enough lexical structure for the
//! linter rules, with no `syn`/`proc-macro2` dependency.
//!
//! The scanner understands the parts of Rust's surface syntax that would
//! otherwise produce false positives in a plain text search: line and
//! (nested) block comments, string/char literals in all their forms
//! (escaped, raw, byte, C), lifetimes vs char literals, and `::` path
//! separators. Everything else is emitted as single-character punctuation.
//!
//! Comments are retained separately (with line numbers) because two parts
//! of the linter consume them: the `stale-todo` rule and the
//! `// chiplet-check: allow(<rule>)` suppression pragmas.

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (`self`, `for`, `HashMap`, ...).
    Ident(String),
    /// Punctuation; multi-character only for `::`.
    Punct(&'static str),
    /// A numeric literal (value not retained).
    Num,
    /// A lifetime such as `'a` (name not retained).
    Lifetime,
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// 1-based source line.
    pub line: u32,
    /// The token.
    pub tok: Tok,
}

/// A comment (line or block) with its starting line and full text,
/// including the `//` / `/*` markers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based source line the comment starts on.
    pub line: u32,
    /// Raw comment text.
    pub text: String,
}

/// The result of scanning one source file.
#[derive(Debug, Clone, Default)]
pub struct Lexed {
    /// Code tokens, in source order, with comments and literals stripped.
    pub tokens: Vec<Token>,
    /// Comments, in source order.
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// The identifier text of token `i`, if it is an identifier.
    pub fn ident(&self, i: usize) -> Option<&str> {
        match self.tokens.get(i) {
            Some(Token {
                tok: Tok::Ident(s), ..
            }) => Some(s),
            _ => None,
        }
    }

    /// True if token `i` is the punctuation `p`.
    pub fn punct(&self, i: usize) -> bool {
        matches!(
            self.tokens.get(i),
            Some(Token {
                tok: Tok::Punct(_),
                ..
            })
        )
    }

    /// True if token `i` is exactly the punctuation `p`.
    pub fn is_punct(&self, i: usize, p: &str) -> bool {
        matches!(self.tokens.get(i), Some(Token { tok: Tok::Punct(q), .. }) if *q == p)
    }

    /// True if token `i` is exactly the identifier `name`.
    pub fn is_ident(&self, i: usize, name: &str) -> bool {
        self.ident(i) == Some(name)
    }
}

/// Scans `src` into tokens and comments.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Advances `i` over `n` bytes, counting newlines into `line`.
    fn advance(b: &[u8], i: &mut usize, line: &mut u32, n: usize) {
        for _ in 0..n {
            if *i < b.len() {
                if b[*i] == b'\n' {
                    *line += 1;
                }
                *i += 1;
            }
        }
    }

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i;
                let start_line = line;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    line: start_line,
                    text: src[start..i].to_owned(),
                });
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let start = i;
                let start_line = line;
                let mut depth = 1usize;
                advance(b, &mut i, &mut line, 2);
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        advance(b, &mut i, &mut line, 2);
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        advance(b, &mut i, &mut line, 2);
                    } else {
                        advance(b, &mut i, &mut line, 1);
                    }
                }
                out.comments.push(Comment {
                    line: start_line,
                    text: src[start..i].to_owned(),
                });
            }
            b'"' => skip_string(b, &mut i, &mut line),
            b'\'' => {
                // Lifetime or char literal. A char literal is 'x', '\...',
                // or '\u{...}'; a lifetime is 'ident not followed by '.
                if is_char_literal(b, i) {
                    skip_char(b, &mut i, &mut line);
                } else {
                    i += 1; // the quote
                    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                    out.tokens.push(Token {
                        line,
                        tok: Tok::Lifetime,
                    });
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let word = &src[start..i];
                // String-literal prefixes: r"", r#""#, b"", br"", c"", b''.
                // A prefix only opens a literal when a quote actually
                // follows (raw forms may put `#`s in between); `r#ident`
                // is a raw identifier, and a stray `b#`/`c#` is no literal
                // at all — treating either as a string would swallow real
                // code until the next unrelated quote in the file.
                let is_prefix = matches!(word, "r" | "b" | "br" | "rb" | "c" | "cr");
                let opens_string = is_prefix
                    && (b.get(i) == Some(&b'"')
                        || (word.contains('r') && b.get(i) == Some(&b'#') && {
                            let mut j = i;
                            while b.get(j) == Some(&b'#') {
                                j += 1;
                            }
                            b.get(j) == Some(&b'"')
                        }));
                if opens_string {
                    skip_raw_or_prefixed_string(b, &mut i, &mut line, word);
                } else if word == "b" && b.get(i) == Some(&b'\'') {
                    skip_char(b, &mut i, &mut line);
                } else if word == "r"
                    && b.get(i) == Some(&b'#')
                    && b.get(i + 1)
                        .is_some_and(|&c| c.is_ascii_alphabetic() || c == b'_')
                {
                    // Raw identifier `r#name`: one identifier spelled `name`.
                    i += 1;
                    let ws = i;
                    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                    out.tokens.push(Token {
                        line,
                        tok: Tok::Ident(src[ws..i].to_owned()),
                    });
                } else {
                    out.tokens.push(Token {
                        line,
                        tok: Tok::Ident(word.to_owned()),
                    });
                }
            }
            c if c.is_ascii_digit() => {
                // Numeric literal: digits plus suffix/hex/underscores; a
                // `.` belongs to the number only when followed by a digit
                // (so `0..10` stays two tokens and a range).
                while i < b.len() {
                    let d = b[i];
                    let in_number = d.is_ascii_alphanumeric()
                        || d == b'_'
                        || (d == b'.'
                            && b.get(i + 1).is_some_and(u8::is_ascii_digit)
                            && b.get(i.wrapping_sub(1)).is_some_and(u8::is_ascii_digit));
                    if in_number {
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token {
                    line,
                    tok: Tok::Num,
                });
            }
            b':' if b.get(i + 1) == Some(&b':') => {
                out.tokens.push(Token {
                    line,
                    tok: Tok::Punct("::"),
                });
                i += 2;
            }
            _ => {
                out.tokens.push(Token {
                    line,
                    tok: Tok::Punct(punct_str(c)),
                });
                i += 1;
            }
        }
    }
    out
}

/// Decides whether the `'` at `i` starts a char literal (vs a lifetime).
fn is_char_literal(b: &[u8], i: usize) -> bool {
    match b.get(i + 1) {
        Some(b'\\') => true,                     // '\n', '\u{..}', ...
        Some(b'\'') => false,                    // '' is not valid anyway
        Some(_) => b.get(i + 2) == Some(&b'\''), // 'x'
        None => false,
    }
}

fn skip_char(b: &[u8], i: &mut usize, line: &mut u32) {
    // Consumes an optional `b` prefix position already passed; `*i` is at
    // the opening quote or at `b` when called from the prefix path.
    if b.get(*i) == Some(&b'\'') || b.get(*i) == Some(&b'b') {
        if b[*i] == b'b' {
            *i += 1;
        }
        *i += 1; // opening quote
    }
    while *i < b.len() {
        match b[*i] {
            b'\\' => {
                *i += 2;
            }
            b'\'' => {
                *i += 1;
                return;
            }
            c => {
                if c == b'\n' {
                    *line += 1;
                }
                *i += 1;
            }
        }
    }
}

fn skip_string(b: &[u8], i: &mut usize, line: &mut u32) {
    *i += 1; // opening quote
    while *i < b.len() {
        match b[*i] {
            b'\\' => {
                if b.get(*i + 1) == Some(&b'\n') {
                    *line += 1;
                }
                *i += 2;
            }
            b'"' => {
                *i += 1;
                return;
            }
            c => {
                if c == b'\n' {
                    *line += 1;
                }
                *i += 1;
            }
        }
    }
}

fn skip_raw_or_prefixed_string(b: &[u8], i: &mut usize, line: &mut u32, prefix: &str) {
    let raw = prefix.contains('r');
    if !raw {
        // b"..." / c"..." behave like ordinary strings.
        skip_string(b, i, line);
        return;
    }
    // Raw: count `#`s, then scan for `"` followed by that many `#`s.
    let mut hashes = 0usize;
    while b.get(*i) == Some(&b'#') {
        hashes += 1;
        *i += 1;
    }
    if b.get(*i) != Some(&b'"') {
        // Unreachable for input vetted by `lex` (which checks a quote
        // follows the hashes), kept as a defensive bail-out.
        return;
    }
    *i += 1;
    while *i < b.len() {
        if b[*i] == b'"' {
            let mut k = 0usize;
            while k < hashes && b.get(*i + 1 + k) == Some(&b'#') {
                k += 1;
            }
            if k == hashes {
                *i += 1 + hashes;
                return;
            }
        }
        if b[*i] == b'\n' {
            *line += 1;
        }
        *i += 1;
    }
}

fn punct_str(c: u8) -> &'static str {
    // A static table so `Tok::Punct` can borrow without allocation.
    const TABLE: &[(u8, &str)] = &[
        (b'(', "("),
        (b')', ")"),
        (b'[', "["),
        (b']', "]"),
        (b'{', "{"),
        (b'}', "}"),
        (b'<', "<"),
        (b'>', ">"),
        (b',', ","),
        (b';', ";"),
        (b':', ":"),
        (b'.', "."),
        (b'=', "="),
        (b'&', "&"),
        (b'|', "|"),
        (b'+', "+"),
        (b'-', "-"),
        (b'*', "*"),
        (b'/', "/"),
        (b'%', "%"),
        (b'!', "!"),
        (b'?', "?"),
        (b'#', "#"),
        (b'@', "@"),
        (b'^', "^"),
        (b'~', "~"),
        (b'$', "$"),
    ];
    for &(b, s) in TABLE {
        if b == c {
            return s;
        }
    }
    "?" // anything exotic; the rules never match on it
}

/// Token-index ranges `[start, end)` covered by `#[cfg(test)]` items
/// (typically `mod tests { ... }` blocks). Tokens inside these ranges are
/// exempt from the `no-panic` rule.
pub fn test_regions(lx: &Lexed) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let t = &lx.tokens;
    let mut i = 0usize;
    while i + 4 < t.len() {
        // `# [ cfg ( ... test ... ) ]`
        if lx.is_punct(i, "#") && lx.is_punct(i + 1, "[") && lx.is_ident(i + 2, "cfg") {
            // Find the attribute's closing `]`.
            let mut depth = 1usize;
            let mut j = i + 2;
            let mut saw_test = false;
            while j < t.len() && depth > 0 {
                if lx.is_punct(j, "[") {
                    depth += 1;
                } else if lx.is_punct(j, "]") {
                    depth -= 1;
                }
                if lx.is_ident(j, "test") {
                    saw_test = true;
                }
                j += 1;
            }
            if saw_test {
                // Skip any further attributes, then consume one item: up
                // to `;` if it comes before any `{`, else the matching
                // close of the first `{`.
                let mut k = j;
                while lx.is_punct(k, "#") && lx.is_punct(k + 1, "[") {
                    let mut d = 1usize;
                    k += 2;
                    while k < t.len() && d > 0 {
                        if lx.is_punct(k, "[") {
                            d += 1;
                        } else if lx.is_punct(k, "]") {
                            d -= 1;
                        }
                        k += 1;
                    }
                }
                let mut end = k;
                let mut brace: Option<usize> = None;
                while end < t.len() {
                    if lx.is_punct(end, ";") && brace.is_none() {
                        end += 1;
                        break;
                    }
                    if lx.is_punct(end, "{") {
                        brace = Some(end);
                        break;
                    }
                    end += 1;
                }
                if let Some(open) = brace {
                    let mut d = 0usize;
                    end = open;
                    while end < t.len() {
                        if lx.is_punct(end, "{") {
                            d += 1;
                        } else if lx.is_punct(end, "}") {
                            d -= 1;
                            if d == 0 {
                                end += 1;
                                break;
                            }
                        }
                        end += 1;
                    }
                }
                regions.push((i, end));
                i = end;
                continue;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    regions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_are_stripped() {
        let src = r##"
            // a comment with unwrap() inside
            /* block /* nested */ still comment .expect( */
            let s = "text with .unwrap() inside";
            let r = r#"raw "quoted" .expect( body"#;
            let b = b"bytes .unwrap()";
            let c = 'x';
            let nl = '\n';
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".to_owned()));
        assert!(!ids.contains(&"expect".to_owned()));
        assert_eq!(lex(src).comments.len(), 2);
    }

    #[test]
    fn raw_strings_with_hashes_are_opaque_and_line_synced() {
        // The `"#` on line 2 must not close the two-hash raw string, the
        // `.unwrap()` inside must never become a token, and the code after
        // the literal must keep exact line numbers.
        let src = "let s = r##\"\n.unwrap() \"# still inside\n\"##; let tail = 1;\nlet t = r\"plain .expect( \";\nafter.unwrap();";
        let lx = lex(src);
        let ids: Vec<(&str, u32)> = lx
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Ident(s) => Some((s.as_str(), t.line)),
                _ => None,
            })
            .collect();
        assert!(ids.contains(&("tail", 3)), "{ids:?}");
        assert!(ids.contains(&("after", 5)), "{ids:?}");
        assert!(
            ids.contains(&("unwrap", 5)),
            "real unwrap survives: {ids:?}"
        );
        assert_eq!(
            ids.iter().filter(|(s, _)| *s == "unwrap").count(),
            1,
            "the unwrap inside the raw string must stay hidden: {ids:?}"
        );
        assert!(!ids.iter().any(|(s, _)| *s == "expect"), "{ids:?}");
    }

    #[test]
    fn raw_string_closing_hashes_are_counted_exactly() {
        // `r#"x"##` is the literal `r#"x"#` followed by a stray `#`.
        let lx = lex("r#\"x\"## y");
        assert!(lx.is_punct(0, "#"), "{:?}", lx.tokens);
        assert!(lx.is_ident(1, "y"), "{:?}", lx.tokens);
    }

    #[test]
    fn raw_identifiers_lex_as_plain_identifiers() {
        let lx = lex("let r#type = r#match.field;");
        let ids = lex("let r#type = r#match.field;")
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect::<Vec<_>>();
        assert_eq!(ids, ["let", "type", "match", "field"], "{:?}", lx.tokens);
        // `r` as an ordinary identifier is untouched.
        assert_eq!(idents("let r = 1; r + 2"), ["let", "r", "r"]);
    }

    #[test]
    fn stray_prefix_hash_does_not_swallow_code() {
        // `b#` / `c#` are not literals; before the opens-string check they
        // were handed to the ordinary string scanner, which treated `#` as
        // an opening quote and swallowed everything up to the next real
        // quote — hiding `hidden.unwrap()` here.
        let src = "let x = b # y;\nhidden.unwrap();\nlet s = \"lit\";";
        let compact = "let x = b# y;\nhidden.unwrap();\nlet s = \"lit\";";
        for s in [src, compact] {
            let ids = idents(s);
            assert!(ids.contains(&"hidden".to_owned()), "{s}: {ids:?}");
            assert!(ids.contains(&"unwrap".to_owned()), "{s}: {ids:?}");
        }
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        // Pathological marker overlaps: `/*/` opens without closing,
        // `*/*/` closes two levels back-to-back.
        let lx = lex("/* a /*/ b */ */ after");
        assert!(lx.is_ident(0, "after"), "{:?}", lx.tokens);
        assert_eq!(lx.comments.len(), 1);

        let lx = lex("/*/* x */*/ tail");
        assert!(lx.is_ident(0, "tail"), "{:?}", lx.tokens);

        // `/**/` is a complete (empty) comment, not an opener.
        let lx = lex("/**/ y");
        assert!(lx.is_ident(0, "y"), "{:?}", lx.tokens);

        // An unterminated nested comment swallows the rest of the file
        // (as rustc treats it) without losing the comment record.
        let lx = lex("/* open /* deeper */ still open\nx.unwrap()");
        assert!(lx.tokens.is_empty(), "{:?}", lx.tokens);
        assert_eq!(lx.comments.len(), 1);
    }

    #[test]
    fn nested_block_comments_keep_line_sync() {
        let src = "/* l1\n /* l2\n l3 */\n l4 */ x = 1;\ny.unwrap();";
        let lx = lex(src);
        let x_line = lx
            .tokens
            .iter()
            .find(|t| t.tok == Tok::Ident("x".into()))
            .map(|t| t.line);
        assert_eq!(x_line, Some(4), "{:?}", lx.tokens);
        let y_line = lx
            .tokens
            .iter()
            .find(|t| t.tok == Tok::Ident("y".into()))
            .map(|t| t.line);
        assert_eq!(y_line, Some(5), "{:?}", lx.tokens);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        let lx = lex(src);
        let lifetimes = lx.tokens.iter().filter(|t| t.tok == Tok::Lifetime).count();
        assert_eq!(lifetimes, 3);
        assert!(idents(src).contains(&"str".to_owned()));
    }

    #[test]
    fn path_separator_is_one_token() {
        let lx = lex("std::time::Instant");
        assert!(lx.is_ident(0, "std"));
        assert!(lx.is_punct(1, "::"));
        assert!(lx.is_ident(2, "time"));
        assert!(lx.is_punct(3, "::"));
        assert!(lx.is_ident(4, "Instant"));
    }

    #[test]
    fn ranges_do_not_eat_numbers() {
        let lx = lex("0..10");
        assert_eq!(lx.tokens.len(), 4); // Num . . Num
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "let a = \"x\n y\";\nlet b = 1; // c\nlet d = 2;";
        let lx = lex(src);
        let d_line = lx
            .tokens
            .iter()
            .find(|t| t.tok == Tok::Ident("d".into()))
            .map(|t| t.line);
        assert_eq!(d_line, Some(4));
        assert_eq!(lx.comments[0].line, 3);
    }

    #[test]
    fn cfg_test_region_covers_mod_block() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\nfn tail() {}";
        let lx = lex(src);
        let regions = test_regions(&lx);
        assert_eq!(regions.len(), 1);
        let (s, e) = regions[0];
        // `tail` must lie outside the region.
        let tail_ix = lx
            .tokens
            .iter()
            .position(|t| t.tok == Tok::Ident("tail".into()))
            .expect("tail token");
        assert!(tail_ix >= e);
        // `unwrap` must lie inside.
        let unwrap_ix = lx
            .tokens
            .iter()
            .position(|t| t.tok == Tok::Ident("unwrap".into()))
            .expect("unwrap token");
        assert!(unwrap_ix > s && unwrap_ix < e);
    }

    #[test]
    fn cfg_test_on_single_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn after() {}";
        let lx = lex(src);
        let regions = test_regions(&lx);
        assert_eq!(regions.len(), 1);
        let after_ix = lx
            .tokens
            .iter()
            .position(|t| t.tok == Tok::Ident("after".into()))
            .expect("after token");
        assert!(after_ix >= regions[0].1);
    }
}
