//! Workspace traversal and lint report assembly.

use crate::rules::{lint_source, Finding, RULES};
use chiplet_harness::json::Json;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into. `lint_fixtures` holds the
/// linter's own known-bad corpus; `results` and `target` hold artifacts.
const SKIP_DIRS: &[&str] = &["target", ".git", "results", "lint_fixtures"];

/// The workspace root, resolved from this crate's manifest directory.
pub fn workspace_root() -> PathBuf {
    let p = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    p.canonicalize().unwrap_or(p)
}

/// All `.rs` files under `root`, sorted, skipping `SKIP_DIRS`.
pub fn rust_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let path = entry?.path();
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// The outcome of linting a tree.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Files scanned.
    pub files_scanned: usize,
    /// All findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
}

impl LintReport {
    /// True when no rule fired.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Lints every Rust file under `root` (paths reported relative to it).
pub fn lint_tree(root: &Path) -> io::Result<LintReport> {
    let mut report = LintReport::default();
    for path in rust_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = fs::read_to_string(&path)?;
        report.findings.extend(lint_source(&rel, &src));
        report.files_scanned += 1;
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}

/// The JSON lint document (validated by the caller before writing).
pub fn lint_report_json(report: &LintReport) -> Json {
    let findings: Vec<Json> = report
        .findings
        .iter()
        .map(|f| {
            Json::object()
                .with("rule", f.rule)
                .with("file", f.file.clone())
                .with("line", f.line as u64)
                .with("message", f.message.clone())
        })
        .collect();
    let rules: Vec<Json> = RULES
        .iter()
        .map(|r| {
            Json::object()
                .with("id", r.id)
                .with("scope", r.scope)
                .with("summary", r.summary)
        })
        .collect();
    Json::object()
        .with("tool", "chiplet-check")
        .with("mode", "lint")
        .with("files_scanned", report.files_scanned as u64)
        .with("finding_count", report.findings.len() as u64)
        .with("findings", findings)
        .with("rules", rules)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_root_holds_the_workspace_manifest() {
        assert!(workspace_root().join("Cargo.toml").is_file());
        assert!(workspace_root().join("crates/check").is_dir());
    }

    #[test]
    fn walker_skips_fixture_and_artifact_dirs() {
        let files = rust_files(&workspace_root()).expect("walk workspace");
        assert!(!files.is_empty());
        for f in &files {
            let s = f.to_string_lossy();
            for skip in SKIP_DIRS {
                assert!(!s.contains(&format!("/{skip}/")), "walked into {s}");
            }
        }
    }

    #[test]
    fn lint_report_json_validates() {
        let report = LintReport {
            files_scanned: 1,
            findings: vec![Finding {
                rule: "no-panic",
                file: "crates/x/src/lib.rs".to_owned(),
                line: 3,
                message: "quote \"test\" and backslash \\".to_owned(),
            }],
        };
        let text = lint_report_json(&report).render();
        chiplet_harness::json::validate(&text).expect("lint report JSON must validate");
    }
}
