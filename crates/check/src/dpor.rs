//! Dynamic partial-order reduction (DPOR) over the CCT action alphabet —
//! the engine that takes the census beyond exhaustive-BFS reach (GPUMC's
//! approach from PAPERS.md, adapted to kernel-boundary granularity).
//!
//! # Independence, static + dynamic
//!
//! Two launches commute exactly when reordering them cannot change any
//! table state or sync decision:
//!
//! - **Static half:** they label disjoint array sets
//!   ([`crate::alphabet::statically_independent`]) — same-array launches
//!   read and rewrite the same row's states, tracked ranges, and home
//!   claims — *or* both are read-only launches, which touch per-chiplet
//!   columns commutatively (`LocalRead`/`RemoteRead` never create or
//!   clear `Dirty`/`Stale`, and tracked-range updates are unions).
//! - **Dynamic half:** *both* must be fully elided at the state where
//!   they meet. A generated acquire or release is a whole-L2 operation —
//!   the table applies `CacheFlushed`/`CacheInvalidated` to **every**
//!   row, so a launch that synchronizes rewrites other arrays' states
//!   too and commutes with nothing. The paper's elision is precisely
//!   what makes kernel boundaries commute: the checker prunes exactly
//!   where CPElide elides. Same-array read pairs need one further
//!   dynamic condition: neither may claim a new first-touch home —
//!   first-touch assignment is the one order-sensitive effect reads
//!   have, so read/read pairs commute only once every page they touch is
//!   already homed.
//!
//! For two elided launches on disjoint arrays the commutation argument is
//! exact: each touches only its own arrays' rows and home records (no
//! whole-cache side effects), so either order produces identical rows,
//! home logs, and (empty) sync sets — and neither can flip the other's
//! elision, because each sync decision reads only its own arrays' rows.
//! For two elided claim-free read launches it is exact as well: each
//! updates its scheduled chiplets' columns by state transitions that fix
//! `Valid`/`Stale`/`NotPresent` pointwise and by range unions, both of
//! which commute, and neither can flip the other's elision or claim-
//! freedom (reads create no `Dirty`/`Stale`, and home claims are
//! monotone). Sleeping actions therefore *stay* independent along the
//! steps that keep them asleep, which is the induction the sleep sets
//! need.
//!
//! # Exploration
//!
//! Depth-first search with **sleep sets** over the full enabled set
//! (every action is enabled at every state): after exploring sibling `a`
//! at a node, every later sibling's subtree carries `a` in its sleep set
//! while independence holds, so the commuted interleaving is never
//! re-executed. Sleep sets with full expansion preserve *every reachable
//! state* (Godefroid's classical result — only redundant transitions are
//! cut, never states), which the differential suite checks against BFS
//! verbatim: identical visited-state sets, strictly fewer executed
//! transitions.
//!
//! Because the CCT's state graph converges heavily (many non-equivalent
//! paths reach the same table), the search also caches states, using
//! Godefroid's state-matching refinement: each state remembers the
//! *residual* sleep set — the actions never yet executed from it. A
//! revisit arriving with sleep set `T` re-expands only `residual ∖ T`
//! (the actions this visit needs that no earlier visit ran) and shrinks
//! the residual to `residual ∩ T`; when `residual ⊆ T` the node is
//! pruned outright. Every (state, action) pair is therefore executed at
//! most once across all visits, so DPOR never does more work than BFS's
//! one-expansion-per-state sweep — it only subtracts the pairs left
//! asleep forever. Pruned work is tallied as `sleep_skips` (actions
//! skipped at a node) and `node_prunes` (whole revisits subsumed).
//!
//! Every transition the engine *does* execute goes through the exact
//! same `model::step` as BFS — same invariants, same Figure 6
//! replay — so the engines can only differ in which interleavings they
//! walk, never in how a walked edge is judged.

use crate::alphabet::{build, statically_independent, AlphabetSpec};
use crate::model::{
    fingerprint, step, Census, Exploration, Explorer, Invariant, Mutation, STATE_LIMIT,
};
use cpelide::table::ChipletCoherenceTable;
use std::collections::{BTreeMap, BTreeSet};

/// Depth bound of the flagship N = 6 × 3-array racy census run, in
/// kernel boundaries from the empty table. Sized by measurement: depth 6
/// reaches ~2.6M states in about two minutes of release CI; depth 7 is
/// ~12M states and over twenty minutes.
pub const FLAGSHIP_DEPTH: usize = 6;

/// State cap of the flagship run (the 3-array state lattice is a product
/// of per-array lattices, far past the 2-array [`STATE_LIMIT`]).
pub const FLAGSHIP_STATE_CAP: usize = 20_000_000;

/// The DPOR engine.
#[derive(Debug, Clone)]
pub struct Dpor {
    /// Visited-state cap, mirroring [`crate::model::Bfs::state_cap`].
    pub state_cap: usize,
    /// Depth bound in kernel boundaries (0 = unbounded: run to the
    /// natural closure of the reachable space, like BFS).
    pub depth_cap: usize,
    /// Whether hitting `state_cap` is a violation (census runs) or just
    /// an early stop (fast partial explorations in unit tests).
    pub overflow_is_violation: bool,
    /// Checker self-test seam; `None` for every census run.
    pub mutation: Option<Mutation>,
}

impl Dpor {
    /// Unbounded exploration to closure — the configuration the
    /// differential suite compares against exhaustive BFS.
    pub fn exhaustive() -> Self {
        Dpor {
            state_cap: STATE_LIMIT,
            depth_cap: 0,
            overflow_is_violation: true,
            mutation: None,
        }
    }

    /// The N = 6 chiplet × 3-array racy flagship configuration: beyond
    /// BFS reach, bounded at [`FLAGSHIP_DEPTH`] kernel boundaries so the
    /// CI census regenerates in minutes. Within the bound the coverage
    /// is complete: every inequivalent interleaving of up to that many
    /// boundaries is explored.
    pub fn flagship() -> Self {
        Dpor {
            state_cap: FLAGSHIP_STATE_CAP,
            depth_cap: FLAGSHIP_DEPTH,
            overflow_is_violation: true,
            mutation: None,
        }
    }

    /// A deliberately partial but fast exploration (unit tests).
    pub fn capped(state_cap: usize) -> Self {
        Dpor {
            state_cap,
            depth_cap: 0,
            overflow_is_violation: false,
            mutation: None,
        }
    }

    /// Same exploration with a [`Mutation`] injected.
    pub fn with_mutation(mut self, m: Mutation) -> Self {
        self.mutation = Some(m);
        self
    }
}

/// Total first-touch home lines claimed so far — strictly monotone over
/// any transition, so an edge claims a new home iff this grows. Used to
/// decide the read/read dynamic-independence condition.
fn claimed_lines(t: &ChipletCoherenceTable) -> u64 {
    t.home_log_snapshot()
        .iter()
        .flat_map(|(_, homes)| homes.iter())
        .filter_map(|h| h.as_ref().map(|r| r.end - r.start))
        .sum()
}

/// One DFS node awaiting expansion of its remaining actions.
struct Frame {
    table: ChipletCoherenceTable,
    /// Sleep mask of this visit: the inheritance base for children. Bit
    /// `i` set means action `i`'s interleaving is already covered by an
    /// earlier sibling order somewhere up the path.
    sleep: u64,
    /// Execution filter: bit `i` set means action `i` is not run at this
    /// visit — either asleep (`sleep ⊆ skip`) or already executed from
    /// this same state by an earlier visit (state-matching refinement).
    skip: u64,
    /// Sub-mask of `sleep`: sleepers known to be *pure reads* here —
    /// read-only, elided, and claiming no new homes (all monotone along
    /// the path, so inherited marks stay valid).
    sleep_pure: u64,
    /// Next action index to try.
    next: usize,
    /// Mask of already-expanded sibling actions that were fully elided —
    /// the candidates for later siblings' sleep sets.
    executed_elided: u64,
    /// Sub-mask of `executed_elided` that executed as pure reads.
    executed_pure: u64,
    /// [`claimed_lines`] of `table`, for claim-freedom checks on edges.
    claimed: u64,
    depth: usize,
}

/// Mutable search state threaded through the DFS.
struct Search {
    census: Census,
    visited: BTreeSet<u128>,
    /// Per-state `(residual sleep mask, shallowest expansion depth)`.
    /// The residual holds the actions never yet executed from the state;
    /// revisits run only their share of it and shrink it. The depth
    /// matters only under a depth cap: a revisit with *more* remaining
    /// budget than any prior visit (smaller depth) cannot trust the
    /// truncated earlier subtrees and re-runs everything outside its own
    /// sleep set. Unbounded runs record depth 0, where subtrees are
    /// depth-free closures and the residual alone decides.
    explored: BTreeMap<u128, (u64, usize)>,
    stack: Vec<Frame>,
}

impl Dpor {
    /// Opens a node for expansion unless it is pruned (its whole residual
    /// is asleep at this visit, with at least as much remaining depth
    /// already spent on it) or sits on the depth-cap frontier. Either way
    /// the state itself is counted as visited.
    fn open(
        &self,
        s: &mut Search,
        table: ChipletCoherenceTable,
        sleep: u64,
        sleep_pure: u64,
        depth: usize,
    ) {
        let fp = fingerprint(&table);
        if s.visited.insert(fp) {
            s.census.states += 1;
            s.census.max_depth = s.census.max_depth.max(depth);
        }
        if self.depth_cap > 0 && depth >= self.depth_cap {
            return; // frontier: state counted, not expanded
        }
        let d = if self.depth_cap == 0 { 0 } else { depth };
        let skip = match s.explored.entry(fp) {
            std::collections::btree_map::Entry::Vacant(e) => {
                // First visit: run everything outside the sleep set; the
                // residual is exactly the sleep set.
                e.insert((sleep, d));
                sleep
            }
            std::collections::btree_map::Entry::Occupied(mut e) => {
                let (residual, rd) = *e.get();
                if d < rd {
                    // More remaining budget than any earlier visit: the
                    // truncated earlier subtrees prove nothing at this
                    // depth, so re-run everything outside our own sleep.
                    e.insert((residual & sleep, d));
                    sleep
                } else {
                    // No more budget than before: only the residual share
                    // this visit un-sleeps still needs running.
                    let needed = residual & !sleep;
                    if needed == 0 {
                        s.census.node_prunes += 1;
                        return;
                    }
                    e.insert((residual & sleep, rd));
                    !needed
                }
            }
        };
        s.census.max_live_entries = s.census.max_live_entries.max(table.live_entries());
        let claimed = claimed_lines(&table);
        s.stack.push(Frame {
            table,
            sleep,
            skip,
            sleep_pure,
            next: 0,
            executed_elided: 0,
            executed_pure: 0,
            claimed,
            depth,
        });
    }
}

impl Explorer for Dpor {
    fn engine(&self) -> &'static str {
        "dpor"
    }

    fn explore(&self, spec: &AlphabetSpec) -> Exploration {
        let n = spec.chiplets;
        let actions = build(spec);
        // Static-independence mask per action: bit j set when action j
        // labels a disjoint array set.
        let indep: Vec<u64> = actions
            .iter()
            .map(|a| {
                actions
                    .iter()
                    .enumerate()
                    .filter(|(_, b)| statically_independent(a, b))
                    .fold(0u64, |m, (j, _)| m | 1 << j)
            })
            .collect();
        // Read-only launches (no structure writes) — candidates for the
        // same-array read/read independence clause.
        let read_mask: u64 = actions
            .iter()
            .enumerate()
            .filter(|(_, a)| a.structures.iter().all(|(_, m, _)| !m.writes()))
            .fold(0u64, |m, (i, _)| m | 1 << i);
        let mut s = Search {
            census: Census::new(self.engine(), spec, actions.len(), self.depth_cap),
            visited: BTreeSet::new(),
            explored: BTreeMap::new(),
            stack: Vec::new(),
        };
        self.open(&mut s, ChipletCoherenceTable::new(n), 0, 0, 0);

        while let Some(frame) = s.stack.last_mut() {
            let i = frame.next;
            if i >= actions.len() {
                s.stack.pop();
                continue;
            }
            frame.next += 1;
            if frame.skip >> i & 1 == 1 {
                s.census.sleep_skips += 1;
                continue;
            }
            let depth = frame.depth;
            // Sleep candidates for the child: inherited sleepers plus the
            // elided siblings expanded before `i` at this node, with their
            // pure-read sub-masks.
            let candidates = frame.sleep | frame.executed_elided;
            let pure = frame.sleep_pure | frame.executed_pure;
            let claimed_before = frame.claimed;
            let Some((next_table, sync)) =
                step(&frame.table, &actions[i], n, self.mutation, &mut s.census)
            else {
                continue; // panic recorded as a violation; no successor
            };
            // The child sleeps on every candidate that stays independent
            // of edge `i`: statically disjoint with both edges elided — a
            // sync rewrites every array's rows, so it wakes (and is woken
            // by) everyone — or both pure reads (read-only, elided,
            // claiming no new first-touch homes).
            let elided = sync.is_empty();
            let i_pure =
                elided && read_mask >> i & 1 == 1 && claimed_lines(&next_table) == claimed_before;
            let (child_sleep, child_pure) = if elided {
                frame.executed_elided |= 1 << i;
                if i_pure {
                    frame.executed_pure |= 1 << i;
                }
                let kept = (candidates & indep[i]) | if i_pure { candidates & pure } else { 0 };
                (kept, kept & pure)
            } else {
                (0, 0)
            };
            if s.census.states >= self.state_cap {
                if self.overflow_is_violation {
                    s.census.violation(
                        Invariant::Finiteness,
                        format!(
                            "[n={n}] state space exceeded the {}-state cap; \
                             the finiteness argument is broken",
                            self.state_cap
                        ),
                    );
                }
                break;
            }
            self.open(&mut s, next_table, child_sleep, child_pure, depth + 1);
        }
        Exploration {
            census: s.census,
            visited: s.visited,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dpor_prefix_is_clean_and_prunes() {
        let x = Dpor::capped(2_000).explore(&AlphabetSpec::race_free(2, 2));
        let c = x.census;
        assert_eq!(c.violation_count, 0, "{:?}", c.violations);
        assert!(c.states > 1_000, "suspiciously small space: {}", c.states);
        assert!(
            c.sleep_skips + c.node_prunes > 0,
            "DPOR never pruned anything"
        );
        assert_eq!(x.visited.len(), c.states, "census counts visited keys");
    }

    #[test]
    fn depth_cap_bounds_the_frontier() {
        let shallow = Dpor {
            depth_cap: 2,
            ..Dpor::exhaustive()
        }
        .explore(&AlphabetSpec::race_free(2, 2));
        let deeper = Dpor {
            depth_cap: 3,
            ..Dpor::exhaustive()
        }
        .explore(&AlphabetSpec::race_free(2, 2));
        assert_eq!(shallow.census.violation_count, 0);
        assert!(shallow.census.max_depth <= 2);
        assert!(
            deeper.census.states > shallow.census.states,
            "depth 3 must reach strictly more states than depth 2"
        );
        assert!(
            shallow.visited.is_subset(&deeper.visited),
            "deepening must only add states"
        );
    }

    #[test]
    fn racy_flagship_shape_smoke() {
        // The real 6×3 flagship runs in CI; here a shallow cut of the
        // same alphabet proves the racy actions are explored cleanly.
        let d = Dpor {
            depth_cap: 2,
            ..Dpor::exhaustive()
        };
        let c = d.explore(&AlphabetSpec::racy(3, 2)).census;
        assert_eq!(c.violation_count, 0, "{:?}", c.violations);
        assert!(c.racy);
        assert!(c.elided_transitions > 0);
    }
}
