//! Differential validation of the DPOR engine against exhaustive BFS.
//!
//! At every configuration where BFS is feasible, the two engines must
//! agree on everything observable:
//!
//! - **Verdicts:** identical violation counts (zero on the production
//!   table).
//! - **State coverage:** every BFS-reachable CCT state is visited by at
//!   least one DPOR trace — checked as *equality* of the visited-state
//!   fingerprint sets (fingerprints are injective images of the
//!   `EntrySnapshot`-derived canonical state keys, modulo a 2⁻¹²⁹
//!   collision bound). Sleep sets only ever cut redundant interleavings,
//!   never states, so DPOR ⊆ BFS and BFS ⊆ DPOR must both hold.
//! - **Reduction:** DPOR executes strictly fewer transitions than BFS's
//!   `states × actions`, and actually prunes (non-zero sleep-set
//!   tallies) — otherwise it is BFS with extra bookkeeping.
//!
//! The exhaustive N ∈ {2,3,4} × 2-array sweep matches the committed
//! census and runs in release CI; debug builds cover the 2-chiplet
//! configurations (same properties, tractable spaces).

use chiplet_check::alphabet::AlphabetSpec;
use chiplet_check::dpor::Dpor;
use chiplet_check::model::{Bfs, Explorer};

fn differential(spec: AlphabetSpec) {
    let bfs = Bfs::exhaustive().explore(&spec);
    let dpor = Dpor::exhaustive().explore(&spec);
    let label = spec.label();

    assert_eq!(
        bfs.census.violation_count, 0,
        "[{label}] BFS found violations: {:?}",
        bfs.census.violations
    );
    assert_eq!(
        dpor.census.violation_count, 0,
        "[{label}] DPOR found violations: {:?}",
        dpor.census.violations
    );

    let missed = bfs.visited.difference(&dpor.visited).count();
    assert_eq!(
        missed, 0,
        "[{label}] {missed} BFS-reachable state(s) never visited by any DPOR trace"
    );
    assert_eq!(
        bfs.visited, dpor.visited,
        "[{label}] engines disagree on the reachable state set"
    );
    assert_eq!(bfs.census.states, dpor.census.states, "[{label}]");

    assert!(
        dpor.census.transitions < bfs.census.transitions,
        "[{label}] DPOR must execute strictly fewer transitions \
         (dpor {} vs bfs {})",
        dpor.census.transitions,
        bfs.census.transitions
    );
    assert!(
        dpor.census.sleep_skips + dpor.census.node_prunes > 0,
        "[{label}] DPOR never pruned anything"
    );
}

#[test]
fn two_chiplets_one_array() {
    differential(AlphabetSpec::race_free(2, 1));
}

#[test]
fn two_chiplets_one_array_racy() {
    differential(AlphabetSpec::racy(2, 1));
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "exhaustive racy 2×2 run is release-only (ci-local runs it)"
)]
fn two_chiplets_racy() {
    differential(AlphabetSpec::racy(2, 2));
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "exhaustive N∈{2,3,4}×2 sweep is release-only (ci-local runs it)"
)]
fn every_bfs_feasible_bound() {
    for n in [2usize, 3, 4] {
        differential(AlphabetSpec::race_free(n, 2));
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "exhaustive racy N=3 run is release-only (ci-local runs it)"
)]
fn racy_three_chiplets() {
    differential(AlphabetSpec::racy(3, 2));
}

/// Depth-capped explorations must also agree state-for-state: this is
/// the configuration class the flagship N = 6 × 3 census runs in, so the
/// equivalence is checked where it is actually relied on.
#[test]
fn depth_capped_engines_agree() {
    // Depth 1 leaves no room to prune (both engines expand only the
    // root), so strict reduction is asserted from depth 2 up.
    for depth_cap in [2usize, 3] {
        let spec = AlphabetSpec::racy(2, 2);
        let bfs = Bfs {
            depth_cap,
            ..Bfs::exhaustive()
        }
        .explore(&spec);
        let dpor = Dpor {
            depth_cap,
            ..Dpor::exhaustive()
        }
        .explore(&spec);
        assert_eq!(bfs.census.violation_count, 0);
        assert_eq!(dpor.census.violation_count, 0);
        assert_eq!(
            bfs.visited, dpor.visited,
            "depth cap {depth_cap}: engines disagree on the within-bound state set"
        );
        assert!(dpor.census.transitions < bfs.census.transitions);
    }
}
