//! Property test: across randomized alphabet specs, depth bounds, and
//! injected mutations, DPOR reports a violation **iff** BFS does on the
//! same configuration — and both engines visit exactly the same
//! depth-bounded state set.
//!
//! Runs 256 cases through the in-repo harness; failures replay exactly
//! via the reported `CHIPLET_PROP_SEED` / `CHIPLET_PROP_CASES` /
//! `CHIPLET_PROP_SIZE` environment variables and shrink by halving the
//! size budget (smaller sizes generate shallower, narrower cases).

use chiplet_check::alphabet::AlphabetSpec;
use chiplet_check::dpor::Dpor;
use chiplet_check::model::{Bfs, Explorer, Mutation, STATE_LIMIT};
use chiplet_harness::prop::{check, PropConfig};
use chiplet_harness::{prop_assert, prop_assert_eq};

#[derive(Debug)]
struct Case {
    spec: AlphabetSpec,
    depth_cap: usize,
    mutation: Option<Mutation>,
}

fn generate(rng: &mut chiplet_harness::rng::Xoshiro256, size: usize) -> Case {
    // Size scales the exploration cost: small (shrunk) cases are shallow
    // two-chiplet single-array configs; large ones reach 3 chiplets ×
    // 2 arrays at depth 3 — still thousands of transitions, not millions.
    let chiplets = if size >= 16 && rng.next_bool() { 3 } else { 2 };
    let arrays = if size >= 8 && rng.next_bool() { 2 } else { 1 };
    let racy = rng.next_bool();
    let max_depth = match size {
        0..=15 => 1,
        16..=39 => 2,
        _ => 3,
    };
    let depth_cap = 1 + rng.next_below(max_depth as u64) as usize;
    let mutation = match rng.next_below(8) {
        0 => Some(Mutation::SkipFlushEdge),
        1 => Some(Mutation::ElideReleases),
        2 => Some(Mutation::DropInvalidations),
        3 => Some(Mutation::CorruptTransition),
        _ => None, // majority clean: the iff must hold in both directions
    };
    let spec = AlphabetSpec {
        chiplets,
        arrays,
        racy,
    };
    Case {
        spec,
        depth_cap,
        mutation,
    }
}

#[test]
fn dpor_reports_a_violation_iff_bfs_does() {
    check(
        "dpor_reports_a_violation_iff_bfs_does",
        &PropConfig::with_cases(256),
        generate,
        |case| {
            let bfs = Bfs {
                state_cap: STATE_LIMIT,
                depth_cap: case.depth_cap,
                overflow_is_violation: false,
                mutation: case.mutation,
            }
            .explore(&case.spec);
            let dpor = Dpor {
                state_cap: STATE_LIMIT,
                depth_cap: case.depth_cap,
                overflow_is_violation: false,
                mutation: case.mutation,
            }
            .explore(&case.spec);

            prop_assert_eq!(
                bfs.census.violation_count > 0,
                dpor.census.violation_count > 0,
                "verdicts diverge: bfs {} violation(s) vs dpor {} \
                 (bfs samples {:?}; dpor samples {:?})",
                bfs.census.violation_count,
                dpor.census.violation_count,
                bfs.census.violations,
                dpor.census.violations
            );
            // Same invariant classes must fire, not merely "some" violation.
            prop_assert_eq!(bfs.census.fired_kinds(), dpor.census.fired_kinds());
            // And the engines must agree on the depth-bounded state space.
            prop_assert!(
                bfs.visited == dpor.visited,
                "state sets diverge: bfs {} states, dpor {}, {} missed by dpor",
                bfs.visited.len(),
                dpor.visited.len(),
                bfs.visited.difference(&dpor.visited).count()
            );
            // No transition-count assertion here: under a depth cap the
            // depth-aware cache may soundly re-expand a state reached
            // again with more remaining budget, so the strict-reduction
            // claim is made (and checked) only on the unbounded
            // configurations in `dpor_differential.rs`.
            Ok(())
        },
    );
}
