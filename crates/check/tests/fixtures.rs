//! Integration tests for the linter: the known-bad fixture corpus under
//! `tests/lint_fixtures/` must trip exactly one rule per file at the
//! documented span, and the real workspace tree must lint clean.
//!
//! The fixtures are laid out as a miniature workspace
//! (`crates/<name>/src/<rule>.rs`) so crate-scoped rules resolve exactly
//! as they do on the real tree; the workspace walker never descends into
//! `lint_fixtures`, so the corpus cannot pollute the clean-tree check.

use chiplet_check::walk::{lint_tree, workspace_root};
use std::path::PathBuf;
use std::process::Command;

/// `(file, rule, line)` — one entry per rule in the catalogue, sorted the
/// way `lint_tree` sorts its findings.
const EXPECTED: &[(&str, &str, u32)] = &[
    ("crates/harness/src/banned_import.rs", "banned-import", 3),
    ("crates/harness/src/fleet_capture.rs", "fleet-capture", 7),
    ("crates/harness/src/unused_allow.rs", "unused-allow", 4),
    ("crates/mem/src/no_panic.rs", "no-panic", 4),
    ("crates/obs/src/stale_todo.rs", "stale-todo", 4),
    ("crates/sim/src/hash_iter.rs", "hash-iter", 7),
    ("crates/sim/src/sim_env.rs", "sim-env", 4),
    ("crates/sim/src/sim_thread.rs", "sim-thread", 4),
    ("crates/sim/src/wall_clock.rs", "wall-clock", 4),
];

fn fixture_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/lint_fixtures")
}

#[test]
fn every_rule_fires_on_its_fixture_with_the_right_span() {
    let report = lint_tree(&fixture_root()).expect("walk the fixture corpus");
    assert_eq!(
        report.files_scanned,
        EXPECTED.len(),
        "one fixture file per rule"
    );
    let got: Vec<(String, &str, u32)> = report
        .findings
        .iter()
        .map(|f| (f.file.clone(), f.rule, f.line))
        .collect();
    let want: Vec<(String, &str, u32)> = EXPECTED
        .iter()
        .map(|&(file, rule, line)| (file.to_owned(), rule, line))
        .collect();
    assert_eq!(got, want, "full report:\n{:#?}", report.findings);
}

#[test]
fn the_fixture_corpus_covers_the_whole_rule_catalogue() {
    let fired: Vec<&str> = EXPECTED.iter().map(|&(_, rule, _)| rule).collect();
    for rule in chiplet_check::rules::RULES {
        assert!(
            fired.contains(&rule.id),
            "rule `{}` has no fixture exercising it",
            rule.id
        );
    }
}

#[test]
fn the_workspace_tree_lints_clean() {
    let report = lint_tree(&workspace_root()).expect("walk the workspace");
    assert!(report.files_scanned > 50, "walker must see the real tree");
    let rendered: Vec<String> = report.findings.iter().map(|f| f.to_string()).collect();
    assert!(
        report.clean(),
        "workspace has lint findings:\n{}",
        rendered.join("\n")
    );
}

#[test]
fn cli_exit_codes_distinguish_clean_from_dirty() {
    let bin = env!("CARGO_BIN_EXE_chiplet-check");
    let dirty = Command::new(bin)
        .arg("--workspace")
        .arg("--root")
        .arg(fixture_root())
        .output()
        .expect("run chiplet-check on the fixture corpus");
    assert_eq!(
        dirty.status.code(),
        Some(1),
        "fixture corpus must fail the lint; stdout:\n{}",
        String::from_utf8_lossy(&dirty.stdout)
    );

    let clean = Command::new(bin)
        .args(["--workspace", "--json"])
        .output()
        .expect("run chiplet-check on the workspace");
    assert_eq!(
        clean.status.code(),
        Some(0),
        "workspace must lint clean; stdout:\n{}",
        String::from_utf8_lossy(&clean.stdout)
    );
    let text = String::from_utf8_lossy(&clean.stdout);
    chiplet_harness::json::validate(text.trim()).expect("--json output must be valid JSON");
}
