//! Mutation-kill suite: proves the checker detects what it claims to
//! detect, not merely that the production table passes.
//!
//! Each [`Mutation`] emulates a known-bad table variant by corrupting
//! what the invariant layer observes — the production
//! `cpelide::table` itself is never touched:
//!
//! | mutation            | emulated bug                          | must fire               |
//! |---------------------|---------------------------------------|-------------------------|
//! | `SkipFlushEdge`     | one required flush forgotten          | no-unreachable-dirty    |
//! | `ElideReleases`     | releases elided unconditionally       | single-unflushed-writer |
//! | `DropInvalidations` | acquires (invalidations) never issued | stale-needs-acquire     |
//! | `CorruptTransition` | state machine takes an illegal edge   | figure6-legality        |
//!
//! Every mutation must be killed by **both** engines — DPOR's pruning
//! must never sleep through a bug BFS would catch — and the unmutated
//! explorations must stay clean, so a kill is attributable to the
//! mutation alone.

use chiplet_check::alphabet::AlphabetSpec;
use chiplet_check::dpor::Dpor;
use chiplet_check::model::{Bfs, Census, Explorer, Invariant, Mutation};

/// State budget that fully covers the depth ≤ 3 launch sequences every
/// mutation needs (write-then-write, write-then-read,
/// read-then-remote-write-then-read) in both debug and release builds.
const CAP: usize = 3_000;

fn explore(mutation: Option<Mutation>, engine: &str) -> Census {
    let spec = AlphabetSpec::race_free(2, 1);
    match engine {
        "bfs" => {
            let mut e = Bfs::capped(CAP);
            e.mutation = mutation;
            e.explore(&spec).census
        }
        _ => {
            let mut e = Dpor::capped(CAP);
            e.mutation = mutation;
            e.explore(&spec).census
        }
    }
}

fn assert_killed(mutation: Mutation, invariant: Invariant) {
    for engine in ["bfs", "dpor"] {
        let census = explore(Some(mutation), engine);
        assert!(
            census.violation_count > 0,
            "[{engine}] {mutation:?} survived: no violations at all"
        );
        assert!(
            census.fired(invariant),
            "[{engine}] {mutation:?} should fire {:?}; sampled: {:?}",
            invariant.name(),
            census.violations
        );
    }
}

#[test]
fn clean_baseline_is_clean() {
    // Attribution control: without a mutation, the same explorations
    // report nothing, so every kill below is the mutation's doing.
    for engine in ["bfs", "dpor"] {
        let census = explore(None, engine);
        assert_eq!(
            census.violation_count, 0,
            "[{engine}] baseline not clean: {:?}",
            census.violations
        );
    }
}

#[test]
fn skipped_flush_edge_is_killed() {
    // A table that forgets one flush leaves dirty lines a later reader
    // can see un-written-back.
    assert_killed(Mutation::SkipFlushEdge, Invariant::UnreachableDirty);
}

#[test]
fn unconditional_release_elision_is_killed() {
    // A table that always elides releases lets a second writer overlap
    // un-flushed dirty lines — the lost-update hazard.
    assert_killed(Mutation::ElideReleases, Invariant::SingleWriter);
}

#[test]
fn dropped_invalidation_is_killed() {
    // A table that never invalidates grants a Stale chiplet local access
    // without an acquire.
    assert_killed(Mutation::DropInvalidations, Invariant::StaleNeedsAcquire);
}

#[test]
fn corrupted_transition_is_killed() {
    // A state machine taking an illegal Figure 6 edge is caught by the
    // independent `chiplet_obs::audit::legal` replay.
    assert_killed(Mutation::CorruptTransition, Invariant::Fig6Legality);
}
