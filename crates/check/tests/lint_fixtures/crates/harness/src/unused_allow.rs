//! Fixture: an allow pragma whose rule never fires on its covered line
//! is dead documentation and must itself be reported.

// chiplet-check: allow(no-panic) — nothing on the next line can panic
pub fn add(a: u32, b: u32) -> u32 {
    a.wrapping_add(b)
}
