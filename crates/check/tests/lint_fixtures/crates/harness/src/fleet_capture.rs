//! chiplet-check fixture: `fleet-capture` must fire on line 7.

use std::rc::Rc;

pub fn tally(items: &[u32], seen: Rc<Vec<u32>>) -> Vec<u32> {
    parallel_map(items, 4, |v| {
        let shared = Rc::clone(&seen);
        shared.len() as u32 + v
    })
}
