//! chiplet-check fixture: `banned-import` must fire on line 3.

use rand::Rng;

pub fn roll<R: Rng>(rng: &mut R) -> u32 {
    rng.next_u32()
}
