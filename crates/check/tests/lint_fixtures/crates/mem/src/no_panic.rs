//! chiplet-check fixture: `no-panic` must fire on line 4.

pub fn first(xs: &[u32]) -> u32 {
    *xs.first().expect("non-empty input")
}
