//! chiplet-check fixture: `hash-iter` must fire on line 7.

use std::collections::HashMap;

pub fn sum(m: &HashMap<u32, u32>) -> u32 {
    let mut total = 0;
    for (_k, v) in m.iter() {
        total += v;
    }
    total
}
