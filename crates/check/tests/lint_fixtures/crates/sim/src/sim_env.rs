//! chiplet-check fixture: `sim-env` must fire on line 4.

pub fn host_override() -> Option<String> {
    std::env::var("CPELIDE_CHIPLETS").ok()
}
