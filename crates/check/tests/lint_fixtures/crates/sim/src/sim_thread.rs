//! chiplet-check fixture: `sim-thread` must fire on line 4.

pub fn fan_out() -> i32 {
    let handle = std::thread::spawn(|| 1 + 1);
    handle.join().unwrap_or(0)
}
