//! chiplet-check fixture: `wall-clock` must fire on line 4.

pub fn elapsed() -> u128 {
    let start = std::time::Instant::now();
    start.elapsed().as_nanos()
}
