//! chiplet-check fixture: `stale-todo` must fire on line 4.

pub fn placeholder() -> u32 {
    // TODO tighten this bound before the camera-ready
    41
}
