//! Integration tests for the static elision oracle (`chiplet_check::oracle`).
//!
//! Two layers:
//!
//! - A full-matrix differential sweep — every registered workload ×
//!   {Baseline, HMG, CPElide} × N ∈ {2, 4, 7} — asserting zero soundness
//!   violations (no `MustSync` boundary elided by the engine) and that
//!   the oracle's round mirror never drifts from the engine's event log.
//!   Release-only, like the model checker's exhaustive sweeps.
//! - A footprint-mutation test that runs in every profile: widening one
//!   kernel's read pattern from `Partitioned` to `Shared` must flip the
//!   inter-kernel boundary from `MayElide` to `MustSync`, and the real
//!   engine must agree (elide the base boundary, sync the mutant's).

use chiplet_check::oracle::{analyze_static, differential, CHIPLET_COUNTS, PROTOCOLS};
use chiplet_coherence::ProtocolKind;
use chiplet_gpu::kernel::{AccessPattern, KernelSpec, TouchKind};
use chiplet_gpu::stream::StreamId;
use chiplet_gpu::table::ArrayTable;
use chiplet_workloads::{known_names, lookup, Launch, ReuseClass, Workload};
use std::sync::Arc;

/// Every registered workload × protocol × chiplet count replays through
/// the real engine with zero soundness violations: the oracle never
/// proves a dependence across a boundary the engine elided. This is the
/// acceptance gate the `--oracle` CLI mode enforces in CI; the test pins
/// it independently of the committed artifact.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "full workload x protocol x chiplet-count sweep is release-only (ci-local runs it)"
)]
fn differential_matrix_has_zero_soundness_violations() {
    for name in known_names() {
        let w = lookup(&name).expect("registered name resolves");
        for n in CHIPLET_COUNTS {
            for p in PROTOCOLS {
                let cell = differential(&w, p, n);
                assert!(
                    cell.violations.is_empty(),
                    "{name} {} n={n}: {:?}",
                    p.label(),
                    cell.violations
                );
                assert_eq!(
                    cell.synced + cell.elided,
                    cell.boundaries,
                    "{name} {} n={n}: every boundary is synced or elided",
                    p.label()
                );
                // The static pass must mirror the engine's round structure
                // (differential() already asserts this via drift findings;
                // the boundary counts agreeing pins it from the other side).
                let s = analyze_static(&w, n);
                assert_eq!(
                    s.boundaries, cell.boundaries,
                    "{name} n={n}: static and differential round counts agree"
                );
                assert_eq!(s.must_sync + s.may_elide + s.unknown, s.boundaries);
            }
        }
    }
}

/// HMG keeps L2s continuously coherent: its lockstep model is an implicit
/// whole-GPU sync per round, so headroom is zero by construction.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "full workload sweep is release-only (ci-local runs it)"
)]
fn hmg_reports_no_headroom() {
    for name in known_names() {
        let w = lookup(&name).expect("registered name resolves");
        let cell = differential(&w, ProtocolKind::Hmg, 2);
        assert_eq!(cell.headroom_boundaries, 0, "{name}");
        assert_eq!(cell.headroom_sync_cycles, 0.0, "{name}");
        assert_eq!(cell.synced, 0, "{name}: HMG performs no boundary ops");
    }
}

/// A two-kernel producer/consumer with `reader_pattern` for the consumer.
/// 64 KiB array: at n = 2 each partition is 8 whole pages, so even the
/// page-widened may-footprints of disjoint partitions stay disjoint.
fn two_kernel_workload(reader_pattern: AccessPattern) -> Workload {
    let mut arrays = ArrayTable::new();
    let a = arrays.alloc("a", 64 << 10);
    let writer = Arc::new(
        KernelSpec::builder("producer")
            .array(a, TouchKind::Store, AccessPattern::Partitioned)
            .build(),
    );
    let reader = Arc::new(
        KernelSpec::builder("consumer")
            .array(a, TouchKind::Load, reader_pattern)
            .build(),
    );
    let launches = [writer, reader]
        .into_iter()
        .map(|spec| Launch {
            stream: StreamId::new(0),
            spec,
            binding: None,
        })
        .collect();
    Workload::new(
        "oracle-mutant",
        "synthetic",
        ReuseClass::ModerateHigh,
        arrays,
        launches,
    )
}

/// Widening the consumer's footprint from `Partitioned` (each chiplet
/// re-reads exactly what it wrote) to `Shared` (every chiplet reads the
/// whole array, including the other's unflushed partition) must flip the
/// producer/consumer boundary from `MayElide` to `MustSync`.
#[test]
fn footprint_mutation_flips_may_elide_to_must_sync() {
    let base = analyze_static(&two_kernel_workload(AccessPattern::Partitioned), 2);
    assert_eq!(base.boundaries, 2, "launch round plus one boundary");
    assert_eq!(
        base.may_elide, 2,
        "disjoint partitions: all boundaries elidable"
    );
    assert_eq!(base.must_sync, 0);
    assert!(base.diagnostics.is_empty());

    let mutant = analyze_static(&two_kernel_workload(AccessPattern::Shared), 2);
    assert_eq!(mutant.boundaries, 2);
    assert_eq!(mutant.must_sync, 1, "cross-chiplet RAW proved");
    assert_eq!(mutant.may_elide, 1, "round 0 stays trivially elidable");
    let diag = &mutant.diagnostics[0];
    assert!(diag.contains("RAW"), "cites the dependence kind: {diag}");
    assert!(
        diag.contains("producer@") && diag.contains("consumer@"),
        "cites both kernels with spans: {diag}"
    );
    assert!(
        diag.contains(file!()),
        "span points at this test file: {diag}"
    );
}

/// The real engine agrees with both verdicts: CPElide elides the
/// partitioned boundary (headroom stays zero because nothing elidable
/// was synced) and syncs the shared one (zero soundness violations).
#[test]
fn engine_matches_the_mutation_verdicts() {
    let base = differential(
        &two_kernel_workload(AccessPattern::Partitioned),
        ProtocolKind::CpElide,
        2,
    );
    assert!(base.violations.is_empty(), "{:?}", base.violations);
    assert_eq!(base.elided, 2, "engine elides both boundaries");
    assert_eq!(base.headroom_boundaries, 0);

    let mutant = differential(
        &two_kernel_workload(AccessPattern::Shared),
        ProtocolKind::CpElide,
        2,
    );
    assert!(mutant.violations.is_empty(), "{:?}", mutant.violations);
    assert_eq!(mutant.synced, 1, "engine syncs the must-sync boundary");
    assert_eq!(mutant.headroom_boundaries, 0);

    // Baseline syncs the elidable partitioned boundary: that is exactly
    // what the completeness check quantifies as headroom.
    let baseline = differential(
        &two_kernel_workload(AccessPattern::Partitioned),
        ProtocolKind::Baseline,
        2,
    );
    assert!(baseline.violations.is_empty(), "{:?}", baseline.violations);
    assert_eq!(baseline.headroom_boundaries, 1);
    assert!(baseline.headroom_sync_cycles > 0.0);
}
