//! The frozen per-line *scan* cache: the pre-rework reference
//! implementation of [`CacheCore`].
//!
//! Every bulk operation here walks the full way array — `flush_dirty`,
//! `flush_dirty_lines` and `invalidate_all` are O(total lines) regardless
//! of how many lines are actually dirty or valid. That made Baseline's
//! per-boundary `bulk_sync_all` the simulation wall-clock bottleneck and
//! is exactly what the event-driven [`SetAssocCache`] replaces. The scan
//! implementation stays because it *is* the specification: differential
//! tests replay identical traces through both cores and demand
//! byte-identical metrics.
//!
//! [`SetAssocCache`]: super::SetAssocCache

use super::{
    AccessOutcome, CacheCore, CacheGeometry, CacheStats, FlushOutcome, InvalidateOutcome,
    WritePolicy,
};
use crate::addr::LineAddr;

#[derive(Debug, Clone, Copy)]
struct Way {
    /// Full line index; the set is implied by position.
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Larger is more recently used.
    lru: u64,
}

const EMPTY_WAY: Way = Way {
    tag: 0,
    valid: false,
    dirty: false,
    lru: 0,
};

/// A functional set-associative cache with LRU replacement whose bulk
/// operations scan every way (the behavioural reference).
///
/// # Example
///
/// ```
/// use chiplet_mem::cache::{CacheGeometry, ScanCache, WritePolicy};
/// use chiplet_mem::addr::LineAddr;
///
/// let geom = CacheGeometry::new(4096, 64, 2)?; // 32 sets x 2 ways
/// let mut c = ScanCache::new(geom, WritePolicy::WriteBack);
/// assert!(!c.read(LineAddr::new(7)).hit); // cold miss fills
/// assert!(c.read(LineAddr::new(7)).hit);  // now hits
/// # Ok::<(), chiplet_mem::cache::GeometryError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ScanCache {
    geom: CacheGeometry,
    policy: WritePolicy,
    ways: Vec<Way>,
    tick: u64,
    valid_count: u64,
    dirty_count: u64,
    stats: CacheStats,
}

impl ScanCache {
    /// Creates an empty cache.
    pub fn new(geom: CacheGeometry, policy: WritePolicy) -> Self {
        ScanCache {
            geom,
            policy,
            ways: vec![EMPTY_WAY; geom.total_lines() as usize],
            tick: 0,
            valid_count: 0,
            dirty_count: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache's geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    /// The cache's write policy.
    pub fn policy(&self) -> WritePolicy {
        self.policy
    }

    /// Number of valid lines currently resident.
    pub fn valid_lines(&self) -> u64 {
        self.valid_count
    }

    /// Number of dirty lines currently resident.
    pub fn dirty_lines(&self) -> u64 {
        self.dirty_count
    }

    /// Event counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets the event counters (contents are preserved).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn set_slice(&self, line: LineAddr) -> std::ops::Range<usize> {
        let set = (line.get() % self.geom.sets()) as usize;
        let w = self.geom.ways() as usize;
        set * w..(set + 1) * w
    }

    /// True if the line is resident (does not update LRU or stats).
    pub fn probe(&self, line: LineAddr) -> bool {
        self.ways[self.set_slice(line)]
            .iter()
            .any(|w| w.valid && w.tag == line.get())
    }

    /// True if the line is resident and dirty.
    pub fn probe_dirty(&self, line: LineAddr) -> bool {
        self.ways[self.set_slice(line)]
            .iter()
            .any(|w| w.valid && w.dirty && w.tag == line.get())
    }

    fn touch(&mut self, line: LineAddr, write: bool) -> AccessOutcome {
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_slice(line);
        let make_dirty = write && self.policy == WritePolicy::WriteBack;

        // Hit path.
        if let Some(w) = self.ways[range.clone()]
            .iter_mut()
            .find(|w| w.valid && w.tag == line.get())
        {
            w.lru = tick;
            if make_dirty && !w.dirty {
                w.dirty = true;
                self.dirty_count += 1;
            }
            return AccessOutcome {
                hit: true,
                writeback: None,
                clean_eviction: None,
            };
        }

        // Miss: allocate (both policies write-allocate, per Table I).
        let set = &mut self.ways[range];
        let victim = set
            .iter_mut()
            .min_by_key(|w| if w.valid { w.lru + 1 } else { 0 })
            .expect("cache sets are never empty"); // chiplet-check: allow(no-panic) — geometry invariant

        let mut writeback = None;
        let mut clean_eviction = None;
        if victim.valid {
            let evicted = LineAddr::new(victim.tag);
            if victim.dirty {
                writeback = Some(evicted);
                self.dirty_count -= 1;
                self.stats.capacity_writebacks += 1;
            } else {
                clean_eviction = Some(evicted);
            }
            self.stats.evictions += 1;
            self.valid_count -= 1;
        }
        victim.tag = line.get();
        victim.valid = true;
        victim.dirty = make_dirty;
        victim.lru = tick;
        self.valid_count += 1;
        if make_dirty {
            self.dirty_count += 1;
        }
        self.stats.fills += 1;

        AccessOutcome {
            hit: false,
            writeback,
            clean_eviction,
        }
    }

    /// Performs a read access.
    pub fn read(&mut self, line: LineAddr) -> AccessOutcome {
        self.stats.reads += 1;
        let out = self.touch(line, false);
        if out.hit {
            self.stats.read_hits += 1;
        }
        out
    }

    /// Performs a write access. Under [`WritePolicy::WriteBack`] the line
    /// becomes dirty; under [`WritePolicy::WriteThrough`] it is allocated
    /// clean (the store is propagated downstream by the caller).
    pub fn write(&mut self, line: LineAddr) -> AccessOutcome {
        self.stats.writes += 1;
        let out = self.touch(line, true);
        if out.hit {
            self.stats.write_hits += 1;
        }
        out
    }

    /// Writes back every dirty line (an implicit *release*). Lines remain
    /// valid but clean, matching the baseline protocol's behaviour of
    /// retaining a clean copy after a full-line writeback.
    pub fn flush_dirty(&mut self) -> FlushOutcome {
        let mut flushed = 0;
        for w in &mut self.ways {
            if w.valid && w.dirty {
                w.dirty = false;
                flushed += 1;
            }
        }
        self.dirty_count = 0;
        self.stats.flush_writebacks += flushed;
        self.stats.bulk_flushes += 1;
        FlushOutcome {
            lines_written_back: flushed,
        }
    }

    /// Drops every line (an implicit *acquire*).
    pub fn invalidate_all(&mut self) -> InvalidateOutcome {
        let mut invalidated = 0;
        let mut dirty = 0;
        for w in &mut self.ways {
            if w.valid {
                invalidated += 1;
                if w.dirty {
                    dirty += 1;
                }
                w.valid = false;
                w.dirty = false;
            }
        }
        self.valid_count = 0;
        self.dirty_count = 0;
        self.stats.invalidated += invalidated;
        self.stats.bulk_invalidates += 1;
        InvalidateOutcome {
            lines_invalidated: invalidated,
            dirty_dropped: dirty,
        }
    }

    /// Writes back every dirty line like [`flush_dirty`](Self::flush_dirty),
    /// additionally returning the flushed line addresses so the caller can
    /// route each writeback to its home node. Lines are reported in
    /// ascending way-index order (the scan order) — the order contract the
    /// event-driven core must reproduce.
    pub fn flush_dirty_lines(&mut self) -> Vec<LineAddr> {
        let mut lines = Vec::with_capacity(self.dirty_count as usize);
        for w in &mut self.ways {
            if w.valid && w.dirty {
                w.dirty = false;
                lines.push(LineAddr::new(w.tag));
            }
        }
        self.dirty_count = 0;
        self.stats.flush_writebacks += lines.len() as u64;
        self.stats.bulk_flushes += 1;
        lines
    }

    /// Drops one line if present. Returns `Some(was_dirty)` if it was
    /// resident. Used by the HMG directory when a sharer must be invalidated.
    pub fn invalidate_line(&mut self, line: LineAddr) -> Option<bool> {
        let range = self.set_slice(line);
        let w = self.ways[range]
            .iter_mut()
            .find(|w| w.valid && w.tag == line.get())?;
        let was_dirty = w.dirty;
        w.valid = false;
        w.dirty = false;
        self.valid_count -= 1;
        if was_dirty {
            self.dirty_count -= 1;
        }
        self.stats.invalidated += 1;
        Some(was_dirty)
    }

    /// Writes back one line if present and dirty; the line stays valid.
    /// Returns true if a writeback occurred.
    pub fn flush_line(&mut self, line: LineAddr) -> bool {
        let range = self.set_slice(line);
        if let Some(w) = self.ways[range]
            .iter_mut()
            .find(|w| w.valid && w.dirty && w.tag == line.get())
        {
            w.dirty = false;
            self.dirty_count -= 1;
            self.stats.flush_writebacks += 1;
            true
        } else {
            false
        }
    }
}

impl CacheCore for ScanCache {
    fn new(geom: CacheGeometry, policy: WritePolicy) -> Self {
        ScanCache::new(geom, policy)
    }
    fn geometry(&self) -> CacheGeometry {
        self.geometry()
    }
    fn policy(&self) -> WritePolicy {
        self.policy()
    }
    fn valid_lines(&self) -> u64 {
        self.valid_lines()
    }
    fn dirty_lines(&self) -> u64 {
        self.dirty_lines()
    }
    fn stats(&self) -> CacheStats {
        self.stats()
    }
    fn reset_stats(&mut self) {
        self.reset_stats();
    }
    fn probe(&self, line: LineAddr) -> bool {
        self.probe(line)
    }
    fn probe_dirty(&self, line: LineAddr) -> bool {
        self.probe_dirty(line)
    }
    fn read(&mut self, line: LineAddr) -> AccessOutcome {
        self.read(line)
    }
    fn write(&mut self, line: LineAddr) -> AccessOutcome {
        self.write(line)
    }
    fn flush_dirty(&mut self) -> FlushOutcome {
        self.flush_dirty()
    }
    fn invalidate_all(&mut self) -> InvalidateOutcome {
        self.invalidate_all()
    }
    fn flush_dirty_lines(&mut self) -> Vec<LineAddr> {
        self.flush_dirty_lines()
    }
    fn invalidate_line(&mut self, line: LineAddr) -> Option<bool> {
        self.invalidate_line(line)
    }
    fn flush_line(&mut self, line: LineAddr) -> bool {
        self.flush_line(line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(policy: WritePolicy) -> ScanCache {
        // 2 sets x 2 ways, 64 B lines.
        ScanCache::new(CacheGeometry::new(256, 64, 2).unwrap(), policy)
    }

    #[test]
    fn geometry_validates() {
        assert!(CacheGeometry::new(0, 64, 2).is_err());
        assert!(CacheGeometry::new(256, 0, 2).is_err());
        assert!(CacheGeometry::new(256, 64, 0).is_err());
        assert!(CacheGeometry::new(100, 64, 2).is_err());
        let g = CacheGeometry::new(8 << 20, 64, 32).unwrap();
        assert_eq!(g.sets(), 4096);
        assert_eq!(g.total_lines(), 131072);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small(WritePolicy::WriteBack);
        assert!(!c.read(LineAddr::new(0)).hit);
        assert!(c.read(LineAddr::new(0)).hit);
        assert_eq!(c.stats().reads, 2);
        assert_eq!(c.stats().read_hits, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small(WritePolicy::WriteBack);
        // Set 0 holds even lines (2 sets).
        c.read(LineAddr::new(0));
        c.read(LineAddr::new(2));
        c.read(LineAddr::new(0)); // 0 is now MRU
        let out = c.read(LineAddr::new(4)); // evicts 2
        assert_eq!(out.clean_eviction, Some(LineAddr::new(2)));
        assert!(c.probe(LineAddr::new(0)));
        assert!(!c.probe(LineAddr::new(2)));
    }

    #[test]
    fn writeback_policy_marks_dirty_and_evicts_with_writeback() {
        let mut c = small(WritePolicy::WriteBack);
        c.write(LineAddr::new(0));
        assert!(c.probe_dirty(LineAddr::new(0)));
        c.write(LineAddr::new(2));
        let out = c.write(LineAddr::new(4)); // evicts dirty 0
        assert_eq!(out.writeback, Some(LineAddr::new(0)));
        assert_eq!(c.stats().capacity_writebacks, 1);
    }

    #[test]
    fn writethrough_never_dirty() {
        let mut c = small(WritePolicy::WriteThrough);
        c.write(LineAddr::new(0));
        c.write(LineAddr::new(2));
        assert_eq!(c.dirty_lines(), 0);
        let out = c.write(LineAddr::new(4));
        assert_eq!(out.writeback, None);
        assert!(out.clean_eviction.is_some());
    }

    #[test]
    fn flush_writes_back_but_retains_clean_copies() {
        let mut c = small(WritePolicy::WriteBack);
        c.write(LineAddr::new(0));
        c.write(LineAddr::new(1));
        c.read(LineAddr::new(2));
        let out = c.flush_dirty();
        assert_eq!(out.lines_written_back, 2);
        assert_eq!(c.dirty_lines(), 0);
        assert_eq!(c.valid_lines(), 3, "flush keeps clean copies");
        assert!(c.probe(LineAddr::new(0)));
    }

    #[test]
    fn flush_dirty_lines_reports_addresses() {
        let mut c = small(WritePolicy::WriteBack);
        c.write(LineAddr::new(0));
        c.write(LineAddr::new(3));
        c.read(LineAddr::new(1));
        let mut lines = c.flush_dirty_lines();
        lines.sort();
        assert_eq!(lines, vec![LineAddr::new(0), LineAddr::new(3)]);
        assert_eq!(c.dirty_lines(), 0);
        assert_eq!(c.valid_lines(), 3);
        assert!(c.flush_dirty_lines().is_empty());
    }

    #[test]
    fn invalidate_all_empties_cache() {
        let mut c = small(WritePolicy::WriteBack);
        c.write(LineAddr::new(0));
        c.read(LineAddr::new(1));
        let out = c.invalidate_all();
        assert_eq!(out.lines_invalidated, 2);
        assert_eq!(out.dirty_dropped, 1);
        assert_eq!(c.valid_lines(), 0);
        assert!(!c.probe(LineAddr::new(0)));
    }

    #[test]
    fn bulk_operation_counters_track_whole_cache_ops() {
        let mut c = small(WritePolicy::WriteBack);
        c.write(LineAddr::new(0));
        c.flush_dirty();
        c.flush_dirty_lines();
        c.invalidate_all();
        // Line-granular operations do not count as bulk ops.
        c.read(LineAddr::new(1));
        c.flush_line(LineAddr::new(1));
        c.invalidate_line(LineAddr::new(1));
        let s = c.stats();
        assert_eq!(s.bulk_flushes, 2);
        assert_eq!(s.bulk_invalidates, 1);

        let mut sum = CacheStats::default();
        sum += s;
        sum += s;
        assert_eq!(sum.bulk_flushes, 4);
        assert_eq!(sum.bulk_invalidates, 2);
    }

    #[test]
    fn invalidate_line_reports_dirtiness() {
        let mut c = small(WritePolicy::WriteBack);
        c.write(LineAddr::new(0));
        c.read(LineAddr::new(1));
        assert_eq!(c.invalidate_line(LineAddr::new(0)), Some(true));
        assert_eq!(c.invalidate_line(LineAddr::new(1)), Some(false));
        assert_eq!(c.invalidate_line(LineAddr::new(9)), None);
    }

    #[test]
    fn flush_line_clears_single_dirty_bit() {
        let mut c = small(WritePolicy::WriteBack);
        c.write(LineAddr::new(0));
        assert!(c.flush_line(LineAddr::new(0)));
        assert!(!c.flush_line(LineAddr::new(0)));
        assert!(c.probe(LineAddr::new(0)));
        assert_eq!(c.dirty_lines(), 0);
    }

    #[test]
    fn write_hit_on_clean_line_dirties_once() {
        let mut c = small(WritePolicy::WriteBack);
        c.read(LineAddr::new(0));
        assert_eq!(c.dirty_lines(), 0);
        c.write(LineAddr::new(0));
        c.write(LineAddr::new(0));
        assert_eq!(c.dirty_lines(), 1);
    }

    #[test]
    fn stats_hit_rate() {
        let mut c = small(WritePolicy::WriteBack);
        c.read(LineAddr::new(0));
        c.read(LineAddr::new(0));
        c.read(LineAddr::new(0));
        c.read(LineAddr::new(0));
        assert!((c.stats().hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn valid_count_never_exceeds_capacity() {
        let mut c = small(WritePolicy::WriteBack);
        for i in 0..100 {
            c.write(LineAddr::new(i));
            assert!(c.valid_lines() <= c.geometry().total_lines());
            assert!(c.dirty_lines() <= c.valid_lines());
        }
    }
}
