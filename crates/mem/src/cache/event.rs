//! The event-driven struct-of-arrays cache core.
//!
//! [`SetAssocCache`] is behaviourally identical to [`ScanCache`] (same
//! hits, same LRU victims, same writeback order, same stats) but its bulk
//! release/acquire operations cost O(touched lines), not O(capacity):
//!
//! * **SoA way metadata with a dense residency index** — `tags` and `lru`
//!   live in parallel `Vec`s indexed by flat way slot (`set * ways +
//!   way`), and a [`FlatMap`] keyed by the line's dense index maps each
//!   resident line straight to its slot. A hit is one epoch-checked array
//!   load — no tag walk at all — and trace replay's sequential line
//!   streams make those loads prefetch-friendly. Working sets far larger
//!   than the cache would make that index big and useless (miss-dominated
//!   streams barely consult it), so it retires permanently once the
//!   touched band outgrows [`INDEX_SLOT_BUDGET`]× the slot count and
//!   lookups fall back to a tag scan over the set's live-way mask.
//! * **Per-set valid bitmasks with epoch-tagged validity** — each set's
//!   validity is one `u64` word (bit per way), meaningful only while
//!   `set_epoch[s] == epoch`. `invalidate_all` (an acquire) bumps `epoch`:
//!   every line is dropped in O(1) instead of clearing 131k `valid`
//!   flags, and a set lazily re-stamps itself on its next fill. Victim
//!   selection on a non-full set is `trailing_zeros(!mask)` — the same
//!   first-invalid-way answer the reference scan produces.
//! * **Dirty-word bitmaps with a pending queue** — dirtiness is one bit per
//!   way slot, packed 64 slots to a `u64` word; each word carries its own
//!   epoch tag so acquires also clear dirtiness in O(1). The first time a
//!   bit is set in a word after a drain, the word index is pushed onto
//!   `pending` (`queued_gen` guards against duplicates). A boundary drain
//!   then visits only pending words — sorted ascending and walked with
//!   `trailing_zeros`, which reproduces the reference scan's ascending
//!   way-index writeback order bit-for-bit.
//!
//! [`ScanCache`]: super::ScanCache

use super::{
    AccessOutcome, CacheCore, CacheGeometry, CacheStats, FlushOutcome, InvalidateOutcome,
    WritePolicy,
};
use crate::addr::LineAddr;
use crate::flat::FlatMap;

/// Residency-index budget, in multiples of the cache's way-slot count.
/// While the touched line band fits the budget, hits cost one epoch-checked
/// load; past it the index retires to the per-set tag scan.
const INDEX_SLOT_BUDGET: usize = 2;

/// The event-driven set-associative cache with LRU replacement (the
/// default core used by the simulator).
///
/// # Example
///
/// ```
/// use chiplet_mem::cache::{CacheGeometry, SetAssocCache, WritePolicy};
/// use chiplet_mem::addr::LineAddr;
///
/// let geom = CacheGeometry::new(4096, 64, 2)?; // 32 sets x 2 ways
/// let mut c = SetAssocCache::new(geom, WritePolicy::WriteBack);
/// assert!(!c.read(LineAddr::new(7)).hit); // cold miss fills
/// assert!(c.read(LineAddr::new(7)).hit);  // now hits
/// # Ok::<(), chiplet_mem::cache::GeometryError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    geom: CacheGeometry,
    policy: WritePolicy,
    /// `sets - 1` when the set count is a power of two (every Table I
    /// geometry), letting the hot path mask instead of divide; `u64::MAX`
    /// flags the modulo fallback.
    set_mask: u64,
    /// Full line index per way slot; the set is implied by position.
    tags: Vec<u64>,
    /// LRU stamp per way slot; larger is more recently used.
    lru: Vec<u64>,
    /// Valid bits per set, one bit per way. A set's word is meaningful iff
    /// `set_epoch[s] == epoch`; stale words read as all-invalid and are
    /// re-stamped lazily on the set's next fill.
    valid_bits: Vec<u64>,
    set_epoch: Vec<u32>,
    /// Dense residency index: line → `epoch << 32 | (way slot + 1)`. An
    /// entry is live iff its high word equals `epoch`, so acquires orphan
    /// the whole index in O(1). Exact, not a superset: fills write it,
    /// evictions and targeted invalidations erase it.
    where_is: FlatMap<LineAddr, u64>,
    /// Whether the residency index is still maintained. The index spans the
    /// touched line band, so a working set far larger than the cache would
    /// make it both huge and useless (misses dominate). Once the band
    /// outgrows [`INDEX_SLOT_BUDGET`]× the slot count the index is retired
    /// for good and lookups fall back to a popcount-driven tag scan of the
    /// line's set. The switch depends only on the access stream, so results
    /// stay deterministic.
    index_live: bool,
    /// Dirty bits, 64 way slots per word. A word's contents are meaningful
    /// iff `dirty_word_epoch[w] == epoch`; otherwise the word is stale and
    /// reads as all-clean.
    dirty_words: Vec<u64>,
    dirty_word_epoch: Vec<u32>,
    /// Word indices with at least one dirty bit set since the last drain,
    /// in first-dirtied order (sorted at drain time).
    pending: Vec<u32>,
    /// A word is already on `pending` iff `queued_gen[w] == drain_gen`.
    queued_gen: Vec<u32>,
    epoch: u32,
    drain_gen: u32,
    tick: u64,
    valid_count: u64,
    dirty_count: u64,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry's associativity exceeds 64: validity is one
    /// `u64` mask per set. Every Table I geometry is ≤32 ways; use
    /// [`ScanCache`](super::ScanCache) for wider experiments.
    pub fn new(geom: CacheGeometry, policy: WritePolicy) -> Self {
        assert!(
            geom.ways() <= 64,
            "SetAssocCache supports at most 64 ways; got {}",
            geom.ways()
        );
        let slots = geom.total_lines() as usize;
        let words = slots.div_ceil(64);
        let sets = geom.sets();
        SetAssocCache {
            geom,
            policy,
            set_mask: if sets.is_power_of_two() {
                sets - 1
            } else {
                u64::MAX
            },
            tags: vec![0; slots],
            lru: vec![0; slots],
            valid_bits: vec![0; sets as usize],
            set_epoch: vec![0; sets as usize],
            where_is: FlatMap::new(0),
            index_live: true,
            dirty_words: vec![0; words],
            dirty_word_epoch: vec![0; words],
            pending: Vec::new(),
            queued_gen: vec![0; words],
            epoch: 1,
            drain_gen: 1,
            tick: 0,
            valid_count: 0,
            dirty_count: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache's geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    /// The cache's write policy.
    pub fn policy(&self) -> WritePolicy {
        self.policy
    }

    /// Number of valid lines currently resident.
    pub fn valid_lines(&self) -> u64 {
        self.valid_count
    }

    /// Number of dirty lines currently resident.
    pub fn dirty_lines(&self) -> u64 {
        self.dirty_count
    }

    /// Event counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets the event counters (contents are preserved).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    #[inline]
    fn set_index(&self, line: LineAddr) -> usize {
        let set = if self.set_mask != u64::MAX {
            line.get() & self.set_mask
        } else {
            line.get() % self.geom.sets()
        };
        set as usize
    }

    /// The set's valid-way mask, reading stale-epoch words as empty.
    #[inline]
    fn live_mask(&self, s: usize) -> u64 {
        if self.set_epoch[s] == self.epoch {
            self.valid_bits[s]
        } else {
            0
        }
    }

    /// Stamps the set into the current epoch, clearing a stale mask.
    #[inline]
    fn normalize_set(&mut self, s: usize) {
        if self.set_epoch[s] != self.epoch {
            self.set_epoch[s] = self.epoch;
            self.valid_bits[s] = 0;
        }
    }

    #[inline]
    fn dirty_bit(&self, i: usize) -> bool {
        let w = i / 64;
        self.dirty_word_epoch[w] == self.epoch && (self.dirty_words[w] >> (i % 64)) & 1 == 1
    }

    /// Sets the dirty bit for a way slot (which must currently read clean)
    /// and queues its word for the next drain. Does not touch
    /// `dirty_count` — callers keep the counter to mirror the reference
    /// control flow exactly.
    #[inline]
    fn set_dirty_bit(&mut self, i: usize) {
        let w = i / 64;
        if self.dirty_word_epoch[w] != self.epoch {
            // Stale word from a pre-acquire epoch: its bits are garbage.
            self.dirty_words[w] = 0;
            self.dirty_word_epoch[w] = self.epoch;
        }
        self.dirty_words[w] |= 1u64 << (i % 64);
        if self.queued_gen[w] != self.drain_gen {
            self.queued_gen[w] = self.drain_gen;
            self.pending.push(w as u32);
        }
    }

    #[inline]
    fn clear_dirty_bit(&mut self, i: usize) {
        let w = i / 64;
        if self.dirty_word_epoch[w] == self.epoch {
            self.dirty_words[w] &= !(1u64 << (i % 64));
        }
    }

    /// Starts a fresh drain generation: the pending queue is empty and
    /// every word may be queued again.
    fn bump_drain_gen(&mut self) {
        self.pending.clear();
        if self.drain_gen == u32::MAX {
            self.queued_gen.fill(0);
            self.drain_gen = 1;
        } else {
            self.drain_gen += 1;
        }
    }

    /// True if the line is resident (does not update LRU or stats).
    pub fn probe(&self, line: LineAddr) -> bool {
        self.find_way(line).is_some()
    }

    /// True if the line is resident and dirty.
    pub fn probe_dirty(&self, line: LineAddr) -> bool {
        self.find_way(line).is_some_and(|i| self.dirty_bit(i))
    }

    /// Way slot holding `line`, if resident: one epoch-checked load from
    /// the dense residency index while it is live, otherwise a tag scan of
    /// the set's live ways (lowest set bit first, early-exit on match).
    #[inline]
    fn find_way(&self, line: LineAddr) -> Option<usize> {
        if self.index_live {
            let e = self.where_is.get(line);
            return if (e >> 32) as u32 == self.epoch {
                Some((e as u32 as usize) - 1)
            } else {
                None
            };
        }
        let s = self.set_index(line);
        let mut m = self.live_mask(s);
        let base = s * self.geom.ways() as usize;
        let t = line.get();
        while m != 0 {
            let w = m.trailing_zeros() as usize;
            if self.tags[base + w] == t {
                return Some(base + w);
            }
            m &= m - 1;
        }
        None
    }

    /// Retires the residency index once the touched band outgrows its
    /// budget; from then on lookups tag-scan. One-way and deterministic.
    #[inline]
    fn audit_index_budget(&mut self) {
        if self.where_is.allocated_slots() > INDEX_SLOT_BUDGET * self.tags.len() {
            self.index_live = false;
            self.where_is = FlatMap::new(0);
        }
    }

    fn touch(&mut self, line: LineAddr, write: bool) -> AccessOutcome {
        self.tick += 1;
        let tick = self.tick;
        let make_dirty = write && self.policy == WritePolicy::WriteBack;

        // Locate the line. While the residency index is live this is one
        // epoch-checked load; once retired, a single merged pass over the
        // set's live ways checks tags *and* records the LRU victim a miss
        // would pick, so miss-dominated streams pay one sweep, not two.
        let s = self.set_index(line);
        let ways = self.geom.ways() as usize;
        let base = s * ways;
        let mut hit_way = None;
        let mut scanned_victim = base;
        if self.index_live {
            hit_way = self.find_way(line);
        } else {
            let mut m = self.live_mask(s);
            let t = line.get();
            let mut best = u64::MAX;
            while m != 0 {
                let w = m.trailing_zeros() as usize;
                if self.tags[base + w] == t {
                    hit_way = Some(base + w);
                    break;
                }
                let l = self.lru[base + w];
                if l < best {
                    best = l;
                    scanned_victim = base + w;
                }
                m &= m - 1;
            }
        }

        // Hit path.
        if let Some(i) = hit_way {
            self.lru[i] = tick;
            if make_dirty && !self.dirty_bit(i) {
                self.set_dirty_bit(i);
                self.dirty_count += 1;
            }
            return AccessOutcome {
                hit: true,
                writeback: None,
                clean_eviction: None,
            };
        }

        // Miss: allocate (both policies write-allocate, per Table I).
        // Victim = first way with the minimal key, matching the reference's
        // `min_by_key(|w| if valid { lru + 1 } else { 0 })` tie-break: any
        // invalid way keys to 0, so the first zero bit of the valid mask
        // wins; only a full set falls back to the first-minimal LRU sweep
        // (already performed above when the index is retired — ascending
        // ways with a strict `<` keep the same first-minimal answer).
        self.normalize_set(s);
        let mask = self.valid_bits[s];
        let full = if ways == 64 {
            !0u64
        } else {
            (1u64 << ways) - 1
        };
        let victim_full = mask == full;
        let victim = if !victim_full {
            base + (!mask).trailing_zeros() as usize
        } else if !self.index_live {
            scanned_victim
        } else {
            let lrus = &self.lru[base..base + ways];
            let mut v = 0usize;
            let mut best = lrus[0];
            for (w, &l) in lrus.iter().enumerate().skip(1) {
                if l < best {
                    v = w;
                    best = l;
                }
            }
            base + v
        };

        let mut writeback = None;
        let mut clean_eviction = None;
        if victim_full {
            let evicted = LineAddr::new(self.tags[victim]);
            if self.index_live {
                *self.where_is.get_mut(evicted) = 0;
            }
            if self.dirty_bit(victim) {
                writeback = Some(evicted);
                self.clear_dirty_bit(victim);
                self.dirty_count -= 1;
                self.stats.capacity_writebacks += 1;
            } else {
                clean_eviction = Some(evicted);
            }
            self.stats.evictions += 1;
            self.valid_count -= 1;
        }
        self.tags[victim] = line.get();
        self.valid_bits[s] |= 1u64 << (victim - base);
        if self.index_live {
            *self.where_is.get_mut(line) = (u64::from(self.epoch) << 32) | (victim as u64 + 1);
            self.audit_index_budget();
        }
        self.lru[victim] = tick;
        self.valid_count += 1;
        if make_dirty {
            self.set_dirty_bit(victim);
            self.dirty_count += 1;
        }
        self.stats.fills += 1;

        AccessOutcome {
            hit: false,
            writeback,
            clean_eviction,
        }
    }

    /// Performs a read access.
    pub fn read(&mut self, line: LineAddr) -> AccessOutcome {
        self.stats.reads += 1;
        let out = self.touch(line, false);
        if out.hit {
            self.stats.read_hits += 1;
        }
        out
    }

    /// Performs a write access. Under [`WritePolicy::WriteBack`] the line
    /// becomes dirty; under [`WritePolicy::WriteThrough`] it is allocated
    /// clean (the store is propagated downstream by the caller).
    pub fn write(&mut self, line: LineAddr) -> AccessOutcome {
        self.stats.writes += 1;
        let out = self.touch(line, true);
        if out.hit {
            self.stats.write_hits += 1;
        }
        out
    }

    /// Writes back every dirty line (an implicit *release*). Lines remain
    /// valid but clean. Visits only words dirtied since the last drain.
    pub fn flush_dirty(&mut self) -> FlushOutcome {
        let flushed = self.dirty_count;
        for k in 0..self.pending.len() {
            let w = self.pending[k] as usize;
            if self.dirty_word_epoch[w] == self.epoch {
                self.dirty_words[w] = 0;
            }
        }
        self.bump_drain_gen();
        self.dirty_count = 0;
        self.stats.flush_writebacks += flushed;
        self.stats.bulk_flushes += 1;
        FlushOutcome {
            lines_written_back: flushed,
        }
    }

    /// Drops every line (an implicit *acquire*) in O(1) via an epoch bump.
    pub fn invalidate_all(&mut self) -> InvalidateOutcome {
        let invalidated = self.valid_count;
        let dirty = self.dirty_count;
        if self.epoch == u32::MAX {
            self.set_epoch.fill(0);
            self.dirty_word_epoch.fill(0);
            self.where_is.clear();
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
        self.bump_drain_gen();
        self.valid_count = 0;
        self.dirty_count = 0;
        self.stats.invalidated += invalidated;
        self.stats.bulk_invalidates += 1;
        InvalidateOutcome {
            lines_invalidated: invalidated,
            dirty_dropped: dirty,
        }
    }

    /// Writes back every dirty line like [`flush_dirty`](Self::flush_dirty),
    /// additionally returning the flushed line addresses. Pending words are
    /// sorted and their bits walked with `trailing_zeros`, so lines come
    /// out in ascending way-index order — byte-identical to the reference
    /// scan's order.
    pub fn flush_dirty_lines(&mut self) -> Vec<LineAddr> {
        let mut lines = Vec::with_capacity(self.dirty_count as usize);
        let mut pending = std::mem::take(&mut self.pending);
        pending.sort_unstable();
        for &word in &pending {
            let w = word as usize;
            if self.dirty_word_epoch[w] != self.epoch {
                continue;
            }
            let mut bits = self.dirty_words[w];
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                lines.push(LineAddr::new(self.tags[w * 64 + b]));
                bits &= bits - 1;
            }
            self.dirty_words[w] = 0;
        }
        self.pending = pending;
        self.bump_drain_gen();
        debug_assert_eq!(lines.len() as u64, self.dirty_count);
        self.dirty_count = 0;
        self.stats.flush_writebacks += lines.len() as u64;
        self.stats.bulk_flushes += 1;
        lines
    }

    /// Drops one line if present. Returns `Some(was_dirty)` if it was
    /// resident. Used by the HMG directory when a sharer must be invalidated.
    pub fn invalidate_line(&mut self, line: LineAddr) -> Option<bool> {
        let i = self.find_way(line)?;
        let was_dirty = self.dirty_bit(i);
        let ways = self.geom.ways() as usize;
        // A found way implies its set is stamped into the current epoch.
        self.valid_bits[i / ways] &= !(1u64 << (i % ways));
        if self.index_live {
            *self.where_is.get_mut(line) = 0;
        }
        self.valid_count -= 1;
        if was_dirty {
            self.clear_dirty_bit(i);
            self.dirty_count -= 1;
        }
        self.stats.invalidated += 1;
        Some(was_dirty)
    }

    /// Writes back one line if present and dirty; the line stays valid.
    /// Returns true if a writeback occurred.
    pub fn flush_line(&mut self, line: LineAddr) -> bool {
        match self.find_way(line) {
            Some(i) if self.dirty_bit(i) => {
                self.clear_dirty_bit(i);
                self.dirty_count -= 1;
                self.stats.flush_writebacks += 1;
                true
            }
            _ => false,
        }
    }
}

impl CacheCore for SetAssocCache {
    fn new(geom: CacheGeometry, policy: WritePolicy) -> Self {
        SetAssocCache::new(geom, policy)
    }
    fn geometry(&self) -> CacheGeometry {
        self.geometry()
    }
    fn policy(&self) -> WritePolicy {
        self.policy()
    }
    fn valid_lines(&self) -> u64 {
        self.valid_lines()
    }
    fn dirty_lines(&self) -> u64 {
        self.dirty_lines()
    }
    fn stats(&self) -> CacheStats {
        self.stats()
    }
    fn reset_stats(&mut self) {
        self.reset_stats();
    }
    fn probe(&self, line: LineAddr) -> bool {
        self.probe(line)
    }
    fn probe_dirty(&self, line: LineAddr) -> bool {
        self.probe_dirty(line)
    }
    fn read(&mut self, line: LineAddr) -> AccessOutcome {
        self.read(line)
    }
    fn write(&mut self, line: LineAddr) -> AccessOutcome {
        self.write(line)
    }
    fn flush_dirty(&mut self) -> FlushOutcome {
        self.flush_dirty()
    }
    fn invalidate_all(&mut self) -> InvalidateOutcome {
        self.invalidate_all()
    }
    fn flush_dirty_lines(&mut self) -> Vec<LineAddr> {
        self.flush_dirty_lines()
    }
    fn invalidate_line(&mut self, line: LineAddr) -> Option<bool> {
        self.invalidate_line(line)
    }
    fn flush_line(&mut self, line: LineAddr) -> bool {
        self.flush_line(line)
    }
}

#[cfg(test)]
mod tests {
    use super::super::ScanCache;
    use super::*;

    fn small(policy: WritePolicy) -> SetAssocCache {
        // 2 sets x 2 ways, 64 B lines.
        SetAssocCache::new(CacheGeometry::new(256, 64, 2).unwrap(), policy)
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small(WritePolicy::WriteBack);
        assert!(!c.read(LineAddr::new(0)).hit);
        assert!(c.read(LineAddr::new(0)).hit);
        assert_eq!(c.stats().reads, 2);
        assert_eq!(c.stats().read_hits, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small(WritePolicy::WriteBack);
        c.read(LineAddr::new(0));
        c.read(LineAddr::new(2));
        c.read(LineAddr::new(0)); // 0 is now MRU
        let out = c.read(LineAddr::new(4)); // evicts 2
        assert_eq!(out.clean_eviction, Some(LineAddr::new(2)));
        assert!(c.probe(LineAddr::new(0)));
        assert!(!c.probe(LineAddr::new(2)));
    }

    #[test]
    fn drain_preserves_reference_order() {
        // Dirty lines queued out of way order must still drain in ascending
        // way-index order (the scan order the goldens depend on).
        let geom = CacheGeometry::new(4096, 64, 4).unwrap(); // 16 sets x 4 ways
        let mut ev = SetAssocCache::new(geom, WritePolicy::WriteBack);
        let mut sc = ScanCache::new(geom, WritePolicy::WriteBack);
        // Touch sets high-to-low, several ways per set.
        for line in [49u64, 17, 33, 1, 50, 2, 18, 15, 47, 31, 63] {
            ev.write(LineAddr::new(line));
            sc.write(LineAddr::new(line));
        }
        assert_eq!(ev.flush_dirty_lines(), sc.flush_dirty_lines());
    }

    #[test]
    fn invalidate_all_is_epoch_bump() {
        let mut c = small(WritePolicy::WriteBack);
        c.write(LineAddr::new(0));
        c.read(LineAddr::new(1));
        let out = c.invalidate_all();
        assert_eq!(out.lines_invalidated, 2);
        assert_eq!(out.dirty_dropped, 1);
        assert_eq!(c.valid_lines(), 0);
        assert!(!c.probe(LineAddr::new(0)));
        // The slot is reusable and the stale dirty bit must not leak into
        // the new epoch.
        c.read(LineAddr::new(0));
        assert_eq!(c.dirty_lines(), 0);
        assert!(c.flush_dirty_lines().is_empty());
    }

    #[test]
    fn stale_dirty_word_does_not_leak_across_epochs() {
        let mut c = small(WritePolicy::WriteBack);
        c.write(LineAddr::new(0)); // dirty bit in word 0
        c.invalidate_all();
        c.read(LineAddr::new(0)); // same slot refilled clean
        assert!(!c.probe_dirty(LineAddr::new(0)));
        assert_eq!(c.flush_dirty(), FlushOutcome::default());
    }

    #[test]
    fn requeue_after_drain_generations() {
        let mut c = small(WritePolicy::WriteBack);
        c.write(LineAddr::new(0));
        assert_eq!(c.flush_dirty_lines(), vec![LineAddr::new(0)]);
        // Same word must be queueable again in the next generation.
        c.write(LineAddr::new(0));
        assert_eq!(c.flush_dirty_lines(), vec![LineAddr::new(0)]);
        assert!(c.flush_dirty_lines().is_empty());
    }

    #[test]
    fn flush_line_and_invalidate_line_update_queue_state() {
        let mut c = small(WritePolicy::WriteBack);
        c.write(LineAddr::new(0));
        c.write(LineAddr::new(1));
        assert!(c.flush_line(LineAddr::new(0)));
        assert_eq!(c.invalidate_line(LineAddr::new(1)), Some(true));
        // Both dirty bits are gone; drain sees an empty (but queued) word.
        assert!(c.flush_dirty_lines().is_empty());
    }

    /// Differential fuzz against the reference scan implementation: every
    /// observable (outcomes, probes, counts, drain order, stats) must match
    /// on a mixed op stream with evictions, bulk ops and line ops.
    #[test]
    fn matches_scan_cache_on_random_op_stream() {
        for (seed, policy) in [
            (0x9e3779b97f4a7c15u64, WritePolicy::WriteBack),
            (0xdeadbeefcafef00du64, WritePolicy::WriteBack),
            (0x0123456789abcdefu64, WritePolicy::WriteThrough),
        ] {
            let geom = CacheGeometry::new(8192, 64, 4).unwrap(); // 32 sets x 4 ways
            let mut ev = SetAssocCache::new(geom, policy);
            let mut sc = ScanCache::new(geom, policy);
            let mut x = seed;
            let mut rng = move || {
                // xorshift64* — deterministic, dependency-free.
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                x.wrapping_mul(0x2545f4914f6cdd1d)
            };
            for _ in 0..20_000 {
                let r = rng();
                let line = LineAddr::new(r >> 32 & 0x1ff); // 512-line footprint
                match r % 100 {
                    0..=44 => assert_eq!(ev.read(line), sc.read(line)),
                    45..=84 => assert_eq!(ev.write(line), sc.write(line)),
                    85..=88 => assert_eq!(ev.flush_line(line), sc.flush_line(line)),
                    89..=92 => assert_eq!(ev.invalidate_line(line), sc.invalidate_line(line)),
                    93..=95 => assert_eq!(ev.flush_dirty_lines(), sc.flush_dirty_lines()),
                    96..=97 => assert_eq!(ev.flush_dirty(), sc.flush_dirty()),
                    98 => assert_eq!(ev.invalidate_all(), sc.invalidate_all()),
                    _ => {
                        assert_eq!(ev.probe(line), sc.probe(line));
                        assert_eq!(ev.probe_dirty(line), sc.probe_dirty(line));
                    }
                }
                assert_eq!(ev.valid_lines(), sc.valid_lines());
                assert_eq!(ev.dirty_lines(), sc.dirty_lines());
            }
            assert_eq!(ev.stats(), sc.stats());
            assert_eq!(ev.flush_dirty_lines(), sc.flush_dirty_lines());
        }
    }
}
