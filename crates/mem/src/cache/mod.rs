//! Functional set-associative caches with LRU replacement.
//!
//! This models the GPU L2 (per chiplet) and L3 (shared LLC) caches at cache
//! line granularity. It is *functional*: it tracks which lines are present
//! and dirty so that hit/miss/writeback event counts are exact, while timing
//! is accounted for separately by the simulator's latency model.
//!
//! Three operations matter for implicit synchronization:
//!
//! * [`CacheCore::flush_dirty`] — a *release*: write back every dirty
//!   line. Following the paper's baseline protocol, a full-line writeback
//!   leaves a **clean copy** in the cache ("the cache retains a clean copy of
//!   the line and transitions to a shared state").
//! * [`CacheCore::invalidate_all`] — an *acquire*: drop every line.
//! * [`CacheCore::invalidate_line`] / [`CacheCore::flush_line`] —
//!   targeted variants used by the HMG directory on sharer invalidations.
//!
//! Two interchangeable implementations exist behind the [`CacheCore`]
//! trait:
//!
//! * [`SetAssocCache`] — the event-driven struct-of-arrays core. Bulk
//!   release/acquire work is proportional to the number of *touched* lines
//!   (dirty-word pending queues, epoch-tagged validity), not cache
//!   capacity.
//! * [`ScanCache`] — the frozen per-line reference implementation whose
//!   bulk operations walk every way. It defines the behavioural contract;
//!   differential tests replay identical traces through both and demand
//!   byte-identical metrics.

use crate::addr::LineAddr;
use std::error::Error;
use std::fmt;

mod event;
mod scan;

pub use event::SetAssocCache;
pub use scan::ScanCache;

/// Write policy for a cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WritePolicy {
    /// Write-back with write-allocate (the paper's baseline L2, Table I).
    WriteBack,
    /// Write-through with write-allocate: stores update the cache but are
    /// immediately propagated downstream and the line is never dirty
    /// (HMG's L2 variant used in the paper's evaluation).
    WriteThrough,
}

/// Error returned when a [`CacheGeometry`] is internally inconsistent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeometryError {
    message: String,
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid cache geometry: {}", self.message)
    }
}

impl Error for GeometryError {}

/// Size/shape of a set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    capacity_bytes: u64,
    line_bytes: u64,
    ways: u32,
    sets: u64,
}

impl CacheGeometry {
    /// Derives the set count from capacity, line size and associativity.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError`] if any parameter is zero or the capacity is
    /// not an exact multiple of `line_bytes * ways`.
    pub fn new(capacity_bytes: u64, line_bytes: u64, ways: u32) -> Result<Self, GeometryError> {
        if capacity_bytes == 0 || line_bytes == 0 || ways == 0 {
            return Err(GeometryError {
                message: "capacity, line size and ways must be non-zero".to_owned(),
            });
        }
        let row = line_bytes * u64::from(ways);
        if !capacity_bytes.is_multiple_of(row) {
            return Err(GeometryError {
                message: format!(
                    "capacity {capacity_bytes} is not a multiple of line_bytes*ways = {row}"
                ),
            });
        }
        Ok(CacheGeometry {
            capacity_bytes,
            line_bytes,
            ways,
            sets: capacity_bytes / row,
        })
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(self) -> u64 {
        self.capacity_bytes
    }

    /// Line size in bytes.
    pub fn line_bytes(self) -> u64 {
        self.line_bytes
    }

    /// Associativity.
    pub fn ways(self) -> u32 {
        self.ways
    }

    /// Number of sets.
    pub fn sets(self) -> u64 {
        self.sets
    }

    /// Total line slots (`sets * ways`).
    pub fn total_lines(self) -> u64 {
        self.sets * u64::from(self.ways)
    }
}

/// Monotonically growing event counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Read accesses observed.
    pub reads: u64,
    /// Write accesses observed.
    pub writes: u64,
    /// Read accesses that hit.
    pub read_hits: u64,
    /// Write accesses that hit.
    pub write_hits: u64,
    /// Lines filled (allocated) on misses.
    pub fills: u64,
    /// Valid lines evicted to make room for fills.
    pub evictions: u64,
    /// Dirty lines written back due to capacity evictions.
    pub capacity_writebacks: u64,
    /// Dirty lines written back by explicit flush operations (releases).
    pub flush_writebacks: u64,
    /// Lines dropped by explicit invalidations (acquires).
    pub invalidated: u64,
    /// Whole-cache flush operations performed (bulk releases).
    pub bulk_flushes: u64,
    /// Whole-cache invalidate operations performed (bulk acquires).
    pub bulk_invalidates: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Total hits.
    pub fn hits(&self) -> u64 {
        self.read_hits + self.write_hits
    }

    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.accesses() - self.hits()
    }

    /// Hit rate in `[0, 1]`; zero if no accesses were made.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits() as f64 / self.accesses() as f64
        }
    }
}

impl std::ops::AddAssign for CacheStats {
    fn add_assign(&mut self, rhs: CacheStats) {
        self.reads += rhs.reads;
        self.writes += rhs.writes;
        self.read_hits += rhs.read_hits;
        self.write_hits += rhs.write_hits;
        self.fills += rhs.fills;
        self.evictions += rhs.evictions;
        self.capacity_writebacks += rhs.capacity_writebacks;
        self.flush_writebacks += rhs.flush_writebacks;
        self.invalidated += rhs.invalidated;
        self.bulk_flushes += rhs.bulk_flushes;
        self.bulk_invalidates += rhs.bulk_invalidates;
    }
}

/// Result of a single read or write access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the line was already present.
    pub hit: bool,
    /// Dirty line evicted by the fill, which must be written back downstream.
    pub writeback: Option<LineAddr>,
    /// Clean valid line evicted by the fill (dropped silently).
    pub clean_eviction: Option<LineAddr>,
}

/// Result of [`CacheCore::flush_dirty`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlushOutcome {
    /// Number of dirty lines written back. The lines remain valid (clean).
    pub lines_written_back: u64,
}

/// Result of [`CacheCore::invalidate_all`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InvalidateOutcome {
    /// Valid lines dropped.
    pub lines_invalidated: u64,
    /// Of those, lines that were dirty (lost unless flushed first — callers
    /// implementing a correct protocol flush before invalidating).
    pub dirty_dropped: u64,
}

/// Behavioural contract shared by the cache implementations.
///
/// `MemorySystem` and the simulator engine are generic over this trait so
/// that identical traces can be replayed through the event-driven
/// [`SetAssocCache`] and the reference [`ScanCache`] and compared
/// bit-for-bit. Implementations must agree on every observable: hit/miss
/// outcomes, eviction choices (LRU, first-minimal tie-break), *and the
/// order in which bulk operations report lines* — [`flush_dirty_lines`]
/// must emit dirty lines in ascending way-index order, because downstream
/// L3 LRU state (and hence every later eviction) depends on it.
///
/// [`flush_dirty_lines`]: CacheCore::flush_dirty_lines
pub trait CacheCore: fmt::Debug + Clone {
    /// Creates an empty cache.
    fn new(geom: CacheGeometry, policy: WritePolicy) -> Self;
    /// The cache's geometry.
    fn geometry(&self) -> CacheGeometry;
    /// The cache's write policy.
    fn policy(&self) -> WritePolicy;
    /// Number of valid lines currently resident.
    fn valid_lines(&self) -> u64;
    /// Number of dirty lines currently resident.
    fn dirty_lines(&self) -> u64;
    /// Event counters.
    fn stats(&self) -> CacheStats;
    /// Resets the event counters (contents are preserved).
    fn reset_stats(&mut self);
    /// True if the line is resident (does not update LRU or stats).
    fn probe(&self, line: LineAddr) -> bool;
    /// True if the line is resident and dirty.
    fn probe_dirty(&self, line: LineAddr) -> bool;
    /// Performs a read access.
    fn read(&mut self, line: LineAddr) -> AccessOutcome;
    /// Performs a write access. Under [`WritePolicy::WriteBack`] the line
    /// becomes dirty; under [`WritePolicy::WriteThrough`] it is allocated
    /// clean (the store is propagated downstream by the caller).
    fn write(&mut self, line: LineAddr) -> AccessOutcome;
    /// Writes back every dirty line (an implicit *release*). Lines remain
    /// valid but clean.
    fn flush_dirty(&mut self) -> FlushOutcome;
    /// Drops every line (an implicit *acquire*).
    fn invalidate_all(&mut self) -> InvalidateOutcome;
    /// Writes back every dirty line, returning the flushed addresses in
    /// ascending way-index order so the caller can route each writeback to
    /// its home node.
    fn flush_dirty_lines(&mut self) -> Vec<LineAddr>;
    /// Drops one line if present. Returns `Some(was_dirty)` if it was
    /// resident.
    fn invalidate_line(&mut self, line: LineAddr) -> Option<bool>;
    /// Writes back one line if present and dirty; the line stays valid.
    /// Returns true if a writeback occurred.
    fn flush_line(&mut self, line: LineAddr) -> bool;
}
