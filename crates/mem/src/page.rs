//! First-touch page placement.
//!
//! The paper's configurations all use the state-of-the-art first-touch
//! policy (§IV-C1): the first chiplet to touch a page becomes its *home
//! node*, owning the L3 bank slice and HBM partition holding that page.
//! Accesses from any other chiplet are *remote* and cross the inter-chiplet
//! interconnect.
//!
//! The home of a line is consulted on **every** simulated access, so the
//! page table is stored flat ([`crate::flat::FlatMap`]) rather than hashed:
//! device arrays occupy one dense band of pages, and the lookup is an index
//! into a `Vec` slot shared with the neighbouring pages an access stream
//! touches next.

use crate::addr::{ChipletId, PageAddr};
use crate::flat::FlatMap;

/// First-touch page-to-home-chiplet mapping.
///
/// # Example
///
/// ```
/// use chiplet_mem::page::FirstTouchPlacement;
/// use chiplet_mem::addr::{ChipletId, PageAddr};
///
/// let mut p = FirstTouchPlacement::new();
/// let home = p.home_of(PageAddr::new(7), ChipletId::new(2));
/// assert_eq!(home, ChipletId::new(2));
/// // Later touches by other chiplets do not change the home.
/// assert_eq!(p.home_of(PageAddr::new(7), ChipletId::new(0)), ChipletId::new(2));
/// ```
#[derive(Debug, Clone, Default)]
pub struct FirstTouchPlacement {
    homes: FlatMap<PageAddr, Option<ChipletId>>,
    placed: usize,
}

/// The shared page table: one first-touch map serves both the timing model
/// and the coherence oracle, so their notions of "home" can never drift.
pub type PageTable = FirstTouchPlacement;

impl FirstTouchPlacement {
    /// Creates an empty placement map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the page's home chiplet, assigning `toucher` as home on the
    /// first touch.
    #[inline]
    pub fn home_of(&mut self, page: PageAddr, toucher: ChipletId) -> ChipletId {
        let slot = self.homes.get_mut(page);
        match *slot {
            Some(home) => home,
            None => {
                *slot = Some(toucher);
                self.placed += 1;
                toucher
            }
        }
    }

    /// Returns the page's home chiplet if it has been touched.
    #[inline]
    pub fn home_if_placed(&self, page: PageAddr) -> Option<ChipletId> {
        self.homes.get(page)
    }

    /// Pre-assigns a home (used by tests and by workloads that model
    /// initialization kernels having already touched their arrays).
    pub fn place(&mut self, page: PageAddr, home: ChipletId) {
        let slot = self.homes.get_mut(page);
        if slot.is_none() {
            self.placed += 1;
        }
        *slot = Some(home);
    }

    /// Number of placed pages.
    pub fn placed_pages(&self) -> usize {
        self.placed
    }

    /// Clears all placements (a fresh address space).
    pub fn clear(&mut self) {
        self.homes.clear();
        self.placed = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_sticks() {
        let mut p = FirstTouchPlacement::new();
        assert_eq!(
            p.home_of(PageAddr::new(0), ChipletId::new(1)),
            ChipletId::new(1)
        );
        assert_eq!(
            p.home_of(PageAddr::new(0), ChipletId::new(3)),
            ChipletId::new(1)
        );
        assert_eq!(p.placed_pages(), 1);
    }

    #[test]
    fn distinct_pages_get_distinct_homes() {
        let mut p = FirstTouchPlacement::new();
        p.home_of(PageAddr::new(0), ChipletId::new(0));
        p.home_of(PageAddr::new(1), ChipletId::new(1));
        assert_eq!(p.home_if_placed(PageAddr::new(0)), Some(ChipletId::new(0)));
        assert_eq!(p.home_if_placed(PageAddr::new(1)), Some(ChipletId::new(1)));
        assert_eq!(p.home_if_placed(PageAddr::new(2)), None);
    }

    #[test]
    fn place_overrides_future_touches() {
        let mut p = FirstTouchPlacement::new();
        p.place(PageAddr::new(5), ChipletId::new(2));
        assert_eq!(
            p.home_of(PageAddr::new(5), ChipletId::new(0)),
            ChipletId::new(2)
        );
    }

    #[test]
    fn clear_resets() {
        let mut p = FirstTouchPlacement::new();
        p.home_of(PageAddr::new(0), ChipletId::new(0));
        p.clear();
        assert_eq!(p.placed_pages(), 0);
        assert_eq!(p.home_if_placed(PageAddr::new(0)), None);
    }

    #[test]
    fn placement_far_from_heap_base_then_near() {
        // The oracle and the timing model address pages both at the array
        // heap base (0x10000) and, in unit tests, near zero; the flat map
        // must serve both without forgetting earlier placements.
        let mut p = FirstTouchPlacement::new();
        p.home_of(PageAddr::new(0x10000), ChipletId::new(3));
        p.home_of(PageAddr::new(1), ChipletId::new(2));
        assert_eq!(
            p.home_if_placed(PageAddr::new(0x10000)),
            Some(ChipletId::new(3))
        );
        assert_eq!(p.home_if_placed(PageAddr::new(1)), Some(ChipletId::new(2)));
        assert_eq!(p.placed_pages(), 2);
    }

    #[test]
    fn place_twice_counts_once() {
        let mut p = FirstTouchPlacement::new();
        p.place(PageAddr::new(9), ChipletId::new(0));
        p.place(PageAddr::new(9), ChipletId::new(1));
        assert_eq!(p.placed_pages(), 1);
        assert_eq!(p.home_if_placed(PageAddr::new(9)), Some(ChipletId::new(1)));
    }
}
