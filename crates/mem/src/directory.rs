//! Coarse-grained L2 coherence directory, as used by the HMG comparison
//! protocol.
//!
//! HMG tracks sharers hierarchically with a per-chiplet directory in which
//! **one entry covers four consecutive cache lines** (paper §IV-C: "a L2
//! coherence directory with 12K entries for each GPU chiplet, with each entry
//! covering four cache lines"). When a directory entry is evicted, every
//! covered line must be invalidated at every sharer — this is the mechanism
//! behind HMG's extra invalidation traffic on low-locality workloads
//! (paper §V-B: "HMG binding four cache lines to one directory entry causes
//! many directory evictions ... generating many remote invalidations").

use crate::addr::{ChipletId, LineAddr};
use std::fmt;

/// A set of chiplets sharing a region, stored as a bitmask word (up to 64).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SharerSet(u64);

impl SharerSet {
    /// The empty set.
    pub const EMPTY: SharerSet = SharerSet(0);

    /// Set containing a single chiplet.
    pub fn only(c: ChipletId) -> Self {
        SharerSet(1 << c.index())
    }

    /// Adds a chiplet.
    pub fn insert(&mut self, c: ChipletId) {
        self.0 |= 1 << c.index();
    }

    /// Removes a chiplet.
    pub fn remove(&mut self, c: ChipletId) {
        self.0 &= !(1 << c.index());
    }

    /// True if `c` is a member.
    pub fn contains(self, c: ChipletId) -> bool {
        self.0 & (1 << c.index()) != 0
    }

    /// Number of members.
    pub fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// True if no members.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates over members in ascending chiplet order. Popcount-driven:
    /// each step isolates the lowest set bit with `trailing_zeros`, so the
    /// cost is proportional to the member count, not the mask width.
    pub fn iter(self) -> impl Iterator<Item = ChipletId> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                return None;
            }
            let i = bits.trailing_zeros() as u8;
            bits &= bits - 1;
            Some(ChipletId::new(i))
        })
    }
}

impl fmt::Display for SharerSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for c in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{}", c.index())?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl FromIterator<ChipletId> for SharerSet {
    fn from_iter<T: IntoIterator<Item = ChipletId>>(iter: T) -> Self {
        let mut s = SharerSet::EMPTY;
        for c in iter {
            s.insert(c);
        }
        s
    }
}

/// Event counters for one directory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DirectoryStats {
    /// Sharer registrations processed.
    pub accesses: u64,
    /// Entries evicted for capacity.
    pub evictions: u64,
    /// Invalidation messages implied by evictions
    /// (`sharers * lines_per_entry` per eviction).
    pub invalidation_messages: u64,
}

/// A region entry evicted from the directory. The protocol must invalidate
/// `lines` consecutive lines starting at `first_line` in every sharer's L2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedRegion {
    /// First covered line.
    pub first_line: LineAddr,
    /// Number of covered lines (the directory's coarsening factor).
    pub lines: u64,
    /// Chiplets that held the region.
    pub sharers: SharerSet,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    region: u64,
    sharers: SharerSet,
    valid: bool,
    lru: u64,
}

const EMPTY_ENTRY: Entry = Entry {
    region: 0,
    sharers: SharerSet::EMPTY,
    valid: false,
    lru: 0,
};

/// Set-associative coarse directory: `entries` total entries, each covering
/// `lines_per_entry` consecutive cache lines.
///
/// # Example
///
/// ```
/// use chiplet_mem::directory::CoarseDirectory;
/// use chiplet_mem::addr::{ChipletId, LineAddr};
///
/// let mut dir = CoarseDirectory::new(12 * 1024, 8, 4);
/// let up = dir.record_sharer(LineAddr::new(100), ChipletId::new(1));
/// assert!(up.evicted.is_none());
/// assert!(dir.sharers_of(LineAddr::new(101)).contains(ChipletId::new(1)));
/// ```
#[derive(Debug, Clone)]
pub struct CoarseDirectory {
    entries: Vec<Entry>,
    sets: u64,
    ways: u32,
    lines_per_entry: u64,
    tick: u64,
    live: u64,
    stats: DirectoryStats,
}

/// Result of registering a sharer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirectoryUpdate {
    /// Region displaced to make room, if any.
    pub evicted: Option<EvictedRegion>,
}

impl CoarseDirectory {
    /// Creates a directory with `entries` total entries organised as
    /// `entries / ways` sets, each entry covering `lines_per_entry` lines.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a multiple of `ways`, or any argument is 0.
    pub fn new(entries: u64, ways: u32, lines_per_entry: u64) -> Self {
        assert!(entries > 0 && ways > 0 && lines_per_entry > 0);
        assert!(
            entries.is_multiple_of(u64::from(ways)),
            "entries must be a multiple of ways"
        );
        CoarseDirectory {
            entries: vec![EMPTY_ENTRY; entries as usize],
            sets: entries / u64::from(ways),
            ways,
            lines_per_entry,
            tick: 0,
            live: 0,
            stats: DirectoryStats::default(),
        }
    }

    /// Lines covered per entry.
    pub fn lines_per_entry(&self) -> u64 {
        self.lines_per_entry
    }

    /// Currently live entries.
    pub fn live_entries(&self) -> u64 {
        self.live
    }

    /// Event counters.
    pub fn stats(&self) -> DirectoryStats {
        self.stats
    }

    /// Resets counters; contents preserved.
    pub fn reset_stats(&mut self) {
        self.stats = DirectoryStats::default();
    }

    fn region_of(&self, line: LineAddr) -> u64 {
        line.get() / self.lines_per_entry
    }

    fn set_slice(&self, region: u64) -> std::ops::Range<usize> {
        let set = (region % self.sets) as usize;
        let w = self.ways as usize;
        set * w..(set + 1) * w
    }

    /// Registers `chiplet` as a sharer of the region containing `line`,
    /// allocating (and possibly evicting) a directory entry.
    pub fn record_sharer(&mut self, line: LineAddr, chiplet: ChipletId) -> DirectoryUpdate {
        self.stats.accesses += 1;
        self.tick += 1;
        let tick = self.tick;
        let region = self.region_of(line);
        let lines_per_entry = self.lines_per_entry;
        let range = self.set_slice(region);

        if let Some(e) = self.entries[range.clone()]
            .iter_mut()
            .find(|e| e.valid && e.region == region)
        {
            e.sharers.insert(chiplet);
            e.lru = tick;
            return DirectoryUpdate { evicted: None };
        }

        let victim = self.entries[range]
            .iter_mut()
            .min_by_key(|e| if e.valid { e.lru + 1 } else { 0 })
            .expect("directory sets are never empty"); // chiplet-check: allow(no-panic) — geometry invariant

        let mut evicted = None;
        if victim.valid {
            let region_lines = lines_per_entry;
            evicted = Some(EvictedRegion {
                first_line: LineAddr::new(victim.region * region_lines),
                lines: region_lines,
                sharers: victim.sharers,
            });
            self.stats.evictions += 1;
            self.stats.invalidation_messages += u64::from(victim.sharers.len()) * region_lines;
            self.live -= 1;
        }
        victim.region = region;
        victim.sharers = SharerSet::only(chiplet);
        victim.valid = true;
        victim.lru = tick;
        self.live += 1;
        DirectoryUpdate { evicted }
    }

    /// Current sharers of the region containing `line` (empty if untracked).
    pub fn sharers_of(&self, line: LineAddr) -> SharerSet {
        let region = self.region_of(line);
        self.entries[self.set_slice(region)]
            .iter()
            .find(|e| e.valid && e.region == region)
            .map(|e| e.sharers)
            .unwrap_or(SharerSet::EMPTY)
    }

    /// Removes `chiplet` from the region containing `line`; drops the entry
    /// if it becomes sharerless. Returns true if the chiplet was a sharer.
    pub fn remove_sharer(&mut self, line: LineAddr, chiplet: ChipletId) -> bool {
        let region = self.region_of(line);
        let range = self.set_slice(region);
        let Some(e) = self.entries[range]
            .iter_mut()
            .find(|e| e.valid && e.region == region)
        else {
            return false;
        };
        if !e.sharers.contains(chiplet) {
            return false;
        }
        e.sharers.remove(chiplet);
        if e.sharers.is_empty() {
            e.valid = false;
            self.live -= 1;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u8) -> ChipletId {
        ChipletId::new(i)
    }

    #[test]
    fn sharer_set_basics() {
        let mut s = SharerSet::EMPTY;
        assert!(s.is_empty());
        s.insert(c(0));
        s.insert(c(3));
        assert_eq!(s.len(), 2);
        assert!(s.contains(c(0)));
        assert!(!s.contains(c(1)));
        s.remove(c(0));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![c(3)]);
        assert_eq!(format!("{}", SharerSet::from_iter([c(1), c(2)])), "{1,2}");
    }

    #[test]
    fn lines_in_same_region_share_entry() {
        let mut d = CoarseDirectory::new(16, 4, 4);
        d.record_sharer(LineAddr::new(0), c(0));
        d.record_sharer(LineAddr::new(3), c(1));
        assert_eq!(d.live_entries(), 1);
        let s = d.sharers_of(LineAddr::new(2));
        assert!(s.contains(c(0)) && s.contains(c(1)));
        // Line 4 is the next region.
        assert!(d.sharers_of(LineAddr::new(4)).is_empty());
    }

    #[test]
    fn eviction_reports_region_and_sharers() {
        // 1 set x 2 ways: third distinct region evicts the LRU one.
        let mut d = CoarseDirectory::new(2, 2, 4);
        d.record_sharer(LineAddr::new(0), c(0)); // region 0
        d.record_sharer(LineAddr::new(4), c(1)); // region 1
        d.record_sharer(LineAddr::new(0), c(2)); // region 0 now MRU
        let up = d.record_sharer(LineAddr::new(8), c(0)); // evicts region 1
        let ev = up.evicted.expect("must evict");
        assert_eq!(ev.first_line, LineAddr::new(4));
        assert_eq!(ev.lines, 4);
        assert!(ev.sharers.contains(c(1)));
        assert_eq!(d.stats().evictions, 1);
        assert_eq!(d.stats().invalidation_messages, 4);
    }

    #[test]
    fn remove_sharer_drops_empty_entries() {
        let mut d = CoarseDirectory::new(16, 4, 4);
        d.record_sharer(LineAddr::new(0), c(0));
        assert!(d.remove_sharer(LineAddr::new(1), c(0)));
        assert_eq!(d.live_entries(), 0);
        assert!(!d.remove_sharer(LineAddr::new(1), c(0)));
    }

    #[test]
    fn capacity_is_bounded() {
        let mut d = CoarseDirectory::new(64, 8, 4);
        for i in 0..10_000u64 {
            d.record_sharer(LineAddr::new(i * 4), c((i % 4) as u8));
            assert!(d.live_entries() <= 64);
        }
        assert!(d.stats().evictions > 0);
    }

    #[test]
    #[should_panic(expected = "multiple of ways")]
    fn bad_shape_rejected() {
        let _ = CoarseDirectory::new(10, 4, 4);
    }
}
