//! Memory-subsystem substrate for the CPElide reproduction.
//!
//! This crate provides the low-level memory vocabulary and functional models
//! shared by every other crate in the workspace:
//!
//! * [`addr`] — byte/line/page address newtypes and the [`ChipletId`] type.
//! * [`cache`] — functional set-associative caches with LRU replacement,
//!   write-back / write-through policies, and the bulk flush / invalidate
//!   operations GPU implicit synchronization is built from. The
//!   event-driven [`SetAssocCache`] and the reference [`cache::ScanCache`]
//!   are interchangeable behind the [`cache::CacheCore`] trait.
//! * [`line_state`] — the per-line sharer/dirty bitmask table that lets the
//!   HMG write-back protocol find a line's dirty owner without probing
//!   every chiplet's L2.
//! * [`directory`] — the coarse-grained (4-lines-per-entry) L2 coherence
//!   directory used by the HMG comparison protocol.
//! * [`flat`] — dense-index flat maps and epoch-versioned slabs, the
//!   cache-friendly storage behind the per-access hot paths.
//! * [`page`] — first-touch page placement, which decides each page's *home*
//!   chiplet (L3 bank + HBM partition).
//! * [`mod@array`] — data-structure (array) declarations and access modes, the
//!   granularity at which CPElide tracks coherence state.
//!
//! # Example
//!
//! ```
//! use chiplet_mem::cache::{CacheGeometry, SetAssocCache, WritePolicy};
//! use chiplet_mem::addr::Addr;
//!
//! let geom = CacheGeometry::new(8 * 1024 * 1024, 64, 32)?; // an 8 MiB GPU L2
//! let mut l2 = SetAssocCache::new(geom, WritePolicy::WriteBack);
//! l2.write(Addr::new(0x1000).line());
//! assert_eq!(l2.flush_dirty().lines_written_back, 1);
//! # Ok::<(), chiplet_mem::cache::GeometryError>(())
//! ```

pub mod addr;
pub mod array;
pub mod cache;
pub mod directory;
pub mod flat;
pub mod hbm;
pub mod line_state;
pub mod page;

pub use addr::{Addr, ChipletId, DenseAddr, LineAddr, PageAddr, LINE_BYTES, PAGE_BYTES};
pub use array::{AccessMode, ArrayDecl, ArrayId};
pub use cache::{CacheCore, CacheGeometry, CacheStats, ScanCache, SetAssocCache, WritePolicy};
pub use directory::{CoarseDirectory, DirectoryStats};
pub use flat::{EpochSlab, FlatMap};
pub use line_state::LineStateTable;
pub use page::{FirstTouchPlacement, PageTable};
