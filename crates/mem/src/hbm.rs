//! High-bandwidth memory (HBM) access accounting.
//!
//! The MCM-GPU's HBM is physically partitioned across chiplets (paper §II-A,
//! Table I: 16 GB HBM, 4-high stacks). The simulator does not model DRAM
//! timing in detail — misses below the L3 are charged a fixed latency — but
//! per-partition access counts are needed for Figure 9's DRAM energy
//! component and for locality diagnostics.

use crate::addr::ChipletId;

/// Per-partition HBM access counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Hbm {
    reads: Vec<u64>,
    writes: Vec<u64>,
}

impl Hbm {
    /// Creates counters for an `n`-chiplet system (one partition each).
    pub fn new(chiplets: usize) -> Self {
        Hbm {
            reads: vec![0; chiplets],
            writes: vec![0; chiplets],
        }
    }

    /// Records a 64 B read serviced by `home`'s partition.
    pub fn record_read(&mut self, home: ChipletId) {
        self.reads[home.index()] += 1;
    }

    /// Records a 64 B write serviced by `home`'s partition.
    pub fn record_write(&mut self, home: ChipletId) {
        self.writes[home.index()] += 1;
    }

    /// Reads serviced by `home`'s partition.
    pub fn reads(&self, home: ChipletId) -> u64 {
        self.reads[home.index()]
    }

    /// Writes serviced by `home`'s partition.
    pub fn writes(&self, home: ChipletId) -> u64 {
        self.writes[home.index()]
    }

    /// Total accesses across all partitions.
    pub fn total_accesses(&self) -> u64 {
        self.reads.iter().sum::<u64>() + self.writes.iter().sum::<u64>()
    }

    /// Total reads across all partitions.
    pub fn total_reads(&self) -> u64 {
        self.reads.iter().sum()
    }

    /// Total writes across all partitions.
    pub fn total_writes(&self) -> u64 {
        self.writes.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_per_partition() {
        let mut h = Hbm::new(4);
        h.record_read(ChipletId::new(0));
        h.record_read(ChipletId::new(0));
        h.record_write(ChipletId::new(3));
        assert_eq!(h.reads(ChipletId::new(0)), 2);
        assert_eq!(h.writes(ChipletId::new(3)), 1);
        assert_eq!(h.reads(ChipletId::new(3)), 0);
        assert_eq!(h.total_accesses(), 3);
        assert_eq!(h.total_reads(), 2);
        assert_eq!(h.total_writes(), 1);
    }
}
