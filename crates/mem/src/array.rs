//! Data-structure (array) declarations and access modes.
//!
//! CPElide tracks coherence state at *data structure* granularity: a data
//! structure is a global-memory array identified by its base address. Kernels
//! label each array they touch as read-only (`R`) or read/write (`R/W`) via
//! the proposed `hipSetAccessMode` API (paper Listing 1). This module holds
//! the shared vocabulary for those declarations.

use crate::addr::{Addr, LineAddr, LINE_BYTES, PAGE_BYTES};
use std::fmt;
use std::ops::Range;

/// Index of an array within one application's allocation table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ArrayId(u32);

impl ArrayId {
    /// Creates an array identifier.
    #[inline]
    pub const fn new(id: u32) -> Self {
        ArrayId(id)
    }

    /// The raw index.
    #[inline]
    pub const fn get(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ArrayId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "array{}", self.0)
    }
}

/// How a kernel accesses a data structure (paper Listing 1).
///
/// Monolithic GPUs only need `R` vs `R/W`; chiplet GPUs additionally need to
/// know *where* (which chiplet) accesses land, which the scheduler provides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessMode {
    /// Read-only in this kernel.
    ReadOnly,
    /// Read and/or written in this kernel.
    ReadWrite,
}

impl AccessMode {
    /// Returns the more conservative of two modes (used when coarsening
    /// table entries: `R` merged with `R/W` must become `R/W`).
    ///
    /// ```
    /// use chiplet_mem::array::AccessMode;
    /// assert_eq!(
    ///     AccessMode::ReadOnly.merge(AccessMode::ReadWrite),
    ///     AccessMode::ReadWrite
    /// );
    /// ```
    #[must_use]
    pub fn merge(self, other: AccessMode) -> AccessMode {
        if self == AccessMode::ReadWrite || other == AccessMode::ReadWrite {
            AccessMode::ReadWrite
        } else {
            AccessMode::ReadOnly
        }
    }

    /// True if the mode permits writes.
    pub fn writes(self) -> bool {
        matches!(self, AccessMode::ReadWrite)
    }
}

impl fmt::Display for AccessMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessMode::ReadOnly => f.write_str("R"),
            AccessMode::ReadWrite => f.write_str("R/W"),
        }
    }
}

/// A page-aligned global-memory array allocation.
///
/// The paper page-aligns all allocations to avoid unintentional false
/// sharing; [`ArrayDecl::new_after`] preserves that invariant when laying out
/// an application's arrays one after another.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ArrayDecl {
    id: ArrayId,
    name: String,
    base: Addr,
    bytes: u64,
}

impl ArrayDecl {
    /// Declares an array at an explicit page-aligned base address.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not page-aligned or `bytes` is zero.
    pub fn new(id: ArrayId, name: impl Into<String>, base: Addr, bytes: u64) -> Self {
        assert!(
            base.get().is_multiple_of(PAGE_BYTES),
            "array base {base} must be page-aligned"
        );
        assert!(bytes > 0, "array must not be empty");
        ArrayDecl {
            id,
            name: name.into(),
            base,
            bytes,
        }
    }

    /// Declares an array on the first page boundary at or after `prev_end`.
    pub fn new_after(id: ArrayId, name: impl Into<String>, prev_end: Addr, bytes: u64) -> Self {
        let aligned = prev_end.get().div_ceil(PAGE_BYTES) * PAGE_BYTES;
        Self::new(id, name, Addr::new(aligned), bytes)
    }

    /// The array's identifier.
    pub fn id(&self) -> ArrayId {
        self.id
    }

    /// The array's debug name (e.g. `"A_d"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Base byte address (page aligned).
    pub fn base(&self) -> Addr {
        self.base
    }

    /// Size in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// One past the last byte.
    pub fn end(&self) -> Addr {
        self.base.offset(self.bytes)
    }

    /// Number of cache lines the array spans.
    pub fn lines(&self) -> u64 {
        self.bytes.div_ceil(LINE_BYTES)
    }

    /// The half-open range of line indices the array occupies.
    pub fn line_range(&self) -> Range<u64> {
        let first = self.base.line().get();
        first..first + self.lines()
    }

    /// The line at element-range position `frac ∈ [0, 1]` through the array.
    pub fn line_at_fraction(&self, frac: f64) -> LineAddr {
        let lines = self.lines();
        let off = ((lines as f64) * frac.clamp(0.0, 1.0)) as u64;
        LineAddr::new(self.base.line().get() + off.min(lines.saturating_sub(1)))
    }

    /// True if `line` falls inside this array.
    pub fn contains_line(&self, line: LineAddr) -> bool {
        self.line_range().contains(&line.get())
    }

    /// True if this array is contiguous in memory with `other` (their page
    /// spans touch), the condition CPElide's coarsening looks for first.
    pub fn is_contiguous_with(&self, other: &ArrayDecl) -> bool {
        let self_pages = self.base.page().get()..=self.end().offset(PAGE_BYTES - 1).page().get();
        let other_start = other.base.page().get();
        let other_end = other.end().offset(PAGE_BYTES - 1).page().get();
        // Touching or overlapping page spans.
        *self_pages.start() <= other_end + 1 && other_start <= self_pages.end() + 1
    }

    /// Distance in bytes between the two arrays' spans (0 if overlapping or
    /// adjacent). Used by coarsening to merge the *closest* structures.
    pub fn gap_to(&self, other: &ArrayDecl) -> u64 {
        if self.end().get() <= other.base.get() {
            other.base.get() - self.end().get()
        } else if other.end().get() <= self.base.get() {
            self.base.get() - other.end().get()
        } else {
            0
        }
    }
}

impl fmt::Display for ArrayDecl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}..{}, {} B]",
            self.name,
            self.base,
            self.end(),
            self.bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arr(id: u32, base: u64, bytes: u64) -> ArrayDecl {
        ArrayDecl::new(ArrayId::new(id), format!("a{id}"), Addr::new(base), bytes)
    }

    #[test]
    fn mode_merge_is_conservative() {
        use AccessMode::*;
        assert_eq!(ReadOnly.merge(ReadOnly), ReadOnly);
        assert_eq!(ReadOnly.merge(ReadWrite), ReadWrite);
        assert_eq!(ReadWrite.merge(ReadOnly), ReadWrite);
        assert_eq!(ReadWrite.merge(ReadWrite), ReadWrite);
    }

    #[test]
    #[should_panic(expected = "page-aligned")]
    fn unaligned_base_rejected() {
        let _ = arr(0, 100, 64);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_array_rejected() {
        let _ = arr(0, 0, 0);
    }

    #[test]
    fn new_after_page_aligns() {
        let a = arr(0, 0, 1000);
        let b = ArrayDecl::new_after(ArrayId::new(1), "b", a.end(), 64);
        assert_eq!(b.base().get(), PAGE_BYTES);
    }

    #[test]
    fn line_count_rounds_up() {
        assert_eq!(arr(0, 0, 1).lines(), 1);
        assert_eq!(arr(0, 0, 64).lines(), 1);
        assert_eq!(arr(0, 0, 65).lines(), 2);
    }

    #[test]
    fn contains_line_bounds() {
        let a = arr(0, 4096, 128); // lines 64 and 65
        assert!(!a.contains_line(LineAddr::new(63)));
        assert!(a.contains_line(LineAddr::new(64)));
        assert!(a.contains_line(LineAddr::new(65)));
        assert!(!a.contains_line(LineAddr::new(66)));
    }

    #[test]
    fn contiguity_detects_adjacent_pages() {
        let a = arr(0, 0, 4096);
        let b = arr(1, 4096, 4096);
        let c = arr(2, 1 << 20, 4096);
        assert!(a.is_contiguous_with(&b));
        assert!(b.is_contiguous_with(&a));
        assert!(!a.is_contiguous_with(&c));
    }

    #[test]
    fn gap_is_symmetric_and_zero_for_adjacent() {
        let a = arr(0, 0, 4096);
        let b = arr(1, 8192, 4096);
        assert_eq!(a.gap_to(&b), 4096);
        assert_eq!(b.gap_to(&a), 4096);
        let c = arr(2, 4096, 4096);
        assert_eq!(a.gap_to(&c), 0);
    }

    #[test]
    fn line_at_fraction_clamps() {
        let a = arr(0, 0, 64 * 10);
        assert_eq!(a.line_at_fraction(0.0), LineAddr::new(0));
        assert_eq!(a.line_at_fraction(1.0), LineAddr::new(9));
        assert_eq!(a.line_at_fraction(2.0), LineAddr::new(9));
        assert_eq!(a.line_at_fraction(0.5), LineAddr::new(5));
    }
}
