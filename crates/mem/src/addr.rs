//! Address vocabulary: byte addresses, cache-line addresses, page addresses,
//! and chiplet identifiers.
//!
//! The simulated GPU uses 64 B cache lines and 4 KiB pages, matching the
//! paper's gem5 configuration (Table I). All types are plain newtypes so that
//! a line address can never be confused with a byte address (C-NEWTYPE).

use std::fmt;

/// Bytes per cache line (gem5 uses 64 B lines; see Table I and footnote 4).
pub const LINE_BYTES: u64 = 64;

/// Bytes per virtual-memory page. The paper page-aligns all allocations to
/// avoid unintentional false sharing, and first-touch placement operates at
/// this granularity.
pub const PAGE_BYTES: u64 = 4096;

/// Cache lines per page.
pub const LINES_PER_PAGE: u64 = PAGE_BYTES / LINE_BYTES;

/// An address newtype with a dense small-integer index.
///
/// The array table allocates every device array page-aligned and
/// back-to-back from one fixed heap base, so the line/page indices a
/// workload touches form a single dense band. Flat storage (see
/// [`crate::flat`]) exploits that: it indexes a `Vec` by `dense() - base`
/// instead of hashing the newtype.
pub trait DenseAddr: Copy {
    /// The dense index of this address at its own granularity.
    fn dense(self) -> u64;
}

impl DenseAddr for Addr {
    #[inline]
    fn dense(self) -> u64 {
        self.0
    }
}

impl DenseAddr for LineAddr {
    #[inline]
    fn dense(self) -> u64 {
        self.0
    }
}

impl DenseAddr for PageAddr {
    #[inline]
    fn dense(self) -> u64 {
        self.0
    }
}

/// A byte-granularity virtual address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// Creates a byte address.
    ///
    /// ```
    /// use chiplet_mem::addr::Addr;
    /// let a = Addr::new(0x1040);
    /// assert_eq!(a.get(), 0x1040);
    /// ```
    #[inline]
    pub const fn new(addr: u64) -> Self {
        Addr(addr)
    }

    /// The raw byte address.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// The cache line containing this byte.
    #[inline]
    pub const fn line(self) -> LineAddr {
        LineAddr(self.0 / LINE_BYTES)
    }

    /// The page containing this byte.
    #[inline]
    pub const fn page(self) -> PageAddr {
        PageAddr(self.0 / PAGE_BYTES)
    }

    /// Byte address advanced by `bytes`.
    #[inline]
    pub const fn offset(self, bytes: u64) -> Addr {
        Addr(self.0 + bytes)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for Addr {
    fn from(v: u64) -> Self {
        Addr(v)
    }
}

/// A cache-line-granularity address (byte address divided by [`LINE_BYTES`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address from a line *index* (not a byte address).
    #[inline]
    pub const fn new(index: u64) -> Self {
        LineAddr(index)
    }

    /// The raw line index.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// First byte of this line.
    #[inline]
    pub const fn base(self) -> Addr {
        Addr(self.0 * LINE_BYTES)
    }

    /// The page containing this line.
    #[inline]
    pub const fn page(self) -> PageAddr {
        PageAddr(self.0 / LINES_PER_PAGE)
    }

    /// The line `n` lines after this one.
    #[inline]
    pub const fn step(self, n: u64) -> LineAddr {
        LineAddr(self.0 + n)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

/// A page-granularity address (byte address divided by [`PAGE_BYTES`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageAddr(u64);

impl PageAddr {
    /// Creates a page address from a page index.
    #[inline]
    pub const fn new(index: u64) -> Self {
        PageAddr(index)
    }

    /// The raw page index.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// First byte of this page.
    #[inline]
    pub const fn base(self) -> Addr {
        Addr(self.0 * PAGE_BYTES)
    }
}

impl fmt::Display for PageAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{:#x}", self.0)
    }
}

/// Identifies one GPU chiplet (0-based). The paper evaluates 2, 4, 6 and 7
/// chiplet MCM-GPUs; the scaling study mimics 8 and 16.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ChipletId(u8);

impl ChipletId {
    /// Creates a chiplet identifier.
    ///
    /// ```
    /// use chiplet_mem::addr::ChipletId;
    /// assert_eq!(ChipletId::new(3).index(), 3);
    /// ```
    #[inline]
    pub const fn new(id: u8) -> Self {
        ChipletId(id)
    }

    /// The 0-based index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Iterates over all chiplets in an `n`-chiplet system.
    pub fn all(n: usize) -> impl Iterator<Item = ChipletId> {
        (0..n as u8).map(ChipletId)
    }
}

impl fmt::Display for ChipletId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chiplet{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_to_line_rounds_down() {
        assert_eq!(Addr::new(0).line(), LineAddr::new(0));
        assert_eq!(Addr::new(63).line(), LineAddr::new(0));
        assert_eq!(Addr::new(64).line(), LineAddr::new(1));
        assert_eq!(Addr::new(130).line(), LineAddr::new(2));
    }

    #[test]
    fn byte_to_page_rounds_down() {
        assert_eq!(Addr::new(4095).page(), PageAddr::new(0));
        assert_eq!(Addr::new(4096).page(), PageAddr::new(1));
    }

    #[test]
    fn line_to_page_consistent_with_byte_to_page() {
        for b in [0u64, 63, 64, 4095, 4096, 4160, 1 << 20] {
            let a = Addr::new(b);
            assert_eq!(a.line().page(), a.page(), "byte {b}");
        }
    }

    #[test]
    fn line_base_round_trips() {
        let l = LineAddr::new(77);
        assert_eq!(l.base().line(), l);
        assert_eq!(l.base().get(), 77 * LINE_BYTES);
    }

    #[test]
    fn page_base_round_trips() {
        let p = PageAddr::new(9);
        assert_eq!(p.base().page(), p);
    }

    #[test]
    fn line_step_advances() {
        assert_eq!(LineAddr::new(4).step(3), LineAddr::new(7));
    }

    #[test]
    fn chiplet_all_enumerates() {
        let ids: Vec<_> = ChipletId::all(4).collect();
        assert_eq!(ids.len(), 4);
        assert_eq!(ids[0], ChipletId::new(0));
        assert_eq!(ids[3], ChipletId::new(3));
    }

    #[test]
    fn addr_offset() {
        assert_eq!(Addr::new(10).offset(54), Addr::new(64));
    }

    #[test]
    fn display_formats_are_nonempty() {
        assert!(!format!("{}", Addr::new(0)).is_empty());
        assert!(!format!("{}", LineAddr::new(0)).is_empty());
        assert!(!format!("{}", PageAddr::new(0)).is_empty());
        assert_eq!(format!("{}", ChipletId::new(2)), "chiplet2");
    }

    #[test]
    fn lines_per_page_consistent() {
        assert_eq!(LINES_PER_PAGE, 64);
        assert_eq!(LINES_PER_PAGE * LINE_BYTES, PAGE_BYTES);
    }
}
