//! Per-line sharer/dirty bitmask table keyed by dense line indices.
//!
//! [`LineStateTable`] is the struct-of-arrays line-metadata layer the
//! event-driven engine uses to answer "which chiplet's L2 might hold this
//! line (dirty)?" without probing every L2. Each line maps — through the
//! [`FlatMap`] dense-index storage — to two `u64` bitmask words:
//!
//! * a **sharer mask**: chiplets whose L2 *may* hold the line, and
//! * a **dirty mask**: chiplets whose L2 *may* hold the line dirty.
//!
//! Both masks are deliberately maintained as **supersets** of the truth.
//! Every consumer pairs a mask walk with a verifying probe of the actual
//! cache (`probe_dirty`, `invalidate_line`), so a stale set bit costs one
//! wasted probe but can never change behaviour; a *missing* bit could, so
//! bits are only removed on definite evidence — an observed eviction, a
//! targeted invalidation, a flush, or a whole-chiplet acquire. This is the
//! same superset-plus-verify discipline a hardware sharer-mask directory
//! (e.g. HMG's) uses to stay safe under silent clean evictions.
//!
//! Iteration over candidate chiplets is popcount-driven: the lowest set
//! bit is isolated with `trailing_zeros`, so a one-owner line costs one
//! step regardless of the chiplet count — and the ascending bit order
//! matches the reference engine's ascending chiplet probe loop, which
//! keeps metrics byte-identical.

use crate::addr::{ChipletId, LineAddr};
use crate::flat::FlatMap;

/// Dense per-line sharer/dirty chiplet masks (superset-tracked).
///
/// # Example
///
/// ```
/// use chiplet_mem::line_state::LineStateTable;
/// use chiplet_mem::addr::{ChipletId, LineAddr};
///
/// let mut t = LineStateTable::new();
/// t.mark_dirty(LineAddr::new(7), ChipletId::new(2));
/// assert_eq!(
///     t.dirty_candidates(LineAddr::new(7)).collect::<Vec<_>>(),
///     vec![ChipletId::new(2)],
/// );
/// t.clear_chiplet(ChipletId::new(2));
/// assert_eq!(t.dirty_candidates(LineAddr::new(7)).count(), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LineStateTable {
    /// Bit `c` set: chiplet `c`'s L2 may hold the line.
    sharers: FlatMap<LineAddr, u64>,
    /// Bit `c` set: chiplet `c`'s L2 may hold the line dirty.
    dirty: FlatMap<LineAddr, u64>,
}

fn iter_bits(mut bits: u64) -> impl Iterator<Item = ChipletId> {
    std::iter::from_fn(move || {
        if bits == 0 {
            return None;
        }
        let i = bits.trailing_zeros() as u8;
        bits &= bits - 1;
        Some(ChipletId::new(i))
    })
}

impl LineStateTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        LineStateTable::default()
    }

    /// Records that chiplet `c`'s L2 now holds `line` (clean).
    #[inline]
    pub fn add_sharer(&mut self, line: LineAddr, c: ChipletId) {
        *self.sharers.get_mut(line) |= 1u64 << c.index();
    }

    /// Records that chiplet `c`'s L2 now holds `line` dirty.
    #[inline]
    pub fn mark_dirty(&mut self, line: LineAddr, c: ChipletId) {
        let bit = 1u64 << c.index();
        *self.sharers.get_mut(line) |= bit;
        *self.dirty.get_mut(line) |= bit;
    }

    /// Records definite evidence that chiplet `c`'s L2 no longer holds
    /// `line` (eviction or targeted invalidation).
    #[inline]
    pub fn remove_sharer(&mut self, line: LineAddr, c: ChipletId) {
        let bit = 1u64 << c.index();
        *self.sharers.get_mut(line) &= !bit;
        *self.dirty.get_mut(line) &= !bit;
    }

    /// Records that chiplet `c` wrote back `line` (the copy stays resident
    /// but is now clean).
    #[inline]
    pub fn clear_dirty(&mut self, line: LineAddr, c: ChipletId) {
        *self.dirty.get_mut(line) &= !(1u64 << c.index());
    }

    /// Chiplets whose L2 may hold `line`, in ascending chiplet order.
    #[inline]
    pub fn sharer_candidates(&self, line: LineAddr) -> impl Iterator<Item = ChipletId> {
        iter_bits(self.sharers.get(line))
    }

    /// Chiplets whose L2 may hold `line` dirty, in ascending chiplet order.
    /// Callers must verify each candidate with a cache probe — the mask is
    /// a superset.
    #[inline]
    pub fn dirty_candidates(&self, line: LineAddr) -> impl Iterator<Item = ChipletId> {
        iter_bits(self.dirty.get(line))
    }

    /// Drops chiplet `c` from every line's masks (a whole-L2 acquire).
    /// O(allocated line slots), which acquires on HMG-style protocols pay
    /// rarely enough not to matter.
    pub fn clear_chiplet(&mut self, c: ChipletId) {
        let keep = !(1u64 << c.index());
        self.sharers.values_mut().for_each(|m| *m &= keep);
        self.dirty.values_mut().for_each(|m| *m &= keep);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u8) -> ChipletId {
        ChipletId::new(i)
    }

    fn l(i: u64) -> LineAddr {
        LineAddr::new(i)
    }

    #[test]
    fn dirty_implies_sharer() {
        let mut t = LineStateTable::new();
        t.mark_dirty(l(1), c(3));
        assert_eq!(t.sharer_candidates(l(1)).collect::<Vec<_>>(), vec![c(3)]);
        assert_eq!(t.dirty_candidates(l(1)).collect::<Vec<_>>(), vec![c(3)]);
    }

    #[test]
    fn clear_dirty_keeps_residency() {
        let mut t = LineStateTable::new();
        t.mark_dirty(l(1), c(0));
        t.clear_dirty(l(1), c(0));
        assert_eq!(t.dirty_candidates(l(1)).count(), 0);
        assert_eq!(t.sharer_candidates(l(1)).collect::<Vec<_>>(), vec![c(0)]);
    }

    #[test]
    fn remove_sharer_clears_both_masks() {
        let mut t = LineStateTable::new();
        t.mark_dirty(l(5), c(1));
        t.add_sharer(l(5), c(2));
        t.remove_sharer(l(5), c(1));
        assert_eq!(t.sharer_candidates(l(5)).collect::<Vec<_>>(), vec![c(2)]);
        assert_eq!(t.dirty_candidates(l(5)).count(), 0);
    }

    #[test]
    fn candidates_come_out_in_ascending_chiplet_order() {
        let mut t = LineStateTable::new();
        for i in [6u8, 0, 3] {
            t.mark_dirty(l(9), c(i));
        }
        assert_eq!(
            t.dirty_candidates(l(9)).collect::<Vec<_>>(),
            vec![c(0), c(3), c(6)],
        );
    }

    #[test]
    fn clear_chiplet_is_total_across_lines() {
        let mut t = LineStateTable::new();
        for i in 0..100 {
            t.mark_dirty(l(i), c(1));
            t.add_sharer(l(i), c(2));
        }
        t.clear_chiplet(c(1));
        for i in 0..100 {
            assert_eq!(t.dirty_candidates(l(i)).count(), 0, "line {i}");
            assert_eq!(t.sharer_candidates(l(i)).collect::<Vec<_>>(), vec![c(2)]);
        }
    }
}
