//! Flat, dense-index storage for per-line and per-page simulation state.
//!
//! Every device array is allocated page-aligned and back-to-back from the
//! array table's heap base, so the line and page indices a run touches form
//! one dense band above a fixed origin. That makes a `Vec`
//! indexed by `index - base` both smaller and much faster than a `HashMap`
//! keyed by the address newtype: a lookup is a subtraction and a bounds
//! check instead of a SipHash probe, and the slots of neighbouring lines sit
//! on the same cache line — exactly the access pattern trace replay has.
//!
//! Two containers cover the hot paths:
//!
//! * [`FlatMap`] — a total map with a default value. Lines never touched
//!   simply read as the default, which matches the "missing = initial"
//!   convention of version maps and ground-truth tables.
//! * [`EpochSlab`] — a partial map whose [`EpochSlab::clear`] is O(1): a
//!   generation counter is bumped and every slot whose stored epoch no
//!   longer matches reads as absent. This turns per-boundary bulk
//!   invalidation (the acquire in every shadow L2) from a map clear into a
//!   single increment.
//!
//! Both are keyed by any [`DenseAddr`] — the
//! line/page newtypes expose their dense indices through that trait — and
//! both tolerate sparse or low-addressed keys (unit tests like to use page
//! 0) by re-basing their backing storage on demand.

use crate::addr::DenseAddr;
use std::marker::PhantomData;

/// Backing stores grow and re-base in multiples of this many slots so that
/// near-miss keys don't trigger repeated reallocation.
const SLOT_ALIGN: u64 = 64;

/// A dense map from an address newtype to a copyable value, with a default
/// standing in for never-written slots.
///
/// # Example
///
/// ```
/// use chiplet_mem::flat::FlatMap;
/// use chiplet_mem::addr::LineAddr;
///
/// let mut versions: FlatMap<LineAddr, u64> = FlatMap::new(0);
/// assert_eq!(versions.get(LineAddr::new(0x400000)), 0);
/// *versions.get_mut(LineAddr::new(0x400000)) = 7;
/// assert_eq!(versions.get(LineAddr::new(0x400000)), 7);
/// // Untouched neighbours still read as the default.
/// assert_eq!(versions.get(LineAddr::new(0x400001)), 0);
/// ```
#[derive(Debug, Clone)]
pub struct FlatMap<K: DenseAddr, V: Copy> {
    base: u64,
    slots: Vec<V>,
    default: V,
    _key: PhantomData<K>,
}

impl<K: DenseAddr, V: Copy> FlatMap<K, V> {
    /// Creates an empty map; absent keys read as `default`.
    pub fn new(default: V) -> Self {
        FlatMap {
            base: 0,
            slots: Vec::new(),
            default,
            _key: PhantomData,
        }
    }

    #[inline]
    fn slot_index(&self, key: K) -> Option<usize> {
        let i = key.dense();
        if i >= self.base {
            let off = (i - self.base) as usize;
            (off < self.slots.len()).then_some(off)
        } else {
            None
        }
    }

    /// The value at `key` (the default if never written).
    #[inline]
    pub fn get(&self, key: K) -> V {
        match self.slot_index(key) {
            Some(off) => self.slots[off],
            None => self.default,
        }
    }

    /// Mutable access to the slot at `key`, growing (or re-basing) the
    /// backing storage as needed.
    #[inline]
    pub fn get_mut(&mut self, key: K) -> &mut V {
        let off = match self.slot_index(key) {
            Some(off) => off,
            None => self.ensure(key.dense()),
        };
        &mut self.slots[off]
    }

    /// Resets every slot to the default, keeping the allocation.
    pub fn clear(&mut self) {
        let d = self.default;
        self.slots.iter_mut().for_each(|s| *s = d);
    }

    /// Allocated slots (capacity introspection for tests/diagnostics).
    pub fn allocated_slots(&self) -> usize {
        self.slots.len()
    }

    /// Mutable iteration over every allocated slot (never-touched keys have
    /// no slot and are skipped). Used for bulk transforms such as clearing
    /// one chiplet's bit from every line-state mask on an acquire.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut V> {
        self.slots.iter_mut()
    }

    #[cold]
    fn ensure(&mut self, index: u64) -> usize {
        if self.slots.is_empty() {
            self.base = index - index % SLOT_ALIGN;
        } else if index < self.base {
            // Re-base: prepend default slots so the band reaches down to
            // the new key. Rare — only tests and synthetic traces address
            // below the allocator's heap base after first touching above.
            let new_base = index - index % SLOT_ALIGN;
            let shift = (self.base - new_base) as usize;
            let mut next = Vec::with_capacity(shift + self.slots.len());
            next.resize(shift, self.default);
            next.extend_from_slice(&self.slots);
            self.slots = next;
            self.base = new_base;
        }
        let off = (index - self.base) as usize;
        if off >= self.slots.len() {
            // Grow past the key with geometric slack so a linear sweep over
            // an array triggers O(log n) reallocations, not O(n).
            let target = (off as u64 + SLOT_ALIGN).max(self.slots.len() as u64 * 2) as usize;
            self.slots.resize(target, self.default);
        }
        off
    }
}

impl<K: DenseAddr, V: Copy + Default> Default for FlatMap<K, V> {
    fn default() -> Self {
        FlatMap::new(V::default())
    }
}

#[derive(Debug, Clone, Copy)]
struct EpochSlot<V> {
    epoch: u32,
    value: V,
}

/// A dense partial map with O(1) bulk clear.
///
/// Each slot stores the generation it was written in; [`EpochSlab::clear`]
/// bumps the live generation, instantly invalidating every entry without
/// touching the slots. This is the storage behind per-chiplet shadow L2s,
/// where an *acquire* must drop the whole cache at every audited kernel
/// boundary.
///
/// # Example
///
/// ```
/// use chiplet_mem::flat::EpochSlab;
/// use chiplet_mem::addr::LineAddr;
///
/// let mut slab: EpochSlab<LineAddr, u64> = EpochSlab::new();
/// slab.insert(LineAddr::new(5), 42);
/// assert_eq!(slab.get(LineAddr::new(5)), Some(42));
/// slab.clear(); // O(1): no slot is touched
/// assert_eq!(slab.get(LineAddr::new(5)), None);
/// ```
#[derive(Debug, Clone)]
pub struct EpochSlab<K: DenseAddr, V: Copy + Default> {
    base: u64,
    epoch: u32,
    slots: Vec<EpochSlot<V>>,
    _key: PhantomData<K>,
}

impl<K: DenseAddr, V: Copy + Default> EpochSlab<K, V> {
    /// Creates an empty slab.
    pub fn new() -> Self {
        EpochSlab {
            base: 0,
            epoch: 1, // slots default to epoch 0 == absent
            slots: Vec::new(),
            _key: PhantomData,
        }
    }

    #[inline]
    fn slot_index(&self, key: K) -> Option<usize> {
        let i = key.dense();
        if i >= self.base {
            let off = (i - self.base) as usize;
            (off < self.slots.len()).then_some(off)
        } else {
            None
        }
    }

    /// The live value at `key`, if present this generation.
    #[inline]
    pub fn get(&self, key: K) -> Option<V> {
        let off = self.slot_index(key)?;
        let slot = &self.slots[off];
        (slot.epoch == self.epoch).then_some(slot.value)
    }

    /// Mutable access to the live value at `key`, if present.
    #[inline]
    pub fn get_mut(&mut self, key: K) -> Option<&mut V> {
        let off = self.slot_index(key)?;
        let epoch = self.epoch;
        let slot = &mut self.slots[off];
        (slot.epoch == epoch).then_some(&mut slot.value)
    }

    /// Inserts (or overwrites) the value at `key`.
    #[inline]
    pub fn insert(&mut self, key: K, value: V) {
        let off = match self.slot_index(key) {
            Some(off) => off,
            None => self.ensure(key.dense()),
        };
        self.slots[off] = EpochSlot {
            epoch: self.epoch,
            value,
        };
    }

    /// Removes the entry at `key` (no-op if absent).
    #[inline]
    pub fn remove(&mut self, key: K) {
        if let Some(off) = self.slot_index(key) {
            self.slots[off].epoch = 0;
        }
    }

    /// Drops every entry in O(1) by advancing the live generation.
    pub fn clear(&mut self) {
        self.epoch += 1;
        if self.epoch == u32::MAX {
            // Generation wrap (needs ~4 billion clears): fall back to a
            // hard reset so stale epochs can never alias the live one.
            self.slots.iter_mut().for_each(|s| s.epoch = 0);
            self.epoch = 1;
        }
    }

    /// Allocated slots (capacity introspection for tests/diagnostics).
    pub fn allocated_slots(&self) -> usize {
        self.slots.len()
    }

    #[cold]
    fn ensure(&mut self, index: u64) -> usize {
        let absent = EpochSlot {
            epoch: 0,
            value: V::default(),
        };
        if self.slots.is_empty() {
            self.base = index - index % SLOT_ALIGN;
        } else if index < self.base {
            let new_base = index - index % SLOT_ALIGN;
            let shift = (self.base - new_base) as usize;
            let mut next = Vec::with_capacity(shift + self.slots.len());
            next.resize(shift, absent);
            next.extend_from_slice(&self.slots);
            self.slots = next;
            self.base = new_base;
        }
        let off = (index - self.base) as usize;
        if off >= self.slots.len() {
            let target = (off as u64 + SLOT_ALIGN).max(self.slots.len() as u64 * 2) as usize;
            self.slots.resize(target, absent);
        }
        off
    }
}

impl<K: DenseAddr, V: Copy + Default> Default for EpochSlab<K, V> {
    fn default() -> Self {
        EpochSlab::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{LineAddr, PageAddr};

    #[test]
    fn flat_map_defaults_and_overwrites() {
        let mut m: FlatMap<LineAddr, u64> = FlatMap::new(9);
        assert_eq!(m.get(LineAddr::new(100)), 9);
        *m.get_mut(LineAddr::new(100)) = 1;
        *m.get_mut(LineAddr::new(101)) = 2;
        assert_eq!(m.get(LineAddr::new(100)), 1);
        assert_eq!(m.get(LineAddr::new(101)), 2);
        assert_eq!(m.get(LineAddr::new(99)), 9);
    }

    #[test]
    fn flat_map_rebases_below_first_key() {
        let mut m: FlatMap<PageAddr, u32> = FlatMap::new(0);
        *m.get_mut(PageAddr::new(0x10000)) = 7;
        *m.get_mut(PageAddr::new(3)) = 5; // below the first key
        assert_eq!(m.get(PageAddr::new(0x10000)), 7);
        assert_eq!(m.get(PageAddr::new(3)), 5);
        assert_eq!(m.get(PageAddr::new(4)), 0);
    }

    #[test]
    fn flat_map_clear_keeps_allocation() {
        let mut m: FlatMap<LineAddr, u64> = FlatMap::new(0);
        *m.get_mut(LineAddr::new(10)) = 3;
        let slots = m.allocated_slots();
        m.clear();
        assert_eq!(m.get(LineAddr::new(10)), 0);
        assert_eq!(m.allocated_slots(), slots);
    }

    #[test]
    fn flat_map_dense_sweep_is_linear_in_slots() {
        let mut m: FlatMap<LineAddr, u64> = FlatMap::new(0);
        for i in 0..10_000u64 {
            *m.get_mut(LineAddr::new(0x400000 + i)) = i;
        }
        for i in 0..10_000u64 {
            assert_eq!(m.get(LineAddr::new(0x400000 + i)), i);
        }
        // Geometric growth keeps the band tight around what was touched.
        assert!(m.allocated_slots() < 40_000);
    }

    #[test]
    fn epoch_slab_insert_get_remove() {
        let mut s: EpochSlab<LineAddr, u64> = EpochSlab::new();
        assert_eq!(s.get(LineAddr::new(7)), None);
        s.insert(LineAddr::new(7), 1);
        assert_eq!(s.get(LineAddr::new(7)), Some(1));
        *s.get_mut(LineAddr::new(7)).unwrap() = 2;
        assert_eq!(s.get(LineAddr::new(7)), Some(2));
        s.remove(LineAddr::new(7));
        assert_eq!(s.get(LineAddr::new(7)), None);
    }

    #[test]
    fn epoch_slab_clear_is_total_and_reusable() {
        let mut s: EpochSlab<LineAddr, u64> = EpochSlab::new();
        for i in 0..100 {
            s.insert(LineAddr::new(i), i);
        }
        s.clear();
        for i in 0..100 {
            assert_eq!(s.get(LineAddr::new(i)), None, "line {i} survived clear");
        }
        s.insert(LineAddr::new(5), 50);
        assert_eq!(s.get(LineAddr::new(5)), Some(50));
        assert_eq!(s.get(LineAddr::new(6)), None);
    }

    #[test]
    fn epoch_slab_rebases_below_first_key() {
        let mut s: EpochSlab<PageAddr, u8> = EpochSlab::new();
        s.insert(PageAddr::new(1000), 1);
        s.insert(PageAddr::new(2), 2);
        assert_eq!(s.get(PageAddr::new(1000)), Some(1));
        assert_eq!(s.get(PageAddr::new(2)), Some(2));
        assert_eq!(s.get(PageAddr::new(3)), None);
    }

    #[test]
    fn epoch_wrap_hard_resets() {
        let mut s: EpochSlab<LineAddr, u8> = EpochSlab::new();
        s.insert(LineAddr::new(1), 1);
        // Force the wrap path directly.
        s.epoch = u32::MAX - 1;
        s.slots.iter_mut().for_each(|sl| sl.epoch = u32::MAX - 1);
        assert_eq!(s.get(LineAddr::new(1)), Some(1));
        s.clear(); // reaches u32::MAX -> hard reset
        assert_eq!(s.get(LineAddr::new(1)), None);
        s.insert(LineAddr::new(1), 9);
        assert_eq!(s.get(LineAddr::new(1)), Some(9));
    }
}
