//! Property-based tests for the cache and directory substrates.

use chiplet_mem::addr::{ChipletId, LineAddr};
use chiplet_mem::cache::{CacheGeometry, SetAssocCache, WritePolicy};
use chiplet_mem::directory::CoarseDirectory;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Read(u64),
    Write(u64),
    FlushAll,
    InvalidateAll,
    InvalidateLine(u64),
    FlushLine(u64),
}

fn op_strategy(max_line: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..max_line).prop_map(Op::Read),
        4 => (0..max_line).prop_map(Op::Write),
        1 => Just(Op::FlushAll),
        1 => Just(Op::InvalidateAll),
        1 => (0..max_line).prop_map(Op::InvalidateLine),
        1 => (0..max_line).prop_map(Op::FlushLine),
    ]
}

fn apply(c: &mut SetAssocCache, op: &Op) {
    match *op {
        Op::Read(l) => {
            c.read(LineAddr::new(l));
        }
        Op::Write(l) => {
            c.write(LineAddr::new(l));
        }
        Op::FlushAll => {
            c.flush_dirty();
        }
        Op::InvalidateAll => {
            c.invalidate_all();
        }
        Op::InvalidateLine(l) => {
            c.invalidate_line(LineAddr::new(l));
        }
        Op::FlushLine(l) => {
            c.flush_line(LineAddr::new(l));
        }
    }
}

proptest! {
    /// Valid and dirty line counts stay within capacity, and dirty <= valid.
    #[test]
    fn counts_stay_consistent(ops in prop::collection::vec(op_strategy(256), 1..400)) {
        let geom = CacheGeometry::new(4096, 64, 4).unwrap(); // 64 lines
        let mut c = SetAssocCache::new(geom, WritePolicy::WriteBack);
        for op in &ops {
            apply(&mut c, op);
            prop_assert!(c.valid_lines() <= geom.total_lines());
            prop_assert!(c.dirty_lines() <= c.valid_lines());
        }
    }

    /// After flush_dirty there are zero dirty lines; after invalidate_all
    /// there are zero valid lines.
    #[test]
    fn bulk_ops_reach_clean_states(ops in prop::collection::vec(op_strategy(128), 1..200)) {
        let geom = CacheGeometry::new(4096, 64, 4).unwrap();
        let mut c = SetAssocCache::new(geom, WritePolicy::WriteBack);
        for op in &ops {
            apply(&mut c, op);
        }
        c.flush_dirty();
        prop_assert_eq!(c.dirty_lines(), 0);
        c.invalidate_all();
        prop_assert_eq!(c.valid_lines(), 0);
        prop_assert_eq!(c.dirty_lines(), 0);
    }

    /// A write-through cache never holds a dirty line.
    #[test]
    fn write_through_is_never_dirty(ops in prop::collection::vec(op_strategy(128), 1..200)) {
        let geom = CacheGeometry::new(4096, 64, 4).unwrap();
        let mut c = SetAssocCache::new(geom, WritePolicy::WriteThrough);
        for op in &ops {
            apply(&mut c, op);
            prop_assert_eq!(c.dirty_lines(), 0);
        }
    }

    /// An access immediately after a miss hits (tiny temporal locality works).
    #[test]
    fn re_access_hits(line in 0u64..10_000) {
        let geom = CacheGeometry::new(8192, 64, 8).unwrap();
        let mut c = SetAssocCache::new(geom, WritePolicy::WriteBack);
        c.read(LineAddr::new(line));
        prop_assert!(c.read(LineAddr::new(line)).hit);
    }

    /// Accesses confined to one set never evict more than ways-1 other lines
    /// and probe() agrees with read().hit.
    #[test]
    fn probe_agrees_with_access(lines in prop::collection::vec(0u64..64, 1..100)) {
        let geom = CacheGeometry::new(4096, 64, 4).unwrap();
        let mut c = SetAssocCache::new(geom, WritePolicy::WriteBack);
        for &l in &lines {
            let present = c.probe(LineAddr::new(l));
            let hit = c.read(LineAddr::new(l)).hit;
            prop_assert_eq!(present, hit);
        }
    }

    /// Directory live entries never exceed capacity, and every eviction
    /// reports a non-empty sharer set.
    #[test]
    fn directory_capacity_bounded(
        accesses in prop::collection::vec((0u64..100_000, 0u8..4), 1..500)
    ) {
        let mut d = CoarseDirectory::new(64, 8, 4);
        for &(line, chiplet) in &accesses {
            let up = d.record_sharer(LineAddr::new(line), ChipletId::new(chiplet));
            prop_assert!(d.live_entries() <= 64);
            if let Some(ev) = up.evicted {
                prop_assert!(!ev.sharers.is_empty());
                prop_assert_eq!(ev.lines, 4);
            }
        }
    }

    /// Directory sharers reflect exactly the recorded, unremoved chiplets
    /// while no eviction has occurred.
    #[test]
    fn directory_tracks_sharers(chiplets in prop::collection::vec(0u8..4, 1..8)) {
        let mut d = CoarseDirectory::new(1024, 8, 4);
        for &c in &chiplets {
            d.record_sharer(LineAddr::new(0), ChipletId::new(c));
        }
        let s = d.sharers_of(LineAddr::new(0));
        for c in 0u8..4 {
            prop_assert_eq!(s.contains(ChipletId::new(c)), chiplets.contains(&c));
        }
    }
}
