//! Property-based tests for the cache and directory substrates, run on
//! the in-repo `chiplet-harness` property runner (≥256 seeded cases per
//! property; override with `CHIPLET_PROP_CASES`).

use chiplet_harness::prop::{check, vec_of, PropConfig};
use chiplet_harness::rng::Xoshiro256;
use chiplet_harness::{prop_assert, prop_assert_eq};
use chiplet_mem::addr::{ChipletId, LineAddr};
use chiplet_mem::cache::{CacheGeometry, SetAssocCache, WritePolicy};
use chiplet_mem::directory::CoarseDirectory;

#[derive(Debug, Clone)]
enum Op {
    Read(u64),
    Write(u64),
    FlushAll,
    InvalidateAll,
    InvalidateLine(u64),
    FlushLine(u64),
}

/// Weighted op generator mirroring real access mixes: reads and writes
/// dominate; bulk and line ops are occasional.
fn gen_op(rng: &mut Xoshiro256, max_line: u64) -> Op {
    match rng.next_below(12) {
        0..=3 => Op::Read(rng.next_below(max_line)),
        4..=7 => Op::Write(rng.next_below(max_line)),
        8 => Op::FlushAll,
        9 => Op::InvalidateAll,
        10 => Op::InvalidateLine(rng.next_below(max_line)),
        _ => Op::FlushLine(rng.next_below(max_line)),
    }
}

fn gen_ops(rng: &mut Xoshiro256, size: usize, max_line: u64, max_len: usize) -> Vec<Op> {
    // Scale sequence length with the shrinkable size budget.
    let cap = (max_len * size.max(1) / 64).max(1) + 1;
    vec_of(rng, size, 1..cap + 1, |r| gen_op(r, max_line))
}

fn apply(c: &mut SetAssocCache, op: &Op) {
    match *op {
        Op::Read(l) => {
            c.read(LineAddr::new(l));
        }
        Op::Write(l) => {
            c.write(LineAddr::new(l));
        }
        Op::FlushAll => {
            c.flush_dirty();
        }
        Op::InvalidateAll => {
            c.invalidate_all();
        }
        Op::InvalidateLine(l) => {
            c.invalidate_line(LineAddr::new(l));
        }
        Op::FlushLine(l) => {
            c.flush_line(LineAddr::new(l));
        }
    }
}

/// Valid and dirty line counts stay within capacity, and dirty <= valid.
#[test]
fn counts_stay_consistent() {
    check(
        "counts_stay_consistent",
        &PropConfig::default(),
        |rng, size| gen_ops(rng, size, 256, 400),
        |ops| {
            let geom = CacheGeometry::new(4096, 64, 4).unwrap(); // 64 lines
            let mut c = SetAssocCache::new(geom, WritePolicy::WriteBack);
            for op in ops {
                apply(&mut c, op);
                prop_assert!(c.valid_lines() <= geom.total_lines());
                prop_assert!(c.dirty_lines() <= c.valid_lines());
            }
            Ok(())
        },
    );
}

/// After flush_dirty there are zero dirty lines; after invalidate_all
/// there are zero valid lines.
#[test]
fn bulk_ops_reach_clean_states() {
    check(
        "bulk_ops_reach_clean_states",
        &PropConfig::default(),
        |rng, size| gen_ops(rng, size, 128, 200),
        |ops| {
            let geom = CacheGeometry::new(4096, 64, 4).unwrap();
            let mut c = SetAssocCache::new(geom, WritePolicy::WriteBack);
            for op in ops {
                apply(&mut c, op);
            }
            c.flush_dirty();
            prop_assert_eq!(c.dirty_lines(), 0);
            c.invalidate_all();
            prop_assert_eq!(c.valid_lines(), 0);
            prop_assert_eq!(c.dirty_lines(), 0);
            Ok(())
        },
    );
}

/// A write-through cache never holds a dirty line.
#[test]
fn write_through_is_never_dirty() {
    check(
        "write_through_is_never_dirty",
        &PropConfig::default(),
        |rng, size| gen_ops(rng, size, 128, 200),
        |ops| {
            let geom = CacheGeometry::new(4096, 64, 4).unwrap();
            let mut c = SetAssocCache::new(geom, WritePolicy::WriteThrough);
            for op in ops {
                apply(&mut c, op);
                prop_assert_eq!(c.dirty_lines(), 0);
            }
            Ok(())
        },
    );
}

/// An access immediately after a miss hits (tiny temporal locality works).
#[test]
fn re_access_hits() {
    check(
        "re_access_hits",
        &PropConfig::default(),
        |rng, _| rng.next_below(10_000),
        |&line| {
            let geom = CacheGeometry::new(8192, 64, 8).unwrap();
            let mut c = SetAssocCache::new(geom, WritePolicy::WriteBack);
            c.read(LineAddr::new(line));
            prop_assert!(c.read(LineAddr::new(line)).hit);
            Ok(())
        },
    );
}

/// probe() agrees with read().hit across arbitrary line streams.
#[test]
fn probe_agrees_with_access() {
    check(
        "probe_agrees_with_access",
        &PropConfig::default(),
        |rng, size| vec_of(rng, size, 1..100, |r| r.next_below(64)),
        |lines| {
            let geom = CacheGeometry::new(4096, 64, 4).unwrap();
            let mut c = SetAssocCache::new(geom, WritePolicy::WriteBack);
            for &l in lines {
                let present = c.probe(LineAddr::new(l));
                let hit = c.read(LineAddr::new(l)).hit;
                prop_assert_eq!(present, hit);
            }
            Ok(())
        },
    );
}

/// Directory live entries never exceed capacity, and every eviction
/// reports a non-empty sharer set.
#[test]
fn directory_capacity_bounded() {
    check(
        "directory_capacity_bounded",
        &PropConfig::default(),
        |rng, size| {
            vec_of(rng, size, 1..500, |r| {
                (r.next_below(100_000), r.next_below(4) as u8)
            })
        },
        |accesses| {
            let mut d = CoarseDirectory::new(64, 8, 4);
            for &(line, chiplet) in accesses {
                let up = d.record_sharer(LineAddr::new(line), ChipletId::new(chiplet));
                prop_assert!(d.live_entries() <= 64);
                if let Some(ev) = up.evicted {
                    prop_assert!(!ev.sharers.is_empty());
                    prop_assert_eq!(ev.lines, 4);
                }
            }
            Ok(())
        },
    );
}

/// Directory sharers reflect exactly the recorded, unremoved chiplets
/// while no eviction has occurred.
#[test]
fn directory_tracks_sharers() {
    check(
        "directory_tracks_sharers",
        &PropConfig::default(),
        |rng, size| vec_of(rng, size, 1..8, |r| r.next_below(4) as u8),
        |chiplets| {
            let mut d = CoarseDirectory::new(1024, 8, 4);
            for &c in chiplets {
                d.record_sharer(LineAddr::new(0), ChipletId::new(c));
            }
            let s = d.sharers_of(LineAddr::new(0));
            for c in 0u8..4 {
                prop_assert_eq!(s.contains(ChipletId::new(c)), chiplets.contains(&c));
            }
            Ok(())
        },
    );
}
