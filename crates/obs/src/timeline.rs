//! Sim-cycle-stamped timeline tracer with Chrome/Perfetto trace-event
//! JSON export.
//!
//! Events follow the trace-event format understood by `ui.perfetto.dev`
//! and `chrome://tracing`: `ph` is the phase (`B`egin / `E`nd duration
//! spans, `X` complete spans with `dur`, `i`nstant markers, `C`ounter
//! samples), `ts`/`dur` are microseconds, and we map `pid` to a chiplet
//! (or a pseudo-process like the command processor) and `tid` to a stream.
//! Metadata (`M`) events name the processes and threads so the Perfetto
//! track labels read "chiplet 0", "stream 1" instead of raw ids.

use crate::{escape_json, push_num};

/// Trace-event phase. Maps 1:1 onto the single-character `ph` field of
/// the Chrome trace-event format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// `B`: duration span begin (paired with a later [`Phase::End`]).
    Begin,
    /// `E`: duration span end.
    End,
    /// `X`: complete span carrying its own `dur`.
    Complete,
    /// `i`: instant marker.
    Instant,
    /// `C`: counter sample (`args` holds the series values).
    Counter,
}

impl Phase {
    /// The `ph` character emitted in JSON.
    pub fn ch(self) -> char {
        match self {
            Phase::Begin => 'B',
            Phase::End => 'E',
            Phase::Complete => 'X',
            Phase::Instant => 'i',
            Phase::Counter => 'C',
        }
    }
}

/// One recorded trace event. Timestamps and durations are microseconds
/// of simulated time (the simulator converts cycles via its clock).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name (span label, instant label, or counter series name).
    pub name: String,
    /// Category tag, e.g. `"kernel"`, `"sync"`, `"noc"`.
    pub cat: &'static str,
    /// Phase kind.
    pub ph: Phase,
    /// Timestamp in simulated microseconds.
    pub ts: f64,
    /// Duration in microseconds; only meaningful for [`Phase::Complete`].
    pub dur: f64,
    /// Process id: the chiplet index, or a pseudo-process id.
    pub pid: u32,
    /// Thread id: the stream id within the process.
    pub tid: u32,
    /// Key/value payload rendered into the `args` object.
    pub args: Vec<(&'static str, f64)>,
}

/// Which clock a tracer's `ts`/`dur` microseconds are measured on.
///
/// The simulator stamps events in *simulated* microseconds (cycles
/// through the configured clock) — deterministic, byte-identical across
/// hosts. The campaign's host-side fleet trace stamps events in *wall*
/// microseconds measured on the machine running the sweep —
/// non-deterministic by nature. The domain is recorded in the exported
/// JSON (`otherData.clockDomain`) so a trace can never be mistaken for
/// the other kind. This enum is pure metadata: reading an actual wall
/// clock stays confined to harness/bench code (the `wall-clock` lint
/// keeps it out of sim-path crates, including this one).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ClockDomain {
    /// Timestamps are simulated microseconds (the default).
    #[default]
    SimMicros,
    /// Timestamps are host wall-clock microseconds.
    WallMicros,
}

impl ClockDomain {
    /// The label stamped into the exported JSON.
    pub fn label(self) -> &'static str {
        match self {
            ClockDomain::SimMicros => "sim",
            ClockDomain::WallMicros => "wall",
        }
    }
}

/// A timeline tracer. Disabled tracers drop events at zero cost, so the
/// simulator can call record methods unconditionally.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Tracer {
    events: Vec<TraceEvent>,
    process_names: Vec<(u32, String)>,
    thread_names: Vec<(u32, u32, String)>,
    enabled: bool,
    clock: ClockDomain,
}

impl Tracer {
    /// Creates an enabled tracer on the simulated clock.
    pub fn new() -> Self {
        Tracer {
            enabled: true,
            ..Tracer::default()
        }
    }

    /// Creates an enabled tracer whose timestamps are host wall-clock
    /// microseconds (the campaign's fleet trace).
    pub fn new_wall() -> Self {
        Tracer {
            enabled: true,
            clock: ClockDomain::WallMicros,
            ..Tracer::default()
        }
    }

    /// Creates a disabled tracer; all record calls are no-ops.
    pub fn disabled() -> Self {
        Tracer::default()
    }

    /// Which clock this tracer's timestamps are measured on.
    pub fn clock(&self) -> ClockDomain {
        self.clock
    }

    /// Whether this tracer records events.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Number of recorded events (excluding metadata).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The recorded events, in record order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Names a process track (e.g. `name_process(0, "chiplet 0")`).
    pub fn name_process(&mut self, pid: u32, name: impl Into<String>) {
        if self.enabled {
            self.process_names.push((pid, name.into()));
        }
    }

    /// Names a thread track within a process.
    pub fn name_thread(&mut self, pid: u32, tid: u32, name: impl Into<String>) {
        if self.enabled {
            self.thread_names.push((pid, tid, name.into()));
        }
    }

    fn push(&mut self, ev: TraceEvent) {
        if self.enabled {
            self.events.push(ev);
        }
    }

    /// Records a `B` span-begin event.
    pub fn begin(
        &mut self,
        name: impl Into<String>,
        cat: &'static str,
        ts: f64,
        pid: u32,
        tid: u32,
    ) {
        self.push(TraceEvent {
            name: name.into(),
            cat,
            ph: Phase::Begin,
            ts,
            dur: 0.0,
            pid,
            tid,
            args: Vec::new(),
        });
    }

    /// Records an `E` span-end event. The name must match the open `B`
    /// event on the same `(pid, tid)` track.
    pub fn end(&mut self, name: impl Into<String>, cat: &'static str, ts: f64, pid: u32, tid: u32) {
        self.push(TraceEvent {
            name: name.into(),
            cat,
            ph: Phase::End,
            ts,
            dur: 0.0,
            pid,
            tid,
            args: Vec::new(),
        });
    }

    /// Records an `X` complete span with explicit duration and payload.
    #[allow(clippy::too_many_arguments)]
    pub fn complete(
        &mut self,
        name: impl Into<String>,
        cat: &'static str,
        ts: f64,
        dur: f64,
        pid: u32,
        tid: u32,
        args: Vec<(&'static str, f64)>,
    ) {
        self.push(TraceEvent {
            name: name.into(),
            cat,
            ph: Phase::Complete,
            ts,
            dur,
            pid,
            tid,
            args,
        });
    }

    /// Records an `i` instant marker with payload.
    pub fn instant(
        &mut self,
        name: impl Into<String>,
        cat: &'static str,
        ts: f64,
        pid: u32,
        tid: u32,
        args: Vec<(&'static str, f64)>,
    ) {
        self.push(TraceEvent {
            name: name.into(),
            cat,
            ph: Phase::Instant,
            ts,
            dur: 0.0,
            pid,
            tid,
            args,
        });
    }

    /// Records a `C` counter sample; `args` holds the series values.
    pub fn counter(
        &mut self,
        name: impl Into<String>,
        cat: &'static str,
        ts: f64,
        pid: u32,
        args: Vec<(&'static str, f64)>,
    ) {
        self.push(TraceEvent {
            name: name.into(),
            cat,
            ph: Phase::Counter,
            ts,
            dur: 0.0,
            pid,
            tid: 0,
            args,
        });
    }

    /// Checks that every `B` event has a matching later `E` on the same
    /// `(pid, tid)` track with the same name, and no stray `E`s. Returns
    /// the offending event name on failure.
    pub fn balanced(&self) -> Result<(), String> {
        let mut open: Vec<(u32, u32, &str)> = Vec::new();
        for ev in &self.events {
            match ev.ph {
                Phase::Begin => open.push((ev.pid, ev.tid, &ev.name)),
                Phase::End => {
                    // Duration events nest per track: E closes the most
                    // recent B on the same (pid, tid).
                    let idx = open
                        .iter()
                        .rposition(|&(p, t, _)| p == ev.pid && t == ev.tid)
                        .ok_or_else(|| {
                            format!(
                                "unmatched E event '{}' on pid={} tid={}",
                                ev.name, ev.pid, ev.tid
                            )
                        })?;
                    let (_, _, name) = open.remove(idx);
                    if name != ev.name {
                        return Err(format!(
                            "E event '{}' closes open B event '{}' on pid={} tid={}",
                            ev.name, name, ev.pid, ev.tid
                        ));
                    }
                }
                _ => {}
            }
        }
        if let Some((pid, tid, name)) = open.first() {
            return Err(format!("unclosed B event '{name}' on pid={pid} tid={tid}"));
        }
        Ok(())
    }

    /// Renders the trace as Chrome/Perfetto trace-event JSON:
    /// `{"traceEvents": [...], "otherData": {...}}`, with `M` metadata
    /// events naming the process and thread tracks first and the clock
    /// domain recorded in `otherData`.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 96);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        for (pid, name) in &self.process_names {
            push_meta(&mut out, &mut first, "process_name", *pid, None, name);
        }
        for (pid, tid, name) in &self.thread_names {
            push_meta(&mut out, &mut first, "thread_name", *pid, Some(*tid), name);
        }
        for ev in &self.events {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("{\"name\":\"");
            escape_json(&mut out, &ev.name);
            out.push_str("\",\"cat\":\"");
            escape_json(&mut out, ev.cat);
            out.push_str("\",\"ph\":\"");
            out.push(ev.ph.ch());
            out.push_str("\",\"ts\":");
            push_num(&mut out, ev.ts);
            if ev.ph == Phase::Complete {
                out.push_str(",\"dur\":");
                push_num(&mut out, ev.dur);
            }
            out.push_str(",\"pid\":");
            out.push_str(&ev.pid.to_string());
            out.push_str(",\"tid\":");
            out.push_str(&ev.tid.to_string());
            if ev.ph == Phase::Instant {
                // Thread-scoped instants render as ticks on their track.
                out.push_str(",\"s\":\"t\"");
            }
            if !ev.args.is_empty() {
                out.push_str(",\"args\":{");
                for (i, (k, v)) in ev.args.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape_json(&mut out, k);
                    out.push_str("\":");
                    push_num(&mut out, *v);
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("],\"otherData\":{\"clockDomain\":\"");
        out.push_str(self.clock.label());
        out.push_str("\"}}");
        out
    }
}

fn push_meta(
    out: &mut String,
    first: &mut bool,
    kind: &str,
    pid: u32,
    tid: Option<u32>,
    name: &str,
) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push_str("{\"name\":\"");
    out.push_str(kind);
    out.push_str("\",\"ph\":\"M\",\"pid\":");
    out.push_str(&pid.to_string());
    if let Some(tid) = tid {
        out.push_str(",\"tid\":");
        out.push_str(&tid.to_string());
    }
    out.push_str(",\"args\":{\"name\":\"");
    escape_json(out, name);
    out.push_str("\"}}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::disabled();
        t.begin("k", "kernel", 0.0, 0, 0);
        t.end("k", "kernel", 1.0, 0, 0);
        t.name_process(0, "chiplet 0");
        assert!(t.is_empty());
        assert!(!t.is_enabled());
        assert_eq!(
            t.to_chrome_json(),
            "{\"traceEvents\":[],\"otherData\":{\"clockDomain\":\"sim\"}}"
        );
    }

    #[test]
    fn clock_domain_is_stamped_into_the_export() {
        let sim = Tracer::new();
        assert_eq!(sim.clock(), ClockDomain::SimMicros);
        assert!(sim.to_chrome_json().contains("\"clockDomain\":\"sim\""));

        let mut wall = Tracer::new_wall();
        assert_eq!(wall.clock(), ClockDomain::WallMicros);
        assert!(wall.is_enabled());
        wall.complete("cell", "cell", 0.0, 5.0, 0, 1, vec![]);
        let json = wall.to_chrome_json();
        assert!(json.contains("\"clockDomain\":\"wall\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(wall.balanced().is_ok());
    }

    #[test]
    fn balanced_accepts_nested_spans() {
        let mut t = Tracer::new();
        t.begin("outer", "kernel", 0.0, 0, 1);
        t.begin("inner", "sync", 1.0, 0, 1);
        t.end("inner", "sync", 2.0, 0, 1);
        t.end("outer", "kernel", 3.0, 0, 1);
        assert!(t.balanced().is_ok());
    }

    #[test]
    fn balanced_rejects_unclosed_and_mismatched() {
        let mut t = Tracer::new();
        t.begin("open", "kernel", 0.0, 0, 0);
        assert!(t.balanced().unwrap_err().contains("unclosed"));

        let mut t = Tracer::new();
        t.end("stray", "kernel", 0.0, 0, 0);
        assert!(t.balanced().unwrap_err().contains("unmatched"));

        let mut t = Tracer::new();
        t.begin("a", "kernel", 0.0, 0, 0);
        t.end("b", "kernel", 1.0, 0, 0);
        assert!(t.balanced().unwrap_err().contains("closes open"));
    }

    #[test]
    fn spans_on_distinct_tracks_do_not_interfere() {
        let mut t = Tracer::new();
        t.begin("k0", "kernel", 0.0, 0, 1);
        t.begin("k1", "kernel", 0.5, 1, 1);
        t.end("k0", "kernel", 1.0, 0, 1);
        t.end("k1", "kernel", 2.0, 1, 1);
        assert!(t.balanced().is_ok());
    }

    #[test]
    fn json_has_phases_metadata_and_args() {
        let mut t = Tracer::new();
        t.name_process(0, "chiplet 0");
        t.name_thread(0, 1, "stream 1");
        t.begin("kern \"q\"", "kernel", 1.25, 0, 1);
        t.end("kern \"q\"", "kernel", 2.0, 0, 1);
        t.complete("acquire", "sync", 2.0, 0.5, 0, 1, vec![("lines", 7.0)]);
        t.instant("elided", "sync", 2.5, 0, 1, vec![("kind", 1.0)]);
        t.counter("flushed_lines", "sync", 3.0, 0, vec![("lines", 9.0)]);
        let json = t.to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"dur\":0.5"));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"s\":\"t\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"args\":{\"lines\":7"));
        assert!(json.contains("kern \\\"q\\\""), "names are JSON-escaped");
    }
}
