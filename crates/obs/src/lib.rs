//! `chiplet-obs`: the simulation tracing subsystem.
//!
//! Three first-class observability primitives the rest of the workspace
//! threads through its hot paths, all hermetic (zero external crates):
//!
//! * [`timeline`] — a sim-cycle-stamped timeline [`Tracer`] recording
//!   spans, instants and counter samples, exported as Chrome/Perfetto
//!   trace-event JSON (`ph: B/E/X/i/C`, `pid` = chiplet, `tid` = stream)
//!   so a run opens directly in `ui.perfetto.dev`.
//! * [`audit`] — the Chiplet Coherence Table [`TransitionAuditor`]: every
//!   per-(structure, chiplet) NP/V/D/S state transition is recorded and
//!   validated against the paper's Figure 6 transition relation, and
//!   summarized as per-structure state residency. An illegal transition is
//!   a hard error in debug/test builds and an accumulated violation in
//!   release builds.
//! * [`hist`] — log2-bucketed [`Histogram`] metrics (count/sum/max plus
//!   p50/p90/p99 estimates) with a Prometheus-style text exposition.
//! * [`prom`] — the Prometheus text-exposition writer ([`PromText`], which
//!   emits `# HELP`/`# TYPE` once per metric family) and validating parser
//!   the histogram exposition and the campaign's host-telemetry artifact
//!   are built on.
//!
//! The crate is deliberately dependency-free — `chiplet-harness` re-exports
//! it (as `chiplet_harness::trace`) so downstream crates can reach the
//! whole toolkit through the harness facade, and states/events cross the
//! API as their stable 2-/3-bit encodings rather than as foreign enums.

pub mod audit;
pub mod hist;
pub mod prom;
pub mod timeline;

pub use audit::{AuditError, Residency, Transition, TransitionAuditor};
pub use hist::Histogram;
pub use prom::{PromSample, PromText};
pub use timeline::{ClockDomain, Phase, TraceEvent, Tracer};

/// Escapes `s` for embedding inside a JSON string literal.
pub(crate) fn escape_json(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Renders a finite `f64` as a JSON number (non-finite values render as 0).
pub(crate) fn push_num(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push('0');
    } else if v.fract() == 0.0 && v.abs() < 9e15 {
        out.push_str(&format!("{}", v as i64));
    } else {
        out.push_str(&format!("{v}"));
    }
}
