//! Log2-bucketed histograms with percentile estimates and a
//! Prometheus-style text exposition.
//!
//! Bucket 0 holds the value 0; bucket `k` (k ≥ 1) holds values in
//! `[2^(k-1), 2^k)`. Observation is O(1) and allocation-free, so the
//! simulator can feed every kernel boundary without measurable overhead.
//! Percentiles are bucket-upper-bound estimates (clamped to the observed
//! maximum), which keeps them deterministic and platform-stable.

use crate::prom::PromText;
use std::fmt;

/// Number of buckets: value 0 plus one bucket per power of two up to
/// `u64::MAX`.
pub const BUCKETS: usize = 65;

/// A log2-bucketed histogram over `u64` observations.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    name: String,
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
    max: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new(name: impl Into<String>) -> Self {
        Histogram {
            name: name.into(),
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0.0,
            max: 0,
        }
    }

    /// The histogram's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The bucket index of `v`: 0 for 0, else `1 + floor(log2 v)`.
    pub fn bucket_index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// The largest value bucket `i` can hold (`u64::MAX` for the last).
    pub fn bucket_upper(i: usize) -> u64 {
        match i {
            0 => 0,
            1..=63 => (1u64 << i) - 1,
            _ => u64::MAX,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, v: u64) {
        self.buckets[Self::bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v as f64;
        self.max = self.max.max(v);
    }

    /// Records a non-negative `f64` observation, rounded to the nearest
    /// integer (negative and non-finite values count as 0).
    pub fn observe_f64(&mut self, v: f64) {
        let v = if v.is_finite() && v > 0.0 {
            v.round() as u64
        } else {
            0
        };
        self.observe(v);
    }

    /// Folds another histogram's observations into this one: bucket
    /// counts add pairwise, `count`/`sum` accumulate, `max` takes the
    /// larger. Merging is commutative bucket-wise, but `sum` is a float —
    /// fold in a fixed order (the fleet commits results in submission
    /// order) when byte-identical output matters.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// The raw bucket counts.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Percentile estimate for `p` in `[0, 1]`: the upper bound of the
    /// bucket containing the rank-`ceil(p·count)` observation, clamped to
    /// the observed maximum. Returns 0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                return Self::bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> u64 {
        self.percentile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// Appends a Prometheus text-format exposition of this histogram to
    /// `out`: cumulative `_bucket{le=...}` samples (populated prefix plus
    /// `+Inf`), `_sum`, `_count`, and percentile gauges. `labels` is an
    /// already-rendered label set like `workload="square"` (may be empty).
    /// Rendering one histogram under several label sets through the same
    /// [`PromText`] stays valid exposition: the family's `# HELP`/`# TYPE`
    /// pair is emitted only once.
    pub fn prometheus_text(&self, prefix: &str, labels: &str, help: &str, out: &mut PromText) {
        let fq = format!("{prefix}_{}", self.name);
        let sep = if labels.is_empty() { "" } else { "," };
        out.header(&fq, "histogram", help);
        let top = self
            .buckets
            .iter()
            .rposition(|&n| n > 0)
            .map(|i| i + 1)
            .unwrap_or(1);
        let bucket = format!("{fq}_bucket");
        let mut cumulative = 0u64;
        for i in 0..top {
            cumulative += self.buckets[i];
            out.sample(
                &bucket,
                &format!("{labels}{sep}le=\"{}\"", Self::bucket_upper(i)),
                cumulative,
            );
        }
        out.sample(&bucket, &format!("{labels}{sep}le=\"+Inf\""), self.count);
        let mut sum = String::new();
        crate::push_num(&mut sum, self.sum);
        out.sample(&format!("{fq}_sum"), labels, sum);
        out.sample(&format!("{fq}_count"), labels, self.count);
        for (q, v) in [(50, self.p50()), (90, self.p90()), (99, self.p99())] {
            let name = format!("{fq}_p{q}");
            out.header(&name, "gauge", "bucket-upper-bound percentile estimate");
            out.sample(&name, labels, v);
        }
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: n={} mean={:.1} p50={} p90={} p99={} max={}",
            self.name,
            self.count,
            self.mean(),
            self.p50(),
            self.p90(),
            self.p99(),
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(7), 3);
        assert_eq!(Histogram::bucket_index(8), 4);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_upper(0), 0);
        assert_eq!(Histogram::bucket_upper(1), 1);
        assert_eq!(Histogram::bucket_upper(2), 3);
        assert_eq!(Histogram::bucket_upper(3), 7);
        assert_eq!(Histogram::bucket_upper(64), u64::MAX);
        // Every bucket's upper bound lands in that bucket.
        for i in 0..BUCKETS {
            assert_eq!(Histogram::bucket_index(Histogram::bucket_upper(i)), i);
        }
    }

    #[test]
    fn percentiles_walk_cumulative_counts() {
        let mut h = Histogram::new("t");
        for v in [1u64, 2, 3, 4] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.max(), 4);
        // rank(0.5 * 4) = 2 lands in bucket [2,4) whose upper bound is 3.
        assert_eq!(h.p50(), 3);
        // p99 rank 4 lands in bucket [4,8), clamped to the observed max.
        assert_eq!(h.p99(), 4);
        assert_eq!(h.percentile(1.0), 4);
        assert!((h.mean() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new("empty");
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn zero_and_huge_values_take_edge_buckets() {
        let mut h = Histogram::new("edges");
        h.observe(0);
        h.observe(u64::MAX);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[64], 1);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), u64::MAX);
    }

    #[test]
    fn observe_f64_rounds_and_clamps() {
        let mut h = Histogram::new("f");
        h.observe_f64(2.6);
        h.observe_f64(-5.0);
        h.observe_f64(f64::NAN);
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), 3);
        assert_eq!(h.buckets()[0], 2, "negative and NaN clamp to 0");
    }

    #[test]
    fn skewed_distribution_separates_percentiles() {
        let mut h = Histogram::new("skew");
        for _ in 0..99 {
            h.observe(10);
        }
        h.observe(100_000);
        let p50 = h.p50();
        let p99 = h.p99();
        assert!(p50 < 16, "p50 near the mode: {p50}");
        assert!(p99 >= 10, "{p99}");
        assert_eq!(h.percentile(1.0), 100_000);
    }

    #[test]
    fn prometheus_text_is_cumulative_and_labelled() {
        let mut h = Histogram::new("stall_cycles");
        h.observe(1);
        h.observe(3);
        let mut prom = PromText::new();
        h.prometheus_text(
            "cpelide",
            "workload=\"square\"",
            "boundary stalls",
            &mut prom,
        );
        let out = prom.finish();
        assert!(out.contains("# TYPE cpelide_stall_cycles histogram"));
        assert!(out.contains("cpelide_stall_cycles_bucket{workload=\"square\",le=\"1\"} 1"));
        assert!(out.contains("cpelide_stall_cycles_bucket{workload=\"square\",le=\"3\"} 2"));
        assert!(out.contains("le=\"+Inf\"} 2"));
        assert!(out.contains("cpelide_stall_cycles_sum{workload=\"square\"} 4"));
        assert!(out.contains("cpelide_stall_cycles_count{workload=\"square\"} 2"));
        assert!(out.contains("cpelide_stall_cycles_p50"));
    }

    #[test]
    fn prometheus_headers_dedupe_across_label_sets() {
        // The regression the PromText writer exists to fix: one metric
        // family rendered under several label sets must announce its
        // HELP/TYPE pair exactly once, or the exposition is invalid.
        let mut a = Histogram::new("stall_cycles");
        a.observe(2);
        let mut b = Histogram::new("stall_cycles");
        b.observe(9);
        let mut prom = PromText::new();
        a.prometheus_text(
            "cpelide",
            "workload=\"square\"",
            "boundary stalls",
            &mut prom,
        );
        b.prometheus_text("cpelide", "workload=\"bfs\"", "boundary stalls", &mut prom);
        let out = prom.finish();
        assert_eq!(
            out.matches("# TYPE cpelide_stall_cycles histogram").count(),
            1
        );
        assert_eq!(out.matches("# HELP cpelide_stall_cycles ").count(), 1);
        assert!(out.contains("cpelide_stall_cycles_count{workload=\"square\"} 1"));
        assert!(out.contains("cpelide_stall_cycles_count{workload=\"bfs\"} 1"));
        crate::prom::parse(&out).expect("deduped exposition validates");
    }

    #[test]
    fn merge_equals_observing_the_union() {
        let mut a = Histogram::new("m");
        let mut b = Histogram::new("m");
        let mut union = Histogram::new("m");
        for v in [0u64, 1, 5, 9] {
            a.observe(v);
            union.observe(v);
        }
        for v in [2u64, 5, 1 << 40] {
            b.observe(v);
            union.observe(v);
        }
        a.merge(&b);
        assert_eq!(a, union);

        let empty = Histogram::new("m");
        let before = a.clone();
        a.merge(&empty);
        assert_eq!(a, before, "merging an empty histogram is a no-op");
    }

    #[test]
    fn display_is_compact() {
        let mut h = Histogram::new("d");
        h.observe(5);
        let s = format!("{h}");
        assert!(s.contains("n=1"));
        assert!(s.contains("max=5"));
    }
}
