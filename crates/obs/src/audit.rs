//! Chiplet Coherence Table transition audit trail.
//!
//! The CCT (paper Figure 6) moves each (data structure, chiplet) pair
//! through the NP/Valid/Dirty/Stale states at kernel launches. The
//! [`TransitionAuditor`] sits beside the table, re-checks every applied
//! transition against an independent copy of the legal relation, and keeps
//! per-structure state-residency counts. An illegal transition is a hard
//! error in debug/test builds (callers `expect` the `Result`) and an
//! accumulated violation count in release builds — the audit trail doubles
//! as a correctness net for every future coherence change.
//!
//! States and events cross this API as their stable bit encodings (the
//! same 2-bit state codes the table packs into its chiplet vectors), so
//! the crate stays dependency-free.

use std::fmt;

/// 2-bit state codes, matching `chiplet-core`'s `EntryState::encode`.
pub const STATE_NOT_PRESENT: u8 = 0b00;
/// Clean copies may be present and up to date.
pub const STATE_VALID: u8 = 0b01;
/// The chiplet may hold the only up-to-date (dirty) copies.
pub const STATE_DIRTY: u8 = 0b10;
/// Copies may be present but are out of date.
pub const STATE_STALE: u8 = 0b11;

/// Event codes, matching `chiplet-core`'s `StateEvent::encode`.
pub const EVENT_LOCAL_READ: u8 = 0;
/// A kernel on this chiplet writes the structure.
pub const EVENT_LOCAL_WRITE: u8 = 1;
/// A kernel on another chiplet reads an overlapping range.
pub const EVENT_REMOTE_READ: u8 = 2;
/// A kernel on another chiplet writes an overlapping range.
pub const EVENT_REMOTE_WRITE: u8 = 3;
/// This chiplet's whole L2 was flushed (a release).
pub const EVENT_CACHE_FLUSHED: u8 = 4;
/// This chiplet's whole L2 was invalidated (an acquire).
pub const EVENT_CACHE_INVALIDATED: u8 = 5;

const STATE_NAMES: [&str; 4] = ["NotPresent", "Valid", "Dirty", "Stale"];
const EVENT_NAMES: [&str; 6] = [
    "LocalRead",
    "LocalWrite",
    "RemoteRead",
    "RemoteWrite",
    "CacheFlushed",
    "CacheInvalidated",
];

/// Human-readable name for a 2-bit state code.
pub fn state_name(state: u8) -> &'static str {
    STATE_NAMES.get(state as usize).copied().unwrap_or("?")
}

/// Human-readable name for an event code.
pub fn event_name(event: u8) -> &'static str {
    EVENT_NAMES.get(event as usize).copied().unwrap_or("?")
}

/// The legal Figure 6 transition relation: the successor of `from` under
/// `event`, or `None` when the transition is illegal (a local access to a
/// Stale structure without an intervening acquire, or out-of-range codes).
///
/// This is an independent transcription of the relation — deliberately
/// *not* derived from `chiplet-core` — so a table bug cannot hide by
/// corrupting both sides.
pub fn legal(from: u8, event: u8) -> Option<u8> {
    Some(match (from, event) {
        (STATE_NOT_PRESENT, EVENT_LOCAL_READ) => STATE_VALID,
        (STATE_NOT_PRESENT, EVENT_LOCAL_WRITE) => STATE_DIRTY,
        (STATE_NOT_PRESENT, EVENT_REMOTE_READ | EVENT_REMOTE_WRITE) => STATE_NOT_PRESENT,
        (STATE_NOT_PRESENT, EVENT_CACHE_FLUSHED | EVENT_CACHE_INVALIDATED) => STATE_NOT_PRESENT,

        (STATE_VALID, EVENT_LOCAL_READ | EVENT_REMOTE_READ | EVENT_CACHE_FLUSHED) => STATE_VALID,
        (STATE_VALID, EVENT_LOCAL_WRITE) => STATE_DIRTY,
        (STATE_VALID, EVENT_REMOTE_WRITE) => STATE_STALE,
        (STATE_VALID, EVENT_CACHE_INVALIDATED) => STATE_NOT_PRESENT,

        (STATE_DIRTY, EVENT_LOCAL_READ | EVENT_LOCAL_WRITE) => STATE_DIRTY,
        (STATE_DIRTY, EVENT_CACHE_FLUSHED | EVENT_REMOTE_READ) => STATE_VALID,
        (STATE_DIRTY, EVENT_REMOTE_WRITE) => STATE_STALE,
        (STATE_DIRTY, EVENT_CACHE_INVALIDATED) => STATE_NOT_PRESENT,

        (STATE_STALE, EVENT_CACHE_INVALIDATED) => STATE_NOT_PRESENT,
        (STATE_STALE, EVENT_REMOTE_READ | EVENT_REMOTE_WRITE | EVENT_CACHE_FLUSHED) => STATE_STALE,
        // Stale + Local{Read,Write}: illegal without an acquire first.
        _ => return None,
    })
}

/// One audited state transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// Table slot / data-structure index.
    pub structure: u32,
    /// Chiplet whose per-structure state changed.
    pub chiplet: u32,
    /// Kernel launch sequence number driving the transition.
    pub kernel: u64,
    /// 2-bit state code before the event.
    pub from: u8,
    /// Event code applied.
    pub event: u8,
    /// 2-bit state code the table moved to.
    pub to: u8,
}

impl fmt::Display for Transition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "structure {} chiplet {} kernel {}: {} --{}--> {}",
            self.structure,
            self.chiplet,
            self.kernel,
            state_name(self.from),
            event_name(self.event),
            state_name(self.to)
        )
    }
}

/// An illegal transition, reported by [`TransitionAuditor::record`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditError {
    /// The offending transition as recorded.
    pub transition: Transition,
    /// What the legal relation allows instead (`None` when the event
    /// itself is illegal from that state).
    pub expected: Option<u8>,
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.expected {
            Some(to) => write!(
                f,
                "illegal CCT transition ({}); Figure 6 requires successor {}",
                self.transition,
                state_name(to)
            ),
            None => write!(
                f,
                "illegal CCT event ({}); {} is not permitted from {}",
                self.transition,
                event_name(self.transition.event),
                state_name(self.transition.from)
            ),
        }
    }
}

impl std::error::Error for AuditError {}

/// Per-structure residency counts: how many audited transitions *ended*
/// in each of the four states.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Residency {
    /// Transition counts landing in NP / Valid / Dirty / Stale.
    pub by_state: [u64; 4],
}

impl Residency {
    /// Total transitions observed for the structure.
    pub fn total(&self) -> u64 {
        self.by_state.iter().sum()
    }
}

/// Records and validates CCT transitions.
///
/// The auditor is always cheap enough to leave on (a few adds per
/// transition); retaining the full transition log is opt-in via
/// [`TransitionAuditor::keep_log`] because long runs produce millions of
/// transitions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TransitionAuditor {
    log: Vec<Transition>,
    keep_log: bool,
    transitions: u64,
    violations: u64,
    first_violation: Option<AuditError>,
    residency: Vec<Residency>,
}

impl TransitionAuditor {
    /// Creates an auditor that keeps counts but not the full log.
    pub fn new() -> Self {
        TransitionAuditor::default()
    }

    /// Enables or disables retention of the full transition log.
    pub fn keep_log(&mut self, keep: bool) {
        self.keep_log = keep;
    }

    /// Records one transition, validating it against [`legal`].
    ///
    /// On an illegal transition the violation is counted (and retained as
    /// [`TransitionAuditor::first_violation`]) and an [`AuditError`] is
    /// returned; the caller decides whether that is fatal (it is in
    /// debug/test builds).
    pub fn record(
        &mut self,
        structure: u32,
        chiplet: u32,
        kernel: u64,
        from: u8,
        event: u8,
        to: u8,
    ) -> Result<(), AuditError> {
        let t = Transition {
            structure,
            chiplet,
            kernel,
            from,
            event,
            to,
        };
        self.transitions += 1;
        if self.keep_log {
            self.log.push(t);
        }
        if self.residency.len() <= structure as usize {
            self.residency
                .resize(structure as usize + 1, Residency::default());
        }
        if (to as usize) < 4 {
            self.residency[structure as usize].by_state[to as usize] += 1;
        }
        let expected = legal(from, event);
        if expected == Some(to) {
            Ok(())
        } else {
            self.violations += 1;
            let err = AuditError {
                transition: t,
                expected,
            };
            if self.first_violation.is_none() {
                self.first_violation = Some(err.clone());
            }
            Err(err)
        }
    }

    /// Total transitions audited.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Number of illegal transitions observed.
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// The first illegal transition observed, if any.
    pub fn first_violation(&self) -> Option<&AuditError> {
        self.first_violation.as_ref()
    }

    /// The retained transition log (empty unless [`keep_log`] is on).
    ///
    /// [`keep_log`]: TransitionAuditor::keep_log
    pub fn log(&self) -> &[Transition] {
        &self.log
    }

    /// Per-structure residency counts, indexed by structure id.
    pub fn residency(&self) -> &[Residency] {
        &self.residency
    }

    /// A multi-line human-readable summary: totals plus per-structure
    /// residency rows for structures that saw any transitions.
    pub fn summary_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "cct audit: {} transitions, {} violations\n",
            self.transitions, self.violations
        ));
        if let Some(err) = &self.first_violation {
            out.push_str(&format!("  first violation: {err}\n"));
        }
        for (i, r) in self.residency.iter().enumerate() {
            if r.total() == 0 {
                continue;
            }
            out.push_str(&format!(
                "  structure {i}: NP={} V={} D={} S={} (total {})\n",
                r.by_state[0],
                r.by_state[1],
                r.by_state[2],
                r.by_state[3],
                r.total()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legal_relation_matches_figure6() {
        assert_eq!(
            legal(STATE_NOT_PRESENT, EVENT_LOCAL_READ),
            Some(STATE_VALID)
        );
        assert_eq!(
            legal(STATE_NOT_PRESENT, EVENT_LOCAL_WRITE),
            Some(STATE_DIRTY)
        );
        assert_eq!(legal(STATE_VALID, EVENT_REMOTE_WRITE), Some(STATE_STALE));
        assert_eq!(legal(STATE_DIRTY, EVENT_CACHE_FLUSHED), Some(STATE_VALID));
        assert_eq!(legal(STATE_DIRTY, EVENT_REMOTE_READ), Some(STATE_VALID));
        assert_eq!(
            legal(STATE_STALE, EVENT_CACHE_INVALIDATED),
            Some(STATE_NOT_PRESENT)
        );
        assert_eq!(legal(STATE_STALE, EVENT_LOCAL_READ), None);
        assert_eq!(legal(STATE_STALE, EVENT_LOCAL_WRITE), None);
        assert_eq!(legal(7, EVENT_LOCAL_READ), None, "bad state code");
        assert_eq!(legal(STATE_VALID, 9), None, "bad event code");
    }

    #[test]
    fn auditor_accepts_legal_sequence() {
        let mut a = TransitionAuditor::new();
        a.keep_log(true);
        // structure 0 on chiplet 0: NP -LW-> D -Flush-> V -RW-> S -Inv-> NP
        let seq = [
            (EVENT_LOCAL_WRITE, STATE_NOT_PRESENT, STATE_DIRTY),
            (EVENT_CACHE_FLUSHED, STATE_DIRTY, STATE_VALID),
            (EVENT_REMOTE_WRITE, STATE_VALID, STATE_STALE),
            (EVENT_CACHE_INVALIDATED, STATE_STALE, STATE_NOT_PRESENT),
        ];
        for (k, (ev, from, to)) in seq.into_iter().enumerate() {
            a.record(0, 0, k as u64, from, ev, to).expect("legal");
        }
        assert_eq!(a.transitions(), 4);
        assert_eq!(a.violations(), 0);
        assert_eq!(a.log().len(), 4);
        let r = a.residency()[0];
        assert_eq!(r.total(), 4);
        assert_eq!(r.by_state, [1, 1, 1, 1]);
    }

    #[test]
    fn auditor_rejects_illegal_transition() {
        let mut a = TransitionAuditor::new();
        // Local read of a Stale structure without an acquire: the paper's
        // one forbidden move.
        let err = a
            .record(3, 1, 7, STATE_STALE, EVENT_LOCAL_READ, STATE_VALID)
            .unwrap_err();
        assert_eq!(err.expected, None);
        assert!(err.to_string().contains("not permitted from Stale"));
        assert_eq!(a.violations(), 1);
        assert_eq!(a.first_violation(), Some(&err));

        // Wrong successor for an otherwise legal event.
        let err = a
            .record(0, 0, 8, STATE_DIRTY, EVENT_CACHE_FLUSHED, STATE_DIRTY)
            .unwrap_err();
        assert_eq!(err.expected, Some(STATE_VALID));
        assert!(err.to_string().contains("requires successor Valid"));
        assert_eq!(a.violations(), 2);
        // First violation is retained, not overwritten.
        assert_eq!(a.first_violation().unwrap().transition.kernel, 7);
    }

    #[test]
    fn summary_text_lists_active_structures() {
        let mut a = TransitionAuditor::new();
        a.record(2, 0, 0, STATE_NOT_PRESENT, EVENT_LOCAL_READ, STATE_VALID)
            .unwrap();
        let s = a.summary_text();
        assert!(s.contains("1 transitions, 0 violations"));
        assert!(s.contains("structure 2: NP=0 V=1"));
        assert!(!s.contains("structure 0:"), "idle structures are omitted");
    }

    #[test]
    fn log_retention_is_opt_in() {
        let mut a = TransitionAuditor::new();
        a.record(0, 0, 0, STATE_NOT_PRESENT, EVENT_LOCAL_READ, STATE_VALID)
            .unwrap();
        assert!(a.log().is_empty());
        assert_eq!(a.transitions(), 1);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(state_name(STATE_DIRTY), "Dirty");
        assert_eq!(event_name(EVENT_REMOTE_WRITE), "RemoteWrite");
        assert_eq!(state_name(9), "?");
    }
}
