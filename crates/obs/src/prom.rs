//! Prometheus text-format exposition: a writer that emits `# HELP` /
//! `# TYPE` headers exactly once per metric family, and a validating
//! parser for round-trip checks.
//!
//! The text format allows a metric family's `HELP`/`TYPE` lines at most
//! once per exposition, even when the family is rendered with many label
//! sets (one per workload, per worker, per phase, ...). [`PromText`]
//! tracks which families have been announced so repeated renders of the
//! same metric — the campaign writes one histogram per run, the probe one
//! gauge set per protocol — stay valid. [`parse`] is the inverse: it
//! checks well-formedness and the once-per-family header rule, and hands
//! back the samples for report rendering.

use std::fmt::Write as _;

/// An exposition under construction. Append families with [`header`] /
/// [`sample`] (or the [`gauge`]/[`counter`] shorthands), then take the
/// text with [`finish`].
///
/// [`header`]: PromText::header
/// [`sample`]: PromText::sample
/// [`gauge`]: PromText::gauge
/// [`counter`]: PromText::counter
/// [`finish`]: PromText::finish
#[derive(Debug, Clone, Default)]
pub struct PromText {
    out: String,
    seen: Vec<String>,
}

impl PromText {
    /// An empty exposition.
    pub fn new() -> Self {
        PromText::default()
    }

    /// Appends a free-form comment line (`# text`). Comments carry no
    /// samples; use them to delimit sections of the exposition.
    pub fn comment(&mut self, text: &str) {
        let _ = writeln!(self.out, "# {text}");
    }

    /// Announces metric family `fq` (`kind` is `gauge`, `counter` or
    /// `histogram`) — the `# HELP`/`# TYPE` pair is written only the first
    /// time a family is announced, which is what makes rendering one
    /// family under many label sets valid exposition.
    pub fn header(&mut self, fq: &str, kind: &str, help: &str) {
        if self.seen.iter().any(|s| s == fq) {
            return;
        }
        self.seen.push(fq.to_owned());
        let _ = writeln!(self.out, "# HELP {fq} {help}");
        let _ = writeln!(self.out, "# TYPE {fq} {kind}");
    }

    /// Appends one sample line: `fq{labels} value` (braces omitted when
    /// `labels` is empty). `labels` is an already-rendered label set like
    /// `worker="3"`.
    pub fn sample(&mut self, fq: &str, labels: &str, value: impl std::fmt::Display) {
        if labels.is_empty() {
            let _ = writeln!(self.out, "{fq} {value}");
        } else {
            let _ = writeln!(self.out, "{fq}{{{labels}}} {value}");
        }
    }

    /// Header + sample for a gauge in one call.
    pub fn gauge(&mut self, fq: &str, help: &str, labels: &str, value: impl std::fmt::Display) {
        self.header(fq, "gauge", help);
        self.sample(fq, labels, value);
    }

    /// Header + sample for a counter in one call.
    pub fn counter(&mut self, fq: &str, help: &str, labels: &str, value: u64) {
        self.header(fq, "counter", help);
        self.sample(fq, labels, value);
    }

    /// The exposition rendered so far.
    pub fn as_str(&self) -> &str {
        &self.out
    }

    /// Consumes the builder, returning the exposition text.
    pub fn finish(self) -> String {
        self.out
    }
}

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Fully-qualified metric name (including `_bucket`/`_sum` suffixes).
    pub name: String,
    /// The raw label set between the braces (empty when absent).
    pub labels: String,
    /// The sample value.
    pub value: f64,
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Parses and validates a Prometheus text exposition: every sample line
/// must be `name{labels} value` with a well-formed name and a numeric
/// value, and each metric family may carry at most one `# HELP` and one
/// `# TYPE` line (the rule [`PromText`] exists to uphold). Returns the
/// samples in document order.
///
/// # Errors
///
/// Returns a `line N: reason` message for the first violation.
pub fn parse(text: &str) -> Result<Vec<PromSample>, String> {
    let mut samples = Vec::new();
    let mut helps: Vec<String> = Vec::new();
    let mut types: Vec<String> = Vec::new();
    for (ln, raw) in text.lines().enumerate() {
        let n = ln + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            for (kw, seen) in [("HELP", &mut helps), ("TYPE", &mut types)] {
                if let Some(decl) = rest.strip_prefix(kw) {
                    let name = decl.split_whitespace().next().unwrap_or("");
                    if !valid_name(name) {
                        return Err(format!("line {n}: # {kw} with invalid metric name"));
                    }
                    if seen.iter().any(|s| s == name) {
                        return Err(format!(
                            "line {n}: duplicate # {kw} for metric {name} (headers must \
                             appear once per family)"
                        ));
                    }
                    seen.push(name.to_owned());
                }
            }
            continue;
        }
        // `name{labels} value` or `name value`.
        let (name_part, rest) = match line.find('{') {
            Some(open) => {
                let close = line
                    .rfind('}')
                    .ok_or_else(|| format!("line {n}: unclosed label braces"))?;
                if close < open {
                    return Err(format!("line {n}: malformed label braces"));
                }
                samples.push(PromSample {
                    name: line[..open].to_owned(),
                    labels: line[open + 1..close].to_owned(),
                    value: 0.0,
                });
                (&line[..open], &line[close + 1..])
            }
            None => {
                let mut it = line.splitn(2, char::is_whitespace);
                let name = it.next().unwrap_or("");
                samples.push(PromSample {
                    name: name.to_owned(),
                    labels: String::new(),
                    value: 0.0,
                });
                (name, it.next().unwrap_or(""))
            }
        };
        if !valid_name(name_part) {
            return Err(format!("line {n}: invalid metric name {name_part:?}"));
        }
        let value_str = rest.trim();
        let value = match value_str {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            "NaN" => f64::NAN,
            v => v
                .parse::<f64>()
                .map_err(|_| format!("line {n}: non-numeric sample value {v:?}"))?,
        };
        if let Some(last) = samples.last_mut() {
            last.value = value;
        }
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headers_are_emitted_once_per_family() {
        let mut p = PromText::new();
        p.gauge("x_total", "things", "phase=\"a\"", 1);
        p.gauge("x_total", "things", "phase=\"b\"", 2);
        let text = p.finish();
        assert_eq!(text.matches("# HELP x_total").count(), 1);
        assert_eq!(text.matches("# TYPE x_total").count(), 1);
        assert!(text.contains("x_total{phase=\"a\"} 1"));
        assert!(text.contains("x_total{phase=\"b\"} 2"));
    }

    #[test]
    fn unlabelled_samples_omit_braces() {
        let mut p = PromText::new();
        p.counter("n", "count", "", 7);
        assert!(p.as_str().contains("\nn 7\n"));
        assert!(!p.as_str().contains("n{}"));
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let mut p = PromText::new();
        p.comment("a section");
        p.gauge("a", "help a", "k=\"v\"", 1.5);
        p.counter("b_total", "help b", "", 3);
        p.gauge("a", "help a", "k=\"w\"", 2.5);
        let samples = parse(p.as_str()).expect("writer output parses");
        assert_eq!(samples.len(), 3);
        assert_eq!(samples[0].name, "a");
        assert_eq!(samples[0].labels, "k=\"v\"");
        assert!((samples[0].value - 1.5).abs() < 1e-12);
        assert_eq!(samples[1].name, "b_total");
        assert_eq!(samples[1].labels, "");
        assert_eq!(samples[2].labels, "k=\"w\"");
    }

    #[test]
    fn parse_rejects_duplicate_headers() {
        let bad = "# TYPE x gauge\nx 1\n# TYPE x gauge\nx 2\n";
        let err = parse(bad).expect_err("duplicate TYPE is invalid");
        assert!(err.contains("duplicate # TYPE"), "{err}");
        let bad_help = "# HELP x a\n# HELP x b\n";
        assert!(parse(bad_help).is_err());
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse("1bad 3\n").is_err(), "name must not start with digit");
        assert!(parse("x{k=\"v\" 3\n").is_err(), "unclosed braces");
        assert!(parse("x notanumber\n").is_err(), "non-numeric value");
    }

    #[test]
    fn parse_accepts_inf_and_special_values() {
        let samples = parse("x{le=\"+Inf\"} 4\ny +Inf\nz NaN\n").expect("valid");
        assert_eq!(samples[0].labels, "le=\"+Inf\"");
        assert!(samples[1].value.is_infinite());
        assert!(samples[2].value.is_nan());
    }
}
