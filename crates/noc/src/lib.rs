//! Interconnect substrate: the intra-chiplet crossbars and the inter-chiplet
//! links of an MCM-GPU, with flit-level traffic accounting.
//!
//! The paper reports network traffic *in flits*, divided into three
//! categories (Figure 10): L1-to-L2, L2-to-L3, and remote (crossing an
//! inter-chiplet link). This crate provides:
//!
//! * [`traffic`] — the per-category flit counters and message→flit sizing.
//! * [`link`] — the bandwidth-limited inter-chiplet link model used to cost
//!   bulk flush/invalidate operations, plus the global↔local CP crossbar
//!   latencies (65-cycle unicast, 100-cycle broadcast; paper §IV-B).

pub mod link;
pub mod traffic;

pub use link::{CpCrossbar, InterChipletLink, LinkConfig};
pub use traffic::{FlitCounter, TrafficClass, CONTROL_FLITS, DATA_FLITS};
