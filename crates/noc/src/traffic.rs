//! Flit-level traffic accounting, matching Figure 10's categories.
//!
//! Messages are sized in flits of 16 B: a control message (request, ack,
//! invalidate) is one flit; a 64 B cache-line data message is one header
//! flit plus four payload flits.

use std::fmt;
use std::ops::{Add, AddAssign};

/// Flits in a control-only message (request / ack / invalidation).
pub const CONTROL_FLITS: u64 = 1;

/// Flits in a 64 B cache-line data message (header + 4 × 16 B payload).
pub const DATA_FLITS: u64 = 5;

/// Bytes per flit.
pub const FLIT_BYTES: u64 = 16;

/// Traffic category, matching Figure 10's breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    /// Between CU L1 caches and the chiplet's L2 (intra-chiplet crossbar).
    L1ToL2,
    /// Between a chiplet's L2 and its local L3 bank / memory controller.
    L2ToL3,
    /// Crossing an inter-chiplet link (remote L3 banks, remote invalidations,
    /// write-throughs to remote home nodes, directory traffic).
    Remote,
}

impl fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrafficClass::L1ToL2 => f.write_str("L1-L2"),
            TrafficClass::L2ToL3 => f.write_str("L2-L3"),
            TrafficClass::Remote => f.write_str("remote"),
        }
    }
}

/// Per-category flit counters.
///
/// # Example
///
/// ```
/// use chiplet_noc::traffic::{FlitCounter, TrafficClass, DATA_FLITS};
///
/// let mut t = FlitCounter::default();
/// t.record_data(TrafficClass::L2ToL3);      // one 64 B line transfer
/// t.record_control(TrafficClass::Remote);   // one invalidation message
/// assert_eq!(t.get(TrafficClass::L2ToL3), DATA_FLITS);
/// assert_eq!(t.total(), DATA_FLITS + 1);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlitCounter {
    /// L1↔L2 flits.
    pub l1_l2: u64,
    /// L2↔L3 flits.
    pub l2_l3: u64,
    /// Inter-chiplet flits.
    pub remote: u64,
}

impl FlitCounter {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `flits` to one category.
    pub fn record(&mut self, class: TrafficClass, flits: u64) {
        match class {
            TrafficClass::L1ToL2 => self.l1_l2 += flits,
            TrafficClass::L2ToL3 => self.l2_l3 += flits,
            TrafficClass::Remote => self.remote += flits,
        }
    }

    /// Records one control message (1 flit).
    pub fn record_control(&mut self, class: TrafficClass) {
        self.record(class, CONTROL_FLITS);
    }

    /// Records one 64 B data message (5 flits).
    pub fn record_data(&mut self, class: TrafficClass) {
        self.record(class, DATA_FLITS);
    }

    /// Records a full request/response pair: 1 control flit out plus a data
    /// message back.
    pub fn record_read_transaction(&mut self, class: TrafficClass) {
        self.record(class, CONTROL_FLITS + DATA_FLITS);
    }

    /// Records a write transaction: data out plus a 1-flit ack back.
    pub fn record_write_transaction(&mut self, class: TrafficClass) {
        self.record(class, DATA_FLITS + CONTROL_FLITS);
    }

    /// Flits in one category.
    pub fn get(&self, class: TrafficClass) -> u64 {
        match class {
            TrafficClass::L1ToL2 => self.l1_l2,
            TrafficClass::L2ToL3 => self.l2_l3,
            TrafficClass::Remote => self.remote,
        }
    }

    /// Total flits across categories.
    pub fn total(&self) -> u64 {
        self.l1_l2 + self.l2_l3 + self.remote
    }

    /// Bytes moved in one category.
    pub fn bytes(&self, class: TrafficClass) -> u64 {
        self.get(class) * FLIT_BYTES
    }

    /// Bytes that crossed inter-chiplet links.
    pub fn remote_bytes(&self) -> u64 {
        self.remote * FLIT_BYTES
    }

    /// Total bytes across categories.
    pub fn total_bytes(&self) -> u64 {
        self.total() * FLIT_BYTES
    }
}

impl Add for FlitCounter {
    type Output = FlitCounter;

    fn add(self, rhs: FlitCounter) -> FlitCounter {
        FlitCounter {
            l1_l2: self.l1_l2 + rhs.l1_l2,
            l2_l3: self.l2_l3 + rhs.l2_l3,
            remote: self.remote + rhs.remote,
        }
    }
}

impl AddAssign for FlitCounter {
    fn add_assign(&mut self, rhs: FlitCounter) {
        *self = *self + rhs;
    }
}

impl fmt::Display for FlitCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "L1-L2: {} | L2-L3: {} | remote: {}",
            self.l1_l2, self.l2_l3, self.remote
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_per_class() {
        let mut t = FlitCounter::new();
        t.record(TrafficClass::L1ToL2, 3);
        t.record(TrafficClass::L1ToL2, 2);
        t.record(TrafficClass::Remote, 7);
        assert_eq!(t.get(TrafficClass::L1ToL2), 5);
        assert_eq!(t.get(TrafficClass::L2ToL3), 0);
        assert_eq!(t.get(TrafficClass::Remote), 7);
        assert_eq!(t.total(), 12);
    }

    #[test]
    fn transaction_helpers_count_both_directions() {
        let mut t = FlitCounter::new();
        t.record_read_transaction(TrafficClass::L2ToL3);
        assert_eq!(t.l2_l3, CONTROL_FLITS + DATA_FLITS);
        t.record_write_transaction(TrafficClass::Remote);
        assert_eq!(t.remote, DATA_FLITS + CONTROL_FLITS);
    }

    #[test]
    fn add_combines_counters() {
        let mut a = FlitCounter::new();
        a.record(TrafficClass::L1ToL2, 1);
        let mut b = FlitCounter::new();
        b.record(TrafficClass::Remote, 2);
        let c = a + b;
        assert_eq!(c.l1_l2, 1);
        assert_eq!(c.remote, 2);
        let mut d = FlitCounter::new();
        d += c;
        assert_eq!(d.total(), 3);
    }

    #[test]
    fn byte_accounting_scales_flits() {
        let mut t = FlitCounter::new();
        t.record(TrafficClass::Remote, 3);
        t.record(TrafficClass::L1ToL2, 2);
        assert_eq!(t.remote_bytes(), 3 * FLIT_BYTES);
        assert_eq!(t.bytes(TrafficClass::L1ToL2), 2 * FLIT_BYTES);
        assert_eq!(t.total_bytes(), 5 * FLIT_BYTES);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", FlitCounter::new()).is_empty());
        assert_eq!(format!("{}", TrafficClass::Remote), "remote");
    }
}
