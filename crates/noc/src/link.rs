//! Inter-chiplet link and CP crossbar models.
//!
//! Table I: inter-chiplet interconnect bandwidth is 768 GB/s at a 1801 MHz
//! GPU clock — about 426 B/cycle aggregate. Bulk flush operations (implicit
//! releases) are bandwidth-limited: flushing a mostly-dirty 8 MiB L2 takes
//! tens of thousands of cycles, which is exactly the overhead CPElide
//! elides. The global↔local CP crossbar has 65-cycle unicast and 100-cycle
//! broadcast latency (paper §IV-B).

use chiplet_mem::addr::ChipletId;

/// Static link parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// Aggregate inter-chiplet bandwidth in bytes per GPU cycle.
    pub bytes_per_cycle: f64,
    /// One-way latency of a single hop across the link, in cycles.
    pub hop_latency: u64,
}

impl LinkConfig {
    /// Derives bytes/cycle from a bandwidth in GB/s and a clock in MHz.
    ///
    /// ```
    /// use chiplet_noc::link::LinkConfig;
    /// let c = LinkConfig::from_bandwidth(768.0, 1801.0, 121);
    /// assert!((c.bytes_per_cycle - 426.4).abs() < 0.1);
    /// ```
    pub fn from_bandwidth(gb_per_s: f64, clock_mhz: f64, hop_latency: u64) -> Self {
        LinkConfig {
            bytes_per_cycle: gb_per_s * 1e9 / (clock_mhz * 1e6),
            hop_latency,
        }
    }
}

impl Default for LinkConfig {
    /// Table I defaults: 768 GB/s at 1801 MHz; the remote-vs-local L2
    /// latency difference (390 − 269 = 121 cycles) is the hop latency.
    fn default() -> Self {
        LinkConfig::from_bandwidth(768.0, 1801.0, 121)
    }
}

/// Bandwidth-limited inter-chiplet link: computes the cycles consumed by
/// bulk transfers such as implicit-release dirty-data writebacks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterChipletLink {
    config: LinkConfig,
}

impl InterChipletLink {
    /// Creates a link with the given parameters.
    pub fn new(config: LinkConfig) -> Self {
        InterChipletLink { config }
    }

    /// The link's parameters.
    pub fn config(&self) -> LinkConfig {
        self.config
    }

    /// Cycles to move `bytes` across the link, bandwidth-limited, plus one
    /// hop latency. Zero-byte transfers cost nothing.
    pub fn transfer_cycles(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        (bytes as f64 / self.config.bytes_per_cycle).ceil() as u64 + self.config.hop_latency
    }

    /// Cycles to write back `lines` dirty 64 B cache lines (a bulk flush).
    pub fn flush_cycles(&self, lines: u64) -> u64 {
        self.transfer_cycles(lines * chiplet_mem::LINE_BYTES)
    }
}

impl Default for InterChipletLink {
    fn default() -> Self {
        InterChipletLink::new(LinkConfig::default())
    }
}

/// Accumulated link occupancy over a run: how many bytes crossed the
/// inter-chiplet link and for how many cycles it was busy, so the
/// simulator can derive utilisation (busy ÷ elapsed) and stamp NoC busy
/// windows into the timeline trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkUtilization {
    bytes: u64,
    busy_cycles: u64,
    transfers: u64,
}

impl LinkUtilization {
    /// An empty accumulator.
    pub fn new() -> Self {
        LinkUtilization::default()
    }

    /// Records one bulk transfer occupying the link for `cycles`.
    pub fn record(&mut self, bytes: u64, cycles: u64) {
        if bytes == 0 && cycles == 0 {
            return;
        }
        self.bytes += bytes;
        self.busy_cycles += cycles;
        self.transfers += 1;
    }

    /// Total bytes moved.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Cycles the link spent busy.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Number of transfers recorded.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Fraction of `elapsed_cycles` the link was busy, clamped to `[0, 1]`
    /// (serialized bulk transfers cannot exceed full occupancy). Zero when
    /// nothing has elapsed.
    pub fn utilization(&self, elapsed_cycles: u64) -> f64 {
        if elapsed_cycles == 0 {
            return 0.0;
        }
        (self.busy_cycles as f64 / elapsed_cycles as f64).min(1.0)
    }
}

/// The crossbar connecting the global CP to the per-chiplet local CPs
/// (Figure 7). Latencies from paper §IV-B: 65-cycle unicast, 100-cycle
/// broadcast. The global CP counts acknowledgements before sending the
/// "launch enable" message, so a synchronization round costs a round trip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpCrossbar {
    unicast_latency: u64,
    broadcast_latency: u64,
    messages_sent: u64,
}

impl CpCrossbar {
    /// Creates a crossbar with the paper's latencies.
    pub fn new() -> Self {
        CpCrossbar {
            unicast_latency: 65,
            broadcast_latency: 100,
            messages_sent: 0,
        }
    }

    /// Creates a crossbar with custom latencies (for sensitivity studies).
    pub fn with_latencies(unicast: u64, broadcast: u64) -> Self {
        CpCrossbar {
            unicast_latency: unicast,
            broadcast_latency: broadcast,
            messages_sent: 0,
        }
    }

    /// One-way latency for a message to `count` local CPs: unicast if one,
    /// broadcast otherwise. Records the messages.
    pub fn send(&mut self, count: usize) -> u64 {
        if count == 0 {
            return 0;
        }
        self.messages_sent += count as u64;
        if count == 1 {
            self.unicast_latency
        } else {
            self.broadcast_latency
        }
    }

    /// Latency of a full synchronization round: a request to `count` local
    /// CPs, their acks back, and the final launch-enable broadcast —
    /// the ack-counted protocol of paper §III-C.
    pub fn sync_round(&mut self, count: usize) -> u64 {
        if count == 0 {
            return 0;
        }
        let request = self.send(count);
        // Each local CP acks with a unicast; they travel in parallel.
        self.messages_sent += count as u64;
        let acks = self.unicast_latency;
        let enable = self.send(count);
        request + acks + enable
    }

    /// Latency of a launch-enable message to chiplets hosting a kernel.
    pub fn launch_enable(&mut self, chiplets: &[ChipletId]) -> u64 {
        self.send(chiplets.len())
    }

    /// Total messages sent so far.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }
}

impl Default for CpCrossbar {
    fn default() -> Self {
        CpCrossbar::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_link_matches_table1() {
        let l = InterChipletLink::default();
        assert!((l.config().bytes_per_cycle - 426.43).abs() < 0.05);
        assert_eq!(l.config().hop_latency, 121);
    }

    #[test]
    fn transfer_is_bandwidth_limited() {
        let l = InterChipletLink::new(LinkConfig {
            bytes_per_cycle: 64.0,
            hop_latency: 10,
        });
        assert_eq!(l.transfer_cycles(0), 0);
        assert_eq!(l.transfer_cycles(64), 11);
        assert_eq!(l.transfer_cycles(640), 20);
    }

    #[test]
    fn flush_scales_with_dirty_lines() {
        let l = InterChipletLink::new(LinkConfig {
            bytes_per_cycle: 64.0,
            hop_latency: 0,
        });
        assert_eq!(l.flush_cycles(100), 100);
        assert!(l.flush_cycles(1000) > l.flush_cycles(10));
    }

    #[test]
    fn utilization_accumulates_and_clamps() {
        let mut u = LinkUtilization::new();
        assert_eq!(u.utilization(1000), 0.0);
        u.record(64 * 100, 150);
        u.record(64 * 50, 50);
        u.record(0, 0); // no-op
        assert_eq!(u.bytes(), 64 * 150);
        assert_eq!(u.busy_cycles(), 200);
        assert_eq!(u.transfers(), 2);
        assert!((u.utilization(400) - 0.5).abs() < 1e-12);
        assert_eq!(u.utilization(0), 0.0);
        assert_eq!(u.utilization(100), 1.0, "clamped at full occupancy");
    }

    #[test]
    fn crossbar_unicast_vs_broadcast() {
        let mut x = CpCrossbar::new();
        assert_eq!(x.send(1), 65);
        assert_eq!(x.send(4), 100);
        assert_eq!(x.send(0), 0);
        assert_eq!(x.messages_sent(), 5);
    }

    #[test]
    fn sync_round_is_request_ack_enable() {
        let mut x = CpCrossbar::new();
        // Unicast request + unicast ack + unicast enable.
        assert_eq!(x.sync_round(1), 65 + 65 + 65);
        // Broadcast request + ack + broadcast enable.
        assert_eq!(x.sync_round(3), 100 + 65 + 100);
        assert_eq!(x.sync_round(0), 0);
    }

    #[test]
    fn launch_enable_counts_targets() {
        let mut x = CpCrossbar::new();
        let lat = x.launch_enable(&[ChipletId::new(0), ChipletId::new(1)]);
        assert_eq!(lat, 100);
        assert_eq!(x.messages_sent(), 2);
    }
}
