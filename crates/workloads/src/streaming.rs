//! Streaming / bandwidth benchmarks: BabelStream, Square, Pathfinder.

use crate::{single_stream, ReuseClass, Workload};
use chiplet_gpu::kernel::{AccessPattern, KernelSpec, TouchKind};
use chiplet_gpu::table::ArrayTable;
use std::sync::Arc;

/// BabelStream (input 524288): the classic copy/mul/add/triad/dot sweep.
/// Iterative, uniformly partitioned, memory-bound streaming kernels whose
/// 12 MiB working set fits the aggregate L2 — the poster child for
/// CPElide's inter-kernel reuse (paper §V-A: +31 % with Square).
pub fn babelstream() -> Workload {
    const N: u64 = 524_288;
    const ELEM: u64 = 8; // doubles
    let mut t = ArrayTable::new();
    let a = t.alloc("a", N * ELEM);
    let b = t.alloc("b", N * ELEM);
    let c = t.alloc("c", N * ELEM);

    let mk = |name: &str,
              build: &dyn Fn(
        chiplet_gpu::kernel::KernelBuilder,
    ) -> chiplet_gpu::kernel::KernelBuilder| {
        Arc::new(
            build(
                KernelSpec::builder(name)
                    .wg_count(2048)
                    .compute_per_line(5.8)
                    .l1_hit_rate(0.25)
                    .mlp(48.0),
            )
            .build(),
        )
    };

    let copy = mk("copy", &|k| {
        k.array(a, TouchKind::Load, AccessPattern::Partitioned)
            .array(c, TouchKind::Store, AccessPattern::Partitioned)
    });
    let mul = mk("mul", &|k| {
        k.array(c, TouchKind::Load, AccessPattern::Partitioned)
            .array(b, TouchKind::Store, AccessPattern::Partitioned)
    });
    let add = mk("add", &|k| {
        k.array(a, TouchKind::Load, AccessPattern::Partitioned)
            .array(b, TouchKind::Load, AccessPattern::Partitioned)
            .array(c, TouchKind::Store, AccessPattern::Partitioned)
    });
    let triad = mk("triad", &|k| {
        k.array(b, TouchKind::Load, AccessPattern::Partitioned)
            .array(c, TouchKind::Load, AccessPattern::Partitioned)
            .array(a, TouchKind::Store, AccessPattern::Partitioned)
    });
    let dot = mk("dot", &|k| {
        k.array(a, TouchKind::Load, AccessPattern::Partitioned)
            .array(b, TouchKind::Load, AccessPattern::Partitioned)
    });

    let mut kernels = Vec::new();
    for _ in 0..8 {
        kernels.extend([
            copy.clone(),
            mul.clone(),
            add.clone(),
            triad.clone(),
            dot.clone(),
        ]);
    }
    Workload::new(
        "babelstream",
        "524288",
        ReuseClass::ModerateHigh,
        t,
        single_stream(kernels),
    )
}

/// Square (HIP-Examples; input 524288 1 2 2048 256): `C[i] = A[i]²`
/// repeated — iterative, uniform, trivially partitionable (paper §V-A).
pub fn square() -> Workload {
    const N: u64 = 524_288;
    const ELEM: u64 = 4;
    let mut t = ArrayTable::new();
    let a = t.alloc("A_d", N * ELEM);
    let c = t.alloc("C_d", N * ELEM);

    let square = Arc::new(
        KernelSpec::builder("square")
            .wg_count(2048)
            .array(a, TouchKind::Load, AccessPattern::Partitioned)
            .array(c, TouchKind::Store, AccessPattern::Partitioned)
            .compute_per_line(4.5)
            .l1_hit_rate(0.25)
            .mlp(48.0)
            .build(),
    );
    let kernels = vec![square; 20];
    Workload::new(
        "square",
        "524288 1 2 2048 256",
        ReuseClass::ModerateHigh,
        t,
        single_stream(kernels),
    )
}

/// Pathfinder (Rodinia; input 200000 100 20): dynamic-programming grid
/// traversal — each step consumes a fresh strip of the 80 MB grid, so there
/// is essentially no inter-kernel reuse (paper groups it as low-reuse).
pub fn pathfinder() -> Workload {
    const COLS: u64 = 200_000;
    const ROWS: u64 = 100;
    const ELEM: u64 = 4;
    const STEPS: u64 = 20;
    let mut t = ArrayTable::new();
    let wall = t.alloc("wall", COLS * ROWS * ELEM);
    let result = t.alloc("result", COLS * ELEM);

    let rows_per_step = ROWS / STEPS;
    let kernels: Vec<Arc<KernelSpec>> = (0..STEPS)
        .map(|s| {
            let start = (s * rows_per_step) as f64 / ROWS as f64;
            let end = ((s + 1) * rows_per_step) as f64 / ROWS as f64;
            Arc::new(
                KernelSpec::builder(format!("dynproc_step{s}"))
                    .wg_count(1024)
                    .array(wall, TouchKind::Load, AccessPattern::Slice { start, end })
                    .array(result, TouchKind::LoadStore, AccessPattern::Partitioned)
                    .compute_per_line(4.5)
                    .l1_hit_rate(0.4)
                    .mlp(48.0)
                    .build(),
            )
        })
        .collect();
    Workload::new(
        "pathfinder",
        "200000 100 20",
        ReuseClass::Low,
        t,
        single_stream(kernels),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn babelstream_shape() {
        let w = babelstream();
        assert_eq!(w.kernel_count(), 40);
        assert_eq!(w.footprint_bytes(), 3 * 524_288 * 8);
        assert_eq!(w.class(), ReuseClass::ModerateHigh);
    }

    #[test]
    fn square_reads_a_writes_c() {
        let w = square();
        let k = &w.launches()[0].spec;
        assert_eq!(k.arrays().len(), 2);
        assert_eq!(k.arrays()[0].touch, TouchKind::Load);
        assert_eq!(k.arrays()[1].touch, TouchKind::Store);
    }

    #[test]
    fn pathfinder_steps_cover_distinct_strips() {
        let w = pathfinder();
        assert_eq!(w.kernel_count(), 20);
        let k0 = &w.launches()[0].spec;
        let k1 = &w.launches()[1].spec;
        assert_ne!(k0.arrays()[0].pattern, k1.arrays()[0].pattern);
    }
}
