//! Machine-learning application models: DeepBench RNNs (GRU and LSTM, two
//! configurations each) and a DNNMark-style CNN.

use crate::{single_stream, ReuseClass, Workload};
use chiplet_gpu::kernel::{AccessPattern, KernelSpec, TouchKind};
use chiplet_gpu::table::ArrayTable;
use std::sync::Arc;

/// Builds one RNN workload: `gates` gate matrices of `hidden²` weights,
/// `timesteps` steps, batch-scaled activations.
///
/// The weights are read-only and *shared* by every chiplet (broadcast
/// matmul panels); activations flow producer-consumer between per-timestep
/// kernels. CPElide preserves both across kernels; HMG additionally caches
/// the remote weight reads, which is why it edges out CPElide by a few
/// percent on the RNNs (paper §V-B).
fn rnn(
    name: &str,
    input: &str,
    gates: u64,
    hidden: u64,
    timesteps: u64,
    batch: u64,
    act_seq: u64,
) -> Workload {
    const ELEM: u64 = 4;
    let mut t = ArrayTable::new();
    // Input-to-hidden and hidden-to-hidden weights, one panel per gate;
    // each gate's matmul kernel broadcast-reads only its own panel.
    let gate_weights: Vec<_> = (0..gates)
        .map(|g| t.alloc(format!("gate{g}_weights"), 2 * hidden * hidden * ELEM))
        .collect();
    let state = t.alloc("hidden_state", batch * hidden * act_seq * ELEM);
    let gates_buf = t.alloc("gate_outputs", gates * batch * hidden * act_seq * ELEM);
    let output = t.alloc("outputs", batch * hidden * act_seq * ELEM);

    // Weight initialization (the UVM host transfer / init kernel): touches
    // each panel partitioned, distributing weight pages across chiplets
    // under first-touch placement — as the paper's UVM-converted workloads
    // do when copying weights in.
    let mut init = KernelSpec::builder(format!("{name}_init_weights"))
        .wg_count(2048)
        .compute_per_line(0.5)
        .l1_hit_rate(0.1)
        .mlp(64.0);
    for &w in &gate_weights {
        init = init.array(w, TouchKind::Store, AccessPattern::Partitioned);
    }
    let init = Arc::new(
        init.array(state, TouchKind::Store, AccessPattern::Partitioned)
            .build(),
    );

    let matmuls: Vec<Arc<KernelSpec>> = gate_weights
        .iter()
        .enumerate()
        .map(|(g, &w)| {
            Arc::new(
                KernelSpec::builder(format!("{name}_gate{g}_matmul"))
                    .wg_count(2048)
                    .array(w, TouchKind::Load, AccessPattern::Shared)
                    .array(state, TouchKind::Load, AccessPattern::Partitioned)
                    .array(gates_buf, TouchKind::Store, AccessPattern::Partitioned)
                    .compute_per_line(3.0)
                    .lds_per_line(2.0)
                    .l1_hit_rate(0.5)
                    .mlp(32.0)
                    .build(),
            )
        })
        .collect();
    let pointwise = Arc::new(
        KernelSpec::builder(format!("{name}_pointwise"))
            .wg_count(2048)
            .array(gates_buf, TouchKind::Load, AccessPattern::Partitioned)
            .array(state, TouchKind::LoadStore, AccessPattern::Partitioned)
            .array(output, TouchKind::Store, AccessPattern::Partitioned)
            .compute_per_line(1.5)
            .l1_hit_rate(0.5)
            .mlp(32.0)
            .build(),
    );
    let mut kernels = vec![init];
    for _ in 0..timesteps {
        kernels.extend(matmuls.iter().cloned());
        kernels.push(pointwise.clone());
    }
    Workload::new(
        name,
        input,
        ReuseClass::ModerateHigh,
        t,
        single_stream(kernels),
    )
}

/// RNN-GRU, small config (DeepBench; BS:4, TS:2, hidden 256).
pub fn rnn_gru_small() -> Workload {
    rnn(
        "rnn-gru-small",
        "BS:4, TS:2, Hidden Layers: 256",
        3,
        256,
        2,
        4,
        56,
    )
}

/// RNN-GRU, large config (DeepBench; BS:16, TS:4, hidden 512).
pub fn rnn_gru_large() -> Workload {
    rnn(
        "rnn-gru-large",
        "BS:16, TS:4, Hidden Layers: 512",
        3,
        512,
        4,
        16,
        24,
    )
}

/// RNN-LSTM, small config (DeepBench; BS:4, TS:2, hidden 256).
pub fn rnn_lstm_small() -> Workload {
    rnn(
        "rnn-lstm-small",
        "BS:4, TS:2, Hidden Layers: 256",
        4,
        256,
        2,
        4,
        56,
    )
}

/// RNN-LSTM, large config (DeepBench; BS:16, TS:4, hidden 512).
pub fn rnn_lstm_large() -> Workload {
    rnn(
        "rnn-lstm-large",
        "BS:16, TS:4, Hidden Layers: 512",
        4,
        512,
        4,
        16,
        24,
    )
}

/// CNN (DNNMark-style Conv+Pool+FC; input 128x128x3, BS:4): compute-bound
/// layers — CPElide and HMG perform like the Baseline (paper §V-B).
pub fn cnn() -> Workload {
    const ELEM: u64 = 4;
    let mut t = ArrayTable::new();
    let image = t.alloc("images", 128 * 128 * 3 * 4 * ELEM); // BS 4
    let filters = t.alloc("conv_filters", 64 * 3 * 3 * 3 * 64 * ELEM);
    let fmap1 = t.alloc("fmap_conv", 128 * 128 * 64 * 4 * ELEM / 4);
    let fmap2 = t.alloc("fmap_pool", 64 * 64 * 64 * 4 * ELEM / 4);
    let fc_w = t.alloc("fc_weights", 4_194_304 * ELEM);
    let logits = t.alloc("logits", 4096 * ELEM);

    let conv = Arc::new(
        KernelSpec::builder("conv2d")
            .wg_count(4096)
            .array(image, TouchKind::Load, AccessPattern::Partitioned)
            .array(filters, TouchKind::Load, AccessPattern::Shared)
            .array(fmap1, TouchKind::Store, AccessPattern::Partitioned)
            .compute_per_line(24.0)
            .lds_per_line(4.0)
            .l1_hit_rate(0.6)
            .mlp(64.0)
            .build(),
    );
    let pool = Arc::new(
        KernelSpec::builder("maxpool")
            .wg_count(2048)
            .array(fmap1, TouchKind::Load, AccessPattern::Partitioned)
            .array(fmap2, TouchKind::Store, AccessPattern::Partitioned)
            .compute_per_line(4.0)
            .l1_hit_rate(0.6)
            .mlp(64.0)
            .build(),
    );
    let fc = Arc::new(
        KernelSpec::builder("fully_connected")
            .wg_count(2048)
            .array(fmap2, TouchKind::Load, AccessPattern::Partitioned)
            .array(fc_w, TouchKind::Load, AccessPattern::Partitioned)
            .array(logits, TouchKind::Store, AccessPattern::Shared)
            .compute_per_line(18.0)
            .lds_per_line(2.0)
            .l1_hit_rate(0.6)
            .mlp(64.0)
            .build(),
    );
    Workload::new(
        "cnn",
        "128x128x3, BS:4",
        ReuseClass::Low,
        t,
        single_stream(vec![conv, pool, fc]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rnns_share_weights() {
        for w in [rnn_gru_small(), rnn_lstm_large()] {
            // launches()[0] is the weight-init kernel; the matmuls follow.
            let k = &w.launches()[1].spec;
            assert_eq!(k.arrays()[0].pattern, AccessPattern::Shared);
            assert_eq!(k.arrays()[0].touch, TouchKind::Load);
        }
    }

    #[test]
    fn lstm_has_more_gates_than_gru() {
        // 4 gates vs 3: more matmul kernels per timestep.
        assert!(rnn_lstm_small().kernel_count() > rnn_gru_small().kernel_count());
    }

    #[test]
    fn large_configs_have_bigger_weights() {
        assert!(rnn_gru_large().footprint_bytes() > rnn_gru_small().footprint_bytes());
    }

    #[test]
    fn cnn_is_compute_bound() {
        let w = cnn();
        assert!(w.launches()[0].spec.compute_per_line() >= 20.0);
        assert_eq!(w.kernel_count(), 3);
    }
}
