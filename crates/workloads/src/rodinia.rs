//! Rodinia-suite application models: Backprop, Gaussian, Hotspot, Hotspot3D,
//! LUD, NW, DWT2D, SRAD_v2, BTree.

use crate::{single_stream, ReuseClass, Workload};
use chiplet_gpu::kernel::{AccessPattern, KernelSpec, TouchKind};
use chiplet_gpu::table::ArrayTable;
use std::sync::Arc;

/// Backprop (input 65536): two-kernel epochs over a fully connected layer.
/// The ~25 MB weight matrices exceed a 2-chiplet aggregate L2 but fit a
/// 4-chiplet one, reproducing the paper's capacity-sensitivity (§V-C), and
/// the LDS-phase structure caps the benefit around 10 % (§V-A).
pub fn backprop() -> Workload {
    const IN: u64 = 65_536;
    const HID: u64 = 48;
    const ELEM: u64 = 4;
    let mut t = ArrayTable::new();
    let input_units = t.alloc("input_units", IN * ELEM);
    let weights = t.alloc("input_weights", IN * HID * ELEM); // 12 MiB
    let deltas = t.alloc("weight_deltas", IN * HID * ELEM); // 12 MiB
    let hidden = t.alloc("hidden_units", HID * 64 * ELEM);

    let forward = Arc::new(
        KernelSpec::builder("layerforward")
            .wg_count(4096)
            .array(input_units, TouchKind::Load, AccessPattern::Partitioned)
            .array(weights, TouchKind::Load, AccessPattern::Partitioned)
            .array(hidden, TouchKind::Store, AccessPattern::Partitioned)
            .compute_per_line(10.0)
            .lds_per_line(2.0)
            .l1_hit_rate(0.4)
            .mlp(40.0)
            .build(),
    );
    let adjust = Arc::new(
        KernelSpec::builder("adjust_weights")
            .wg_count(4096)
            .array(deltas, TouchKind::LoadStore, AccessPattern::Partitioned)
            .array(weights, TouchKind::LoadStore, AccessPattern::Partitioned)
            .array(input_units, TouchKind::Load, AccessPattern::Partitioned)
            .compute_per_line(10.0)
            .lds_per_line(1.0)
            .l1_hit_rate(0.4)
            .mlp(40.0)
            .build(),
    );
    let mut kernels = Vec::new();
    for _ in 0..6 {
        kernels.push(forward.clone());
        kernels.push(adjust.clone());
    }
    Workload::new(
        "backprop",
        "65536",
        ReuseClass::ModerateHigh,
        t,
        single_stream(kernels),
    )
}

/// Gaussian elimination (input 256x256): 510 tiny dynamic kernels over a
/// shrinking trailing submatrix. Ample memory-level parallelism hides the
/// L2 misses, so CPElide gains little despite the reuse (paper §V-A).
pub fn gaussian() -> Workload {
    const N: u64 = 256;
    const ELEM: u64 = 4;
    let mut t = ArrayTable::new();
    let m = t.alloc("m", N * N * ELEM);
    let a = t.alloc("a", N * N * ELEM);
    let b = t.alloc("b", N * ELEM);

    let mut kernels = Vec::new();
    for step in 0..(N - 1) {
        let start = step as f64 / N as f64;
        // Fan1: computes multipliers for column `step`.
        kernels.push(Arc::new(
            KernelSpec::builder(format!("fan1_{step}"))
                .wg_count(256)
                .array(
                    m,
                    TouchKind::Store,
                    AccessPattern::Slice { start, end: 1.0 },
                )
                .array(a, TouchKind::Load, AccessPattern::Slice { start, end: 1.0 })
                .compute_per_line(3.0)
                .l1_hit_rate(0.5)
                .mlp(192.0)
                .build(),
        ));
        // Fan2: updates the trailing submatrix.
        kernels.push(Arc::new(
            KernelSpec::builder(format!("fan2_{step}"))
                .wg_count(1024)
                .array(m, TouchKind::Load, AccessPattern::Slice { start, end: 1.0 })
                .array(
                    a,
                    TouchKind::LoadStore,
                    AccessPattern::Slice { start, end: 1.0 },
                )
                .array(b, TouchKind::LoadStore, AccessPattern::Partitioned)
                .compute_per_line(3.0)
                .l1_hit_rate(0.5)
                .mlp(192.0)
                .build(),
        ));
    }
    Workload::new(
        "gaussian",
        "256x256",
        ReuseClass::ModerateHigh,
        t,
        single_stream(kernels),
    )
}

/// Hotspot (input 512 2 20 ...): 2-D thermal stencil, compute-bound — extra
/// L2 hits cannot relieve its compute stalls (paper §V-A).
pub fn hotspot() -> Workload {
    const N: u64 = 512;
    const ELEM: u64 = 4;
    let mut t = ArrayTable::new();
    let temp = t.alloc("temp", N * N * ELEM);
    let power = t.alloc("power", N * N * ELEM);
    let dst = t.alloc("temp_dst", N * N * ELEM);

    let halo = AccessPattern::PartitionedHalo { halo_lines: 32 };
    let fwd = Arc::new(
        KernelSpec::builder("hotspot_step_fwd")
            .wg_count(1024)
            .array(temp, TouchKind::Load, halo.clone())
            .array(power, TouchKind::Load, AccessPattern::Partitioned)
            .array(dst, TouchKind::Store, AccessPattern::Partitioned)
            .compute_per_line(14.0)
            .lds_per_line(3.0)
            .l1_hit_rate(0.6)
            .mlp(64.0)
            .build(),
    );
    let bwd = Arc::new(
        KernelSpec::builder("hotspot_step_bwd")
            .wg_count(1024)
            .array(dst, TouchKind::Load, halo)
            .array(power, TouchKind::Load, AccessPattern::Partitioned)
            .array(temp, TouchKind::Store, AccessPattern::Partitioned)
            .compute_per_line(14.0)
            .lds_per_line(3.0)
            .l1_hit_rate(0.6)
            .mlp(64.0)
            .build(),
    );
    let mut kernels = Vec::new();
    for _ in 0..10 {
        kernels.push(fwd.clone());
        kernels.push(bwd.clone());
    }
    Workload::new(
        "hotspot",
        "512 2 20 temp_512 power_512",
        ReuseClass::ModerateHigh,
        t,
        single_stream(kernels),
    )
}

/// Hotspot3D (input 512 8 20 ...): memory-bound 3-D stencil over ~24 MB of
/// grids. Inter-kernel reuse of the read-only power array and the ping-pong
/// temperature grids drives CPElide's 37 % gain at 4 chiplets, while the
/// footprint exceeding 16 MB removes the 2-chiplet benefit (paper §V-A/C).
pub fn hotspot3d() -> Workload {
    const NX: u64 = 512;
    const NY: u64 = 512;
    const NZ: u64 = 8;
    const ELEM: u64 = 4;
    let mut t = ArrayTable::new();
    let t_in = t.alloc("temp_in", NX * NY * NZ * ELEM); // 8 MiB
    let t_out = t.alloc("temp_out", NX * NY * NZ * ELEM); // 8 MiB
    let power = t.alloc("power", NX * NY * NZ * ELEM); // 8 MiB

    // Slab partitioning aligns each chiplet's z-slab with its WGs; the
    // one-plane halo is staged through the LDS, so the global-memory
    // access ranges are cleanly partitioned (what makes the paper's 37 %
    // inter-kernel reuse recoverable).
    let fwd = Arc::new(
        KernelSpec::builder("hotspot3d_fwd")
            .wg_count(4096)
            .array(t_in, TouchKind::Load, AccessPattern::Partitioned)
            .array(power, TouchKind::Load, AccessPattern::Partitioned)
            .array(t_out, TouchKind::Store, AccessPattern::Partitioned)
            .compute_per_line(6.0)
            .l1_hit_rate(0.45)
            .mlp(40.0)
            .build(),
    );
    let bwd = Arc::new(
        KernelSpec::builder("hotspot3d_bwd")
            .wg_count(4096)
            .array(t_out, TouchKind::Load, AccessPattern::Partitioned)
            .array(power, TouchKind::Load, AccessPattern::Partitioned)
            .array(t_in, TouchKind::Store, AccessPattern::Partitioned)
            .compute_per_line(6.0)
            .l1_hit_rate(0.45)
            .mlp(40.0)
            .build(),
    );
    let mut kernels = Vec::new();
    for _ in 0..10 {
        kernels.push(fwd.clone());
        kernels.push(bwd.clone());
    }
    Workload::new(
        "hotspot3d",
        "512 8 20 power_512x8 temp_512x8",
        ReuseClass::ModerateHigh,
        t,
        single_stream(kernels),
    )
}

/// LUD (input 512.dat): blocked LU decomposition — many small,
/// latency-sensitive kernels re-reading the trailing submatrix with heavy
/// LDS staging; the working set fits the LLC and partitions perfectly
/// (≈0 % remote traffic). CPElide's biggest win (48 %, paper §V-A/B).
pub fn lud() -> Workload {
    const N: u64 = 2048;
    const ELEM: u64 = 4;
    const STEPS: u64 = 12;
    let mut t = ArrayTable::new();
    let m = t.alloc("m", N * N * ELEM); // 16 MiB: fits the shared LLC
                                        // The factored diagonal/perimeter band each step is staged into a small
                                        // workspace (Rodinia's LUD stages it through the LDS), so the band
                                        // updates are owner-partitioned rather than scattered over `m`.
    let band = t.alloc("band_workspace", N * N * ELEM / STEPS);

    let mut kernels = Vec::new();
    for step in 0..STEPS {
        let start = step as f64 / STEPS as f64;
        let band_end = (step + 1) as f64 / STEPS as f64;
        kernels.push(Arc::new(
            KernelSpec::builder(format!("lud_diagonal_{step}"))
                .wg_count(64)
                .array(
                    m,
                    TouchKind::Load,
                    AccessPattern::Slice {
                        start,
                        end: band_end,
                    },
                )
                .array(band, TouchKind::LoadStore, AccessPattern::Partitioned)
                .compute_per_line(1.0)
                .lds_per_line(4.0)
                .l1_hit_rate(0.35)
                .mlp(8.0)
                .build(),
        ));
        // Internal blocks: the trailing submatrix is re-read every step
        // with a *fixed* row partitioning across chiplets, so the 4
        // chiplets "perfectly partition the work" (~0 % remote).
        kernels.push(Arc::new(
            KernelSpec::builder(format!("lud_internal_{step}"))
                .wg_count(1024)
                .array(band, TouchKind::Load, AccessPattern::Partitioned)
                .array(m, TouchKind::LoadStore, AccessPattern::Partitioned)
                .compute_per_line(1.0)
                .lds_per_line(4.0)
                .l1_hit_rate(0.35)
                .mlp(8.0)
                .build(),
        ));
    }
    Workload::new(
        "lud",
        "512.dat",
        ReuseClass::ModerateHigh,
        t,
        single_stream(kernels),
    )
}

/// Needleman-Wunsch (input 8192 10): anti-diagonal wavefront over a 256 MB
/// score matrix — each kernel visits fresh cells, so inter-kernel reuse is
/// minimal (low-reuse group).
pub fn nw() -> Workload {
    const N: u64 = 8192;
    const ELEM: u64 = 4;
    const DIAGS: u64 = 64; // kernel batches over anti-diagonals
    let mut t = ArrayTable::new();
    let score = t.alloc("score", N * N * ELEM); // 256 MiB
    let reference = t.alloc("reference", N * N * ELEM); // 256 MiB

    let kernels: Vec<Arc<KernelSpec>> = (0..DIAGS)
        .map(|d| {
            let start = d as f64 / DIAGS as f64;
            let end = (d + 1) as f64 / DIAGS as f64;
            Arc::new(
                KernelSpec::builder(format!("nw_diag_{d}"))
                    .wg_count(512)
                    .array(
                        score,
                        TouchKind::LoadStore,
                        AccessPattern::Slice { start, end },
                    )
                    .array(
                        reference,
                        TouchKind::Load,
                        AccessPattern::Slice { start, end },
                    )
                    .compute_per_line(3.0)
                    .lds_per_line(2.0)
                    .l1_hit_rate(0.5)
                    .mlp(48.0)
                    .build(),
            )
        })
        .collect();
    Workload::new("nw", "8192 10", ReuseClass::Low, t, single_stream(kernels))
}

/// DWT2D (input rgb.bmp 4096x4096): wavelet transform levels, each pass
/// halving the active region — single-pass streaming, low reuse.
pub fn dwt2d() -> Workload {
    const N: u64 = 4096;
    const ELEM: u64 = 4;
    let mut t = ArrayTable::new();
    let src = t.alloc("src", N * N * ELEM); // 64 MiB
    let dst = t.alloc("dst", N * N * ELEM); // 64 MiB

    let mut kernels = Vec::new();
    let mut frac = 1.0f64;
    for level in 0..6 {
        kernels.push(Arc::new(
            KernelSpec::builder(format!("fdwt_level{level}"))
                .wg_count(2048)
                .array(
                    src,
                    TouchKind::Load,
                    AccessPattern::Slice {
                        start: 0.0,
                        end: frac,
                    },
                )
                .array(
                    dst,
                    TouchKind::Store,
                    AccessPattern::Slice {
                        start: 0.0,
                        end: frac,
                    },
                )
                .compute_per_line(2.5)
                .lds_per_line(2.0)
                .l1_hit_rate(0.4)
                .mlp(48.0)
                .build(),
        ));
        frac = (frac / 4.0).max(0.001);
    }
    Workload::new(
        "dwt2d",
        "rgb.bmp 4096x4096",
        ReuseClass::Low,
        t,
        single_stream(kernels),
    )
}

/// SRAD_v2 (input 2048 2048 ...): speckle-reducing anisotropic diffusion —
/// two large streaming kernels per iteration over ~96 MB of derivative
/// arrays. Low inter-kernel reuse; HMG's directory thrashes here
/// (paper §V-B: Baseline outperforms HMG by ~15 % on this group).
pub fn srad_v2() -> Workload {
    const N: u64 = 2048;
    const ELEM: u64 = 4;
    let mut t = ArrayTable::new();
    let j = t.alloc("J", N * N * ELEM); // 16 MiB
    let c = t.alloc("c", N * N * ELEM);
    let dn = t.alloc("dN", N * N * ELEM);
    let ds = t.alloc("dS", N * N * ELEM);
    let de = t.alloc("dE", N * N * ELEM);
    let dw = t.alloc("dW", N * N * ELEM);

    let halo = AccessPattern::PartitionedHalo { halo_lines: 128 };
    let k1 = Arc::new(
        KernelSpec::builder("srad_kernel1")
            .wg_count(4096)
            .array(j, TouchKind::Load, halo.clone())
            .array(dn, TouchKind::Store, AccessPattern::Partitioned)
            .array(ds, TouchKind::Store, AccessPattern::Partitioned)
            .array(de, TouchKind::Store, AccessPattern::Partitioned)
            .array(dw, TouchKind::Store, AccessPattern::Partitioned)
            .array(c, TouchKind::Store, AccessPattern::Partitioned)
            .compute_per_line(2.0)
            .l1_hit_rate(0.4)
            .mlp(48.0)
            .build(),
    );
    let k2 = Arc::new(
        KernelSpec::builder("srad_kernel2")
            .wg_count(4096)
            .array(dn, TouchKind::Load, AccessPattern::Partitioned)
            .array(ds, TouchKind::Load, AccessPattern::Partitioned)
            .array(de, TouchKind::Load, AccessPattern::Partitioned)
            .array(dw, TouchKind::Load, AccessPattern::Partitioned)
            .array(c, TouchKind::Load, halo)
            .array(j, TouchKind::LoadStore, AccessPattern::Partitioned)
            .compute_per_line(2.0)
            .l1_hit_rate(0.4)
            .mlp(48.0)
            .build(),
    );
    let kernels = vec![k1.clone(), k2.clone(), k1, k2];
    Workload::new(
        "srad_v2",
        "2048 2048 0 127 0 127 0.5 2",
        ReuseClass::Low,
        t,
        single_stream(kernels),
    )
}

/// BTree (input mil.txt): two bulk lookup kernels over a ~16 MB tree with
/// essentially random node visits — no inter-kernel reuse, and the sort of
/// access pattern that churns HMG's coarse directory (paper §V-B).
pub fn btree() -> Workload {
    const NODES_BYTES: u64 = 16 << 20;
    const KEYS_BYTES: u64 = 1 << 20;
    let mut t = ArrayTable::new();
    let tree = t.alloc("tree_nodes", NODES_BYTES);
    let keys = t.alloc("keys", KEYS_BYTES);
    let answers = t.alloc("answers", KEYS_BYTES);

    let irregular = AccessPattern::Irregular {
        fraction: 1.0,
        locality: 0.3,
    };
    let find_k = Arc::new(
        KernelSpec::builder("findK")
            .wg_count(4096)
            .array(tree, TouchKind::Load, irregular.clone())
            .array(keys, TouchKind::Load, AccessPattern::Partitioned)
            .array(answers, TouchKind::Store, AccessPattern::Partitioned)
            .compute_per_line(1.0)
            .l1_hit_rate(0.3)
            .mlp(24.0)
            .build(),
    );
    let find_range = Arc::new(
        KernelSpec::builder("findRangeK")
            .wg_count(4096)
            .array(tree, TouchKind::Load, irregular)
            .array(keys, TouchKind::Load, AccessPattern::Partitioned)
            .array(answers, TouchKind::Store, AccessPattern::Partitioned)
            .compute_per_line(1.0)
            .l1_hit_rate(0.3)
            .mlp(24.0)
            .build(),
    );
    Workload::new(
        "btree",
        "mil.txt",
        ReuseClass::Low,
        t,
        single_stream(vec![find_k, find_range]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backprop_footprint_is_capacity_sensitive() {
        let w = backprop();
        assert!(w.footprint_bytes() > 16 << 20);
        assert!(w.footprint_bytes() < 32 << 20);
        assert_eq!(w.kernel_count(), 12);
    }

    #[test]
    fn gaussian_has_510_dynamic_kernels() {
        assert_eq!(gaussian().kernel_count(), 510);
    }

    #[test]
    fn hotspot_is_compute_bound() {
        let w = hotspot();
        assert!(w.launches()[0].spec.compute_per_line() > 10.0);
    }

    #[test]
    fn hotspot3d_ping_pongs_temperature() {
        let w = hotspot3d();
        let k0 = &w.launches()[0].spec;
        let k1 = &w.launches()[1].spec;
        // fwd writes temp_out, bwd writes temp_in.
        assert_ne!(
            k0.arrays().last().unwrap().array,
            k1.arrays().last().unwrap().array
        );
        assert!(w.footprint_bytes() > 16 << 20);
    }

    #[test]
    fn lud_kernels_are_small_and_latency_sensitive() {
        let w = lud();
        assert!(w.kernel_count() >= 20);
        assert!(w.launches()[0].spec.mlp() <= 24.0);
        assert!(
            w.footprint_bytes() <= 18 << 20,
            "fits the LLC within a workspace"
        );
    }

    #[test]
    fn nw_streams_a_huge_matrix() {
        let w = nw();
        assert!(w.footprint_bytes() > 256 << 20);
        assert_eq!(w.class(), ReuseClass::Low);
    }

    #[test]
    fn btree_is_two_kernels_irregular() {
        let w = btree();
        assert_eq!(w.kernel_count(), 2);
        assert!(matches!(
            w.launches()[0].spec.arrays()[0].pattern,
            AccessPattern::Irregular { .. }
        ));
    }

    #[test]
    fn srad_uses_six_arrays() {
        let w = srad_v2();
        assert_eq!(w.arrays().len(), 6);
        assert_eq!(w.launches()[0].spec.arrays().len(), 6);
    }
}
