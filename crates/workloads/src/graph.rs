//! Graph-analytics application models: BFS (Rodinia), Color-max, FW and
//! SSSP (Pannotia).
//!
//! These applications iterate kernels over read-mostly graph structures
//! with input-dependent, irregular neighbour gathers. CPElide helps them by
//! eliding *acquires* for read-only data (the graph stays Valid in every
//! chiplet's L2 across iterations), while HMG suffers from low remote-read
//! locality and directory churn (paper §V-A/B).

use crate::{single_stream, ReuseClass, Workload};
use chiplet_gpu::kernel::{AccessPattern, KernelSpec, TouchKind};
use chiplet_gpu::table::ArrayTable;
use std::sync::Arc;

/// BFS (Rodinia; input graph128k.txt): level-synchronous traversal.
/// Read-only node/edge arrays with a modest frontier — smaller potential
/// reuse, so CPElide gains ~6 % (paper §V-A).
pub fn bfs() -> Workload {
    const NODES: u64 = 131_072;
    const EDGES: u64 = 1_048_576;
    const ELEM: u64 = 4;
    let mut t = ArrayTable::new();
    let nodes = t.alloc("graph_nodes", NODES * 2 * ELEM); // 1 MiB
    let edges = t.alloc("graph_edges", EDGES * ELEM); // 4 MiB
    let mask = t.alloc("graph_mask", NODES * ELEM);
    let updating = t.alloc("updating_mask", NODES * ELEM);
    let cost = t.alloc("cost", NODES * ELEM);

    // Mask/cost initialization: owner partitions first-touch the node
    // state arrays.
    let init = Arc::new(
        KernelSpec::builder("bfs_init")
            .wg_count(2048)
            .array(mask, TouchKind::Store, AccessPattern::Partitioned)
            .array(updating, TouchKind::Store, AccessPattern::Partitioned)
            .array(cost, TouchKind::Store, AccessPattern::Partitioned)
            .compute_per_line(0.5)
            .l1_hit_rate(0.1)
            .mlp(64.0)
            .build(),
    );
    let k1 = Arc::new(
        KernelSpec::builder("bfs_kernel1")
            .wg_count(2048)
            .array(nodes, TouchKind::Load, AccessPattern::Partitioned)
            .array(
                edges,
                TouchKind::Load,
                AccessPattern::Irregular {
                    fraction: 0.48,
                    locality: 0.75,
                },
            )
            .array(mask, TouchKind::LoadStore, AccessPattern::Partitioned)
            .array(
                cost,
                TouchKind::LoadStore,
                AccessPattern::Irregular {
                    fraction: 0.32,
                    locality: 0.5,
                },
            )
            .array(
                updating,
                TouchKind::Store,
                AccessPattern::Irregular {
                    fraction: 0.32,
                    locality: 0.5,
                },
            )
            .compute_per_line(4.0)
            .l1_hit_rate(0.35)
            .mlp(36.0)
            .build(),
    );
    let k2 = Arc::new(
        KernelSpec::builder("bfs_kernel2")
            .wg_count(2048)
            .array(updating, TouchKind::LoadStore, AccessPattern::Partitioned)
            .array(mask, TouchKind::Store, AccessPattern::Partitioned)
            .compute_per_line(1.0)
            .l1_hit_rate(0.35)
            .mlp(36.0)
            .build(),
    );
    let mut kernels = vec![init];
    for _ in 0..12 {
        kernels.push(k1.clone());
        kernels.push(k2.clone());
    }
    Workload::new(
        "bfs",
        "graph128k.txt",
        ReuseClass::ModerateHigh,
        t,
        single_stream(kernels),
    )
}

/// Color-max (Pannotia; input AK.gr): iterative independent-set colouring.
/// Many read-only accesses whose retained validity gives CPElide ~16 %
/// (paper §V-A).
pub fn color_max() -> Workload {
    const NODES: u64 = 524_288;
    const EDGES: u64 = 2_097_152;
    const ELEM: u64 = 4;
    let mut t = ArrayTable::new();
    let row = t.alloc("row_offsets", NODES * ELEM); // 2 MiB
    let col = t.alloc("col_indices", EDGES * ELEM); // 8 MiB
    let values = t.alloc("node_values", NODES * ELEM);
    let colors = t.alloc("colors", NODES * ELEM);
    let max_array = t.alloc("max_values", NODES * ELEM);

    let color1 = Arc::new(
        KernelSpec::builder("color_max1")
            .wg_count(4096)
            .array(row, TouchKind::Load, AccessPattern::Partitioned)
            .array(
                col,
                TouchKind::Load,
                AccessPattern::Irregular {
                    fraction: 0.6,
                    locality: 0.7,
                },
            )
            .array(
                values,
                TouchKind::Load,
                AccessPattern::Irregular {
                    fraction: 0.4,
                    locality: 0.75,
                },
            )
            .array(max_array, TouchKind::Store, AccessPattern::Partitioned)
            .compute_per_line(1.2)
            .l1_hit_rate(0.35)
            .mlp(32.0)
            .build(),
    );
    let color2 = Arc::new(
        KernelSpec::builder("color_max2")
            .wg_count(4096)
            .array(max_array, TouchKind::Load, AccessPattern::Partitioned)
            .array(values, TouchKind::Load, AccessPattern::Partitioned)
            .array(colors, TouchKind::LoadStore, AccessPattern::Partitioned)
            .compute_per_line(1.2)
            .l1_hit_rate(0.35)
            .mlp(32.0)
            .build(),
    );
    let mut kernels = Vec::new();
    for _ in 0..15 {
        kernels.push(color1.clone());
        kernels.push(color2.clone());
    }
    Workload::new(
        "color-max",
        "AK.gr",
        ReuseClass::ModerateHigh,
        t,
        single_stream(kernels),
    )
}

/// Floyd-Warshall (Pannotia; input 512_65536.gr): all-pairs shortest paths.
/// A pivot row is broadcast-read by every chiplet each step; ample MLP
/// hides most of the L2 misses, limiting CPElide's benefit (paper §V-A),
/// and the shared pivot makes first-touch placement subpar (§V-B).
pub fn fw() -> Workload {
    const N: u64 = 512;
    const ELEM: u64 = 4;
    const STEP_BATCH: u64 = 4;
    let mut t = ArrayTable::new();
    let dist = t.alloc("dist", N * N * ELEM); // 1 MiB
    let pivot = t.alloc("pivot_row", N * ELEM);

    let kernels: Vec<Arc<KernelSpec>> = (0..N / STEP_BATCH)
        .map(|k| {
            Arc::new(
                KernelSpec::builder(format!("fw_step{k}"))
                    .wg_count(1024)
                    .array(dist, TouchKind::LoadStore, AccessPattern::Partitioned)
                    .array(pivot, TouchKind::Load, AccessPattern::Shared)
                    .compute_per_line(5.0)
                    .l1_hit_rate(0.5)
                    .mlp(128.0)
                    .build(),
            )
        })
        .collect();
    Workload::new(
        "fw",
        "512_65536.gr",
        ReuseClass::ModerateHigh,
        t,
        single_stream(kernels),
    )
}

/// SSSP (Pannotia; input AK.gr): Bellman-Ford-style relaxation with
/// irregular distance scatters; ~14 % CPElide gain (paper §V-A).
pub fn sssp() -> Workload {
    const NODES: u64 = 524_288;
    const EDGES: u64 = 2_097_152;
    const ELEM: u64 = 4;
    let mut t = ArrayTable::new();
    let row = t.alloc("row_offsets", NODES * ELEM);
    let col = t.alloc("col_indices", EDGES * ELEM); // 8 MiB
    let weights = t.alloc("edge_weights", EDGES * ELEM); // 8 MiB
                                                         // Double-buffered distances (Bellman-Ford iterations): neighbours are
                                                         // gathered from the previous iteration's buffer, updates are
                                                         // owner-computed into the new buffer.
    let dist_old = t.alloc("dist_old", NODES * ELEM);
    let dist_new = t.alloc("dist_new", NODES * ELEM);

    // Distance initialization: partitions first-touch the distance buffers
    // so their pages are homed at the chiplet that owns those nodes.
    let init = Arc::new(
        KernelSpec::builder("sssp_init")
            .wg_count(2048)
            .array(dist_old, TouchKind::Store, AccessPattern::Partitioned)
            .array(dist_new, TouchKind::Store, AccessPattern::Partitioned)
            .compute_per_line(0.5)
            .l1_hit_rate(0.1)
            .mlp(64.0)
            .build(),
    );
    let relax = Arc::new(
        KernelSpec::builder("sssp_relax")
            .wg_count(4096)
            .array(row, TouchKind::Load, AccessPattern::Partitioned)
            .array(
                col,
                TouchKind::Load,
                AccessPattern::Irregular {
                    fraction: 1.0,
                    locality: 0.7,
                },
            )
            .array(
                weights,
                TouchKind::Load,
                AccessPattern::Irregular {
                    fraction: 1.0,
                    locality: 0.7,
                },
            )
            .array(
                dist_old,
                TouchKind::Load,
                AccessPattern::Irregular {
                    fraction: 0.48,
                    locality: 0.75,
                },
            )
            .array(dist_new, TouchKind::LoadStore, AccessPattern::Partitioned)
            .compute_per_line(1.2)
            .l1_hit_rate(0.35)
            .mlp(20.0)
            .build(),
    );
    let settle = Arc::new(
        KernelSpec::builder("sssp_settle")
            .wg_count(4096)
            .array(dist_new, TouchKind::Load, AccessPattern::Partitioned)
            .array(dist_old, TouchKind::Store, AccessPattern::Partitioned)
            .compute_per_line(1.0)
            .l1_hit_rate(0.35)
            .mlp(20.0)
            .build(),
    );
    let mut kernels = vec![init];
    for _ in 0..14 {
        kernels.push(relax.clone());
        kernels.push(settle.clone());
    }
    Workload::new(
        "sssp",
        "AK.gr",
        ReuseClass::ModerateHigh,
        t,
        single_stream(kernels),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_apps_are_irregular_read_heavy() {
        for w in [bfs(), color_max(), sssp()] {
            // Skip any init kernel: examine the first iterative kernel.
            let k = &w
                .launches()
                .iter()
                .find(|l| !l.spec.name().contains("init"))
                .unwrap()
                .spec;
            let irregular = k
                .arrays()
                .iter()
                .filter(|a| matches!(a.pattern, AccessPattern::Irregular { .. }))
                .count();
            assert!(irregular >= 1, "{} lacks irregular accesses", w.name());
            let loads = k
                .arrays()
                .iter()
                .filter(|a| a.touch == TouchKind::Load)
                .count();
            assert!(loads >= 2, "{} should be read-heavy", w.name());
        }
    }

    #[test]
    fn fw_broadcasts_its_pivot() {
        let w = fw();
        assert_eq!(w.kernel_count(), 128);
        assert!(w.launches()[0]
            .spec
            .arrays()
            .iter()
            .any(|a| a.pattern == AccessPattern::Shared));
        assert!(w.launches()[0].spec.mlp() >= 90.0, "FW hides misses");
    }

    #[test]
    fn sssp_and_color_share_input_graph_scale() {
        assert_eq!(color_max().input(), "AK.gr");
        assert_eq!(sssp().input(), "AK.gr");
    }
}
