//! Multi-stream workloads for the paper's §VI study.
//!
//! `hipSetDevice` binds a stream to chiplet(s); independent kernels from
//! different streams execute concurrently on their bound chiplets. The
//! suite contains `streams` (the one multi-stream benchmark in
//! gem5-resources) plus multi-stream extensions of Table II applications
//! mimicking concurrent jobs, as the paper does.

use crate::{Launch, ReuseClass, Workload};
use chiplet_gpu::kernel::{AccessPattern, KernelSpec, TouchKind};
use chiplet_gpu::stream::StreamId;
use chiplet_gpu::table::ArrayTable;
use chiplet_mem::addr::ChipletId;
use std::sync::Arc;

/// Binds stream `s` of `num_streams` to an equal share of 4 chiplets.
fn binding_for(s: u32, num_streams: u32) -> Vec<ChipletId> {
    let per = (4 / num_streams).max(1);
    (0..per)
        .map(|i| ChipletId::new((s * per + i) as u8 % 4))
        .collect()
}

/// The `streams` microbenchmark: four independent streams, each running an
/// iterative square-style kernel on its own array and chiplet.
pub fn streams() -> Workload {
    const N: u64 = 262_144;
    const ELEM: u64 = 4;
    let mut t = ArrayTable::new();
    let mut launches = Vec::new();
    for s in 0..4u32 {
        let a = t.alloc(format!("in{s}"), N * ELEM);
        let c = t.alloc(format!("out{s}"), N * ELEM);
        let k = Arc::new(
            KernelSpec::builder(format!("stream{s}_square"))
                .wg_count(512)
                .array(a, TouchKind::Load, AccessPattern::Partitioned)
                .array(c, TouchKind::LoadStore, AccessPattern::Partitioned)
                .compute_per_line(5.0)
                .l1_hit_rate(0.25)
                .mlp(48.0)
                .build(),
        );
        for _ in 0..10 {
            launches.push(Launch {
                stream: StreamId::new(s),
                spec: k.clone(),
                binding: Some(binding_for(s, 4)),
            });
        }
    }
    // Interleave the four streams' launches round-robin, as the runtime
    // would enqueue them.
    launches.sort_by_key(|l| l.stream.get());
    let mut interleaved = Vec::with_capacity(launches.len());
    for i in 0..10 {
        for s in 0..4 {
            interleaved.push(launches[s * 10 + i].clone());
        }
    }
    Workload::new(
        "streams",
        "4 streams x 262144",
        ReuseClass::ModerateHigh,
        t,
        interleaved,
    )
}

/// Two concurrent BabelStream-style jobs on disjoint chiplet pairs.
pub fn babelstream_2s() -> Workload {
    const N: u64 = 262_144;
    const ELEM: u64 = 8;
    let mut t = ArrayTable::new();
    let mut launches = Vec::new();
    let mut per_stream_kernels: Vec<Vec<Arc<KernelSpec>>> = Vec::new();
    for s in 0..2u32 {
        let a = t.alloc(format!("a{s}"), N * ELEM);
        let b = t.alloc(format!("b{s}"), N * ELEM);
        let c = t.alloc(format!("c{s}"), N * ELEM);
        let mk = |name: String, srcs: Vec<_>, dst| {
            let mut kb = KernelSpec::builder(name)
                .wg_count(1024)
                .compute_per_line(5.0)
                .l1_hit_rate(0.25)
                .mlp(48.0);
            for src in srcs {
                kb = kb.array(src, TouchKind::Load, AccessPattern::Partitioned);
            }
            Arc::new(
                kb.array(dst, TouchKind::Store, AccessPattern::Partitioned)
                    .build(),
            )
        };
        per_stream_kernels.push(vec![
            mk(format!("copy{s}"), vec![a], c),
            mk(format!("add{s}"), vec![a, b], c),
            mk(format!("triad{s}"), vec![b, c], a),
        ]);
    }
    for iter in 0..6 {
        for s in 0..2u32 {
            let ks = &per_stream_kernels[s as usize];
            launches.push(Launch {
                stream: StreamId::new(s),
                spec: ks[iter % ks.len()].clone(),
                binding: Some(binding_for(s, 2)),
            });
        }
    }
    Workload::new(
        "babelstream-2s",
        "2 streams x 262144",
        ReuseClass::ModerateHigh,
        t,
        launches,
    )
}

/// Two concurrent irregular-graph jobs (BFS-like) on disjoint chiplet pairs.
pub fn graph_2s() -> Workload {
    const NODES: u64 = 131_072;
    const ELEM: u64 = 4;
    let mut t = ArrayTable::new();
    let mut launches = Vec::new();
    let mut kernels = Vec::new();
    for s in 0..2u32 {
        let edges = t.alloc(format!("edges{s}"), NODES * 8 * ELEM);
        let cost = t.alloc(format!("cost{s}"), NODES * ELEM);
        kernels.push(Arc::new(
            KernelSpec::builder(format!("relax{s}"))
                .wg_count(1024)
                .array(
                    edges,
                    TouchKind::Load,
                    AccessPattern::Irregular {
                        fraction: 0.3,
                        locality: 0.5,
                    },
                )
                .array(cost, TouchKind::LoadStore, AccessPattern::Partitioned)
                .compute_per_line(1.5)
                .l1_hit_rate(0.35)
                .mlp(24.0)
                .build(),
        ));
    }
    for _ in 0..10 {
        for s in 0..2u32 {
            launches.push(Launch {
                stream: StreamId::new(s),
                spec: kernels[s as usize].clone(),
                binding: Some(binding_for(s, 2)),
            });
        }
    }
    Workload::new(
        "graph-2s",
        "2 streams x 131072 nodes",
        ReuseClass::ModerateHigh,
        t,
        launches,
    )
}

/// Two concurrent compute-bound stencil jobs (Hotspot-like).
pub fn hotspot_2s() -> Workload {
    const N: u64 = 512;
    const ELEM: u64 = 4;
    let mut t = ArrayTable::new();
    let mut launches = Vec::new();
    let mut kernels = Vec::new();
    for s in 0..2u32 {
        let temp = t.alloc(format!("temp{s}"), N * N * ELEM);
        let power = t.alloc(format!("power{s}"), N * N * ELEM);
        kernels.push(Arc::new(
            KernelSpec::builder(format!("hotspot{s}"))
                .wg_count(1024)
                .array(
                    temp,
                    TouchKind::LoadStore,
                    AccessPattern::PartitionedHalo { halo_lines: 32 },
                )
                .array(power, TouchKind::Load, AccessPattern::Partitioned)
                .compute_per_line(14.0)
                .lds_per_line(3.0)
                .l1_hit_rate(0.6)
                .mlp(64.0)
                .build(),
        ));
    }
    for _ in 0..10 {
        for s in 0..2u32 {
            launches.push(Launch {
                stream: StreamId::new(s),
                spec: kernels[s as usize].clone(),
                binding: Some(binding_for(s, 2)),
            });
        }
    }
    Workload::new(
        "hotspot-2s",
        "2 streams x 512x512",
        ReuseClass::ModerateHigh,
        t,
        launches,
    )
}

/// The §VI multi-stream suite.
pub fn suite() -> Vec<Workload> {
    vec![streams(), babelstream_2s(), graph_2s(), hotspot_2s()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bindings_are_disjoint_across_streams() {
        let w = streams();
        let mut seen: Vec<(u32, Vec<ChipletId>)> = Vec::new();
        for l in w.launches() {
            let b = l.binding.clone().unwrap();
            if let Some((_, prev)) = seen.iter().find(|(s, _)| *s == l.stream.get()) {
                assert_eq!(*prev, b, "stream binding must be stable");
            } else {
                for (_, other) in &seen {
                    assert!(other.iter().all(|c| !b.contains(c)), "bindings overlap");
                }
                seen.push((l.stream.get(), b));
            }
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn suite_members_are_multi_stream() {
        for w in suite() {
            assert!(w.stream_count() >= 2, "{}", w.name());
        }
    }

    #[test]
    fn streams_interleaves_rounds() {
        let w = streams();
        // First four launches are from four distinct streams.
        let ids: Vec<u32> = w.launches()[..4].iter().map(|l| l.stream.get()).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
    }
}
