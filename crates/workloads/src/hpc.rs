//! CORAL-2 HPC application models: HACC, LULESH, Pennant.

use crate::{single_stream, ReuseClass, Workload};
use chiplet_gpu::kernel::{AccessPattern, KernelSpec, TouchKind};
use chiplet_gpu::table::ArrayTable;
use std::sync::Arc;

/// HACC (CORAL-2; input 0.5 0.1 512 ...): N-body short-range force kernels
/// over particle arrays. Enough memory-level parallelism to hide the L2
/// misses from implicit synchronization, so CPElide's reuse gains do not
/// translate into speedup (paper §V-A: "sufficient memory-level parallelism
/// ... FW, Gaussian, HACC").
pub fn hacc() -> Workload {
    const PARTICLES: u64 = 1_048_576;
    const ELEM: u64 = 4;
    let mut t = ArrayTable::new();
    let xx = t.alloc("xx", PARTICLES * ELEM); // 4 MiB each
    let yy = t.alloc("yy", PARTICLES * ELEM);
    let zz = t.alloc("zz", PARTICLES * ELEM);
    let vx = t.alloc("vx", PARTICLES * ELEM);
    let vy = t.alloc("vy", PARTICLES * ELEM);
    let vz = t.alloc("vz", PARTICLES * ELEM);

    let force = Arc::new(
        KernelSpec::builder("step_forces")
            .wg_count(4096)
            .array(xx, TouchKind::Load, AccessPattern::Partitioned)
            .array(yy, TouchKind::Load, AccessPattern::Partitioned)
            .array(zz, TouchKind::Load, AccessPattern::Partitioned)
            .array(vx, TouchKind::LoadStore, AccessPattern::Partitioned)
            .array(vy, TouchKind::LoadStore, AccessPattern::Partitioned)
            .array(vz, TouchKind::LoadStore, AccessPattern::Partitioned)
            .compute_per_line(6.0)
            .l1_hit_rate(0.5)
            .mlp(96.0)
            .build(),
    );
    let update = Arc::new(
        KernelSpec::builder("step_positions")
            .wg_count(4096)
            .array(vx, TouchKind::Load, AccessPattern::Partitioned)
            .array(vy, TouchKind::Load, AccessPattern::Partitioned)
            .array(vz, TouchKind::Load, AccessPattern::Partitioned)
            .array(xx, TouchKind::LoadStore, AccessPattern::Partitioned)
            .array(yy, TouchKind::LoadStore, AccessPattern::Partitioned)
            .array(zz, TouchKind::LoadStore, AccessPattern::Partitioned)
            .compute_per_line(6.0)
            .l1_hit_rate(0.5)
            .mlp(96.0)
            .build(),
    );
    let mut kernels = Vec::new();
    for _ in 0..8 {
        kernels.push(force.clone());
        kernels.push(update.clone());
    }
    Workload::new(
        "hacc",
        "0.5 0.1 512 0.1 2 N 12 rcb",
        ReuseClass::ModerateHigh,
        t,
        single_stream(kernels),
    )
}

/// LULESH (CORAL-2; input 1.0e-2 10): unstructured shock hydrodynamics.
/// Indirect nodal gathers with decent locality whose touched subset fits
/// the aggregate L2, giving CPElide 16 % (paper §V-A).
pub fn lulesh() -> Workload {
    const ELEMS: u64 = 786_432;
    const ELEM: u64 = 4;
    let mut t = ArrayTable::new();
    let coords = t.alloc("nodal_coords", ELEMS * ELEM * 3); // 9 MiB
    let conn = t.alloc("connectivity", ELEMS * ELEM * 2); // 6 MiB
    let stress = t.alloc("stress", ELEMS * ELEM); // 3 MiB
    let forces = t.alloc("nodal_forces", ELEMS * ELEM); // 3 MiB
    let volumes = t.alloc("volumes", ELEMS * ELEM); // 3 MiB

    let irregular = |f: f64| AccessPattern::Irregular {
        fraction: f,
        locality: 0.35,
    };
    // Mesh setup: nodal arrays are first-touched by their owner partitions.
    let init = Arc::new(
        KernelSpec::builder("init_mesh")
            .wg_count(4096)
            .array(coords, TouchKind::Store, AccessPattern::Partitioned)
            .array(forces, TouchKind::Store, AccessPattern::Partitioned)
            .array(stress, TouchKind::Store, AccessPattern::Partitioned)
            .compute_per_line(0.5)
            .l1_hit_rate(0.1)
            .mlp(64.0)
            .build(),
    );
    let stress_k = Arc::new(
        KernelSpec::builder("calc_stress")
            .wg_count(4096)
            .array(coords, TouchKind::Load, irregular(1.0))
            .array(conn, TouchKind::Load, AccessPattern::Partitioned)
            .array(stress, TouchKind::LoadStore, AccessPattern::Partitioned)
            .compute_per_line(7.5)
            .l1_hit_rate(0.45)
            .mlp(48.0)
            .build(),
    );
    let force_k = Arc::new(
        KernelSpec::builder("calc_force")
            .wg_count(4096)
            .array(stress, TouchKind::Load, AccessPattern::Partitioned)
            .array(conn, TouchKind::Load, AccessPattern::Partitioned)
            .array(
                forces,
                TouchKind::LoadStore,
                AccessPattern::Irregular {
                    fraction: 1.0,
                    locality: 1.0,
                },
            )
            .compute_per_line(7.5)
            .l1_hit_rate(0.45)
            .mlp(48.0)
            .build(),
    );
    let pos_k = Arc::new(
        KernelSpec::builder("update_positions")
            .wg_count(4096)
            .array(forces, TouchKind::Load, AccessPattern::Partitioned)
            .array(coords, TouchKind::LoadStore, AccessPattern::Partitioned)
            .array(volumes, TouchKind::Store, AccessPattern::Partitioned)
            .compute_per_line(6.0)
            .l1_hit_rate(0.45)
            .mlp(48.0)
            .build(),
    );
    let mut kernels = vec![init];
    for _ in 0..10 {
        kernels.push(stress_k.clone());
        kernels.push(force_k.clone());
        kernels.push(pos_k.clone());
    }
    Workload::new(
        "lulesh",
        "1.0e-2 10",
        ReuseClass::ModerateHigh,
        t,
        single_stream(kernels),
    )
}

/// Pennant (CORAL-2; input noh.pnt): unstructured mesh hydrodynamics with
/// heavy indirect addressing. Its touched subset fits the aggregate L2 and
/// its kernels are latency-sensitive, so preserving reuse yields CPElide's
/// second-biggest win (38 %, paper §V-A).
pub fn pennant() -> Workload {
    const ZONES: u64 = 524_288;
    const ELEM: u64 = 4;
    let mut t = ArrayTable::new();
    let pts = t.alloc("points", ZONES * ELEM * 2); // 4 MiB
    let zones = t.alloc("zones", ZONES * ELEM * 2); // 4 MiB
    let sides = t.alloc("sides", ZONES * ELEM); // 2 MiB
    let rho = t.alloc("density", ZONES * ELEM); // 2 MiB
    let energy = t.alloc("energy", ZONES * ELEM); // 2 MiB

    let irr = |f: f64| AccessPattern::Irregular {
        fraction: f,
        locality: 1.0,
    };
    let gather = Arc::new(
        KernelSpec::builder("gather_corners")
            .wg_count(4096)
            .array(pts, TouchKind::Load, irr(1.0))
            .array(sides, TouchKind::Load, AccessPattern::Partitioned)
            .array(zones, TouchKind::LoadStore, AccessPattern::Partitioned)
            .compute_per_line(9.5)
            .l1_hit_rate(0.3)
            .mlp(24.0)
            .build(),
    );
    let hydro = Arc::new(
        KernelSpec::builder("calc_hydro")
            .wg_count(4096)
            .array(zones, TouchKind::Load, AccessPattern::Partitioned)
            .array(rho, TouchKind::LoadStore, AccessPattern::Partitioned)
            .array(energy, TouchKind::LoadStore, AccessPattern::Partitioned)
            .compute_per_line(9.5)
            .l1_hit_rate(0.3)
            .mlp(24.0)
            .build(),
    );
    let scatter = Arc::new(
        KernelSpec::builder("scatter_forces")
            .wg_count(4096)
            .array(rho, TouchKind::Load, AccessPattern::Partitioned)
            .array(pts, TouchKind::LoadStore, irr(1.0))
            .compute_per_line(9.5)
            .l1_hit_rate(0.3)
            .mlp(24.0)
            .build(),
    );
    let mut kernels = Vec::new();
    for _ in 0..12 {
        kernels.push(gather.clone());
        kernels.push(hydro.clone());
        kernels.push(scatter.clone());
    }
    Workload::new(
        "pennant",
        "noh.pnt",
        ReuseClass::ModerateHigh,
        t,
        single_stream(kernels),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hacc_has_high_mlp() {
        assert!(hacc().launches()[0].spec.mlp() >= 90.0);
    }

    #[test]
    fn pennant_fits_aggregate_l2_and_is_latency_sensitive() {
        let w = pennant();
        assert!(
            w.footprint_bytes() < 32 << 20,
            "fits 4-chiplet aggregate L2"
        );
        assert!(w.launches()[0].spec.mlp() <= 24.0);
    }

    #[test]
    fn lulesh_uses_indirect_gathers() {
        let w = lulesh();
        assert!(w.launches().iter().any(|l| l
            .spec
            .arrays()
            .iter()
            .any(|a| matches!(a.pattern, AccessPattern::Irregular { .. }))));
    }
}
