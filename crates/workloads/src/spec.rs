//! A plain-text workload specification format, so new applications can be
//! described without writing Rust.
//!
//! # Format
//!
//! Line-oriented; `#` starts a comment; indentation is free-form.
//!
//! ```text
//! name pipeline
//! input "3 stages x 10 iters"
//! class moderate-high            # or: low
//!
//! array raw    4MiB
//! array staged 4MiB
//! array lut    512KiB
//!
//! kernel produce
//!   wgs 2048
//!   compute 1.0                  # ALU cycles per line
//!   lds 0.5                      # LDS accesses per line
//!   l1 0.3                       # L1 hit rate
//!   mlp 32                       # memory-level parallelism
//!   load  raw    partitioned
//!   store staged partitioned
//!
//! kernel transform
//!   load  staged partitioned
//!   load  lut    shared
//!   loadstore raw irregular 0.5 0.9   # fraction, locality
//!
//! sequence repeat 10 { produce transform }
//! sequence produce                     # single launches also allowed
//! ```
//!
//! Access patterns: `partitioned`, `shared`, `halo <lines>`,
//! `slice <start> <end>`, `irregular <fraction> <locality>`.
//! Sizes accept `B`, `KiB`, `MiB`, `GiB` suffixes (or bare bytes).

use crate::{single_stream, ReuseClass, Workload};
use chiplet_gpu::kernel::{AccessPattern, KernelBuilder, KernelSpec, TouchKind};
use chiplet_gpu::table::ArrayTable;
use chiplet_mem::array::ArrayId;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// Error produced by [`parse_workload`], carrying the offending line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSpecError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "workload spec line {}: {}", self.line, self.message)
    }
}

impl Error for ParseSpecError {}

fn err(line: usize, message: impl Into<String>) -> ParseSpecError {
    ParseSpecError {
        line,
        message: message.into(),
    }
}

/// Parses a size like `4MiB`, `512KiB`, `64B` or `1024`.
fn parse_size(s: &str, line: usize) -> Result<u64, ParseSpecError> {
    let (digits, mult) = if let Some(p) = s.strip_suffix("GiB") {
        (p, 1u64 << 30)
    } else if let Some(p) = s.strip_suffix("MiB") {
        (p, 1 << 20)
    } else if let Some(p) = s.strip_suffix("KiB") {
        (p, 1 << 10)
    } else if let Some(p) = s.strip_suffix('B') {
        (p, 1)
    } else {
        (s, 1)
    };
    digits
        .parse::<u64>()
        .map(|v| v * mult)
        .map_err(|_| err(line, format!("invalid size `{s}`")))
}

fn parse_f64(s: &str, line: usize) -> Result<f64, ParseSpecError> {
    s.parse()
        .map_err(|_| err(line, format!("invalid number `{s}`")))
}

fn parse_pattern(tokens: &[&str], line: usize) -> Result<AccessPattern, ParseSpecError> {
    match tokens {
        ["partitioned"] => Ok(AccessPattern::Partitioned),
        ["shared"] => Ok(AccessPattern::Shared),
        ["halo", n] => Ok(AccessPattern::PartitionedHalo {
            halo_lines: n
                .parse()
                .map_err(|_| err(line, format!("invalid halo lines `{n}`")))?,
        }),
        ["slice", a, b] => Ok(AccessPattern::Slice {
            start: parse_f64(a, line)?,
            end: parse_f64(b, line)?,
        }),
        ["irregular", f, l] => Ok(AccessPattern::Irregular {
            fraction: parse_f64(f, line)?,
            locality: parse_f64(l, line)?,
        }),
        _ => Err(err(
            line,
            format!("unknown access pattern `{}`", tokens.join(" ")),
        )),
    }
}

/// The synthetic file name carried by kernels parsed from spec text;
/// their [`chiplet_gpu::kernel::SpecSpan`] line numbers index into the
/// text handed to [`parse_workload`].
pub const SPEC_FILE: &str = "<workload-spec>";

struct PendingKernel {
    builder: KernelBuilder,
    name: String,
    accesses: usize,
}

impl PendingKernel {
    /// Applies a consuming [`KernelBuilder`] step in place (the builder
    /// methods take `self` by value).
    fn update(&mut self, f: impl FnOnce(KernelBuilder) -> KernelBuilder) {
        let b = std::mem::replace(&mut self.builder, KernelSpec::builder(""));
        self.builder = f(b);
    }
}

/// Parses a workload specification (see the module docs for the format).
///
/// # Errors
///
/// Returns [`ParseSpecError`] with the offending line number on any
/// malformed directive, unknown array/kernel reference, or missing
/// `name`/`sequence` section.
pub fn parse_workload(text: &str) -> Result<Workload, ParseSpecError> {
    let mut name: Option<String> = None;
    let mut input = String::new();
    let mut class = ReuseClass::ModerateHigh;
    let mut arrays = ArrayTable::new();
    let mut array_ids: HashMap<String, ArrayId> = HashMap::new();
    let mut kernels: HashMap<String, Arc<KernelSpec>> = HashMap::new();
    let mut current: Option<PendingKernel> = None;
    let mut sequence: Vec<Arc<KernelSpec>> = Vec::new();

    let finish = |k: PendingKernel,
                  kernels: &mut HashMap<String, Arc<KernelSpec>>|
     -> Result<(), ParseSpecError> {
        if k.accesses == 0 {
            return Err(err(0, format!("kernel `{}` accesses no arrays", k.name)));
        }
        let spec = k.builder.build();
        kernels.insert(k.name, Arc::new(spec));
        Ok(())
    };

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match tokens[0] {
            "name" => {
                name = Some(
                    tokens
                        .get(1)
                        .ok_or_else(|| err(line_no, "name requires a value"))?
                        .to_string(),
                );
            }
            "input" => {
                input = line["input".len()..].trim().trim_matches('"').to_owned();
            }
            "class" => match tokens.get(1) {
                Some(&"moderate-high") => class = ReuseClass::ModerateHigh,
                Some(&"low") => class = ReuseClass::Low,
                other => {
                    return Err(err(
                        line_no,
                        format!("class must be moderate-high or low, got {other:?}"),
                    ))
                }
            },
            "array" => {
                let [_, aname, size] = tokens[..] else {
                    return Err(err(line_no, "array requires: array <name> <size>"));
                };
                if array_ids.contains_key(aname) {
                    return Err(err(line_no, format!("array `{aname}` redefined")));
                }
                let id = arrays.alloc(aname, parse_size(size, line_no)?);
                array_ids.insert(aname.to_owned(), id);
            }
            "kernel" => {
                if let Some(k) = current.take() {
                    finish(k, &mut kernels).map_err(|e| err(line_no, e.message))?;
                }
                let kname = tokens
                    .get(1)
                    .ok_or_else(|| err(line_no, "kernel requires a name"))?;
                current = Some(PendingKernel {
                    // The span cites the spec text itself (the `kernel`
                    // directive line), not this parser, so oracle
                    // diagnostics point at the definition the user wrote.
                    builder: KernelSpec::builder(*kname).span(SPEC_FILE, line_no as u32),
                    name: kname.to_string(),
                    accesses: 0,
                });
            }
            "wgs" | "compute" | "lds" | "l1" | "mlp" => {
                let k = current
                    .as_mut()
                    .ok_or_else(|| err(line_no, "directive outside a kernel block"))?;
                let v = tokens
                    .get(1)
                    .ok_or_else(|| err(line_no, "directive requires a value"))?;
                match tokens[0] {
                    "wgs" => {
                        let n = v
                            .parse()
                            .map_err(|_| err(line_no, format!("invalid wgs `{v}`")))?;
                        k.update(|b| b.wg_count(n));
                    }
                    "compute" => {
                        let x = parse_f64(v, line_no)?;
                        k.update(|b| b.compute_per_line(x));
                    }
                    "lds" => {
                        let x = parse_f64(v, line_no)?;
                        k.update(|b| b.lds_per_line(x));
                    }
                    "l1" => {
                        let x = parse_f64(v, line_no)?;
                        k.update(|b| b.l1_hit_rate(x));
                    }
                    "mlp" => {
                        let x = parse_f64(v, line_no)?;
                        k.update(|b| b.mlp(x));
                    }
                    _ => unreachable!("matched above"),
                }
            }
            "load" | "store" | "loadstore" => {
                let k = current
                    .as_mut()
                    .ok_or_else(|| err(line_no, "access outside a kernel block"))?;
                let aname = tokens
                    .get(1)
                    .ok_or_else(|| err(line_no, "access requires an array name"))?;
                let &id = array_ids
                    .get(*aname)
                    .ok_or_else(|| err(line_no, format!("unknown array `{aname}`")))?;
                let touch = match tokens[0] {
                    "load" => TouchKind::Load,
                    "store" => TouchKind::Store,
                    _ => TouchKind::LoadStore,
                };
                let pattern = parse_pattern(&tokens[2..], line_no)?;
                k.update(|b| b.array(id, touch, pattern));
                k.accesses += 1;
            }
            "sequence" => {
                if let Some(k) = current.take() {
                    finish(k, &mut kernels).map_err(|e| err(line_no, e.message))?;
                }
                let rest = &tokens[1..];
                let (repeat, names): (usize, &[&str]) = match rest {
                    ["repeat", n, "{", inner @ .., "}"] => (
                        n.parse()
                            .map_err(|_| err(line_no, format!("invalid repeat `{n}`")))?,
                        inner,
                    ),
                    names => (1, names),
                };
                if names.is_empty() {
                    return Err(err(line_no, "sequence requires kernel names"));
                }
                for _ in 0..repeat {
                    for kname in names {
                        let spec = kernels
                            .get(*kname)
                            .ok_or_else(|| err(line_no, format!("unknown kernel `{kname}`")))?;
                        sequence.push(spec.clone());
                    }
                }
            }
            other => return Err(err(line_no, format!("unknown directive `{other}`"))),
        }
    }
    if let Some(k) = current.take() {
        finish(k, &mut kernels).map_err(|e| err(text.lines().count(), e.message))?;
    }

    let name = name.ok_or_else(|| err(1, "spec is missing a `name` directive"))?;
    if sequence.is_empty() {
        return Err(err(
            text.lines().count(),
            "spec is missing a `sequence` directive",
        ));
    }
    Ok(Workload::new(
        name,
        input,
        class,
        arrays,
        single_stream(sequence),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    const PIPELINE: &str = r#"
# a three-stage pipeline
name pipeline
input "3 stages"
class moderate-high

array raw    4MiB
array staged 4MiB
array lut    512KiB

kernel produce
  wgs 2048
  compute 1.0
  l1 0.3
  mlp 32
  load  raw    partitioned
  store staged partitioned

kernel transform
  load staged partitioned
  load lut shared
  loadstore raw irregular 0.5 0.9

sequence repeat 3 { produce transform }
sequence produce
"#;

    #[test]
    fn parses_a_full_spec() {
        let w = parse_workload(PIPELINE).expect("valid spec");
        assert_eq!(w.name(), "pipeline");
        assert_eq!(w.input(), "3 stages");
        assert_eq!(w.class(), ReuseClass::ModerateHigh);
        assert_eq!(w.arrays().len(), 3);
        assert_eq!(w.kernel_count(), 7); // 3x(produce transform) + produce
        let produce = &w.launches()[0].spec;
        assert_eq!(produce.name(), "produce");
        assert_eq!(produce.wg_count(), 2048);
        assert!((produce.mlp() - 32.0).abs() < 1e-12);
        let transform = &w.launches()[1].spec;
        assert_eq!(transform.arrays().len(), 3);
        assert!(matches!(
            transform.arrays()[2].pattern,
            AccessPattern::Irregular { .. }
        ));
    }

    #[test]
    fn sizes_accept_suffixes() {
        assert_eq!(parse_size("4MiB", 1).unwrap(), 4 << 20);
        assert_eq!(parse_size("512KiB", 1).unwrap(), 512 << 10);
        assert_eq!(parse_size("1GiB", 1).unwrap(), 1 << 30);
        assert_eq!(parse_size("64B", 1).unwrap(), 64);
        assert_eq!(parse_size("4096", 1).unwrap(), 4096);
        assert!(parse_size("4x", 1).is_err());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let bad = "name x\narray a 4MiB\nkernel k\n  load b partitioned\nsequence k\n";
        let e = parse_workload(bad).unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.message.contains("unknown array"));
    }

    #[test]
    fn unknown_directive_rejected() {
        let e = parse_workload("name x\nfrobnicate 3\n").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn missing_sequence_rejected() {
        let e = parse_workload("name x\narray a 4MiB\nkernel k\n load a shared\n").unwrap_err();
        assert!(e.message.contains("sequence"));
    }

    #[test]
    fn unknown_kernel_in_sequence_rejected() {
        let e = parse_workload("name x\narray a 64B\nkernel k\n load a shared\nsequence nope\n")
            .unwrap_err();
        assert!(e.message.contains("unknown kernel"));
    }

    #[test]
    fn redefined_array_rejected() {
        let e = parse_workload("name x\narray a 64B\narray a 64B\n").unwrap_err();
        assert!(e.message.contains("redefined"));
    }

    #[test]
    fn parsed_workload_simulates() {
        // End-to-end sanity: the spec runs through the public Workload API.
        let w = parse_workload(PIPELINE).unwrap();
        assert!(w.footprint_bytes() > 8 << 20);
        assert_eq!(w.stream_count(), 1);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let spec = "\n# hi\nname z # trailing\narray a 64B\nkernel k\n load a shared\nsequence k\n";
        let w = parse_workload(spec).unwrap();
        assert_eq!(w.name(), "z");
    }

    #[test]
    fn parsed_kernels_carry_spec_text_spans() {
        let w = parse_workload(PIPELINE).unwrap();
        let produce = &w.launches()[0].spec;
        let transform = &w.launches()[1].spec;
        assert_eq!(produce.span().file, SPEC_FILE);
        assert_eq!(transform.span().file, SPEC_FILE);
        // The spans index the `kernel` directive lines of the spec text.
        let line_of = |name: &str| {
            PIPELINE
                .lines()
                .position(|l| l.trim() == format!("kernel {name}"))
                .map(|idx| idx as u32 + 1)
                .expect("directive present")
        };
        assert_eq!(produce.span().line, line_of("produce"));
        assert_eq!(transform.span().line, line_of("transform"));
    }

    #[test]
    fn halo_and_slice_patterns_parse() {
        let spec = "name s\narray a 1MiB\nkernel k\n load a halo 32\n store a slice 0.25 0.75\nsequence k\n";
        let w = parse_workload(spec).unwrap();
        let k = &w.launches()[0].spec;
        assert_eq!(
            k.arrays()[0].pattern,
            AccessPattern::PartitionedHalo { halo_lines: 32 }
        );
        assert_eq!(
            k.arrays()[1].pattern,
            AccessPattern::Slice {
                start: 0.25,
                end: 0.75
            }
        );
    }
}
