//! The paper's 24 evaluated applications (Table II) as behavioural
//! workload models, plus the §VI multi-stream variants.
//!
//! Each workload declares its global-memory arrays (sized from the paper's
//! inputs) and its dynamic kernel launch sequence. Kernels carry declarative
//! access patterns (partitioned, halo'd stencils, shared weights, shrinking
//! slices, irregular gathers) and intensity parameters (compute per line,
//! LDS traffic, L1 hit rate, memory-level parallelism), from which the
//! simulator generates per-chiplet cache-line traces. The models are
//! calibrated to each application's qualitative behaviour as described in
//! the paper's §V (e.g. BabelStream's streaming reuse, Hotspot's compute
//! boundedness, BTree's irregular single-pass lookups).
//!
//! # Example
//!
//! ```
//! let apps = chiplet_workloads::suite();
//! assert_eq!(apps.len(), 24);
//! let bs = chiplet_workloads::by_name("babelstream").expect("exists");
//! assert!(bs.kernel_count() > 10);
//! ```

mod graph;
mod hpc;
mod ml;
mod multistream;
mod rodinia;
pub mod spec;
mod streaming;

pub use spec::{parse_workload, ParseSpecError};

use chiplet_gpu::kernel::KernelSpec;
use chiplet_gpu::stream::StreamId;
use chiplet_gpu::table::ArrayTable;
use chiplet_mem::addr::ChipletId;
use std::fmt;
use std::sync::Arc;

/// Inter-kernel-reuse grouping used throughout the evaluation (paper
/// §IV-D, computed as the miss-rate reduction from inter-kernel reuse with
/// no flush/invalidation overhead).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReuseClass {
    /// Moderate-to-high inter-kernel reuse (18 applications).
    ModerateHigh,
    /// Low-to-no inter-kernel reuse (6 applications).
    Low,
}

impl fmt::Display for ReuseClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReuseClass::ModerateHigh => f.write_str("moderate-high"),
            ReuseClass::Low => f.write_str("low"),
        }
    }
}

/// One kernel launch in a workload's dynamic sequence.
#[derive(Debug, Clone)]
pub struct Launch {
    /// The stream the launch belongs to (single-stream apps use stream 0).
    pub stream: StreamId,
    /// The kernel.
    pub spec: Arc<KernelSpec>,
    /// Chiplet binding of the stream (`None` = all chiplets).
    pub binding: Option<Vec<ChipletId>>,
}

/// A complete application model: allocations plus launch sequence.
#[derive(Debug, Clone)]
pub struct Workload {
    name: String,
    input: String,
    class: ReuseClass,
    arrays: ArrayTable,
    launches: Vec<Launch>,
}

impl Workload {
    /// Assembles a workload.
    ///
    /// # Panics
    ///
    /// Panics if the launch sequence is empty.
    pub fn new(
        name: impl Into<String>,
        input: impl Into<String>,
        class: ReuseClass,
        arrays: ArrayTable,
        launches: Vec<Launch>,
    ) -> Self {
        let launches_ok = !launches.is_empty();
        assert!(launches_ok, "workload must launch at least one kernel");
        Workload {
            name: name.into(),
            input: input.into(),
            class,
            arrays,
            launches,
        }
    }

    /// The workload's (lowercase) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The Table II input description.
    pub fn input(&self) -> &str {
        &self.input
    }

    /// The reuse grouping.
    pub fn class(&self) -> ReuseClass {
        self.class
    }

    /// The allocation table.
    pub fn arrays(&self) -> &ArrayTable {
        &self.arrays
    }

    /// The dynamic launch sequence.
    pub fn launches(&self) -> &[Launch] {
        &self.launches
    }

    /// Number of dynamic kernels.
    pub fn kernel_count(&self) -> usize {
        self.launches.len()
    }

    /// Device-memory footprint in bytes.
    pub fn footprint_bytes(&self) -> u64 {
        self.arrays.footprint_bytes()
    }

    /// Number of distinct streams used.
    pub fn stream_count(&self) -> usize {
        let mut ids: Vec<StreamId> = self.launches.iter().map(|l| l.stream).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }
}

/// Convenience for single-stream apps: wraps kernels as stream-0 launches.
pub(crate) fn single_stream(kernels: Vec<Arc<KernelSpec>>) -> Vec<Launch> {
    kernels
        .into_iter()
        .map(|spec| Launch {
            stream: StreamId::new(0),
            spec,
            binding: None,
        })
        .collect()
}

/// The full 24-application Table II suite, in the paper's order.
pub fn suite() -> Vec<Workload> {
    vec![
        // Moderate-to-high inter-kernel reuse.
        streaming::babelstream(),
        rodinia::backprop(),
        graph::bfs(),
        graph::color_max(),
        graph::fw(),
        rodinia::gaussian(),
        hpc::hacc(),
        rodinia::hotspot3d(),
        rodinia::hotspot(),
        rodinia::lud(),
        hpc::lulesh(),
        hpc::pennant(),
        ml::rnn_gru_small(),
        ml::rnn_gru_large(),
        ml::rnn_lstm_small(),
        ml::rnn_lstm_large(),
        streaming::square(),
        graph::sssp(),
        // Low inter-kernel reuse.
        rodinia::btree(),
        ml::cnn(),
        rodinia::dwt2d(),
        rodinia::nw(),
        streaming::pathfinder(),
        rodinia::srad_v2(),
    ]
}

/// Looks up one suite workload by name (case-insensitive).
pub fn by_name(name: &str) -> Option<Workload> {
    let lower = name.to_lowercase();
    suite().into_iter().find(|w| w.name() == lower)
}

/// Error returned by [`lookup`]: no workload carries the requested name.
/// The message names the missing workload and lists every known name, so
/// a typo in a CLI argument or experiment spec is diagnosable without
/// reading the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownWorkload {
    /// The name that failed to resolve.
    pub name: String,
}

impl fmt::Display for UnknownWorkload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown workload '{}'; known workloads: {}",
            self.name,
            known_names().join(", ")
        )
    }
}

impl std::error::Error for UnknownWorkload {}

/// Every known workload name: the Table II suite followed by the
/// multi-stream study.
pub fn known_names() -> Vec<String> {
    suite()
        .into_iter()
        .chain(multi_stream_suite())
        .map(|w| w.name().to_owned())
        .collect()
}

/// Looks up a workload by (case-insensitive) name across both the Table II
/// suite and the multi-stream study, reporting an [`UnknownWorkload`]
/// error that names the missing workload on failure.
pub fn lookup(name: &str) -> Result<Workload, UnknownWorkload> {
    let lower = name.to_lowercase();
    suite()
        .into_iter()
        .chain(multi_stream_suite())
        .find(|w| w.name() == lower)
        .ok_or(UnknownWorkload {
            name: name.to_owned(),
        })
}

/// The §VI multi-stream study: `streams` (the only multi-stream benchmark
/// in gem5-resources) plus multi-stream extensions of a subset of Table II
/// applications, mimicking concurrent jobs.
pub fn multi_stream_suite() -> Vec<Workload> {
    multistream::suite()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_24_applications() {
        let s = suite();
        assert_eq!(s.len(), 24);
        let moderate = s
            .iter()
            .filter(|w| w.class() == ReuseClass::ModerateHigh)
            .count();
        assert_eq!(moderate, 18);
    }

    #[test]
    fn names_are_unique_and_lowercase() {
        let s = suite();
        let mut names: Vec<_> = s.iter().map(|w| w.name().to_owned()).collect();
        names.sort();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate workload names");
        assert!(names.iter().all(|n| *n == n.to_lowercase()));
    }

    #[test]
    fn by_name_finds_all() {
        for w in suite() {
            assert!(by_name(w.name()).is_some(), "{} not found", w.name());
        }
        assert!(by_name("BabelStream").is_some(), "case-insensitive");
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn lookup_spans_both_suites_and_names_the_missing_workload() {
        assert_eq!(lookup("BFS").unwrap().name(), "bfs");
        assert_eq!(lookup("streams").unwrap().name(), "streams");
        let err = lookup("sqare").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("unknown workload 'sqare'"), "{msg}");
        assert!(msg.contains("square"), "suggestion list names: {msg}");
        assert!(msg.contains("streams"), "multi-stream names listed: {msg}");
    }

    #[test]
    fn every_workload_is_well_formed() {
        for w in suite() {
            assert!(w.kernel_count() >= 1, "{}", w.name());
            assert!(w.footprint_bytes() > 0, "{}", w.name());
            assert!(!w.arrays().is_empty(), "{}", w.name());
            // Kernel array references are valid.
            for l in w.launches() {
                for acc in l.spec.arrays() {
                    assert!(
                        (acc.array.get() as usize) < w.arrays().len(),
                        "{} kernel {} references unknown array",
                        w.name(),
                        l.spec.name()
                    );
                }
            }
        }
    }

    #[test]
    fn dynamic_kernel_counts_match_paper_scale() {
        // The paper reports up to 510 dynamic kernels (Gaussian).
        let max = suite().iter().map(Workload::kernel_count).max().unwrap();
        assert_eq!(max, 510);
        let g = by_name("gaussian").unwrap();
        assert_eq!(g.kernel_count(), 510);
    }

    #[test]
    fn single_stream_apps_use_one_stream() {
        for w in suite() {
            assert_eq!(w.stream_count(), 1, "{}", w.name());
        }
    }

    #[test]
    fn multi_stream_suite_uses_multiple_streams() {
        let ms = multi_stream_suite();
        assert!(!ms.is_empty());
        for w in &ms {
            assert!(w.stream_count() >= 2, "{}", w.name());
        }
    }

    #[test]
    fn high_reuse_streaming_footprints_fit_aggregate_l2() {
        // BabelStream and Square must fit a 4-chiplet aggregate L2 (32 MiB)
        // for the paper's reuse effects to appear.
        for name in ["babelstream", "square"] {
            let w = by_name(name).unwrap();
            assert!(
                w.footprint_bytes() <= 32 << 20,
                "{name} footprint {} too large",
                w.footprint_bytes()
            );
        }
    }

    #[test]
    fn capacity_sensitive_apps_exceed_two_chiplet_l2() {
        // Backprop and Hotspot3D must NOT fit a 2-chiplet aggregate L2
        // (16 MiB): the paper reports no 2-chiplet benefit for them.
        for name in ["backprop", "hotspot3d"] {
            let w = by_name(name).unwrap();
            assert!(
                w.footprint_bytes() > 16 << 20,
                "{name} footprint {} unexpectedly small",
                w.footprint_bytes()
            );
        }
    }
}
