//! The protocol zoo: every coherence/synchronization configuration the
//! paper evaluates, behind one memory-system model.
//!
//! * **Baseline** — the chiplet-extended VIPER protocol: per-chiplet
//!   write-back L2s that cache any address, remote requests forwarded to the
//!   home node's L3 bank, remote stores written through, and conservative
//!   whole-GPU implicit synchronization (flush + invalidate every chiplet's
//!   L2) at every kernel boundary.
//! * **CPElide** — identical datapath to Baseline, but kernel-boundary L2
//!   synchronization is driven by the global CP's Chiplet Coherence Table
//!   (the [`cpelide`] crate): per-chiplet, on demand, usually elided.
//! * **HMG** — the state-of-the-art hierarchical protocol re-implemented
//!   from the paper's description: write-through L2s, remote reads cached,
//!   a per-chiplet coarse directory (12 K entries × 4 lines) whose capacity
//!   evictions invalidate sharers, and *no* bulk L2 synchronization at
//!   kernel boundaries. A write-back ablation variant is included.
//! * **Monolithic** — the infeasible-to-build single-die GPU used by
//!   Figure 2: one aggregated L2, no inter-chiplet link, no L2-level
//!   implicit synchronization.
//!
//! The L1s behave identically in every configuration (write-through,
//! invalidated at each kernel boundary) and are modeled upstream in the
//! simulator.

pub mod config;
pub mod system;

pub use config::{MemConfig, ProtocolKind};
pub use system::{AcquireCost, CostClass, MemorySystem, ReleaseCost};
