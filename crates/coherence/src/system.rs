//! The multi-chiplet memory system: per-chiplet L2s, the banked shared LLC,
//! first-touch page placement, HBM, the HMG directory, and the per-protocol
//! access datapaths.
//!
//! The model is functional (exact hit/miss/eviction/invalidation behaviour)
//! with cost *classification*: every access returns a [`CostClass`] that the
//! simulator maps to Table I latencies, while flit traffic, cache events and
//! HBM accesses are accumulated here for the traffic (Figure 10) and energy
//! (Figure 9) evaluations.

use crate::config::{MemConfig, ProtocolKind};
use chiplet_harness::obs::EventLog;
use chiplet_mem::addr::{ChipletId, LineAddr};
use chiplet_mem::cache::{AccessOutcome, CacheCore, CacheGeometry, CacheStats, WritePolicy};
use chiplet_mem::directory::{CoarseDirectory, DirectoryStats};
use chiplet_mem::hbm::Hbm;
use chiplet_mem::line_state::LineStateTable;
use chiplet_mem::page::FirstTouchPlacement;
use chiplet_mem::{SetAssocCache, LINE_BYTES};
use chiplet_noc::traffic::{FlitCounter, TrafficClass};

/// The service point of one access, mapped to latency by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CostClass {
    /// Served by the chiplet's own L2.
    L2Hit,
    /// Served by a *remote* chiplet's L2 (HMG caches remote accesses at
    /// their home node; Table I's 390-cycle remote L2 latency).
    L2RemoteHit,
    /// Served by an LLC bank (`remote` = the bank lives on another chiplet).
    L3 {
        /// Crossed an inter-chiplet link.
        remote: bool,
    },
    /// Served by HBM behind an LLC bank.
    Mem {
        /// Crossed an inter-chiplet link.
        remote: bool,
    },
    /// A store absorbed by the local write-back L2.
    StoreLocal,
    /// A store written through to its home node's LLC bank.
    StoreThrough {
        /// Crossed an inter-chiplet link.
        remote: bool,
    },
    /// A write-back store that first obtained exclusive ownership from the
    /// home directory (write-back HMG variant: precise tracking makes
    /// every store a directory transaction — the cost the paper cites for
    /// this variant being ~13 % slower).
    StoreOwned {
        /// Crossed an inter-chiplet link.
        remote: bool,
    },
    /// A read serviced by forwarding from another chiplet's dirty L2 copy
    /// (write-back HMG variant only).
    OwnerForward,
}

/// Cost summary of a release (whole-L2 dirty flush).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReleaseCost {
    /// Dirty lines written back to LLC banks on the same chiplet.
    pub local_lines: u64,
    /// Dirty lines written back across an inter-chiplet link.
    pub remote_lines: u64,
}

impl ReleaseCost {
    /// Total lines written back.
    pub fn total_lines(&self) -> u64 {
        self.local_lines + self.remote_lines
    }
}

/// Cost summary of an acquire (whole-L2 flush + invalidate).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AcquireCost {
    /// The embedded flush (dirty lines must not be lost).
    pub flush: ReleaseCost,
    /// Valid lines dropped by the invalidation.
    pub invalidated_lines: u64,
}

/// The simulated memory system for one protocol configuration.
///
/// Generic over the cache implementation so identical traces can be run
/// through the event-driven [`SetAssocCache`] (the default) and the
/// reference [`chiplet_mem::ScanCache`] and compared bit-for-bit.
#[derive(Debug, Clone)]
pub struct MemorySystem<C: CacheCore = SetAssocCache> {
    kind: ProtocolKind,
    config: MemConfig,
    l2: Vec<C>,
    l3: C,
    placement: FirstTouchPlacement,
    hbm: Hbm,
    dirs: Vec<CoarseDirectory>,
    /// Superset sharer/dirty masks per line, maintained only for the HMG
    /// protocol family (the only protocols that ever ask "who else holds
    /// this line?"). Lets the write-back owner probe and future elision
    /// entry points iterate candidate chiplets by popcount instead of
    /// probing every L2.
    line_state: LineStateTable,
    traffic: FlitCounter,
    dir_remote_invalidations: u64,
    /// Per-operation synchronization event log (disabled by default so the
    /// hot paths stay allocation-free; see [`MemorySystem::enable_event_log`]).
    events: EventLog,
}

impl MemorySystem {
    /// Builds the memory system for `kind` with geometry `config`, using
    /// the default event-driven cache core.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent, or if `kind` is
    /// [`ProtocolKind::Monolithic`] with more than one chiplet.
    pub fn new(kind: ProtocolKind, config: MemConfig) -> Self {
        MemorySystem::with_core(kind, config)
    }
}

impl<C: CacheCore> MemorySystem<C> {
    /// Builds the memory system for `kind` with geometry `config` on an
    /// explicit cache core `C`.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent, or if `kind` is
    /// [`ProtocolKind::Monolithic`] with more than one chiplet.
    pub fn with_core(kind: ProtocolKind, config: MemConfig) -> Self {
        if kind == ProtocolKind::Monolithic {
            assert_eq!(
                config.num_chiplets, 1,
                "monolithic systems have a single aggregated die; use \
                 MemConfig::monolithic_equivalent"
            );
        }
        let l2_policy = match kind {
            ProtocolKind::Hmg => WritePolicy::WriteThrough,
            _ => WritePolicy::WriteBack,
        };
        let l2_geom = CacheGeometry::new(config.l2_bytes, LINE_BYTES, config.l2_ways)
            .expect("L2 geometry from Table I is valid"); // chiplet-check: allow(no-panic) — config invariant
        let l3_geom = CacheGeometry::new(config.l3_bytes, LINE_BYTES, config.l3_ways)
            .expect("L3 geometry from Table I is valid"); // chiplet-check: allow(no-panic) — config invariant
        let dirs = if kind.is_hmg() {
            (0..config.num_chiplets)
                .map(|_| {
                    CoarseDirectory::new(
                        config.dir_entries,
                        config.dir_ways,
                        config.dir_region_lines,
                    )
                })
                .collect()
        } else {
            Vec::new()
        };
        MemorySystem {
            kind,
            config,
            l2: (0..config.num_chiplets)
                .map(|_| C::new(l2_geom, l2_policy))
                .collect(),
            l3: C::new(l3_geom, WritePolicy::WriteBack),
            placement: FirstTouchPlacement::new(),
            hbm: Hbm::new(config.num_chiplets),
            dirs,
            line_state: LineStateTable::new(),
            traffic: FlitCounter::new(),
            dir_remote_invalidations: 0,
            events: EventLog::disabled(),
        }
    }

    /// Turns on per-operation event recording (releases, acquires, bulk
    /// syncs). Off by default to keep the access paths cheap.
    pub fn enable_event_log(&mut self) {
        self.events = EventLog::new();
    }

    /// The recorded synchronization events (empty unless
    /// [`MemorySystem::enable_event_log`] was called).
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// The protocol this system simulates.
    pub fn kind(&self) -> ProtocolKind {
        self.kind
    }

    /// The geometry in use.
    pub fn config(&self) -> MemConfig {
        self.config
    }

    /// Cumulative flit traffic.
    pub fn traffic(&self) -> FlitCounter {
        self.traffic
    }

    /// Event counters of one chiplet's L2.
    pub fn l2_stats(&self, c: ChipletId) -> CacheStats {
        self.l2[c.index()].stats()
    }

    /// Aggregate L2 event counters across chiplets.
    pub fn l2_stats_total(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for l2 in &self.l2 {
            total += l2.stats();
        }
        total
    }

    /// Event counters of the LLC.
    pub fn l3_stats(&self) -> CacheStats {
        self.l3.stats()
    }

    /// HBM access counters.
    pub fn hbm(&self) -> &Hbm {
        &self.hbm
    }

    /// Directory counters for `c`'s home directory (zeroes for non-HMG).
    pub fn dir_stats(&self, c: ChipletId) -> DirectoryStats {
        self.dirs
            .get(c.index())
            .map(|d| d.stats())
            .unwrap_or_default()
    }

    /// Total directory evictions across all home directories (0 for
    /// non-HMG protocols).
    pub fn total_dir_evictions(&self) -> u64 {
        self.dirs.iter().map(|d| d.stats().evictions).sum()
    }

    /// Directory-eviction invalidation messages that crossed an
    /// inter-chiplet link. These stall the evicting access while the remote
    /// sharer acknowledges; the simulator charges that occupancy.
    pub fn dir_remote_invalidations(&self) -> u64 {
        self.dir_remote_invalidations
    }

    /// Number of valid lines currently in `c`'s L2 (diagnostics/tests).
    pub fn l2_valid_lines(&self, c: ChipletId) -> u64 {
        self.l2[c.index()].valid_lines()
    }

    /// Number of dirty lines currently in `c`'s L2 (diagnostics/tests).
    pub fn l2_dirty_lines(&self, c: ChipletId) -> u64 {
        self.l2[c.index()].dirty_lines()
    }

    /// The home chiplet of `line`, assigning it by first touch.
    pub fn home_of(&mut self, line: LineAddr, toucher: ChipletId) -> ChipletId {
        if self.config.num_chiplets == 1 {
            return ChipletId::new(0);
        }
        self.placement.home_of(line.page(), toucher)
    }

    fn home_of_resident(&self, line: LineAddr) -> ChipletId {
        self.placement
            .home_if_placed(line.page())
            .unwrap_or(ChipletId::new(0))
    }

    /// L3 read; returns true on hit. Fills on miss and charges HBM.
    fn l3_read(&mut self, line: LineAddr, home: ChipletId) -> bool {
        let out = self.l3.read(line);
        if !out.hit {
            self.hbm.record_read(home);
            if let Some(victim) = out.writeback {
                let victim_home = self.home_of_resident(victim);
                self.hbm.record_write(victim_home);
            }
        }
        out.hit
    }

    /// L3 write (from a write-through store or an L2 writeback).
    fn l3_write(&mut self, line: LineAddr, _home: ChipletId) {
        let out = self.l3.write(line);
        if let Some(victim) = out.writeback {
            let victim_home = self.home_of_resident(victim);
            self.hbm.record_write(victim_home);
        }
    }

    /// Routes one L2 writeback (capacity eviction or flush) downstream.
    fn writeback_line(&mut self, from: ChipletId, line: LineAddr) -> bool {
        let home = self.home_of_resident(line);
        let remote = home != from;
        self.traffic.record_write_transaction(TrafficClass::L2ToL3);
        if remote {
            self.traffic.record_write_transaction(TrafficClass::Remote);
        }
        self.l3_write(line, home);
        remote
    }

    /// L2 access for the HMG family: performs the read and keeps the
    /// line-state masks a superset of true residency (fills add the sharer
    /// bit, evictions — dirty or clean — remove the victim's bits).
    fn l2_read(&mut self, c: ChipletId, line: LineAddr) -> AccessOutcome {
        let out = self.l2[c.index()].read(line);
        if let Some(v) = out.writeback {
            self.line_state.remove_sharer(v, c);
        }
        if let Some(v) = out.clean_eviction {
            self.line_state.remove_sharer(v, c);
        }
        if !out.hit {
            self.line_state.add_sharer(line, c);
        }
        out
    }

    /// L2 store for the HMG family; under write-back the line's dirty mask
    /// bit is set so later owner probes can find it without a full scan.
    fn l2_write(&mut self, c: ChipletId, line: LineAddr) -> AccessOutcome {
        let out = self.l2[c.index()].write(line);
        if let Some(v) = out.writeback {
            self.line_state.remove_sharer(v, c);
        }
        if let Some(v) = out.clean_eviction {
            self.line_state.remove_sharer(v, c);
        }
        if self.kind == ProtocolKind::HmgWriteBack {
            self.line_state.mark_dirty(line, c);
        } else {
            self.line_state.add_sharer(line, c);
        }
        out
    }

    /// Targeted L2 invalidation for the HMG family, with mask maintenance.
    fn l2_invalidate_line(&mut self, c: ChipletId, line: LineAddr) -> Option<bool> {
        let r = self.l2[c.index()].invalidate_line(line);
        if r.is_some() {
            self.line_state.remove_sharer(line, c);
        }
        r
    }

    /// Targeted L2 writeback for the HMG family, with mask maintenance.
    fn l2_flush_line(&mut self, c: ChipletId, line: LineAddr) -> bool {
        let r = self.l2[c.index()].flush_line(line);
        if r {
            self.line_state.clear_dirty(line, c);
        }
        r
    }

    /// Registers `sharer` in `home`'s directory, invalidating displaced
    /// regions at their sharers (HMG only). Home-local fills are served
    /// under the home's own bank and are not tracked; directory capacity is
    /// consumed by *remote* sharers — whose coarse 4-lines-per-entry
    /// tracking is exactly where HMG hurts (paper §V-B). A capacity
    /// eviction drops every covered line from every sharer's L2 —
    /// destroying reuse — and each cross-link invalidation additionally
    /// stalls the evicting access (counted in `dir_remote_invalidations`).
    fn dir_record(&mut self, home: ChipletId, line: LineAddr, sharer: ChipletId) {
        if sharer == home {
            return;
        }
        let update = self.dirs[home.index()].record_sharer(line, sharer);
        if let Some(ev) = update.evicted {
            let writeback = self.kind == ProtocolKind::HmgWriteBack;
            for s in ev.sharers.iter() {
                // One invalidation message per sharer per region.
                if s == home {
                    self.traffic.record_control(TrafficClass::L2ToL3);
                } else {
                    self.traffic.record_control(TrafficClass::Remote);
                    self.dir_remote_invalidations += 1;
                }
                for i in 0..ev.lines {
                    let l = ev.first_line.step(i);
                    if let Some(was_dirty) = self.l2_invalidate_line(s, l) {
                        if was_dirty && writeback {
                            self.writeback_line(s, l);
                        }
                    }
                }
            }
        }
    }

    /// Performs one read that missed the L1. Returns its cost class.
    pub fn read(&mut self, c: ChipletId, line: LineAddr) -> CostClass {
        self.traffic.record_read_transaction(TrafficClass::L1ToL2);
        match self.kind {
            ProtocolKind::Baseline | ProtocolKind::CpElide | ProtocolKind::Monolithic => {
                self.read_viper(c, line)
            }
            ProtocolKind::Hmg => self.read_hmg(c, line),
            ProtocolKind::HmgWriteBack => self.read_hmg_wb(c, line),
        }
    }

    fn read_viper(&mut self, c: ChipletId, line: LineAddr) -> CostClass {
        let home = self.home_of(line, c);
        if home != c {
            // Remote requests are forwarded to the home node's LLC bank and
            // are NOT cached in the requester's L2 (paper §IV-C: "Baseline
            // forwards remote requests to the home node"; §V-B: "CPElide
            // does not cache remote reads").
            self.traffic.record_read_transaction(TrafficClass::L2ToL3);
            self.traffic.record_read_transaction(TrafficClass::Remote);
            return if self.l3_read(line, home) {
                CostClass::L3 { remote: true }
            } else {
                CostClass::Mem { remote: true }
            };
        }
        let out = self.l2[c.index()].read(line);
        if out.hit {
            return CostClass::L2Hit;
        }
        if let Some(victim) = out.writeback {
            self.writeback_line(c, victim);
        }
        self.traffic.record_read_transaction(TrafficClass::L2ToL3);
        if self.l3_read(line, home) {
            CostClass::L3 { remote: false }
        } else {
            CostClass::Mem { remote: false }
        }
    }

    fn read_hmg(&mut self, c: ChipletId, line: LineAddr) -> CostClass {
        let out = self.l2_read(c, line);
        let home = self.home_of(line, c);
        if out.hit {
            return CostClass::L2Hit;
        }
        // Write-through L2 never has dirty victims.
        let remote = home != c;
        self.traffic.record_read_transaction(TrafficClass::L2ToL3);
        if !remote {
            return if self.l3_read(line, home) {
                CostClass::L3 { remote: false }
            } else {
                CostClass::Mem { remote: false }
            };
        }
        // Remote request: HMG caches remote accesses at their home node
        // (paper SV-B), so the home's L2 is probed before its LLC bank and
        // filled on the way back - contending with the home's local data.
        self.traffic.record_read_transaction(TrafficClass::Remote);
        self.dir_record(home, line, c);
        if self.l2_read(home, line).hit {
            return CostClass::L2RemoteHit;
        }
        if self.l3_read(line, home) {
            CostClass::L3 { remote: true }
        } else {
            CostClass::Mem { remote: true }
        }
    }

    fn read_hmg_wb(&mut self, c: ChipletId, line: LineAddr) -> CostClass {
        let out = self.l2_read(c, line);
        let home = self.home_of(line, c);
        if out.hit {
            return CostClass::L2Hit;
        }
        if let Some(victim) = out.writeback {
            self.writeback_line(c, victim);
        }
        let remote = home != c;
        self.traffic.record_read_transaction(TrafficClass::L2ToL3);
        if remote {
            self.traffic.record_read_transaction(TrafficClass::Remote);
        }
        // Another chiplet may own the line dirty: forward from the owner,
        // flushing its copy to the LLC on the way (3-hop transaction). The
        // line-state dirty mask narrows the probe to candidate chiplets in
        // ascending order (a superset, so each candidate is verified with a
        // real probe — same outcome as scanning every L2).
        let owner = self
            .line_state
            .dirty_candidates(line)
            .find(|&o| o != c && self.l2[o.index()].probe_dirty(line));
        self.dir_record(home, line, c);
        if let Some(o) = owner {
            self.l2_flush_line(o, line);
            self.writeback_line(o, line);
            self.l3.read(line); // now present and clean downstream
            return CostClass::OwnerForward;
        }
        if self.l3_read(line, home) {
            CostClass::L3 { remote }
        } else {
            CostClass::Mem { remote }
        }
    }

    /// Performs one store (GPU L1s are write-through, so every store
    /// reaches the L2 level). Returns its cost class.
    pub fn write(&mut self, c: ChipletId, line: LineAddr) -> CostClass {
        self.traffic.record_write_transaction(TrafficClass::L1ToL2);
        match self.kind {
            ProtocolKind::Baseline | ProtocolKind::CpElide | ProtocolKind::Monolithic => {
                self.write_viper(c, line)
            }
            ProtocolKind::Hmg => self.write_hmg(c, line),
            ProtocolKind::HmgWriteBack => self.write_hmg_wb(c, line),
        }
    }

    fn write_viper(&mut self, c: ChipletId, line: LineAddr) -> CostClass {
        let home = self.home_of(line, c);
        if home == c {
            // Local stores write back: allocate dirty in the local L2.
            let out = self.l2[c.index()].write(line);
            if let Some(victim) = out.writeback {
                self.writeback_line(c, victim);
            }
            CostClass::StoreLocal
        } else {
            // Remote stores write through to the home node without a local
            // allocation (no remote-store reuse in the baseline protocol).
            self.traffic.record_write_transaction(TrafficClass::L2ToL3);
            self.traffic.record_write_transaction(TrafficClass::Remote);
            self.l3_write(line, home);
            CostClass::StoreThrough { remote: true }
        }
    }

    fn write_hmg(&mut self, c: ChipletId, line: LineAddr) -> CostClass {
        let home = self.home_of(line, c);
        let remote = home != c;
        // Write-through: keep a clean local copy, push the store to the
        // home node's LLC bank.
        self.l2_write(c, line);
        self.traffic.record_write_transaction(TrafficClass::L2ToL3);
        if remote {
            self.traffic.record_write_transaction(TrafficClass::Remote);
        }
        self.l3_write(line, home);
        self.invalidate_other_sharers(home, line, c);
        // The home chiplet's own (untracked) copy must not go stale.
        if remote {
            self.l2_invalidate_line(home, line);
        }
        self.dir_record(home, line, c);
        CostClass::StoreThrough { remote }
    }

    fn write_hmg_wb(&mut self, c: ChipletId, line: LineAddr) -> CostClass {
        let home = self.home_of(line, c);
        // Write-back everywhere, but the home directory must grant
        // exclusive ownership before the line may be dirtied locally (a
        // remote round trip when the home is another chiplet).
        let remote = home != c;
        if remote {
            self.traffic.record_control(TrafficClass::Remote);
        }
        let out = self.l2_write(c, line);
        if let Some(victim) = out.writeback {
            self.writeback_line(c, victim);
        }
        self.invalidate_other_sharers(home, line, c);
        if remote {
            self.l2_invalidate_line(home, line);
        }
        self.dir_record(home, line, c);
        CostClass::StoreOwned { remote }
    }

    /// Directory-precise invalidation of every sharer of `line` except the
    /// writer (HMG keeps L2s coherent on stores).
    fn invalidate_other_sharers(&mut self, home: ChipletId, line: LineAddr, writer: ChipletId) {
        let sharers = self.dirs[home.index()].sharers_of(line);
        for s in sharers.iter() {
            if s == writer {
                continue;
            }
            if s == home {
                self.traffic.record_control(TrafficClass::L2ToL3);
            } else {
                self.traffic.record_control(TrafficClass::Remote);
                self.dir_remote_invalidations += 1;
            }
            if let Some(was_dirty) = self.l2_invalidate_line(s, line) {
                if was_dirty && self.kind == ProtocolKind::HmgWriteBack {
                    self.writeback_line(s, line);
                }
            }
            self.dirs[home.index()].remove_sharer(line, s);
        }
    }

    /// An implicit *release* on `c`: writes back every dirty L2 line,
    /// retaining clean copies. Writebacks are routed to each line's home.
    pub fn release(&mut self, c: ChipletId) -> ReleaseCost {
        let lines = self.l2[c.index()].flush_dirty_lines();
        let track = self.kind.is_hmg();
        let mut cost = ReleaseCost::default();
        for line in lines {
            if track {
                self.line_state.clear_dirty(line, c);
            }
            if self.writeback_line(c, line) {
                cost.remote_lines += 1;
            } else {
                cost.local_lines += 1;
            }
        }
        self.events.record(
            "l2_release",
            vec![
                ("chiplet", c.index() as f64),
                ("local_lines", cost.local_lines as f64),
                ("remote_lines", cost.remote_lines as f64),
            ],
        );
        cost
    }

    /// An implicit *acquire* on `c`: flushes dirty data (so nothing is
    /// lost), then drops every line.
    pub fn acquire(&mut self, c: ChipletId) -> AcquireCost {
        let flush = self.release(c);
        let inv = self.l2[c.index()].invalidate_all();
        if self.kind.is_hmg() {
            self.line_state.clear_chiplet(c);
        }
        debug_assert_eq!(inv.dirty_dropped, 0, "flush must precede invalidate");
        self.events.record(
            "l2_acquire",
            vec![
                ("chiplet", c.index() as f64),
                ("invalidated_lines", inv.lines_invalidated as f64),
            ],
        );
        AcquireCost {
            flush,
            invalidated_lines: inv.lines_invalidated,
        }
    }

    /// The conservative whole-GPU kernel-boundary synchronization the
    /// Baseline performs: acquire (flush+invalidate) on every chiplet.
    pub fn bulk_sync_all(&mut self) -> Vec<AcquireCost> {
        (0..self.config.num_chiplets)
            .map(|i| self.acquire(ChipletId::new(i as u8)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(n: usize) -> MemConfig {
        MemConfig {
            num_chiplets: n,
            l2_bytes: 64 * 64, // 64 lines
            l2_ways: 4,
            l3_bytes: 64 * 256,
            l3_ways: 8,
            dir_entries: 32,
            dir_ways: 4,
            dir_region_lines: 4,
        }
    }

    fn c(i: u8) -> ChipletId {
        ChipletId::new(i)
    }

    fn l(i: u64) -> LineAddr {
        LineAddr::new(i)
    }

    #[test]
    fn viper_read_miss_then_hit() {
        let mut m = MemorySystem::new(ProtocolKind::Baseline, small_config(2));
        let first = m.read(c(0), l(0));
        assert_eq!(first, CostClass::Mem { remote: false });
        let second = m.read(c(0), l(0));
        assert_eq!(second, CostClass::L2Hit);
    }

    #[test]
    fn first_touch_makes_later_chiplet_remote() {
        let mut m = MemorySystem::new(ProtocolKind::Baseline, small_config(2));
        m.read(c(0), l(0)); // chiplet 0 becomes home of page 0
        let r = m.read(c(1), l(1)); // same page, chiplet 1 -> remote, L3 hit
        assert!(matches!(
            r,
            CostClass::L3 { remote: true } | CostClass::Mem { remote: true }
        ));
    }

    #[test]
    fn viper_local_store_is_dirty_until_release() {
        let mut m = MemorySystem::new(ProtocolKind::Baseline, small_config(2));
        assert_eq!(m.write(c(0), l(0)), CostClass::StoreLocal);
        assert_eq!(m.l2_dirty_lines(c(0)), 1);
        let rel = m.release(c(0));
        assert_eq!(rel.total_lines(), 1);
        assert_eq!(rel.local_lines, 1, "home is local by first touch");
        assert_eq!(m.l2_dirty_lines(c(0)), 0);
        assert_eq!(m.l2_valid_lines(c(0)), 1, "clean copy retained");
    }

    #[test]
    fn viper_remote_store_writes_through_without_local_copy() {
        let mut m = MemorySystem::new(ProtocolKind::Baseline, small_config(2));
        m.read(c(0), l(0)); // home page 0 at chiplet 0
        let w = m.write(c(1), l(0));
        assert_eq!(w, CostClass::StoreThrough { remote: true });
        assert_eq!(m.l2_valid_lines(c(1)), 0);
        assert!(m.traffic().remote > 0);
    }

    #[test]
    fn acquire_empties_l2_and_preserves_dirty_data() {
        let mut m = MemorySystem::new(ProtocolKind::Baseline, small_config(2));
        m.write(c(0), l(0));
        m.read(c(0), l(1));
        let a = m.acquire(c(0));
        assert_eq!(a.flush.total_lines(), 1);
        assert_eq!(a.invalidated_lines, 2);
        assert_eq!(m.l2_valid_lines(c(0)), 0);
        // The flushed value is now in the LLC: a re-read hits L3.
        assert_eq!(m.read(c(0), l(0)), CostClass::L3 { remote: false });
    }

    #[test]
    fn bulk_sync_covers_all_chiplets() {
        let mut m = MemorySystem::new(ProtocolKind::Baseline, small_config(4));
        for i in 0..4u8 {
            m.write(c(i), l(u64::from(i) * 1000));
        }
        let costs = m.bulk_sync_all();
        assert_eq!(costs.len(), 4);
        for (i, a) in costs.iter().enumerate() {
            assert_eq!(a.flush.total_lines(), 1, "chiplet {i}");
        }
    }

    #[test]
    fn hmg_store_is_never_dirty_and_generates_l2_l3_traffic() {
        let mut m = MemorySystem::new(ProtocolKind::Hmg, small_config(2));
        let before = m.traffic().l2_l3;
        assert_eq!(
            m.write(c(0), l(0)),
            CostClass::StoreThrough { remote: false }
        );
        assert_eq!(m.l2_dirty_lines(c(0)), 0);
        assert!(m.traffic().l2_l3 > before, "write-through traffic");
        // The local clean copy serves later reads.
        assert_eq!(m.read(c(0), l(0)), CostClass::L2Hit);
    }

    #[test]
    fn hmg_remote_read_is_cached_for_reuse() {
        let mut m = MemorySystem::new(ProtocolKind::Hmg, small_config(2));
        m.read(c(0), l(0)); // home at 0, cached in 0's L2
                            // Remote read is served by the home node's L2 (Table I: 390 cyc).
        let first = m.read(c(1), l(0));
        assert_eq!(first, CostClass::L2RemoteHit);
        // HMG also caches the remote read locally: the next access hits.
        assert_eq!(m.read(c(1), l(0)), CostClass::L2Hit);
    }

    #[test]
    fn hmg_remote_miss_fills_home_node() {
        let mut m = MemorySystem::new(ProtocolKind::Hmg, small_config(2));
        m.read(c(0), l(64)); // establish chiplet 0 as home of page 1
        m.read(c(1), l(65)); // remote miss: home L2 miss -> LLC -> fills home
        assert!(m.l2_valid_lines(c(0)) >= 2, "home caches the remote access");
    }

    #[test]
    fn hmg_write_invalidates_other_sharers() {
        let mut m = MemorySystem::new(ProtocolKind::Hmg, small_config(2));
        m.read(c(0), l(0));
        m.read(c(1), l(0)); // both share the line
        assert_eq!(m.l2_valid_lines(c(1)), 1);
        m.write(c(0), l(0));
        assert_eq!(m.l2_valid_lines(c(1)), 0, "sharer invalidated precisely");
        // Coherent without any kernel-boundary bulk operation: the re-read
        // is served by the home (writer's) L2.
        assert_eq!(m.read(c(1), l(0)), CostClass::L2RemoteHit);
        assert!(m.dir_remote_invalidations() > 0);
    }

    #[test]
    fn hmg_directory_eviction_invalidates_cached_regions() {
        let mut cfg = small_config(2);
        cfg.dir_entries = 4; // tiny directory to force evictions
        cfg.dir_ways = 4;
        let mut m = MemorySystem::new(ProtocolKind::Hmg, cfg);
        m.read(c(0), l(0)); // chiplet 0 becomes home of page 0
                            // Chiplet 1 caches remote lines, each tracked at chiplet 0's
                            // directory. Five distinct regions overflow the 4-entry directory.
        for r in 0..=4u64 {
            m.read(c(1), l(r * 4));
        }
        assert!(m.dir_stats(c(0)).evictions > 0);
        assert_eq!(m.total_dir_evictions(), m.dir_stats(c(0)).evictions);
        // Region 0's line was invalidated in chiplet 1's L2 by the eviction.
        let again = m.read(c(1), l(0));
        assert_ne!(again, CostClass::L2Hit, "reuse destroyed by dir eviction");
    }

    #[test]
    fn hmg_local_fills_are_not_tracked() {
        let mut cfg = small_config(2);
        cfg.dir_entries = 4;
        cfg.dir_ways = 4;
        let mut m = MemorySystem::new(ProtocolKind::Hmg, cfg);
        // Home-local reads consume no directory capacity: the home bank
        // keeps its own lines coherent without sharer tracking.
        for r in 0..100u64 {
            m.read(c(0), l(r * 4));
        }
        assert_eq!(m.dir_stats(c(0)).evictions, 0);
        assert_eq!(m.dir_remote_invalidations(), 0);
    }

    #[test]
    fn hmg_remote_write_invalidates_home_copy() {
        let mut m = MemorySystem::new(ProtocolKind::Hmg, small_config(2));
        m.read(c(0), l(0)); // home 0 caches its own line
        assert_eq!(m.l2_valid_lines(c(0)), 1);
        m.write(c(1), l(0)); // remote write-through
        assert_eq!(m.l2_valid_lines(c(0)), 0, "home copy must not go stale");
    }

    #[test]
    fn hmg_wb_forwards_from_dirty_owner() {
        let mut m = MemorySystem::new(ProtocolKind::HmgWriteBack, small_config(2));
        m.read(c(0), l(0)); // home at 0
        m.write(c(1), l(0)); // chiplet 1 holds it dirty (write-back)
        assert_eq!(m.l2_dirty_lines(c(1)), 1);
        // Writer invalidated chiplet 0's copy; 0 re-reads -> owner forward.
        let r = m.read(c(0), l(0));
        assert_eq!(r, CostClass::OwnerForward);
        assert_eq!(m.l2_dirty_lines(c(1)), 0, "owner flushed on forward");
    }

    #[test]
    fn monolithic_has_no_remote_accesses() {
        let mut m = MemorySystem::new(
            ProtocolKind::Monolithic,
            MemConfig {
                num_chiplets: 1,
                ..small_config(1)
            },
        );
        for i in 0..100u64 {
            let r = m.read(c(0), l(i * 17));
            assert!(matches!(
                r,
                CostClass::L2Hit
                    | CostClass::L3 { remote: false }
                    | CostClass::Mem { remote: false }
            ));
        }
        assert_eq!(m.traffic().remote, 0);
    }

    #[test]
    #[should_panic(expected = "single aggregated die")]
    fn monolithic_rejects_multi_chiplet() {
        let _ = MemorySystem::new(ProtocolKind::Monolithic, small_config(2));
    }

    #[test]
    fn l3_miss_charges_hbm_and_eviction_writes_back() {
        let mut m = MemorySystem::new(ProtocolKind::Baseline, small_config(1));
        // Write enough distinct lines to overflow L2 (64 lines) and L3
        // (256 lines): dirty L2 victims flow to L3; L3 victims reach HBM.
        for i in 0..1000u64 {
            m.write(c(0), l(i));
        }
        // Reads of fresh lines must come from memory.
        let r = m.read(c(0), l(5000));
        assert_eq!(r, CostClass::Mem { remote: false });
        assert!(m.hbm().total_writes() > 0, "L3 evictions reach HBM");
        assert!(m.hbm().total_reads() > 0);
    }

    #[test]
    fn event_log_records_sync_ops_when_enabled() {
        let mut m = MemorySystem::new(ProtocolKind::Baseline, small_config(2));
        m.write(c(0), l(0));
        m.release(c(0));
        assert!(m.events().is_empty(), "logging is off by default");
        m.enable_event_log();
        m.write(c(0), l(1));
        m.release(c(0));
        m.acquire(c(1));
        // release + acquire's embedded release + acquire itself.
        assert_eq!(m.events().len(), 3);
        assert_eq!(m.events().events()[0].label, "l2_release");
        assert_eq!(m.events().events()[0].field("local_lines"), Some(1.0));
        assert_eq!(m.events().events()[2].label, "l2_acquire");
    }

    #[test]
    fn traffic_categories_accumulate() {
        let mut m = MemorySystem::new(ProtocolKind::Baseline, small_config(2));
        m.read(c(0), l(0));
        let t = m.traffic();
        assert!(t.l1_l2 > 0);
        assert!(t.l2_l3 > 0);
        assert_eq!(t.remote, 0, "local miss crosses no link");
    }
}
