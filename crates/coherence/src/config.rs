//! Memory-system configuration shared by all protocols.

use std::fmt;

/// Which protocol/synchronization configuration to simulate (paper §IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// Chiplet-extended VIPER with conservative whole-GPU implicit
    /// synchronization at every kernel boundary.
    Baseline,
    /// Baseline datapath, CP-driven (mostly elided) synchronization.
    CpElide,
    /// HMG with write-through L2s (the variant the paper evaluates).
    Hmg,
    /// HMG's write-back L2 ablation variant (≈13 % worse; paper §IV-C).
    HmgWriteBack,
    /// The equivalent monolithic (single-die) GPU of Figure 2.
    Monolithic,
}

impl ProtocolKind {
    /// All protocol kinds, in presentation order.
    pub const ALL: [ProtocolKind; 5] = [
        ProtocolKind::Baseline,
        ProtocolKind::CpElide,
        ProtocolKind::Hmg,
        ProtocolKind::HmgWriteBack,
        ProtocolKind::Monolithic,
    ];

    /// Short label used in reports ("B", "C", "H" in Figures 9/10).
    pub fn label(self) -> &'static str {
        match self {
            ProtocolKind::Baseline => "Baseline",
            ProtocolKind::CpElide => "CPElide",
            ProtocolKind::Hmg => "HMG",
            ProtocolKind::HmgWriteBack => "HMG-WB",
            ProtocolKind::Monolithic => "Monolithic",
        }
    }

    /// The inverse of [`Self::label`], case-insensitively: parses a
    /// report label (`"CPElide"`, `"baseline"`, ...) back into the kind.
    /// This is the validation seam for externally-supplied protocol names
    /// (the campaign daemon's sweep requests); `None` means the label
    /// matches no registered protocol.
    pub fn from_label(label: &str) -> Option<ProtocolKind> {
        Self::ALL
            .into_iter()
            .find(|k| k.label().eq_ignore_ascii_case(label))
    }

    /// True if this configuration performs conservative whole-GPU L2
    /// flush+invalidate at every kernel boundary.
    pub fn bulk_sync_at_boundaries(self) -> bool {
        matches!(self, ProtocolKind::Baseline)
    }

    /// True for the HMG family (directory + no bulk sync).
    pub fn is_hmg(self) -> bool {
        matches!(self, ProtocolKind::Hmg | ProtocolKind::HmgWriteBack)
    }
}

impl fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Geometry of the simulated memory system (Table I defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemConfig {
    /// Number of GPU chiplets (1 for monolithic).
    pub num_chiplets: usize,
    /// Per-chiplet L2 capacity in bytes (8 MiB in Table I).
    pub l2_bytes: u64,
    /// L2 associativity (32 ways).
    pub l2_ways: u32,
    /// Shared LLC capacity in bytes (16 MiB).
    pub l3_bytes: u64,
    /// L3 associativity (16 ways).
    pub l3_ways: u32,
    /// HMG directory entries per chiplet (sized per paper footnote 4).
    pub dir_entries: u64,
    /// Directory associativity.
    pub dir_ways: u32,
    /// Cache lines covered by one directory entry (4).
    pub dir_region_lines: u64,
}

impl MemConfig {
    /// The paper's Table I configuration for an `n`-chiplet GPU.
    ///
    /// # Panics
    ///
    /// Panics if `num_chiplets` is 0 or exceeds 16.
    pub fn table1(num_chiplets: usize) -> Self {
        assert!(
            (1..=16).contains(&num_chiplets),
            "1..=16 chiplets supported"
        );
        MemConfig {
            num_chiplets,
            l2_bytes: 8 << 20,
            l2_ways: 32,
            l3_bytes: 16 << 20,
            l3_ways: 16,
            // gem5 uses 64 B lines (vs NVArchSim's 128 B), doubling the
            // entry count for a given byte coverage (paper footnote 4);
            // 16K entries x 4 lines cover the "64K cache lines" of SIV-C.
            dir_entries: 16 * 1024,
            dir_ways: 8,
            dir_region_lines: 4,
        }
    }

    /// The equivalent monolithic GPU for an `n`-chiplet system: one "chiplet"
    /// whose L2 aggregates the chiplets' capacity (Figure 2's comparison).
    pub fn monolithic_equivalent(num_chiplets: usize) -> Self {
        let base = Self::table1(num_chiplets);
        MemConfig {
            num_chiplets: 1,
            l2_bytes: base.l2_bytes * num_chiplets as u64,
            ..base
        }
    }

    /// Aggregate L2 capacity across chiplets.
    pub fn aggregate_l2_bytes(&self) -> u64 {
        self.l2_bytes * self.num_chiplets as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let c = MemConfig::table1(4);
        assert_eq!(c.l2_bytes, 8 << 20);
        assert_eq!(c.l2_ways, 32);
        assert_eq!(c.l3_bytes, 16 << 20);
        assert_eq!(c.l3_ways, 16);
        assert_eq!(c.dir_entries, 16 * 1024);
        assert_eq!(c.dir_region_lines, 4);
        assert_eq!(c.aggregate_l2_bytes(), 32 << 20);
    }

    #[test]
    fn monolithic_aggregates_l2() {
        let m = MemConfig::monolithic_equivalent(4);
        assert_eq!(m.num_chiplets, 1);
        assert_eq!(m.l2_bytes, 32 << 20);
    }

    #[test]
    fn kind_labels() {
        assert_eq!(ProtocolKind::Baseline.label(), "Baseline");
        assert!(ProtocolKind::Baseline.bulk_sync_at_boundaries());
        assert!(!ProtocolKind::CpElide.bulk_sync_at_boundaries());
        assert!(ProtocolKind::Hmg.is_hmg());
        assert!(ProtocolKind::HmgWriteBack.is_hmg());
        assert!(!ProtocolKind::Monolithic.is_hmg());
        assert_eq!(ProtocolKind::ALL.len(), 5);
    }
}
