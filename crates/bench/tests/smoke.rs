//! Smoke-runs every figure binary in the tiny `CPELIDE_SMOKE`
//! configuration and checks that it exits cleanly and drops a well-formed
//! JSON report into its results directory.

use chiplet_harness::json::validate;
use std::path::PathBuf;
use std::process::Command;

/// Runs one binary under smoke mode with an isolated results directory
/// and returns the rendered JSON report.
fn smoke_run(exe: &str, artifact: &str) -> String {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("smoke-{artifact}"));
    let _ = std::fs::remove_dir_all(&dir);
    let output = Command::new(exe)
        .env("CPELIDE_SMOKE", "1")
        .env("CPELIDE_RESULTS_DIR", &dir)
        .output()
        .unwrap_or_else(|e| panic!("spawn {artifact}: {e}"));
    assert!(
        output.status.success(),
        "{artifact} exited with {:?}\nstdout:\n{}\nstderr:\n{}",
        output.status,
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
    let path = dir.join(format!("{artifact}.json"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{artifact} wrote no report at {}: {e}", path.display()));
    validate(&text).unwrap_or_else(|e| panic!("{artifact} report is malformed JSON: {e}"));
    text
}

macro_rules! smoke_test {
    ($name:ident) => {
        #[test]
        fn $name() {
            smoke_run(
                env!(concat!("CARGO_BIN_EXE_", stringify!($name))),
                stringify!($name),
            );
        }
    };
}

smoke_test!(all);
smoke_test!(beyond7);
smoke_test!(driver_study);
smoke_test!(fig2);
smoke_test!(fig8);
smoke_test!(fig9);
smoke_test!(fig10);
smoke_test!(hmg_ablation);
smoke_test!(multistream);
smoke_test!(scaling);
smoke_test!(sensitivity);
smoke_test!(table1);
smoke_test!(table2);
smoke_test!(table3);
smoke_test!(table_occupancy);

/// The deep-dive binary must export the full per-run sync counters and
/// the per-boundary event log for the CPElide run.
#[test]
fn probe() {
    let text = smoke_run(env!("CARGO_BIN_EXE_probe"), "probe");
    for key in [
        "\"acquires_performed\"",
        "\"acquires_elided\"",
        "\"releases_elided\"",
        "\"invalidated_lines\"",
        "\"remote_bytes\"",
        "\"kernel_boundary\"",
        "\"final_drain\"",
    ] {
        assert!(text.contains(key), "probe report lacks {key}");
    }
}
