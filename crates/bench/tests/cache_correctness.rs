//! Cache correctness for the campaign runner: cache keys are content
//! hashes of every simulation input, so editing one workload definition
//! invalidates exactly that workload's cells, cached and fresh cells are
//! interchangeable in the report, and corrupt entries fall through to
//! re-simulation instead of poisoning the results.

use chiplet_harness::fleet::DiskCache;
use chiplet_sim::experiments::Cell;
use chiplet_workloads::spec::parse_workload;
use chiplet_workloads::Workload;
use cpelide_bench::campaign::{self, CellSpec, SuiteTag, PROTOCOLS};
use std::path::{Path, PathBuf};

const ALPHA: &str = r#"
name alpha
input "tiny"
class moderate-high
array a 64KiB
kernel k
  wgs 64
  load  a partitioned
  store a partitioned
sequence repeat 2 { k }
"#;

const BETA: &str = r#"
name beta
input "tiny"
class low
array b 64KiB
kernel k
  wgs 64
  load b shared
sequence repeat 2 { k }
"#;

fn fresh_dir(sub: &str) -> PathBuf {
    let p = Path::new(env!("CARGO_TARGET_TMPDIR"))
        .join("cache_correctness")
        .join(sub);
    let _ = std::fs::remove_dir_all(&p);
    p
}

fn specs_for(w: &Workload, chiplets: usize) -> Vec<CellSpec> {
    PROTOCOLS
        .iter()
        .map(|&p| CellSpec {
            cell: Cell::new(w.clone(), p, chiplets),
            suite: SuiteTag::Main,
        })
        .collect()
}

#[test]
fn mutating_one_workload_invalidates_exactly_its_cells() {
    let cache = DiskCache::new(fresh_dir("mutate"));
    let alpha = parse_workload(ALPHA).expect("alpha spec parses");
    let beta = parse_workload(BETA).expect("beta spec parses");
    let mut specs = specs_for(&alpha, 2);
    specs.extend(specs_for(&beta, 2));

    let first = campaign::run(&specs, 2, Some(&cache), None, false);
    assert_eq!(first.failed, 0);
    assert_eq!(
        first.simulated,
        specs.len(),
        "cold cache simulates all cells"
    );
    assert_eq!(first.cached, 0);

    let second = campaign::run(&specs, 2, Some(&cache), None, false);
    assert_eq!(second.simulated, 0, "warm cache simulates nothing");
    assert_eq!(second.cached, specs.len());
    assert!(
        first.report.render() == second.report.render(),
        "cached and fresh cells must be interchangeable in the report"
    );

    // Edit one field of alpha's definition; beta is untouched.
    let alpha2 = parse_workload(&ALPHA.replace("64KiB", "128KiB")).expect("mutated alpha parses");
    let mut mutated = specs_for(&alpha2, 2);
    mutated.extend(specs_for(&beta, 2));
    let third = campaign::run(&mutated, 2, Some(&cache), None, false);
    assert_eq!(
        third.simulated,
        PROTOCOLS.len(),
        "exactly the mutated workload's cells re-simulate"
    );
    assert_eq!(third.cached, PROTOCOLS.len(), "beta's cells stay cached");

    // The invalidation is visible in the fingerprints themselves.
    for (a, a2) in specs_for(&alpha, 2).iter().zip(&specs_for(&alpha2, 2)) {
        assert_ne!(a.fingerprint(), a2.fingerprint());
    }
    for (b, b2) in specs_for(&beta, 2).iter().zip(&specs_for(&beta, 2)) {
        assert_eq!(b.fingerprint(), b2.fingerprint());
    }
}

#[test]
fn chiplet_count_is_part_of_the_cache_key() {
    let alpha = parse_workload(ALPHA).expect("alpha spec parses");
    let at2: Vec<String> = specs_for(&alpha, 2)
        .iter()
        .map(CellSpec::fingerprint)
        .collect();
    let at4: Vec<String> = specs_for(&alpha, 4)
        .iter()
        .map(CellSpec::fingerprint)
        .collect();
    for (a, b) in at2.iter().zip(&at4) {
        assert_ne!(
            a, b,
            "same workload at another count must not share a cache entry"
        );
    }
}

#[test]
fn corrupt_cache_entries_fall_through_to_resimulation() {
    let cache = DiskCache::new(fresh_dir("corrupt"));
    let beta = parse_workload(BETA).expect("beta spec parses");
    let specs = specs_for(&beta, 2);

    let first = campaign::run(&specs, 1, Some(&cache), None, false);
    assert_eq!(first.simulated, specs.len());

    // Clobber one entry with garbage; the runner must re-simulate that
    // cell (and only that cell) rather than trust it.
    cache
        .store(&specs[0].fingerprint(), "not json at all")
        .expect("overwrite a cache entry");
    let second = campaign::run(&specs, 1, Some(&cache), None, false);
    assert_eq!(second.simulated, 1, "the corrupt entry re-simulates");
    assert_eq!(second.cached, specs.len() - 1);
    assert!(
        first.report.render() == second.report.render(),
        "recovery must not change the report"
    );
}
