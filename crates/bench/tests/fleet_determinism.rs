//! End-to-end determinism tests for the `campaign` binary: the rendered
//! `campaign.json` must be byte-identical at any `CPELIDE_JOBS` setting,
//! must match the committed golden snapshot (re-bless with
//! `CPELIDE_BLESS=1` and bump `campaign::MODEL_REVISION` when the model
//! intentionally changes), and a poisoned job must be contained by the
//! fleet — every other cell completes, the failure lands in the report,
//! and the run exits nonzero.

use chiplet_harness::json::{self, Json};
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn tmp(sub: &str) -> PathBuf {
    let p = Path::new(env!("CARGO_TARGET_TMPDIR"))
        .join("fleet_determinism")
        .join(sub);
    let _ = std::fs::remove_dir_all(&p);
    std::fs::create_dir_all(&p).expect("create tmp results dir");
    p
}

/// Runs the campaign binary in smoke mode with the cache disabled, so
/// every cell actually simulates and worker scheduling is exercised.
fn run_campaign(results: &Path, jobs: &str, fail_cell: Option<&str>) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_campaign"));
    cmd.env("CPELIDE_SMOKE", "1")
        .env("CPELIDE_RESULTS_DIR", results)
        .env("CPELIDE_JOBS", jobs)
        .env("CPELIDE_CACHE", "0")
        .env_remove("CPELIDE_FAIL_CELL");
    if let Some(id) = fail_cell {
        cmd.env("CPELIDE_FAIL_CELL", id);
    }
    cmd.output().expect("run the campaign binary")
}

fn report_text(dir: &Path) -> String {
    std::fs::read_to_string(dir.join("campaign.json")).expect("campaign.json written")
}

#[test]
fn campaign_json_is_byte_identical_across_worker_counts_and_matches_golden() {
    let d1 = tmp("jobs1");
    let d8 = tmp("jobs8");
    let o1 = run_campaign(&d1, "1", None);
    assert!(
        o1.status.success(),
        "jobs=1 campaign failed:\n{}",
        String::from_utf8_lossy(&o1.stderr)
    );
    let o8 = run_campaign(&d8, "8", None);
    assert!(
        o8.status.success(),
        "jobs=8 campaign failed:\n{}",
        String::from_utf8_lossy(&o8.stderr)
    );

    let j1 = report_text(&d1);
    let j8 = report_text(&d8);
    assert!(
        j1 == j8,
        "campaign.json differs between CPELIDE_JOBS=1 and CPELIDE_JOBS=8"
    );

    let golden = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/campaign_smoke.json");
    if std::env::var("CPELIDE_BLESS").is_ok_and(|v| v == "1") {
        let dir = golden.parent().expect("golden dir");
        std::fs::create_dir_all(dir).expect("create golden dir");
        std::fs::write(&golden, &j1).expect("bless golden snapshot");
        return;
    }
    let want = std::fs::read_to_string(&golden)
        .expect("golden snapshot missing; create it with CPELIDE_BLESS=1");
    assert!(
        j1 == want,
        "smoke campaign drifted from tests/golden/campaign_smoke.json; if the \
         model change is intentional, re-bless with CPELIDE_BLESS=1 and bump \
         campaign::MODEL_REVISION"
    );
}

#[test]
fn poisoned_cell_is_contained_and_fails_the_run() {
    // `btree` is one of the two cheapest-to-simulate suite members, so it
    // is always present in the smoke enumeration.
    let dir = tmp("poison");
    let out = run_campaign(&dir, "4", Some("btree:Baseline:2"));
    assert_eq!(
        out.status.code(),
        Some(1),
        "a failed cell must fail the run; stdout:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );

    let doc = json::parse(&report_text(&dir)).expect("campaign.json parses");
    let cells = doc
        .get("cells")
        .and_then(Json::as_arr)
        .expect("cells array");
    let failed: Vec<&Json> = cells
        .iter()
        .filter(|c| c.get("failed").and_then(Json::as_bool) == Some(true))
        .collect();
    assert_eq!(failed.len(), 1, "exactly the poisoned cell fails");
    assert_eq!(
        failed[0].get("workload").and_then(Json::as_str),
        Some("btree")
    );
    assert_eq!(
        failed[0].get("protocol").and_then(Json::as_str),
        Some("Baseline")
    );
    assert!(
        failed[0]
            .get("error")
            .and_then(Json::as_str)
            .is_some_and(|e| e.contains("poisoned")),
        "the panic message is preserved"
    );
    // Every other cell still completed — the panic was contained.
    let completed = cells.iter().filter(|c| c.get("metrics").is_some()).count();
    assert_eq!(completed, cells.len() - 1);
    // An incomplete campaign must not publish a summary.
    assert_eq!(
        doc.get("summary")
            .and_then(|s| s.get("incomplete"))
            .and_then(Json::as_bool),
        Some(true)
    );
}
