//! End-to-end tests for the campaign daemon (`--bin serve`), driving a
//! real subprocess over real sockets:
//!
//! - a served sweep's rows are byte-identical to the rows the batch
//!   `campaign` binary wrote for the same cells, and come straight from
//!   the shared disk cache;
//! - concurrent clients both complete, and a client repeating an
//!   already-served grid gets every cell as a cache hit;
//! - a client that never reads its response does not starve a concurrent
//!   client (per-client round-robin scheduling);
//! - a burst over the admission bound is rejected whole with a 429 and
//!   the daemon stays serviceable;
//! - a request deadline cancels not-yet-started cells while the stream
//!   still terminates with every index accounted for.

use chiplet_harness::json::{self, Json};
use chiplet_harness::trace::prom;
use cpelide_bench::serve::client;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

fn tmp(sub: &str) -> PathBuf {
    let p = Path::new(env!("CARGO_TARGET_TMPDIR"))
        .join("serve_e2e")
        .join(sub);
    let _ = std::fs::remove_dir_all(&p);
    std::fs::create_dir_all(&p).expect("create tmp results dir");
    p
}

/// A daemon subprocess bound to an ephemeral port. Dropping it kills the
/// child, so a panicking test never leaks a listener.
struct Daemon {
    child: Child,
    addr: SocketAddr,
}

impl Daemon {
    fn start(results: &Path, extra_env: &[(&str, &str)]) -> Daemon {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_serve"));
        cmd.env("CPELIDE_SMOKE", "1")
            .env("CPELIDE_RESULTS_DIR", results)
            .env("CPELIDE_SERVE_ADDR", "127.0.0.1:0")
            .env("CPELIDE_JOBS", "2")
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        for var in [
            "CPELIDE_SERVE_QUEUE",
            "CPELIDE_SERVE_TIMEOUT_MS",
            "CPELIDE_CACHE",
            "CPELIDE_FAIL_CELL",
            "CPELIDE_TRACE",
            "CPELIDE_PROGRESS",
        ] {
            cmd.env_remove(var);
        }
        for (k, v) in extra_env {
            cmd.env(k, v);
        }
        let mut child = cmd.spawn().expect("spawn the serve binary");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut lines = BufReader::new(stdout).lines();
        let banner = lines
            .next()
            .expect("daemon prints its listening line")
            .expect("read the listening line");
        let addr: SocketAddr = banner
            .split("http://")
            .nth(1)
            .and_then(|rest| rest.split_whitespace().next())
            .and_then(|a| a.parse().ok())
            .unwrap_or_else(|| panic!("unparsable listening line: {banner}"));
        // Keep draining stdout so the child never blocks on a full pipe.
        std::thread::spawn(move || for _ in lines {});
        Daemon { child, addr }
    }

    /// Clean stop over the wire; asserts the daemon acknowledges it.
    fn shutdown(&mut self) {
        let resp =
            client::http_request(self.addr, "POST", "/v1/shutdown", "").expect("shutdown request");
        assert_eq!(resp.status, 200, "{}", resp.body);
        let status = self.child.wait().expect("daemon exits");
        assert!(status.success(), "daemon exited with {status}");
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Parses the NDJSON stream of a 200 sweep response into (cell events,
/// done summary), asserting indices arrive in request order.
fn parse_stream(resp: &client::HttpResponse) -> (Vec<Json>, Json) {
    assert_eq!(resp.status, 200, "{}", resp.body);
    let lines = resp.lines();
    assert!(!lines.is_empty(), "empty stream");
    let mut cells = Vec::new();
    for (i, line) in lines[..lines.len() - 1].iter().enumerate() {
        let event = json::parse(line).unwrap_or_else(|e| panic!("line {i} not JSON ({e}): {line}"));
        assert_eq!(event.get("event").and_then(Json::as_str), Some("cell"));
        assert_eq!(
            event.get("index").and_then(Json::as_f64),
            Some(i as f64),
            "events must arrive in request order"
        );
        cells.push(event);
    }
    let done = json::parse(lines[lines.len() - 1]).expect("done event parses");
    assert_eq!(done.get("event").and_then(Json::as_str), Some("done"));
    assert_eq!(
        done.get("total").and_then(Json::as_f64),
        Some(cells.len() as f64)
    );
    (cells, done)
}

#[test]
fn served_rows_are_byte_identical_to_batch_campaign_rows() {
    let dir = tmp("byte_identity");
    // The batch campaign writes campaign.json and populates the shared
    // disk cache under the same results dir the daemon will use.
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_campaign"));
    cmd.env("CPELIDE_SMOKE", "1")
        .env("CPELIDE_RESULTS_DIR", &dir)
        .env("CPELIDE_JOBS", "2")
        .env_remove("CPELIDE_CACHE")
        .env_remove("CPELIDE_FAIL_CELL");
    let out = cmd.output().expect("run the campaign binary");
    assert!(
        out.status.success(),
        "batch campaign failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = json::parse(&std::fs::read_to_string(dir.join("campaign.json")).expect("report"))
        .expect("campaign.json parses");
    let rows = doc.get("cells").and_then(Json::as_arr).expect("cells");

    // Ask the daemon for exactly the batch cells, in the batch order.
    let request_cells: Vec<Json> = rows
        .iter()
        .map(|r| {
            let axis = |k: &str| r.get(k).and_then(Json::as_str).expect(k).to_owned();
            Json::object()
                .with("workload", axis("workload"))
                .with("protocol", axis("protocol"))
                .with(
                    "chiplets",
                    r.get("chiplets").and_then(Json::as_f64).expect("n"),
                )
                .with("suite", axis("suite"))
        })
        .collect();
    let body = Json::object()
        .with("client", "e2e")
        .with("cells", Json::Arr(request_cells))
        .render_compact();

    let mut daemon = Daemon::start(&dir, &[]);
    let resp = client::http_request(daemon.addr, "POST", "/v1/sweep", &body).expect("sweep");
    let (cells, done) = parse_stream(&resp);
    assert_eq!(cells.len(), rows.len());
    for (i, (event, want)) in cells.iter().zip(rows.iter()).enumerate() {
        assert_eq!(
            event.get("status").and_then(Json::as_str),
            Some("ok"),
            "cell {i}: {event:?}"
        );
        assert_eq!(
            event.get("cached").and_then(Json::as_bool),
            Some(true),
            "cell {i} must be a hit on the batch campaign's cache"
        );
        let got = event.get("cell").expect("served cell row");
        assert!(
            got.render() == want.render(),
            "cell {i}: served row drifted from the batch campaign.json row"
        );
    }
    assert_eq!(
        done.get("cache_hits").and_then(Json::as_f64),
        Some(rows.len() as f64)
    );
    daemon.shutdown();
}

#[test]
fn concurrent_clients_complete_and_repeats_hit_the_cache() {
    let dir = tmp("cache_sharing");
    let mut daemon = Daemon::start(&dir, &[]);
    let addr = daemon.addr;

    // Two concurrent clients with overlapping grids; both must complete.
    let sweep = |name: &str, protocols: &str| {
        format!(
            r#"{{"client":"{name}","grid":{{"workloads":["square"],"protocols":{protocols},"chiplets":[1]}}}}"#
        )
    };
    let body_a = sweep("alice", r#"["Baseline","CPElide"]"#);
    let body_b = sweep("bob", r#"["Baseline","HMG"]"#);
    let ta = std::thread::spawn(move || {
        client::http_request(addr, "POST", "/v1/sweep", &body_a).expect("alice")
    });
    let tb = std::thread::spawn(move || {
        client::http_request(addr, "POST", "/v1/sweep", &body_b).expect("bob")
    });
    for resp in [
        ta.join().expect("alice thread"),
        tb.join().expect("bob thread"),
    ] {
        let (cells, done) = parse_stream(&resp);
        assert_eq!(cells.len(), 2);
        assert_eq!(done.get("ok").and_then(Json::as_f64), Some(2.0));
    }

    // A third client repeating bob's grid gets every cell from the cache.
    let resp = client::http_request(
        addr,
        "POST",
        "/v1/sweep",
        &sweep("carol", r#"["Baseline","HMG"]"#),
    )
    .expect("carol");
    let (cells, done) = parse_stream(&resp);
    for (i, event) in cells.iter().enumerate() {
        assert_eq!(
            event.get("cached").and_then(Json::as_bool),
            Some(true),
            "carol's cell {i} must be a cache hit"
        );
    }
    assert_eq!(done.get("cache_hits").and_then(Json::as_f64), Some(2.0));

    // /metrics reflects the traffic and stays a valid exposition.
    let metrics = client::http_request(addr, "GET", "/metrics", "").expect("metrics");
    assert_eq!(metrics.status, 200);
    let samples = prom::parse(&metrics.body).expect("/metrics parses as Prometheus text");
    let find = |name: &str| {
        samples
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("missing sample {name}"))
            .value
    };
    assert_eq!(find("cpelide_serve_requests_total") as u64, 3);
    assert_eq!(find("cpelide_serve_cells_total") as u64, 6);
    assert!(find("cpelide_serve_cache_hits_total") as u64 >= 2);
    // Latency is recorded just *after* the final chunk is flushed, so the
    // third observation may race this scrape; two are certainly visible.
    assert!(find("cpelide_serve_request_latency_ms_count") as u64 >= 2);
    daemon.shutdown();
}

#[test]
fn slow_reader_does_not_starve_a_concurrent_client() {
    let dir = tmp("slow_reader");
    // One worker, so the two clients genuinely contend for execution.
    let mut daemon = Daemon::start(&dir, &[("CPELIDE_JOBS", "1")]);
    let addr = daemon.addr;

    // The slow client submits four cells and then never reads a byte.
    let body = r#"{"client":"slow","grid":{"workloads":["square"],"protocols":["Baseline","CPElide","HMG","Monolithic"],"chiplets":[2]}}"#;
    let mut slow = TcpStream::connect(addr).expect("connect slow client");
    let raw = format!(
        "POST /v1/sweep HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\
         Content-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    slow.write_all(raw.as_bytes()).expect("send slow sweep");
    slow.flush().expect("flush slow sweep");

    // The fast client must still be served; a read timeout turns a
    // starvation hang into a test failure instead of a CI hang.
    let fast = TcpStream::connect(addr).expect("connect fast client");
    fast.set_read_timeout(Some(Duration::from_secs(120)))
        .expect("set read timeout");
    let resp = client::request_on(
        fast,
        "POST",
        "/v1/sweep",
        r#"{"client":"fast","cells":[{"workload":"square","protocol":"Baseline","chiplets":1}]}"#,
    )
    .expect("fast client is served while the slow reader idles");
    let (cells, done) = parse_stream(&resp);
    assert_eq!(cells.len(), 1);
    assert_eq!(done.get("ok").and_then(Json::as_f64), Some(1.0));

    // The slow client's stream was never abandoned: reading it now
    // yields the complete response.
    slow.set_read_timeout(Some(Duration::from_secs(120)))
        .expect("set read timeout");
    let resp = client::read_response(slow).expect("slow stream completes");
    let (cells, done) = parse_stream(&resp);
    assert_eq!(cells.len(), 4);
    assert_eq!(done.get("ok").and_then(Json::as_f64), Some(4.0));
    daemon.shutdown();
}

#[test]
fn over_quota_burst_is_rejected_whole_with_backpressure() {
    let dir = tmp("backpressure");
    let mut daemon = Daemon::start(&dir, &[("CPELIDE_SERVE_QUEUE", "2")]);
    let addr = daemon.addr;

    // Three cells against an admission bound of two: rejected whole —
    // no partial admission, nothing executes.
    let resp = client::http_request(
        addr,
        "POST",
        "/v1/sweep",
        r#"{"client":"burst","grid":{"workloads":["square"],"protocols":["Baseline","CPElide","HMG"],"chiplets":[1]}}"#,
    )
    .expect("burst sweep");
    assert_eq!(resp.status, 429, "{}", resp.body);
    let err = json::parse(&resp.body).expect("429 body is JSON");
    assert_eq!(
        err.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("backpressure")
    );

    // Backpressure is not sticky: a request within the bound succeeds.
    let resp = client::http_request(
        addr,
        "POST",
        "/v1/sweep",
        r#"{"client":"burst","cells":[{"workload":"square","protocol":"Baseline","chiplets":1}]}"#,
    )
    .expect("in-quota sweep");
    let (cells, _done) = parse_stream(&resp);
    assert_eq!(cells.len(), 1);

    let metrics = client::http_request(addr, "GET", "/metrics", "").expect("metrics");
    let samples = prom::parse(&metrics.body).expect("/metrics parses");
    let rejected = samples
        .iter()
        .find(|s| s.name == "cpelide_serve_rejected_total")
        .expect("rejected counter")
        .value;
    assert_eq!(rejected as u64, 1);
    daemon.shutdown();
}

#[test]
fn deadline_cancels_not_yet_started_cells() {
    let dir = tmp("deadline");
    // One worker, empty cache, 40 cells, 1 ms deadline: the tail of the
    // queue cannot have started when the deadline fires.
    let mut daemon = Daemon::start(&dir, &[("CPELIDE_JOBS", "1"), ("CPELIDE_CACHE", "0")]);
    let resp = client::http_request(
        daemon.addr,
        "POST",
        "/v1/sweep",
        r#"{"client":"hasty","timeout_ms":1,"grid":{"workloads":["square"],"protocols":["Baseline","CPElide","HMG","HMG-WB","Monolithic"],"chiplets":[1,2,3,4,5,6,7,8]}}"#,
    )
    .expect("deadline sweep");
    let (cells, done) = parse_stream(&resp);
    assert_eq!(cells.len(), 40);
    let mut ok = 0u64;
    let mut cancelled = 0u64;
    for (i, event) in cells.iter().enumerate() {
        match event.get("status").and_then(Json::as_str) {
            Some("ok") => {
                ok += 1;
                assert!(event.get("cell").is_some(), "ok cell {i} carries its row");
            }
            Some("cancelled") => {
                cancelled += 1;
                // A cancelled cell never ran: it has no row to stream.
                assert!(event.get("cell").is_none(), "cancelled cell {i} has a row");
            }
            other => panic!("cell {i}: unexpected status {other:?}"),
        }
    }
    assert!(
        cancelled >= 1,
        "a 1 ms deadline must cancel some of 40 cells"
    );
    assert_eq!(done.get("ok").and_then(Json::as_f64), Some(ok as f64));
    assert_eq!(
        done.get("cancelled").and_then(Json::as_f64),
        Some(cancelled as f64)
    );
    daemon.shutdown();
}
