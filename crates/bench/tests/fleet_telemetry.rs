//! End-to-end checks for the host-side fleet telemetry (DESIGN.md §13):
//! the deterministic prefix of `campaign.prom` is byte-identical across
//! `CPELIDE_JOBS` settings, the whole file is valid Prometheus exposition
//! with exactly one `# HELP`/`# TYPE` pair per metric family, the fleet
//! trace is a balanced wall-clock timeline, cache counters track
//! hit/miss/corrupt outcomes, and a poisoned cell's failure carries its
//! cell label.

use chiplet_harness::fleet::DiskCache;
use chiplet_harness::trace::prom;
use chiplet_sim::experiments::Cell;
use chiplet_workloads::spec::parse_workload;
use cpelide_bench::campaign::{self, CellSpec, SuiteTag, PROTOCOLS};
use cpelide_bench::telemetry;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const GAMMA: &str = r#"
name gamma
input "tiny"
class low
array g 64KiB
kernel k
  wgs 64
  load g shared
sequence repeat 2 { k }
"#;

fn tmp(sub: &str) -> PathBuf {
    let p = Path::new(env!("CARGO_TARGET_TMPDIR"))
        .join("fleet_telemetry")
        .join(sub);
    let _ = std::fs::remove_dir_all(&p);
    std::fs::create_dir_all(&p).expect("create tmp results dir");
    p
}

/// Runs the campaign binary in smoke mode with the cache disabled so every
/// cell simulates and the fleet is actually exercised.
fn run_campaign(results: &Path, jobs: &str, progress: bool) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_campaign"));
    if progress {
        cmd.arg("--progress");
    }
    cmd.env("CPELIDE_SMOKE", "1")
        .env("CPELIDE_RESULTS_DIR", results)
        .env("CPELIDE_JOBS", jobs)
        .env("CPELIDE_CACHE", "0")
        .env_remove("CPELIDE_PROGRESS")
        .env_remove("CPELIDE_FAIL_CELL");
    cmd.output().expect("run the campaign binary")
}

fn prom_text(dir: &Path) -> String {
    std::fs::read_to_string(dir.join("campaign.prom")).expect("campaign.prom written")
}

#[test]
fn campaign_prom_prefix_is_jobs_invariant_and_the_ticker_changes_nothing() {
    let d1 = tmp("jobs1");
    let d8 = tmp("jobs8");
    // The jobs=1 run also turns the stderr ticker on: it must not leak
    // into any artifact.
    let o1 = run_campaign(&d1, "1", true);
    assert!(
        o1.status.success(),
        "jobs=1 campaign failed:\n{}",
        String::from_utf8_lossy(&o1.stderr)
    );
    let o8 = run_campaign(&d8, "8", false);
    assert!(
        o8.status.success(),
        "jobs=8 campaign failed:\n{}",
        String::from_utf8_lossy(&o8.stderr)
    );

    let p1 = prom_text(&d1);
    let p8 = prom_text(&d8);
    assert!(
        telemetry::deterministic_prefix(&p1) == telemetry::deterministic_prefix(&p8),
        "deterministic campaign.prom prefix differs between CPELIDE_JOBS=1 \
         and CPELIDE_JOBS=8"
    );
    assert!(
        p1.contains(telemetry::NONDET_MARKER) && p8.contains(telemetry::NONDET_MARKER),
        "campaign.prom must separate its clock domains with the marker"
    );

    // The ticker is stderr-only and counts every cell exactly once.
    let stderr = String::from_utf8_lossy(&o1.stderr);
    let ticks = stderr
        .lines()
        .filter(|l| l.starts_with("campaign: ") && l.contains("cells ("))
        .count();
    let cells: f64 = prom::parse(&p1)
        .expect("valid exposition")
        .iter()
        .find(|s| s.name == "cpelide_campaign_cells_total")
        .map(|s| s.value)
        .expect("cells_total present");
    assert_eq!(ticks, cells as usize, "one ticker line per finished cell");
    assert!(
        !p1.contains("cells ("),
        "ticker output leaked into campaign.prom"
    );
}

#[test]
fn campaign_prom_is_valid_exposition_and_fleet_sums_reconcile() {
    let dir = tmp("sums");
    let out = run_campaign(&dir, "4", false);
    assert!(out.status.success());
    let text = prom_text(&dir);
    // `prom::parse` rejects duplicate `# HELP`/`# TYPE` headers, so a
    // successful parse proves one header pair per family.
    let samples = prom::parse(&text).unwrap_or_else(|e| panic!("invalid exposition: {e}"));

    let value = |name: &str| -> f64 {
        samples
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.value)
            .unwrap_or_else(|| panic!("{name} missing"))
    };
    let sum_over = |name: &str| -> f64 {
        samples
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.value)
            .sum()
    };
    let cells = value("cpelide_campaign_cells_total");
    assert!(cells > 0.0);
    assert_eq!(
        sum_over("cpelide_fleet_worker_jobs"),
        cells,
        "per-worker executed counts must sum to the job count"
    );
    assert_eq!(
        sum_over("cpelide_fleet_worker_stolen"),
        value("cpelide_fleet_jobs_stolen_total"),
        "per-worker steal counts must sum to the total"
    );
    assert_eq!(value("cpelide_fleet_job_wall_us_count"), cells);
    // Phase fractions over the merged profile sum to 1.
    let frac = sum_over("cpelide_campaign_phase_fraction");
    assert!((frac - 1.0).abs() < 1e-3, "phase fractions sum to {frac}");
}

#[test]
fn host_trace_artifact_is_a_wall_clock_timeline() {
    let dir = tmp("trace");
    let out = run_campaign(&dir, "2", false);
    assert!(out.status.success());
    let json = std::fs::read_to_string(dir.join("campaign.trace.json"))
        .expect("campaign.trace.json written");
    chiplet_harness::json::validate(&json).unwrap_or_else(|e| panic!("invalid trace JSON: {e}"));
    assert!(
        json.contains("\"clockDomain\":\"wall\""),
        "host trace must be stamped with the wall clock domain"
    );
    assert!(json.contains("campaign fleet"));
    assert!(json.contains("worker 0"));
    assert!(json.contains("\"cat\":\"cell\""));
    assert!(json.contains("\"steals\""));
}

#[test]
fn cache_counters_track_hit_miss_and_corrupt_lookups() {
    let gamma = parse_workload(GAMMA).expect("gamma spec parses");
    let specs: Vec<CellSpec> = PROTOCOLS
        .iter()
        .map(|&p| CellSpec {
            cell: Cell::new(gamma.clone(), p, 2),
            suite: SuiteTag::Main,
        })
        .collect();
    let dir = tmp("cache");

    // Cold: every lookup misses.
    let cold_cache = DiskCache::new(dir.clone());
    let cold = campaign::run(&specs, 2, Some(&cold_cache), None, false);
    assert_eq!(cold.cache_counts.misses, specs.len() as u64);
    assert_eq!(cold.cache_counts.hits, 0);
    assert_eq!(cold.cache_counts.hit_rate(), 0.0);

    // Warm (fresh handle, same directory): every lookup hits.
    let warm_cache = DiskCache::new(dir.clone());
    let warm = campaign::run(&specs, 2, Some(&warm_cache), None, false);
    assert_eq!(warm.cache_counts.hits, specs.len() as u64);
    assert_eq!(warm.cache_counts.misses, 0);
    assert_eq!(warm.cache_counts.corrupt, 0);
    assert!((warm.cache_counts.hit_rate() - 1.0).abs() < 1e-12);
    assert!(warm.cell_cached.iter().all(|&c| c));

    // Clobber one entry: it still *hits* (the file is there) but the parse
    // failure is counted as corrupt and excluded from the usable hit rate.
    warm_cache
        .store(&specs[0].fingerprint(), "not json at all")
        .expect("overwrite a cache entry");
    let third_cache = DiskCache::new(dir);
    let third = campaign::run(&specs, 2, Some(&third_cache), None, false);
    assert_eq!(third.cache_counts.corrupt, 1);
    assert_eq!(third.cache_counts.hits, specs.len() as u64);
    let want = (specs.len() as f64 - 1.0) / specs.len() as f64;
    assert!((third.cache_counts.hit_rate() - want).abs() < 1e-12);

    // The counters flow into the exposition's deterministic section.
    let prom = telemetry::campaign_prom(&third);
    let det = telemetry::deterministic_prefix(&prom);
    assert!(det.contains("cpelide_campaign_cache_lookups{result=\"corrupt\"} 1"));
}

#[test]
fn a_poisoned_cell_failure_carries_its_label() {
    let gamma = parse_workload(GAMMA).expect("gamma spec parses");
    let specs: Vec<CellSpec> = PROTOCOLS
        .iter()
        .map(|&p| CellSpec {
            cell: Cell::new(gamma.clone(), p, 2),
            suite: SuiteTag::Main,
        })
        .collect();
    let poisoned = specs[0].id();
    let outcome = campaign::run(&specs, 2, None, Some(poisoned.as_str()), false);
    assert_eq!(outcome.failed, 1);
    assert_eq!(outcome.failures.len(), 1);
    let f = &outcome.failures[0];
    assert_eq!(f.label, poisoned, "the failure names the poisoned cell");
    assert!(
        f.to_string().contains(&poisoned),
        "the label appears in the rendered failure: {f}"
    );
}
