//! Micro-benchmarks of the substrates: cache access throughput, directory
//! updates, Chiplet Coherence Table launch processing, and trace
//! generation. These bound the simulator's own speed and demonstrate the
//! CP-side cost of CPElide's algorithm (paper §IV-B estimates 6 µs per
//! launch on a 1.5 GHz CP; `table_prepare_launch` shows the same work takes
//! microseconds on a host core too).

use chiplet_gpu::dispatch::StaticPartitionScheduler;
use chiplet_gpu::kernel::{AccessPattern, KernelId, KernelSpec, TouchKind};
use chiplet_gpu::table::ArrayTable;
use chiplet_gpu::trace::TraceGenerator;
use chiplet_mem::addr::{ChipletId, LineAddr};
use chiplet_mem::cache::{CacheGeometry, SetAssocCache, WritePolicy};
use chiplet_mem::directory::CoarseDirectory;
use cpelide::api::KernelLaunchInfo;
use cpelide::table::ChipletCoherenceTable;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.measurement_time(Duration::from_secs(2)).sample_size(20);
    let geom = CacheGeometry::new(8 << 20, 64, 32).unwrap();

    g.throughput(Throughput::Elements(10_000));
    g.bench_function("l2_read_hit_stream", |b| {
        let mut cache = SetAssocCache::new(geom, WritePolicy::WriteBack);
        for i in 0..10_000u64 {
            cache.read(LineAddr::new(i));
        }
        b.iter(|| {
            for i in 0..10_000u64 {
                black_box(cache.read(LineAddr::new(i)));
            }
        });
    });
    g.bench_function("l2_write_miss_stream", |b| {
        let mut cache = SetAssocCache::new(geom, WritePolicy::WriteBack);
        let mut base = 0u64;
        b.iter(|| {
            for i in 0..10_000u64 {
                black_box(cache.write(LineAddr::new(base + i)));
            }
            base += 10_000;
        });
    });
    g.bench_function("l2_flush_dirty_8mib", |b| {
        b.iter_with_setup(
            || {
                let mut cache = SetAssocCache::new(geom, WritePolicy::WriteBack);
                for i in 0..131_072u64 {
                    cache.write(LineAddr::new(i));
                }
                cache
            },
            |mut cache| black_box(cache.flush_dirty()),
        );
    });
    g.finish();
}

fn bench_directory(c: &mut Criterion) {
    let mut g = c.benchmark_group("directory");
    g.measurement_time(Duration::from_secs(2)).sample_size(20);
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("record_sharer_churn", |b| {
        let mut dir = CoarseDirectory::new(16 * 1024, 8, 4);
        let mut base = 0u64;
        b.iter(|| {
            for i in 0..10_000u64 {
                black_box(dir.record_sharer(
                    LineAddr::new(base + i * 4),
                    ChipletId::new((i % 4) as u8),
                ));
            }
            base += 40_000;
        });
    });
    g.finish();
}

fn bench_table(c: &mut Criterion) {
    let mut g = c.benchmark_group("coherence_table");
    g.measurement_time(Duration::from_secs(2)).sample_size(50);

    // The paper's common case: 4 structures, partitioned over 4 chiplets.
    let info = |k: u64| {
        let mut b = KernelLaunchInfo::builder(k, ChipletId::all(4));
        for s in 0..4u64 {
            let base = s * 100_000;
            b = b.structure(
                base,
                base + 32_768,
                chiplet_mem::array::AccessMode::ReadWrite,
                (0..4).map(|c| Some(base + c * 8192..base + (c + 1) * 8192)),
            );
        }
        b.build()
    };
    g.bench_function("prepare_launch_elided_path", |b| {
        let mut table = ChipletCoherenceTable::new(4);
        let mut k = 0u64;
        b.iter(|| {
            let actions = table.prepare_launch(&info(k));
            k += 1;
            black_box(actions)
        });
    });
    g.bench_function("prepare_launch_sync_path", |b| {
        // Alternating producers/consumers: every launch generates ops.
        let mut table = ChipletCoherenceTable::new(4);
        let mut k = 0u64;
        b.iter(|| {
            let writer = (k % 4) as usize;
            let mut ranges: Vec<Option<std::ops::Range<u64>>> = vec![None; 4];
            ranges[writer] = Some(0..32_768);
            let i = KernelLaunchInfo::builder(k, [ChipletId::new(writer as u8)])
                .structure(0, 32_768, chiplet_mem::array::AccessMode::ReadWrite, ranges)
                .build();
            k += 1;
            black_box(table.prepare_launch(&i))
        });
    });
    g.finish();
}

fn bench_trace(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_generation");
    g.measurement_time(Duration::from_secs(2)).sample_size(20);
    let mut arrays = ArrayTable::new();
    let a = arrays.alloc("a", 4 << 20);
    let partitioned = KernelSpec::builder("p")
        .wg_count(2048)
        .array(a, TouchKind::LoadStore, AccessPattern::Partitioned)
        .build();
    let irregular = KernelSpec::builder("i")
        .wg_count(2048)
        .array(
            a,
            TouchKind::Load,
            AccessPattern::Irregular { fraction: 1.0, locality: 0.7 },
        )
        .build();
    let chiplets: Vec<ChipletId> = ChipletId::all(4).collect();
    let plan = StaticPartitionScheduler::new().plan(&partitioned, &chiplets);
    let gen = TraceGenerator::new(7);

    g.bench_function("partitioned_64k_lines", |b| {
        b.iter(|| {
            black_box(gen.chiplet_trace(
                &partitioned,
                KernelId::new(0),
                &arrays,
                &plan,
                ChipletId::new(1),
            ))
        });
    });
    g.bench_function("irregular_16k_lines", |b| {
        b.iter(|| {
            black_box(gen.chiplet_trace(
                &irregular,
                KernelId::new(0),
                &arrays,
                &plan,
                ChipletId::new(1),
            ))
        });
    });
    g.finish();
}

criterion_group!(benches, bench_cache, bench_directory, bench_table, bench_trace);
criterion_main!(benches);
