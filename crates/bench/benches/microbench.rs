//! Micro-benchmarks of the substrates: cache access throughput, directory
//! updates, Chiplet Coherence Table launch processing, and trace
//! generation. These bound the simulator's own speed and demonstrate the
//! CP-side cost of CPElide's algorithm (paper §IV-B estimates 6 µs per
//! launch on a 1.5 GHz CP; `prepare_launch_*` shows the same work takes
//! microseconds on a host core too).
//!
//! Run with `cargo bench -p cpelide-bench --bench microbench`; a JSON
//! session report is written to `results/microbench.json`.

use chiplet_gpu::dispatch::StaticPartitionScheduler;
use chiplet_gpu::kernel::{AccessPattern, KernelId, KernelSpec, TouchKind};
use chiplet_gpu::table::ArrayTable;
use chiplet_gpu::trace::TraceGenerator;
use chiplet_harness::bench::BenchRunner;
use chiplet_mem::addr::{ChipletId, LineAddr};
use chiplet_mem::cache::{CacheGeometry, SetAssocCache, WritePolicy};
use chiplet_mem::directory::CoarseDirectory;
use cpelide::api::KernelLaunchInfo;
use cpelide::table::ChipletCoherenceTable;

fn bench_cache(r: &mut BenchRunner) {
    let geom = CacheGeometry::new(8 << 20, 64, 32).unwrap();

    let mut warm = SetAssocCache::new(geom, WritePolicy::WriteBack);
    for i in 0..10_000u64 {
        warm.read(LineAddr::new(i));
    }
    r.bench("cache/l2_read_hit_stream_10k", |_| {
        let mut hits = 0u64;
        for i in 0..10_000u64 {
            hits += u64::from(warm.read(LineAddr::new(i)).hit);
        }
        hits
    });

    let mut cold = SetAssocCache::new(geom, WritePolicy::WriteBack);
    r.bench("cache/l2_write_miss_stream_10k", |iter| {
        let base = u64::from(iter) * 10_000;
        for i in 0..10_000u64 {
            cold.write(LineAddr::new(base + i));
        }
        cold.dirty_lines()
    });

    r.bench_with_setup(
        "cache/l2_flush_dirty_8mib",
        |_| {
            let mut cache = SetAssocCache::new(geom, WritePolicy::WriteBack);
            for i in 0..131_072u64 {
                cache.write(LineAddr::new(i));
            }
            cache
        },
        |mut cache| cache.flush_dirty(),
    );
}

fn bench_directory(r: &mut BenchRunner) {
    let mut dir = CoarseDirectory::new(16 * 1024, 8, 4);
    r.bench("directory/record_sharer_churn_10k", |iter| {
        let base = u64::from(iter) * 40_000;
        for i in 0..10_000u64 {
            dir.record_sharer(LineAddr::new(base + i * 4), ChipletId::new((i % 4) as u8));
        }
        dir.live_entries()
    });
}

fn bench_table(r: &mut BenchRunner) {
    // The paper's common case: 4 structures, partitioned over 4 chiplets.
    let info = |k: u64| {
        let mut b = KernelLaunchInfo::builder(k, ChipletId::all(4));
        for s in 0..4u64 {
            let base = s * 100_000;
            b = b.structure(
                base,
                base + 32_768,
                chiplet_mem::array::AccessMode::ReadWrite,
                (0..4).map(|c| Some(base + c * 8192..base + (c + 1) * 8192)),
            );
        }
        b.build()
    };
    let mut table = ChipletCoherenceTable::new(4);
    let mut k = 0u64;
    r.bench("coherence_table/prepare_launch_elided_path_1k", |_| {
        let mut ops = 0usize;
        for _ in 0..1000 {
            let actions = table.prepare_launch(&info(k));
            ops += actions.acquires.len() + actions.releases.len();
            k += 1;
        }
        ops
    });

    // Alternating producers/consumers: every launch generates ops.
    let mut sync_table = ChipletCoherenceTable::new(4);
    let mut sk = 0u64;
    r.bench("coherence_table/prepare_launch_sync_path_1k", |_| {
        let mut ops = 0usize;
        for _ in 0..1000 {
            let writer = (sk % 4) as usize;
            let mut ranges: Vec<Option<std::ops::Range<u64>>> = vec![None; 4];
            ranges[writer] = Some(0..32_768);
            let i = KernelLaunchInfo::builder(sk, [ChipletId::new(writer as u8)])
                .structure(0, 32_768, chiplet_mem::array::AccessMode::ReadWrite, ranges)
                .build();
            let actions = sync_table.prepare_launch(&i);
            ops += actions.acquires.len() + actions.releases.len();
            sk += 1;
        }
        ops
    });
}

fn bench_trace(r: &mut BenchRunner) {
    let mut arrays = ArrayTable::new();
    let a = arrays.alloc("a", 4 << 20);
    let partitioned = KernelSpec::builder("p")
        .wg_count(2048)
        .array(a, TouchKind::LoadStore, AccessPattern::Partitioned)
        .build();
    let irregular = KernelSpec::builder("i")
        .wg_count(2048)
        .array(
            a,
            TouchKind::Load,
            AccessPattern::Irregular {
                fraction: 1.0,
                locality: 0.7,
            },
        )
        .build();
    let chiplets: Vec<ChipletId> = ChipletId::all(4).collect();
    let plan = StaticPartitionScheduler::new().plan(&partitioned, &chiplets);
    let tracegen = TraceGenerator::new(7);

    r.bench("trace/partitioned_64k_lines", |_| {
        tracegen.chiplet_trace(
            &partitioned,
            KernelId::new(0),
            &arrays,
            &plan,
            ChipletId::new(1),
        )
    });
    r.bench("trace/irregular_16k_lines", |_| {
        tracegen.chiplet_trace(
            &irregular,
            KernelId::new(0),
            &arrays,
            &plan,
            ChipletId::new(1),
        )
    });
}

fn main() {
    let mut runner = BenchRunner::new("microbench");
    bench_cache(&mut runner);
    bench_directory(&mut runner);
    bench_table(&mut runner);
    bench_trace(&mut runner);
    print!("{}", runner.report());
    let out = "results/microbench.json";
    runner.write_json(out).expect("write bench JSON");
    println!("wrote {out}");
}
