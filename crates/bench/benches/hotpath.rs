//! Macro-benchmark of the simulation hot path: a fixed probe sweep through
//! the engine, plus a head-to-head of the oracle's flat dense-index shadow
//! against the retained `HashMap` reference shadow on identical replays.
//!
//! The flat/hash pairing is the point: the reference shadow *is* the
//! pre-rework implementation, so `speedup.oracle_replay_flat_vs_hashmap`
//! measures the storage rework's payoff on this machine, robust to CPU
//! differences. The same pattern covers first-touch placement
//! (`speedup.placement_flat_vs_hashmap`).
//!
//! Run with `cargo bench -p cpelide-bench --bench hotpath`; the validated
//! session report lands at `results/BENCH_hotpath.json` (honouring
//! `CPELIDE_RESULTS_DIR`). `CPELIDE_SMOKE=1` shrinks the sweep for CI;
//! `CHIPLET_BENCH_ITERS` / `CHIPLET_BENCH_WARMUP` control sampling as in
//! every other bench.

use chiplet_coherence::ProtocolKind;
use chiplet_harness::bench::BenchRunner;
use chiplet_harness::json::Json;
use chiplet_mem::addr::{ChipletId, PageAddr};
use chiplet_mem::page::PageTable;
use chiplet_sim::config::EngineCore;
use chiplet_sim::oracle::{check_coherence_with, ShadowKind};
use chiplet_sim::{SimConfig, Simulator};
use chiplet_workloads::Workload;
use std::collections::HashMap;
use std::time::Instant;

/// The fixed probe sweep: the `probe` binary's workload at the paper's
/// default chiplet count, over the three protocol families.
const SWEEP_PROTOCOLS: &[ProtocolKind] = &[
    ProtocolKind::Baseline,
    ProtocolKind::Hmg,
    ProtocolKind::CpElide,
];

fn sweep_workloads() -> Vec<Workload> {
    let names: &[&str] = if cpelide_bench::smoke() {
        &["square", "bfs"]
    } else {
        &["square", "bfs", "hotspot3d"]
    };
    names
        .iter()
        .map(|n| chiplet_workloads::by_name(n).expect("sweep workload in suite"))
        .collect()
}

fn bench_engine(r: &mut BenchRunner, workloads: &[Workload]) {
    r.bench("engine/probe_sweep", |_| {
        let mut cycles = 0.0f64;
        for w in workloads {
            for &p in SWEEP_PROTOCOLS {
                let m = Simulator::new(SimConfig::table1(4, p)).run(w);
                cycles += m.cycles;
            }
        }
        cycles
    });
}

fn bench_oracle(r: &mut BenchRunner, workloads: &[Workload]) -> f64 {
    let sample = 17;
    let replay = |kind: ShadowKind| {
        let mut checked = 0u64;
        for w in workloads {
            for &p in [ProtocolKind::Baseline, ProtocolKind::CpElide].iter() {
                let rep = check_coherence_with(w, p, 4, sample, kind);
                assert!(
                    rep.is_coherent(),
                    "{}/{p}: probe sweep must be clean",
                    w.name()
                );
                checked += rep.reads_checked;
            }
        }
        checked
    };
    // Touch both paths once so neither pays first-iteration page faults.
    replay(ShadowKind::Flat);
    replay(ShadowKind::HashReference);

    r.bench("oracle/replay_flat_shadow", |_| replay(ShadowKind::Flat));
    r.bench("oracle/replay_hashmap_shadow", |_| {
        replay(ShadowKind::HashReference)
    });
    speedup_of(
        r,
        "oracle/replay_flat_shadow",
        "oracle/replay_hashmap_shadow",
    )
}

fn bench_placement(r: &mut BenchRunner) -> f64 {
    // The page-table access pattern of a partitioned trace: each chiplet
    // streams its own dense page band, revisiting every page many times
    // (one probe per line).
    const PAGES: u64 = 32_768;
    const BASE: u64 = 0x10000; // the array heap's first page
    let probe_flat = |table: &mut PageTable| {
        let mut acc = 0u64;
        for round in 0..4u64 {
            for i in 0..PAGES {
                let c = ChipletId::new(((i * 4) / PAGES) as u8);
                acc += table.home_of(PageAddr::new(BASE + i), c).index() as u64 + round;
            }
        }
        acc
    };
    let probe_hash = |map: &mut HashMap<PageAddr, ChipletId>| {
        let mut acc = 0u64;
        for round in 0..4u64 {
            for i in 0..PAGES {
                let c = ChipletId::new(((i * 4) / PAGES) as u8);
                acc += map.entry(PageAddr::new(BASE + i)).or_insert(c).index() as u64 + round;
            }
        }
        acc
    };

    let mut table = PageTable::new();
    r.bench("placement/flat_first_touch_128k_probes", |_| {
        probe_flat(&mut table)
    });
    let mut map = HashMap::new();
    r.bench("placement/hashmap_first_touch_128k_probes", |_| {
        probe_hash(&mut map)
    });
    speedup_of(
        r,
        "placement/flat_first_touch_128k_probes",
        "placement/hashmap_first_touch_128k_probes",
    )
}

/// Times one campaign cell under the given engine core, returning the
/// wall milliseconds and the rendered metrics (for the cross-core
/// byte-identity tripwire).
fn run_cell_with(spec: &cpelide_bench::campaign::CellSpec, core: EngineCore) -> (f64, String) {
    let mut cfg = SimConfig::table1(spec.cell.chiplets, spec.cell.protocol);
    cfg.engine_core = core;
    let t = Instant::now();
    let metrics = Simulator::new(cfg).run(&spec.cell.workload);
    let ms = t.elapsed().as_secs_f64() * 1e3;
    (ms, metrics.to_json().render())
}

/// The `cells_per_sec` campaign-grid section: every campaign cell (the
/// same grid `--bin campaign` fans out, honouring `CPELIDE_SMOKE`) is run
/// once through the event-driven core and once through the retained
/// per-line reference core. The reference core *is* the pre-rework engine,
/// so `speedup_aggregate` — a ratio of the two cores' grid throughputs on
/// the same machine — measures the engine rework's payoff robustly to CPU
/// differences, exactly like the flat-vs-hashmap sections. Each cell's
/// metrics must render byte-identically under both cores; a mismatch
/// aborts the bench.
fn bench_campaign_grid() -> Json {
    let specs = cpelide_bench::campaign::cells();
    let mut grid: Vec<Json> = Vec::new();
    let mut wall_ms = [0.0f64; 2]; // [event, scan]
    let mut best = (String::new(), 0.0f64);
    for spec in &specs {
        let (event_ms, event_metrics) = run_cell_with(spec, EngineCore::EventDriven);
        let (scan_ms, scan_metrics) = run_cell_with(spec, EngineCore::ReferenceScan);
        assert_eq!(
            event_metrics,
            scan_metrics,
            "cell {}: engine cores must produce byte-identical metrics",
            spec.id()
        );
        let speedup = scan_ms / event_ms;
        if speedup > best.1 {
            best = (spec.id(), speedup);
        }
        wall_ms[0] += event_ms;
        wall_ms[1] += scan_ms;
        grid.push(
            Json::object()
                .with("id", spec.id())
                .with("event_ms", event_ms)
                .with("scan_ms", scan_ms)
                .with("speedup", speedup),
        );
    }
    let cells = specs.len() as f64;
    let cps_event = cells / (wall_ms[0] / 1e3);
    let cps_scan = cells / (wall_ms[1] / 1e3);
    println!(
        "campaign grid: {} cells, {:.2} cells/s event vs {:.2} cells/s scan \
         ({:.2}x aggregate, best cell {} at {:.1}x)",
        specs.len(),
        cps_event,
        cps_scan,
        cps_event / cps_scan,
        best.0,
        best.1
    );
    Json::object()
        .with("cells", cells)
        .with("cells_per_sec_event", cps_event)
        .with("cells_per_sec_scan", cps_scan)
        .with("speedup_aggregate", cps_event / cps_scan)
        .with(
            "speedup_best",
            Json::object().with("id", best.0).with("speedup", best.1),
        )
        .with("grid", grid)
}

/// Ratio of the two named benchmarks' medians: how many times faster
/// `fast` ran than `slow`.
fn speedup_of(r: &BenchRunner, fast: &str, slow: &str) -> f64 {
    let median = |name: &str| {
        r.results()
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("benchmark {name} not recorded"))
            .median_ns
    };
    median(slow) / median(fast)
}

fn main() {
    let workloads = sweep_workloads();
    let mut runner = BenchRunner::new("hotpath");
    bench_engine(&mut runner, &workloads);
    let oracle_speedup = bench_oracle(&mut runner, &workloads);
    let placement_speedup = bench_placement(&mut runner);
    let campaign_grid = bench_campaign_grid();
    print!("{}", runner.report());
    println!(
        "speedup: oracle replay flat vs hashmap {oracle_speedup:.2}x, \
         placement flat vs hashmap {placement_speedup:.2}x"
    );

    let report = runner
        .to_json()
        .with("smoke", cpelide_bench::smoke())
        .with(
            "speedup",
            Json::object()
                .with("oracle_replay_flat_vs_hashmap", oracle_speedup)
                .with("placement_flat_vs_hashmap", placement_speedup),
        )
        .with("campaign_grid", campaign_grid);
    let path = cpelide_bench::write_report("BENCH_hotpath", &report);
    println!("wrote {}", path.display());
}
