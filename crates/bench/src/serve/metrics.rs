//! The daemon's `/metrics` endpoint: service counters, queue gauges and
//! request-latency histograms rendered as Prometheus text exposition via
//! `chiplet_obs::prom` (re-exported as `chiplet_harness::trace::prom`),
//! so the output parses with the same validator the campaign telemetry
//! artifact uses.

use chiplet_harness::trace::prom::PromText;
use chiplet_harness::trace::Histogram;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use super::sched::Scheduler;

/// Shared service counters. Cheap atomics on the hot path; the latency
/// histogram takes a short lock only at request completion.
#[derive(Debug)]
pub struct ServeMetrics {
    /// Sweep requests admitted.
    requests_total: AtomicU64,
    /// Sweep requests refused with backpressure (the daemon's 429).
    rejected_total: AtomicU64,
    /// Requests refused as malformed (bad JSON, unknown axis, bad client).
    bad_requests_total: AtomicU64,
    /// Cells completed (ok + failed; cancellations count separately).
    cells_total: AtomicU64,
    /// Completed cells served from the disk cache.
    cache_hits_total: AtomicU64,
    /// Completed cells whose job panicked.
    cells_failed_total: AtomicU64,
    /// Cells cancelled before starting (deadline or disconnect).
    cells_cancelled_total: AtomicU64,
    /// End-to-end sweep latency in milliseconds (admission to last cell
    /// streamed), log2-bucketed; exposes p50/p90/p99 gauges.
    latency_ms: Mutex<Histogram>,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeMetrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        ServeMetrics {
            requests_total: AtomicU64::new(0),
            rejected_total: AtomicU64::new(0),
            bad_requests_total: AtomicU64::new(0),
            cells_total: AtomicU64::new(0),
            cache_hits_total: AtomicU64::new(0),
            cells_failed_total: AtomicU64::new(0),
            cells_cancelled_total: AtomicU64::new(0),
            latency_ms: Mutex::new(Histogram::new("request_latency_ms")),
        }
    }

    /// Counts one admitted sweep request.
    pub fn note_request(&self) {
        self.requests_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one backpressure rejection.
    pub fn note_rejected(&self) {
        self.rejected_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one malformed request.
    pub fn note_bad_request(&self) {
        self.bad_requests_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one completed cell (`cached` from the disk cache, `failed`
    /// if its job panicked).
    pub fn note_cell(&self, cached: bool, failed: bool) {
        self.cells_total.fetch_add(1, Ordering::Relaxed);
        if cached {
            self.cache_hits_total.fetch_add(1, Ordering::Relaxed);
        }
        if failed {
            self.cells_failed_total.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts one cancelled (never-started) cell.
    pub fn note_cancelled(&self) {
        self.cells_cancelled_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one request's end-to-end latency.
    pub fn observe_latency_ms(&self, ms: u64) {
        self.latency_ms
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .observe(ms);
    }

    /// Completed cells so far (tests use this to await quiescence).
    pub fn cells_total(&self) -> u64 {
        self.cells_total.load(Ordering::Relaxed)
    }

    /// Cache hits so far.
    pub fn cache_hits_total(&self) -> u64 {
        self.cache_hits_total.load(Ordering::Relaxed)
    }

    /// Renders the full `/metrics` exposition: service counters, the
    /// cache hit rate, live queue gauges read from `sched` (global depth
    /// and one labelled sample per client with queued cells), worker
    /// count, and the latency histogram with percentile gauges. Output
    /// always passes `chiplet_obs::prom::parse`.
    pub fn exposition(&self, sched: &Scheduler, workers: usize) -> String {
        let mut p = PromText::new();
        p.comment("cpelide campaign daemon");
        let cells = self.cells_total.load(Ordering::Relaxed);
        let hits = self.cache_hits_total.load(Ordering::Relaxed);
        p.counter(
            "cpelide_serve_requests_total",
            "sweep requests admitted",
            "",
            self.requests_total.load(Ordering::Relaxed),
        );
        p.counter(
            "cpelide_serve_rejected_total",
            "sweep requests refused with backpressure (429)",
            "",
            self.rejected_total.load(Ordering::Relaxed),
        );
        p.counter(
            "cpelide_serve_bad_requests_total",
            "malformed sweep requests refused (400)",
            "",
            self.bad_requests_total.load(Ordering::Relaxed),
        );
        p.counter("cpelide_serve_cells_total", "cells completed", "", cells);
        p.counter(
            "cpelide_serve_cache_hits_total",
            "completed cells served from the disk cache",
            "",
            hits,
        );
        p.counter(
            "cpelide_serve_cells_failed_total",
            "completed cells whose job panicked",
            "",
            self.cells_failed_total.load(Ordering::Relaxed),
        );
        p.counter(
            "cpelide_serve_cells_cancelled_total",
            "cells cancelled before starting (deadline or disconnect)",
            "",
            self.cells_cancelled_total.load(Ordering::Relaxed),
        );
        p.gauge(
            "cpelide_serve_cache_hit_rate",
            "cache hits over completed cells (0 when idle)",
            "",
            if cells == 0 {
                0.0
            } else {
                hits as f64 / cells as f64
            },
        );
        p.gauge(
            "cpelide_serve_queue_depth",
            "cells queued for execution across all clients",
            "",
            sched.queue_depth(),
        );
        for (client, depth) in sched.per_client_depth() {
            p.gauge(
                "cpelide_serve_client_queue_depth",
                "cells queued per client",
                &format!("client=\"{client}\""),
                depth,
            );
        }
        p.gauge(
            "cpelide_serve_workers",
            "persistent worker threads",
            "",
            workers,
        );
        self.latency_ms
            .lock()
            .unwrap_or_else(|g| g.into_inner())
            .prometheus_text(
                "cpelide_serve",
                "",
                "end-to-end sweep request latency (ms)",
                &mut p,
            );
        p.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiplet_harness::trace::prom;
    use std::sync::Arc;

    #[test]
    fn exposition_parses_and_reports_hit_rate() {
        let m = Arc::new(ServeMetrics::new());
        let sched = Scheduler::new(8, None, Arc::clone(&m));
        m.note_request();
        m.note_cell(true, false);
        m.note_cell(false, false);
        m.note_rejected();
        m.observe_latency_ms(12);
        let text = m.exposition(&sched, 3);
        let samples = prom::parse(&text).expect("exposition must parse");
        let find = |name: &str| {
            samples
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("missing {name}"))
                .value
        };
        assert!((find("cpelide_serve_cache_hit_rate") - 0.5).abs() < 1e-12);
        assert_eq!(find("cpelide_serve_requests_total") as u64, 1);
        assert_eq!(find("cpelide_serve_rejected_total") as u64, 1);
        assert_eq!(find("cpelide_serve_workers") as u64, 3);
        assert_eq!(find("cpelide_serve_request_latency_ms_count") as u64, 1);
        assert!(samples
            .iter()
            .any(|s| s.name == "cpelide_serve_request_latency_ms_p99"));
    }
}
