//! Hand-rolled HTTP/1.1 on `std::net`: exactly the subset the campaign
//! daemon speaks, with zero external dependencies.
//!
//! Request side: one request per connection (`Connection: close`
//! semantics), request line + headers + an optional `Content-Length`
//! body capped at [`MAX_BODY_BYTES`]. Response side: fixed-length
//! responses for the small endpoints and a chunked NDJSON stream for
//! sweeps — each event is one line, sent (and flushed) as one chunk the
//! moment its cell completes, which is what makes the response
//! incremental.

use chiplet_harness::json::Json;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Largest accepted request body; bigger requests get a 413.
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// One parsed request.
#[derive(Debug)]
pub struct HttpRequest {
    /// Request method, uppercased by the client (`GET`, `POST`, ...).
    pub method: String,
    /// Request path (query strings are not used by this protocol).
    pub path: String,
    /// Decoded body (empty when the request carried none).
    pub body: String,
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// Syntactically broken request (the 400 path).
    Malformed(String),
    /// Declared body exceeds [`MAX_BODY_BYTES`] (the 413 path).
    TooLarge(usize),
}

/// Reads one HTTP/1.1 request from `reader`.
///
/// # Errors
///
/// `Err` for socket I/O failures; `Ok(Err(_))` for protocol violations
/// the caller should answer with a 400/413.
pub fn read_request(
    reader: &mut BufReader<TcpStream>,
) -> std::io::Result<Result<HttpRequest, ReadError>> {
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) if v.starts_with("HTTP/1.") => (m.to_owned(), p.to_owned()),
        _ => {
            return Ok(Err(ReadError::Malformed(format!(
                "bad request line {:?}",
                line.trim_end()
            ))))
        }
    };
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header)?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        let lower = header.to_ascii_lowercase();
        if let Some(v) = lower.strip_prefix("content-length:") {
            content_length = match v.trim().parse() {
                Ok(n) => n,
                Err(_) => {
                    return Ok(Err(ReadError::Malformed(format!(
                        "bad Content-Length {:?}",
                        v.trim()
                    ))))
                }
            };
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Ok(Err(ReadError::TooLarge(content_length)));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    match String::from_utf8(body) {
        Ok(body) => Ok(Ok(HttpRequest { method, path, body })),
        Err(_) => Ok(Err(ReadError::Malformed("non-UTF-8 body".to_owned()))),
    }
}

/// Reason phrase for the status codes this daemon emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Writes a complete fixed-length response.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        status_text(status),
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Writes a JSON error response: `{"error":{"code":...,"message":...}}`.
/// `code` is a stable machine-readable slug (`"bad_request"`,
/// `"backpressure"`, ...) documented in DESIGN.md §16.
pub fn write_error(
    stream: &mut TcpStream,
    status: u16,
    code: &str,
    message: &str,
) -> std::io::Result<()> {
    let body = Json::object()
        .with(
            "error",
            Json::object().with("code", code).with("message", message),
        )
        .render_compact();
    write_response(stream, status, "application/json", &body)
}

/// An in-progress chunked NDJSON response: [`start`](ChunkedWriter::start)
/// sends the headers, each [`line`](ChunkedWriter::line) sends one
/// `\n`-terminated event as its own flushed chunk, and
/// [`finish`](ChunkedWriter::finish) terminates the stream.
pub struct ChunkedWriter<'a> {
    stream: &'a mut TcpStream,
}

impl<'a> ChunkedWriter<'a> {
    /// Sends the response head and returns the writer.
    ///
    /// # Errors
    ///
    /// Socket I/O failures (the client has usually disconnected).
    pub fn start(stream: &'a mut TcpStream, status: u16) -> std::io::Result<Self> {
        let head = format!(
            "HTTP/1.1 {status} {}\r\nContent-Type: application/x-ndjson\r\n\
             Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
            status_text(status)
        );
        stream.write_all(head.as_bytes())?;
        stream.flush()?;
        Ok(ChunkedWriter { stream })
    }

    /// Sends `event` (compact-rendered) plus its newline as one chunk and
    /// flushes, so the client sees the line as soon as the cell is done.
    ///
    /// # Errors
    ///
    /// Socket I/O failures; the caller treats them as a disconnect and
    /// cancels the request's remaining cells.
    pub fn line(&mut self, event: &Json) -> std::io::Result<()> {
        let mut payload = event.render_compact();
        payload.push('\n');
        let chunk = format!("{:x}\r\n{payload}\r\n", payload.len());
        self.stream.write_all(chunk.as_bytes())?;
        self.stream.flush()
    }

    /// Sends the terminating zero-length chunk.
    ///
    /// # Errors
    ///
    /// Socket I/O failures.
    pub fn finish(self) -> std::io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}
