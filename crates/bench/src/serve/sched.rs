//! The daemon's cell scheduler: multi-tenant admission, per-client
//! round-robin fairness, per-request ordered delivery, deadlines and
//! cancellation.
//!
//! The batch campaign owns its whole cell list up front and fans it out
//! with `fleet::parallel_map`; a service receives cells one request at a
//! time from clients that must not starve each other. The scheduler keeps
//! one FIFO queue per client and hands workers cells round-robin across
//! clients, so a client that submits 500 cells delays a one-cell client
//! by at most the in-flight window. Admission is bounded: a request whose
//! cells would push the total queued count past the bound is rejected
//! whole (never partially admitted), which is the daemon's 429.
//!
//! Delivery is per-request ordered commit: workers complete cells in any
//! order into a slot buffer, and the connection thread drains slots in
//! submission order — the same determinism contract as the batch fleet,
//! so a streamed response always lists cells in request order.

use crate::campaign::{execute_cell, CellSpec};
use chiplet_harness::fleet::{self, DiskCache, JobSource, ServiceJob};
use chiplet_harness::json::Json;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use super::metrics::ServeMetrics;

/// How one scheduled cell ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellStatus {
    /// Simulated or served from the cache.
    Ok,
    /// The cell's job panicked (contained per job, like the batch fleet).
    Failed,
    /// Cancelled before it started (deadline passed or client vanished).
    Cancelled,
}

impl CellStatus {
    /// The status as it appears on the wire.
    pub fn label(self) -> &'static str {
        match self {
            CellStatus::Ok => "ok",
            CellStatus::Failed => "failed",
            CellStatus::Cancelled => "cancelled",
        }
    }
}

/// One completed (or cancelled) cell, ready to stream.
#[derive(Debug, Clone)]
pub struct CellDone {
    /// The `campaign.json` row for this cell (via [`CellSpec::row`], so
    /// it is byte-identical to the batch artifact's row).
    pub row: Json,
    /// Served from the disk cache rather than simulated.
    pub cached: bool,
    /// Global completion stamp: the scheduler's monotone counter at the
    /// instant this cell finished, across all clients. Tests use it to
    /// assert fairness (a small request's cells finish before a large
    /// earlier request's tail).
    pub seq: u64,
    /// How the cell ended.
    pub status: CellStatus,
}

/// Per-cell lifecycle inside a request.
#[derive(Debug)]
enum Slot {
    /// Waiting in its client's queue.
    Queued,
    /// A worker picked it up; it will complete even if the request is
    /// cancelled meanwhile.
    Running,
    /// Finished (ok, failed, or cancelled) and ready to stream.
    Done(CellDone),
}

#[derive(Debug)]
struct RequestInner {
    slots: Vec<Slot>,
    done: usize,
    cancelled: bool,
}

/// One admitted sweep request: a slot per cell, drained in submission
/// order by the connection thread while workers fill slots in completion
/// order.
#[derive(Debug)]
pub struct Request {
    client: String,
    specs: Vec<CellSpec>,
    deadline: Option<Instant>,
    inner: Mutex<RequestInner>,
    cv: Condvar,
}

impl Request {
    /// The validated client name this request belongs to.
    pub fn client(&self) -> &str {
        &self.client
    }

    /// Number of cells in the request.
    pub fn total(&self) -> usize {
        self.specs.len()
    }

    /// The cell specs, in request order.
    pub fn specs(&self) -> &[CellSpec] {
        &self.specs
    }
}

/// Why a sweep request was refused admission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmitError {
    /// Admitting the request's cells would overflow the bounded queue;
    /// the whole request is rejected (the HTTP layer's 429). Carries
    /// (requested, queued, bound).
    Backpressure(usize, usize, usize),
    /// The scheduler is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for AdmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmitError::Backpressure(n, queued, bound) => write!(
                f,
                "queue full: request of {n} cells would exceed the admission \
                 bound ({queued} queued, bound {bound}); retry later"
            ),
            AdmitError::ShuttingDown => write!(f, "daemon is shutting down"),
        }
    }
}

/// A cell waiting in a client queue.
struct QueuedCell {
    spec: CellSpec,
    index: usize,
    req: Arc<Request>,
}

struct SchedState {
    /// One FIFO per client, in first-seen order. A client's entry is
    /// dropped once its queue drains, so idle clients leave the rotation.
    queues: Vec<(String, VecDeque<QueuedCell>)>,
    /// Round-robin position into `queues`.
    cursor: usize,
    /// Total queued (not yet running) cells, the admission quantity.
    queued: usize,
    shutdown: bool,
}

/// The multi-tenant cell scheduler. Shared between the HTTP connection
/// threads (producers) and the persistent worker pool (consumer, via the
/// [`JobSource`] impl).
pub struct Scheduler {
    state: Mutex<SchedState>,
    /// Workers park here waiting for queued cells.
    work_cv: Condvar,
    queue_bound: usize,
    seq: AtomicU64,
    cache: Option<DiskCache>,
    metrics: Arc<ServeMetrics>,
}

impl Scheduler {
    /// A scheduler admitting at most `queue_bound` queued cells, running
    /// cells against `cache` (shared with the batch campaign when both
    /// point at the same results dir).
    pub fn new(queue_bound: usize, cache: Option<DiskCache>, metrics: Arc<ServeMetrics>) -> Self {
        Scheduler {
            state: Mutex::new(SchedState {
                queues: Vec::new(),
                cursor: 0,
                queued: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            queue_bound: queue_bound.max(1),
            seq: AtomicU64::new(0),
            cache,
            metrics,
        }
    }

    /// The admission bound (maximum queued cells).
    pub fn queue_bound(&self) -> usize {
        self.queue_bound
    }

    /// Cells currently queued (not yet picked up by a worker).
    pub fn queue_depth(&self) -> usize {
        lock(&self.state).queued
    }

    /// Queued-cell count per client, in first-seen order (the `/metrics`
    /// per-client gauge).
    pub fn per_client_depth(&self) -> Vec<(String, usize)> {
        lock(&self.state)
            .queues
            .iter()
            .map(|(c, q)| (c.clone(), q.len()))
            .collect()
    }

    /// Admits a sweep: all of `specs` for `client`, or nothing.
    ///
    /// # Errors
    ///
    /// [`AdmitError::Backpressure`] when the request would overflow the
    /// queue bound (no cells are admitted), [`AdmitError::ShuttingDown`]
    /// after [`Scheduler::shutdown`].
    pub fn submit(
        self: &Arc<Self>,
        client: &str,
        specs: Vec<CellSpec>,
        timeout: Option<Duration>,
    ) -> Result<Arc<Request>, AdmitError> {
        let n = specs.len();
        let mut st = lock(&self.state);
        if st.shutdown {
            return Err(AdmitError::ShuttingDown);
        }
        if st.queued + n > self.queue_bound {
            return Err(AdmitError::Backpressure(n, st.queued, self.queue_bound));
        }
        let req = Arc::new(Request {
            client: client.to_owned(),
            deadline: timeout.map(|t| Instant::now() + t),
            inner: Mutex::new(RequestInner {
                slots: specs.iter().map(|_| Slot::Queued).collect(),
                done: 0,
                cancelled: false,
            }),
            cv: Condvar::new(),
            specs,
        });
        let queue = match st.queues.iter_mut().find(|(c, _)| c == client) {
            Some((_, q)) => q,
            None => {
                st.queues.push((client.to_owned(), VecDeque::new()));
                let last = st.queues.len() - 1;
                &mut st.queues[last].1
            }
        };
        for (index, spec) in req.specs.iter().enumerate() {
            queue.push_back(QueuedCell {
                spec: spec.clone(),
                index,
                req: Arc::clone(&req),
            });
        }
        st.queued += n;
        drop(st);
        self.work_cv.notify_all();
        Ok(req)
    }

    /// Pops the next runnable cell, round-robin across client queues.
    /// Returns `None` with the state lock released when there is nothing
    /// queued (caller decides whether to wait).
    fn pop_round_robin(st: &mut SchedState) -> Option<QueuedCell> {
        if st.queues.is_empty() {
            return None;
        }
        let n = st.queues.len();
        for step in 0..n {
            let i = (st.cursor + step) % n;
            if let Some(cell) = st.queues[i].1.pop_front() {
                st.queued -= 1;
                // Advance past the client we just served; drained clients
                // are swept out so they stop occupying rotation slots.
                st.cursor = (i + 1) % n;
                let before_cursor = st
                    .queues
                    .iter()
                    .take(st.cursor)
                    .filter(|(_, q)| q.is_empty())
                    .count();
                st.queues.retain(|(_, q)| !q.is_empty());
                st.cursor = if st.queues.is_empty() {
                    0
                } else {
                    (st.cursor - before_cursor) % st.queues.len()
                };
                return Some(cell);
            }
        }
        None
    }

    /// Runs one popped cell to completion and resolves its slot. The
    /// heavy work happens with no scheduler lock held.
    fn run_cell(&self, cell: QueuedCell) {
        let QueuedCell { spec, index, req } = cell;
        let outcome = fleet::run_caught(|| execute_cell(&spec, self.cache.as_ref()));
        let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        let done = match outcome {
            Ok(out) => {
                let cached = out.cached();
                self.metrics.note_cell(cached, false);
                CellDone {
                    row: spec.row(Ok(&out.metrics)),
                    cached,
                    seq,
                    status: CellStatus::Ok,
                }
            }
            Err(message) => {
                self.metrics.note_cell(false, true);
                // Rendering the failure row re-derives the fingerprint,
                // which can itself panic for a pathologically invalid
                // spec; the slot must resolve regardless, or the reader
                // wedges, so fall back to a minimal row.
                let row = fleet::run_caught(|| spec.row(Err(&message))).unwrap_or_else(|_| {
                    Json::object()
                        .with("failed", true)
                        .with("error", message.as_str())
                });
                CellDone {
                    row,
                    cached: false,
                    seq,
                    status: CellStatus::Failed,
                }
            }
        };
        let mut inner = lock(&req.inner);
        inner.slots[index] = Slot::Done(done);
        inner.done += 1;
        drop(inner);
        req.cv.notify_all();
    }

    /// Cancels a request: its still-queued cells are removed from the
    /// client queue and resolved as [`CellStatus::Cancelled`]; cells a
    /// worker already started run to completion and still stream. Safe to
    /// call more than once.
    pub fn cancel(&self, req: &Arc<Request>) {
        let mut st = lock(&self.state);
        let mut removed = 0usize;
        for (_, queue) in &mut st.queues {
            let before = queue.len();
            queue.retain(|c| !Arc::ptr_eq(&c.req, req));
            removed += before - queue.len();
        }
        st.queued -= removed;
        // Keep the cursor in range after sweeping drained queues.
        let n_before = st.queues.len();
        st.queues.retain(|(_, q)| !q.is_empty());
        if st.queues.len() != n_before {
            st.cursor = if st.queues.is_empty() {
                0
            } else {
                st.cursor % st.queues.len()
            };
        }
        drop(st);
        let mut inner = lock(&req.inner);
        if !inner.cancelled {
            inner.cancelled = true;
            let mut newly_done = 0usize;
            for slot in &mut inner.slots {
                if matches!(slot, Slot::Queued) {
                    let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
                    self.metrics.note_cancelled();
                    *slot = Slot::Done(CellDone {
                        row: Json::Null,
                        cached: false,
                        seq,
                        status: CellStatus::Cancelled,
                    });
                    newly_done += 1;
                }
            }
            inner.done += newly_done;
        }
        drop(inner);
        req.cv.notify_all();
    }

    /// Blocks until slot `index` of `req` is done and returns it,
    /// enforcing the request deadline: when the deadline passes first,
    /// the request is cancelled (queued cells resolve as cancelled;
    /// running cells complete) and the wait continues — it always
    /// terminates, because every slot is then either done or running.
    pub fn wait_cell(self: &Arc<Self>, req: &Arc<Request>, index: usize) -> CellDone {
        loop {
            let inner = lock(&req.inner);
            if let Slot::Done(done) = &inner.slots[index] {
                return done.clone();
            }
            let timeout = req
                .deadline
                .map(|d| d.saturating_duration_since(Instant::now()));
            match timeout {
                Some(left) if left.is_zero() => {
                    drop(inner);
                    self.cancel(req);
                }
                Some(left) => {
                    let _unused = req
                        .cv
                        .wait_timeout(inner, left)
                        .unwrap_or_else(|p| p.into_inner());
                }
                None => {
                    let _unused = req.cv.wait(inner).unwrap_or_else(|p| p.into_inner());
                }
            }
        }
    }

    /// Stops admission and tells the worker pool to exit: queued cells of
    /// every request are cancelled (their readers see cancelled slots),
    /// running cells finish first.
    pub fn shutdown(&self) {
        let reqs: Vec<Arc<Request>> = {
            let mut st = lock(&self.state);
            st.shutdown = true;
            st.queues
                .iter()
                .flat_map(|(_, q)| q.iter().map(|c| Arc::clone(&c.req)))
                .collect()
        };
        for req in reqs {
            self.cancel(&req);
        }
        self.work_cv.notify_all();
    }
}

/// The worker pool pulls cells from the scheduler through this adapter:
/// blocking round-robin pop, `None` once shut down.
pub struct SchedulerSource(pub Arc<Scheduler>);

impl JobSource for SchedulerSource {
    fn next_job(&self) -> Option<ServiceJob> {
        let sched = Arc::clone(&self.0);
        let mut st = lock(&sched.state);
        loop {
            if let Some(cell) = Scheduler::pop_round_robin(&mut st) {
                // Mark the slot running before releasing the state lock,
                // so a concurrent cancel leaves it to complete normally.
                {
                    let mut inner = lock(&cell.req.inner);
                    inner.slots[cell.index] = Slot::Running;
                }
                drop(st);
                let sched = Arc::clone(&self.0);
                return Some(Box::new(move || sched.run_cell(cell)));
            }
            if st.shutdown {
                return None;
            }
            st = sched.work_cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }
}

/// Poison-tolerant lock (same rationale as the fleet's: state is only
/// ever a committed value between panics contained elsewhere).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::SuiteTag;
    use chiplet_coherence::ProtocolKind;
    use chiplet_harness::fleet::ServicePool;
    use chiplet_sim::Cell;

    fn spec(workload: &str, chiplets: usize) -> CellSpec {
        CellSpec {
            cell: Cell::new(
                chiplet_workloads::lookup(workload).unwrap_or_else(|e| panic!("{e}")),
                ProtocolKind::Baseline,
                chiplets,
            ),
            suite: SuiteTag::Main,
        }
    }

    fn sched(bound: usize) -> Arc<Scheduler> {
        Arc::new(Scheduler::new(bound, None, Arc::new(ServeMetrics::new())))
    }

    #[test]
    fn admission_rejects_whole_requests_atomically() {
        let s = sched(2);
        let admitted = s
            .submit("a", vec![spec("square", 1), spec("square", 2)], None)
            .expect("fits exactly");
        let err = s
            .submit("b", vec![spec("square", 1)], None)
            .expect_err("queue is full");
        assert!(matches!(err, AdmitError::Backpressure(1, 2, 2)), "{err}");
        assert_eq!(s.queue_depth(), 2, "rejected request admitted nothing");
        // Drain via cancel so the test leaves no queued work behind.
        s.cancel(&admitted);
        assert_eq!(s.queue_depth(), 0);
        s.submit("b", vec![spec("square", 1)], None)
            .expect("space freed");
    }

    #[test]
    fn round_robin_interleaves_clients_before_queue_order() {
        // Client "big" enqueues 4 cells, then "small" enqueues 1; with a
        // single worker started *after* both are queued, fairness demands
        // small's cell completes before big's tail.
        let s = sched(64);
        let big = s
            .submit(
                "big",
                vec![
                    spec("square", 1),
                    spec("square", 2),
                    spec("square", 3),
                    spec("square", 4),
                ],
                None,
            )
            .expect("admit big");
        let small = s
            .submit("small", vec![spec("square", 1)], None)
            .expect("admit small");
        let pool = ServicePool::start(1, Arc::new(SchedulerSource(Arc::clone(&s))));
        let small_done = s.wait_cell(&small, 0);
        let big_last = s.wait_cell(&big, 3);
        assert!(
            small_done.seq < big_last.seq,
            "small client's only cell (seq {}) must not wait behind the \
             large client's tail (seq {})",
            small_done.seq,
            big_last.seq
        );
        s.shutdown();
        pool.join();
    }

    #[test]
    fn deadline_cancels_queued_cells_but_ordered_drain_still_finishes() {
        let s = sched(64);
        // No workers at all: every cell stays queued, so an elapsed
        // deadline must resolve all slots as cancelled.
        let req = s
            .submit(
                "t",
                vec![spec("square", 1), spec("square", 2)],
                Some(Duration::from_millis(1)),
            )
            .expect("admitted");
        let first = s.wait_cell(&req, 0);
        let second = s.wait_cell(&req, 1);
        assert_eq!(first.status, CellStatus::Cancelled);
        assert_eq!(second.status, CellStatus::Cancelled);
        assert_eq!(s.queue_depth(), 0, "cancel removed queued cells");
    }

    #[test]
    fn shutdown_drains_workers_and_refuses_new_requests() {
        let s = sched(16);
        let pool = ServicePool::start(2, Arc::new(SchedulerSource(Arc::clone(&s))));
        let req = s
            .submit("x", vec![spec("square", 1)], None)
            .expect("admitted");
        assert_eq!(s.wait_cell(&req, 0).status, CellStatus::Ok);
        s.shutdown();
        pool.join();
        assert!(matches!(
            s.submit("x", vec![spec("square", 1)], None),
            Err(AdmitError::ShuttingDown)
        ));
    }

    #[test]
    fn failed_cells_resolve_like_the_batch_fleet() {
        // A panicking cell must produce a failed row, not kill the worker:
        // chiplets=0 makes SimConfig::table1 assert inside execute_cell.
        let s = sched(16);
        let pool = ServicePool::start(1, Arc::new(SchedulerSource(Arc::clone(&s))));
        let bad = CellSpec {
            cell: Cell::new(
                chiplet_workloads::lookup("square").unwrap_or_else(|e| panic!("{e}")),
                ProtocolKind::Baseline,
                0,
            ),
            suite: SuiteTag::Main,
        };
        let req = s
            .submit("x", vec![bad, spec("square", 1)], None)
            .expect("admitted");
        let first = s.wait_cell(&req, 0);
        let second = s.wait_cell(&req, 1);
        assert_eq!(first.status, CellStatus::Failed);
        assert_eq!(first.row.get("failed").and_then(Json::as_bool), Some(true));
        assert_eq!(second.status, CellStatus::Ok, "worker survived the panic");
        s.shutdown();
        pool.join();
    }
}
