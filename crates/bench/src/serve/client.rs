//! Sweep-request validation and a minimal blocking HTTP client.
//!
//! The validation half turns an untrusted JSON body into a list of
//! [`CellSpec`]s, funnelling every axis through the simulator's own
//! validation seams (`Cell::validated`, `SuiteTag::parse`) and rejecting
//! client names that could break out of a Prometheus label. The client
//! half is a deliberately tiny HTTP/1.1 reader used by the daemon's
//! `--smoke` self-test and the e2e tests — it speaks exactly the subset
//! the daemon serves (chunked NDJSON responses, `Connection: close`).

use crate::campaign::{CellSpec, SuiteTag};
use chiplet_harness::json::{self, Json};
use chiplet_sim::Cell;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Upper bound on cells in one sweep request: over-grid requests are a
/// 400, not a 429 — the admission queue guards *capacity*, this guards
/// obviously-runaway cross products.
pub const MAX_CELLS_PER_REQUEST: usize = 4096;

/// A validated sweep request, ready to submit to the scheduler.
#[derive(Debug)]
pub struct SweepRequest {
    /// Validated client identity (`[A-Za-z0-9._-]{1,64}`).
    pub client: String,
    /// The validated cells, in request order.
    pub specs: Vec<CellSpec>,
    /// Per-request deadline override (`timeout_ms`), if any.
    pub timeout: Option<Duration>,
}

/// True for client names safe to embed in a Prometheus label and in log
/// lines: 1–64 characters of `[A-Za-z0-9._-]`.
pub fn valid_client_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
}

fn get_usize(j: &Json, key: &str) -> Option<usize> {
    let v = j.get(key)?.as_f64()?;
    if v.fract() == 0.0 && (0.0..9e15).contains(&v) {
        Some(v as usize)
    } else {
        None
    }
}

fn cell_from_axes(
    workload: &str,
    protocol: &str,
    chiplets: usize,
    suite: &str,
) -> Result<CellSpec, String> {
    let suite = SuiteTag::parse(suite)
        .ok_or_else(|| format!("unknown suite {suite:?} (known: main, multistream)"))?;
    let cell = Cell::validated(workload, protocol, chiplets)?;
    Ok(CellSpec { cell, suite })
}

fn parse_one_cell(j: &Json) -> Result<CellSpec, String> {
    let workload = j
        .get("workload")
        .and_then(Json::as_str)
        .ok_or("cell missing string field \"workload\"")?;
    let protocol = j
        .get("protocol")
        .and_then(Json::as_str)
        .ok_or("cell missing string field \"protocol\"")?;
    let chiplets =
        get_usize(j, "chiplets").ok_or("cell missing non-negative integer \"chiplets\"")?;
    let suite = j.get("suite").and_then(Json::as_str).unwrap_or("main");
    cell_from_axes(workload, protocol, chiplets, suite)
}

fn parse_grid(j: &Json) -> Result<Vec<CellSpec>, String> {
    let strings = |key: &str| -> Result<Vec<&str>, String> {
        j.get(key)
            .and_then(Json::as_arr)
            .ok_or(format!("grid missing array field {key:?}"))?
            .iter()
            .map(|v| {
                v.as_str()
                    .ok_or(format!("grid.{key} entries must be strings"))
            })
            .collect()
    };
    let workloads = strings("workloads")?;
    let protocols = strings("protocols")?;
    let chiplets: Vec<usize> = j
        .get("chiplets")
        .and_then(Json::as_arr)
        .ok_or("grid missing array field \"chiplets\"")?
        .iter()
        .map(|v| {
            v.as_f64()
                .filter(|n| n.fract() == 0.0 && (0.0..9e15).contains(n))
                .map(|n| n as usize)
                .ok_or_else(|| "grid.chiplets entries must be non-negative integers".to_owned())
        })
        .collect::<Result<_, _>>()?;
    let suite = j.get("suite").and_then(Json::as_str).unwrap_or("main");
    if workloads.is_empty() || protocols.is_empty() || chiplets.is_empty() {
        return Err("grid axes must be non-empty".to_owned());
    }
    let mut out = Vec::new();
    for w in &workloads {
        for p in &protocols {
            for &n in &chiplets {
                out.push(cell_from_axes(w, p, n, suite)?);
            }
        }
    }
    Ok(out)
}

/// Parses and validates a `POST /v1/sweep` body. Accepts exactly one of
/// `"cells"` (an explicit list) or `"grid"` (a workloads × protocols ×
/// chiplets cross product); both forms validate every axis against the
/// registered tables before anything is admitted, so a request is either
/// fully valid or rejected whole.
///
/// # Errors
///
/// A human-readable message naming the first offending field/axis (the
/// HTTP layer's 400 body).
pub fn parse_sweep(body: &str) -> Result<SweepRequest, String> {
    let j = json::parse(body).map_err(|e| format!("invalid JSON body: {e}"))?;
    let client = j
        .get("client")
        .and_then(Json::as_str)
        .ok_or("missing string field \"client\"")?;
    if !valid_client_name(client) {
        return Err(format!(
            "invalid client name {client:?}: need 1-64 chars of [A-Za-z0-9._-]"
        ));
    }
    let timeout = match j.get("timeout_ms") {
        None | Some(Json::Null) => None,
        Some(v) => Some(Duration::from_millis(
            v.as_f64()
                .filter(|n| n.fract() == 0.0 && *n > 0.0 && *n < 9e15)
                .ok_or("\"timeout_ms\" must be a positive integer")? as u64,
        )),
    };
    let specs = match (j.get("cells"), j.get("grid")) {
        (Some(_), Some(_)) => {
            return Err("provide either \"cells\" or \"grid\", not both".to_owned())
        }
        (Some(cells), None) => cells
            .as_arr()
            .ok_or("\"cells\" must be an array")?
            .iter()
            .map(parse_one_cell)
            .collect::<Result<Vec<_>, _>>()?,
        (None, Some(grid)) => parse_grid(grid)?,
        (None, None) => return Err("missing \"cells\" or \"grid\"".to_owned()),
    };
    if specs.is_empty() {
        return Err("request contains no cells".to_owned());
    }
    if specs.len() > MAX_CELLS_PER_REQUEST {
        return Err(format!(
            "request of {} cells exceeds the per-request maximum {MAX_CELLS_PER_REQUEST}",
            specs.len()
        ));
    }
    Ok(SweepRequest {
        client: client.to_owned(),
        specs,
        timeout,
    })
}

// --------------------------------------------------------------- client

/// A parsed HTTP response from the daemon.
#[derive(Debug)]
pub struct HttpResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Raw header lines (name: value), order preserved.
    pub headers: Vec<String>,
    /// Decoded body: chunked responses are de-chunked, fixed-length ones
    /// read to their Content-Length.
    pub body: String,
}

impl HttpResponse {
    /// The body split into its NDJSON lines (empty lines dropped).
    pub fn lines(&self) -> Vec<&str> {
        self.body.lines().filter(|l| !l.is_empty()).collect()
    }
}

/// Sends one HTTP/1.1 request to `addr` and reads the full response,
/// decoding chunked transfer encoding. `body` is sent with a
/// Content-Length when non-empty.
///
/// # Errors
///
/// I/O errors from the socket, or a malformed response.
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<HttpResponse> {
    let stream = TcpStream::connect(addr)?;
    request_on(stream, method, path, body)
}

/// Like [`http_request`], over an already-connected stream (tests use
/// this to exercise slow-reader behaviour with custom sockets).
pub fn request_on(
    mut stream: TcpStream,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<HttpResponse> {
    let mut req = format!("{method} {path} HTTP/1.1\r\nHost: cpelide\r\nConnection: close\r\n");
    if !body.is_empty() {
        req.push_str(&format!(
            "Content-Type: application/json\r\nContent-Length: {}\r\n",
            body.len()
        ));
    }
    req.push_str("\r\n");
    req.push_str(body);
    stream.write_all(req.as_bytes())?;
    stream.flush()?;
    read_response(stream)
}

fn bad(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.into())
}

/// Reads and decodes one HTTP response from `stream`.
pub fn read_response(stream: TcpStream) -> std::io::Result<HttpResponse> {
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad(format!("bad status line {status_line:?}")))?;
    let mut headers = Vec::new();
    let mut chunked = false;
    let mut content_length: Option<usize> = None;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let line = line.trim_end().to_owned();
        if line.is_empty() {
            break;
        }
        let lower = line.to_ascii_lowercase();
        if lower.starts_with("transfer-encoding:") && lower.contains("chunked") {
            chunked = true;
        }
        if let Some(v) = lower.strip_prefix("content-length:") {
            content_length = v.trim().parse().ok();
        }
        headers.push(line);
    }
    let mut body = String::new();
    if chunked {
        loop {
            let mut size_line = String::new();
            reader.read_line(&mut size_line)?;
            let size = usize::from_str_radix(size_line.trim(), 16)
                .map_err(|_| bad(format!("bad chunk size {size_line:?}")))?;
            let mut chunk = vec![0u8; size + 2]; // payload + CRLF
            reader.read_exact(&mut chunk)?;
            if size == 0 {
                break;
            }
            body.push_str(std::str::from_utf8(&chunk[..size]).map_err(|_| bad("non-UTF-8 chunk"))?);
        }
    } else if let Some(n) = content_length {
        let mut buf = vec![0u8; n];
        reader.read_exact(&mut buf)?;
        body = String::from_utf8(buf).map_err(|_| bad("non-UTF-8 body"))?;
    } else {
        reader.read_to_string(&mut body)?;
    }
    Ok(HttpResponse {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_names_are_label_safe() {
        for ok in ["alice", "ci-runner.7", "A_b-c.d", &"x".repeat(64)] {
            assert!(valid_client_name(ok), "{ok}");
        }
        for bad in ["", "a b", "a\"b", "a{b}", "héllo", &"x".repeat(65)] {
            assert!(!valid_client_name(bad), "{bad:?}");
        }
    }

    #[test]
    fn sweep_accepts_cells_and_grid_forms() {
        let cells = parse_sweep(
            r#"{"client":"t","cells":[
                {"workload":"square","protocol":"CPElide","chiplets":4},
                {"workload":"btree","protocol":"baseline","chiplets":2,"suite":"main"}
            ]}"#,
        )
        .expect("cells form");
        assert_eq!(cells.specs.len(), 2);
        assert_eq!(cells.specs[0].id(), "square:CPElide:4");
        let grid = parse_sweep(
            r#"{"client":"t","timeout_ms":5000,"grid":{
                "workloads":["square","btree"],
                "protocols":["Baseline","HMG"],
                "chiplets":[2,4]
            }}"#,
        )
        .expect("grid form");
        assert_eq!(grid.specs.len(), 8, "2x2x2 cross product");
        assert_eq!(grid.timeout, Some(Duration::from_millis(5000)));
    }

    #[test]
    fn sweep_rejects_every_malformed_shape() {
        for (body, needle) in [
            ("{", "invalid JSON"),
            (r#"{"cells":[]}"#, "client"),
            (r#"{"client":"a b","cells":[]}"#, "invalid client name"),
            (r#"{"client":"t"}"#, "missing \"cells\" or \"grid\""),
            (r#"{"client":"t","cells":[]}"#, "no cells"),
            (r#"{"client":"t","cells":[],"grid":{}}"#, "not both"),
            (
                r#"{"client":"t","cells":[{"workload":"nope","protocol":"Baseline","chiplets":2}]}"#,
                "nope",
            ),
            (
                r#"{"client":"t","cells":[{"workload":"square","protocol":"MESI","chiplets":2}]}"#,
                "MESI",
            ),
            (
                r#"{"client":"t","cells":[{"workload":"square","protocol":"Baseline","chiplets":99}]}"#,
                "99",
            ),
            (
                r#"{"client":"t","cells":[{"workload":"square","protocol":"Baseline","chiplets":2,"suite":"side"}]}"#,
                "suite",
            ),
            (
                r#"{"client":"t","timeout_ms":-5,"cells":[{"workload":"square","protocol":"Baseline","chiplets":2}]}"#,
                "timeout_ms",
            ),
        ] {
            let err = parse_sweep(body).expect_err(body);
            assert!(err.contains(needle), "{body} -> {err}");
        }
    }
}
