//! Simulation-as-a-service: the multi-tenant campaign daemon behind
//! `cargo run --release -p cpelide-bench --bin serve`.
//!
//! The batch `campaign` binary runs one owner's whole sweep and exits;
//! this daemon keeps the fleet warm and serves sweep requests from many
//! clients over a hand-rolled HTTP/1.1 wire protocol (DESIGN.md §16):
//!
//! - `POST /v1/sweep` — submit cells (explicit list or grid cross
//!   product); the response streams one chunked NDJSON line per cell as
//!   it completes, in request order, each row byte-identical to the
//!   batch `campaign.json` row for the same cell.
//! - `GET /metrics` — Prometheus exposition: cache hit rate, queue
//!   depth, per-client queue gauges, request-latency percentiles.
//! - `GET /v1/workloads` — the registered axes a sweep may use.
//! - `GET /healthz`, `POST /v1/shutdown` — liveness and clean stop.
//!
//! Scheduling is multi-tenant: per-client round-robin ([`sched`]), a
//! bounded admission queue with whole-request 429 backpressure, and
//! per-request deadlines that cancel not-yet-started cells. Results
//! come from the same `campaign::execute_cell` seam — and the same
//! `DiskCache` — as the batch runner, so the daemon and the campaign
//! share hits byte-for-byte.

pub mod client;
pub mod http;
pub mod metrics;
pub mod sched;

use chiplet_harness::fleet::{self, ServicePool};
use chiplet_harness::json::Json;
use chiplet_harness::trace::prom;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use client::SweepRequest;
use http::{ChunkedWriter, HttpRequest, ReadError};
use metrics::ServeMetrics;
use sched::{AdmitError, CellStatus, Scheduler, SchedulerSource};

/// Daemon configuration, normally read from the environment.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`CPELIDE_SERVE_ADDR`, default `127.0.0.1:8642`;
    /// tests bind port 0 for an ephemeral port).
    pub addr: String,
    /// Worker threads (`CPELIDE_JOBS` via `fleet::workers()`).
    pub workers: usize,
    /// Admission bound on queued cells (`CPELIDE_SERVE_QUEUE`, default
    /// 1024). A request that would overflow it is rejected whole (429).
    pub queue_bound: usize,
    /// Default per-request deadline (`CPELIDE_SERVE_TIMEOUT_MS`, default
    /// none); a request's own `timeout_ms` overrides it.
    pub default_timeout: Option<Duration>,
}

impl ServeConfig {
    /// Reads `CPELIDE_SERVE_ADDR` / `CPELIDE_SERVE_QUEUE` /
    /// `CPELIDE_SERVE_TIMEOUT_MS` / `CPELIDE_JOBS`, falling back to the
    /// defaults above on unset or unparsable values.
    pub fn from_env() -> Self {
        let parse_u64 = |key: &str| {
            std::env::var(key)
                .ok()
                .and_then(|v| v.trim().parse::<u64>().ok())
        };
        ServeConfig {
            addr: std::env::var("CPELIDE_SERVE_ADDR")
                .unwrap_or_else(|_| "127.0.0.1:8642".to_owned()),
            workers: fleet::workers(),
            queue_bound: parse_u64("CPELIDE_SERVE_QUEUE")
                .map(|n| n.max(1) as usize)
                .unwrap_or(1024),
            default_timeout: parse_u64("CPELIDE_SERVE_TIMEOUT_MS")
                .filter(|&ms| ms > 0)
                .map(Duration::from_millis),
        }
    }
}

/// Shared state every connection thread sees.
struct ServeCtx {
    sched: Arc<Scheduler>,
    metrics: Arc<ServeMetrics>,
    workers: usize,
    default_timeout: Option<Duration>,
    stopping: AtomicBool,
    addr: SocketAddr,
}

/// A running daemon: the listener thread, the worker pool, and the
/// shared scheduler. Obtain one with [`spawn`]; stop it with
/// [`Server::shutdown`] or by letting a client `POST /v1/shutdown` and
/// then calling [`Server::join`].
pub struct Server {
    ctx: Arc<ServeCtx>,
    accept: std::thread::JoinHandle<()>,
    pool: ServicePool,
    conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl Server {
    /// The bound address (the actual port when the config asked for 0).
    pub fn addr(&self) -> SocketAddr {
        self.ctx.addr
    }

    /// The shared metrics (tests read counters directly).
    pub fn metrics(&self) -> Arc<ServeMetrics> {
        Arc::clone(&self.ctx.metrics)
    }

    /// Requests a stop and then [`Server::join`]s.
    pub fn shutdown(self) {
        self.ctx.stopping.store(true, Ordering::SeqCst);
        // Unblock accept() with a throwaway connection; if that fails the
        // listener is already gone.
        let _ = TcpStream::connect(self.ctx.addr);
        self.join();
    }

    /// Waits for the daemon to stop (a `POST /v1/shutdown` or a prior
    /// stop request), then drains workers and connection threads.
    pub fn join(self) {
        let _ = self.accept.join();
        self.ctx.sched.shutdown();
        self.pool.join();
        let handles = std::mem::take(&mut *self.conns.lock().unwrap_or_else(|p| p.into_inner()));
        for h in handles {
            let _ = h.join();
        }
    }
}

/// Binds, starts the worker pool and the accept loop, and returns the
/// running server. The campaign `DiskCache` is taken from the usual
/// environment (`CPELIDE_RESULTS_DIR`, `CPELIDE_CACHE=0` to disable), so
/// a daemon and a batch campaign pointed at the same results dir share
/// cached cells.
///
/// # Errors
///
/// Propagates bind failures.
pub fn spawn(config: &ServeConfig) -> std::io::Result<Server> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let metrics = Arc::new(ServeMetrics::new());
    let sched = Arc::new(Scheduler::new(
        config.queue_bound,
        crate::campaign::cache_from_env(),
        Arc::clone(&metrics),
    ));
    let pool = ServicePool::start(
        config.workers,
        Arc::new(SchedulerSource(Arc::clone(&sched))),
    );
    let ctx = Arc::new(ServeCtx {
        sched,
        metrics,
        workers: pool.workers(),
        default_timeout: config.default_timeout,
        stopping: AtomicBool::new(false),
        addr,
    });
    let conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let accept = {
        let ctx = Arc::clone(&ctx);
        let conns = Arc::clone(&conns);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                if ctx.stopping.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let ctx = Arc::clone(&ctx);
                let handle = std::thread::spawn(move || handle_connection(stream, &ctx));
                conns.lock().unwrap_or_else(|p| p.into_inner()).push(handle);
            }
        })
    };
    Ok(Server {
        ctx,
        accept,
        pool,
        conns,
    })
}

/// The `GET /v1/workloads` document: every axis a sweep may use.
fn workloads_doc() -> Json {
    Json::object()
        .with(
            "workloads",
            Json::Arr(
                chiplet_workloads::known_names()
                    .into_iter()
                    .map(Json::Str)
                    .collect(),
            ),
        )
        .with(
            "protocols",
            Json::Arr(
                chiplet_coherence::ProtocolKind::ALL
                    .iter()
                    .map(|k| Json::Str(k.label().to_owned()))
                    .collect(),
            ),
        )
        .with(
            "chiplets",
            Json::object()
                .with("min", *chiplet_sim::cell::CHIPLET_RANGE.start())
                .with("max", *chiplet_sim::cell::CHIPLET_RANGE.end()),
        )
        .with(
            "suites",
            Json::Arr(vec![
                Json::Str("main".into()),
                Json::Str("multistream".into()),
            ]),
        )
}

/// Serves one connection: read one request, dispatch, close. Socket
/// errors just end the connection (and cancel a streaming sweep).
fn handle_connection(stream: TcpStream, ctx: &ServeCtx) {
    let peer_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(peer_stream);
    let mut stream = stream;
    let request = match http::read_request(&mut reader) {
        Ok(Ok(r)) => r,
        Ok(Err(ReadError::Malformed(m))) => {
            ctx.metrics.note_bad_request();
            let _ = http::write_error(&mut stream, 400, "bad_request", &m);
            return;
        }
        Ok(Err(ReadError::TooLarge(n))) => {
            ctx.metrics.note_bad_request();
            let _ = http::write_error(
                &mut stream,
                413,
                "payload_too_large",
                &format!("body of {n} bytes exceeds {}", http::MAX_BODY_BYTES),
            );
            return;
        }
        Err(_) => return,
    };
    let _ = dispatch(&request, &mut stream, ctx);
}

fn dispatch(req: &HttpRequest, stream: &mut TcpStream, ctx: &ServeCtx) -> std::io::Result<()> {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => http::write_response(
            stream,
            200,
            "application/json",
            &Json::object().with("ok", true).render_compact(),
        ),
        ("GET", "/v1/workloads") => http::write_response(
            stream,
            200,
            "application/json",
            &workloads_doc().render_compact(),
        ),
        ("GET", "/metrics") => http::write_response(
            stream,
            200,
            "text/plain; version=0.0.4",
            &ctx.metrics.exposition(&ctx.sched, ctx.workers),
        ),
        ("POST", "/v1/sweep") => handle_sweep(&req.body, stream, ctx),
        ("POST", "/v1/shutdown") => {
            ctx.stopping.store(true, Ordering::SeqCst);
            let out = http::write_response(
                stream,
                200,
                "application/json",
                &Json::object().with("stopping", true).render_compact(),
            );
            // Unblock the accept loop so the owner's join() proceeds.
            let _ = TcpStream::connect(ctx.addr);
            out
        }
        ("GET" | "POST", _) if known_path(&req.path) => http::write_error(
            stream,
            405,
            "method_not_allowed",
            &format!("{} does not accept {}", req.path, req.method),
        ),
        _ => http::write_error(
            stream,
            404,
            "not_found",
            &format!("unknown path {}", req.path),
        ),
    }
}

fn known_path(path: &str) -> bool {
    matches!(
        path,
        "/healthz" | "/v1/workloads" | "/metrics" | "/v1/sweep" | "/v1/shutdown"
    )
}

/// `POST /v1/sweep`: validate, admit (or 429), then stream one NDJSON
/// event per cell in request order as the scheduler completes them,
/// ending with a `done` summary event. A write failure means the client
/// disconnected: the request's remaining queued cells are cancelled.
fn handle_sweep(body: &str, stream: &mut TcpStream, ctx: &ServeCtx) -> std::io::Result<()> {
    let SweepRequest {
        client,
        specs,
        timeout,
    } = match client::parse_sweep(body) {
        Ok(r) => r,
        Err(m) => {
            ctx.metrics.note_bad_request();
            return http::write_error(stream, 400, "bad_request", &m);
        }
    };
    let timeout = timeout.or(ctx.default_timeout);
    let started = Instant::now();
    let req = match ctx.sched.submit(&client, specs, timeout) {
        Ok(req) => req,
        Err(e @ AdmitError::Backpressure(..)) => {
            ctx.metrics.note_rejected();
            return http::write_error(stream, 429, "backpressure", &e.to_string());
        }
        Err(e @ AdmitError::ShuttingDown) => {
            return http::write_error(stream, 503, "shutting_down", &e.to_string());
        }
    };
    ctx.metrics.note_request();
    let mut writer = ChunkedWriter::start(stream, 200)?;
    let (mut ok, mut failed, mut cancelled, mut hits) = (0u64, 0u64, 0u64, 0u64);
    for index in 0..req.total() {
        let done = ctx.sched.wait_cell(&req, index);
        match done.status {
            CellStatus::Ok => {
                ok += 1;
                hits += u64::from(done.cached);
            }
            CellStatus::Failed => failed += 1,
            CellStatus::Cancelled => cancelled += 1,
        }
        let mut event = Json::object()
            .with("event", "cell")
            .with("index", index)
            .with("seq", done.seq as f64)
            .with("status", done.status.label());
        if done.status != CellStatus::Cancelled {
            event.set("cached", done.cached);
            event.set("cell", done.row);
        }
        if writer.line(&event).is_err() {
            // Client went away mid-stream: stop work it no longer wants.
            ctx.sched.cancel(&req);
            return Ok(());
        }
    }
    let summary = Json::object()
        .with("event", "done")
        .with("total", req.total())
        .with("ok", ok)
        .with("failed", failed)
        .with("cancelled", cancelled)
        .with("cache_hits", hits);
    let _ = writer.line(&summary);
    let out = writer.finish();
    let ms = u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX);
    ctx.metrics.observe_latency_ms(ms);
    out
}

/// The daemon's hermetic self-test (`serve --smoke`), which is also the
/// CI smoke step: boot on an ephemeral port, stream a two-cell sweep,
/// check the events and the summary, check `/metrics` parses as valid
/// Prometheus exposition, then shut down cleanly over the wire.
///
/// # Errors
///
/// A description of the first failed check.
pub fn smoke_self_test() -> Result<(), String> {
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        queue_bound: 64,
        default_timeout: None,
    };
    let server = spawn(&config).map_err(|e| format!("bind: {e}"))?;
    let addr = server.addr();
    let io = |e: std::io::Error| format!("smoke request failed: {e}");

    let health = client::http_request(addr, "GET", "/healthz", "").map_err(io)?;
    if health.status != 200 {
        return Err(format!("/healthz returned {}", health.status));
    }

    let body = r#"{"client":"smoke","cells":[
        {"workload":"square","protocol":"Baseline","chiplets":1},
        {"workload":"square","protocol":"CPElide","chiplets":1}
    ]}"#;
    let sweep = client::http_request(addr, "POST", "/v1/sweep", body).map_err(io)?;
    if sweep.status != 200 {
        return Err(format!("sweep returned {}: {}", sweep.status, sweep.body));
    }
    let lines = sweep.lines();
    if lines.len() != 3 {
        return Err(format!("expected 2 cell events + done, got {lines:?}"));
    }
    for (i, line) in lines.iter().take(2).enumerate() {
        let event = chiplet_harness::json::parse(line)
            .map_err(|e| format!("cell event {i} is not JSON: {e}"))?;
        if event.get("status").and_then(Json::as_str) != Some("ok") {
            return Err(format!("cell event {i} not ok: {line}"));
        }
        if event.get("cell").and_then(|c| c.get("metrics")).is_none() {
            return Err(format!("cell event {i} carries no metrics: {line}"));
        }
    }
    let done = chiplet_harness::json::parse(lines[2]).map_err(|e| format!("done event: {e}"))?;
    if done.get("ok").and_then(Json::as_f64) != Some(2.0) {
        return Err(format!("done event disagrees: {}", lines[2]));
    }

    let metrics = client::http_request(addr, "GET", "/metrics", "").map_err(io)?;
    if metrics.status != 200 {
        return Err(format!("/metrics returned {}", metrics.status));
    }
    prom::parse(&metrics.body).map_err(|e| format!("/metrics does not parse: {e}"))?;
    if !metrics.body.contains("cpelide_serve_cells_total") {
        return Err("metrics exposition is missing the serve counters".to_owned());
    }

    let stop = client::http_request(addr, "POST", "/v1/shutdown", "").map_err(io)?;
    if stop.status != 200 {
        return Err(format!("/v1/shutdown returned {}", stop.status));
    }
    server.join();
    Ok(())
}
