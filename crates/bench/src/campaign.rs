//! The campaign runner: the paper's full evaluation sweep as one flat
//! list of independent (workload, protocol, chiplet-count) cells, fanned
//! out across the `chiplet_harness::fleet` pool with content-hash result
//! caching.
//!
//! This module replaces the serial per-figure loops for sweep-shaped
//! work: `--bin campaign` enumerates every cell, runs them across
//! `CPELIDE_JOBS` workers (cache hits are parsed instead of re-simulated)
//! and writes `results/campaign.json` — the single machine-readable
//! source of truth the `report` binary regenerates EXPERIMENTS.md from.
//!
//! Determinism contract: the cell list, each cell's metrics, the summary
//! and the rendered report are all independent of the worker count and of
//! which cells came from the cache. The fleet commits results in
//! submission order; cached cells round-trip through the same
//! parse→render path as fresh ones; and the report deliberately carries
//! no wall-clock, worker-count or cache-hit fields (those go to stdout).

use crate::results_dir;
use chiplet_coherence::ProtocolKind;
use chiplet_harness::fleet::{
    self, CacheCounts, DiskCache, Fingerprint, FleetTelemetry, JobFailure,
};
use chiplet_harness::json::{self, Json};
use chiplet_sim::config::SimConfig;
use chiplet_sim::experiments::Cell;
use chiplet_sim::metrics::{geomean, RunHistograms};
use chiplet_sim::phase::PhaseProfile;
use chiplet_workloads::{ReuseClass, Workload};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Schema tag stamped into `campaign.json`; bump on layout changes so the
/// report generator can refuse documents it does not understand.
pub const SCHEMA: &str = "cpelide-campaign-v1";

/// Manually-bumped model revision folded into every cell fingerprint.
/// The per-cell fingerprint already covers the workload definition and
/// the full `SimConfig`, but not the simulator *code*; bump this whenever
/// engine behavior changes — i.e. exactly when the golden snapshots under
/// `tests/golden/` are re-blessed — so stale cached cells are invalidated
/// with the same stroke.
pub const MODEL_REVISION: &str = "golden-r4";

/// The protocols every sweep cell set covers (Figure 8/9/10 order).
pub const PROTOCOLS: [ProtocolKind; 3] = [
    ProtocolKind::Baseline,
    ProtocolKind::CpElide,
    ProtocolKind::Hmg,
];

/// Which suite a cell belongs to (the summary aggregates them separately).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuiteTag {
    /// The 24-application Table II suite.
    Main,
    /// The §VI multi-stream suite.
    MultiStream,
}

impl SuiteTag {
    /// The tag as it appears in `campaign.json`.
    pub fn label(self) -> &'static str {
        match self {
            SuiteTag::Main => "main",
            SuiteTag::MultiStream => "multistream",
        }
    }

    /// The inverse of [`SuiteTag::label`]: parses an externally-supplied
    /// suite name (a daemon sweep request field) back into the tag.
    pub fn parse(label: &str) -> Option<SuiteTag> {
        match label {
            "main" => Some(SuiteTag::Main),
            "multistream" => Some(SuiteTag::MultiStream),
            _ => None,
        }
    }
}

/// One enumerated campaign cell: a simulator cell plus its suite tag.
#[derive(Debug, Clone)]
pub struct CellSpec {
    /// The (workload, protocol, chiplets) simulator cell.
    pub cell: Cell,
    /// Which suite the cell aggregates under.
    pub suite: SuiteTag,
}

impl CellSpec {
    fn new(workload: &Workload, protocol: ProtocolKind, chiplets: usize, suite: SuiteTag) -> Self {
        CellSpec {
            cell: Cell::new(workload.clone(), protocol, chiplets),
            suite,
        }
    }

    /// The cell's content fingerprint: workload definition, protocol,
    /// chiplet count, the complete Table 1 `SimConfig` it resolves to,
    /// plus [`SCHEMA`] and [`MODEL_REVISION`]. Two cells share a cache
    /// entry only when every simulation input is identical.
    pub fn fingerprint(&self) -> String {
        Fingerprint::new()
            .push_str(SCHEMA)
            .push_str(MODEL_REVISION)
            .push_str(self.suite.label())
            .push_str(&format!("{:?}", self.cell.workload))
            .push_str(self.cell.protocol.label())
            .push_u64(self.cell.chiplets as u64)
            .push_str(&format!(
                "{:?}",
                SimConfig::table1(self.cell.chiplets, self.cell.protocol)
            ))
            .hex()
    }

    /// `workload:protocol:chiplets`, the identity used by
    /// `CPELIDE_FAIL_CELL` and in progress/error messages.
    pub fn id(&self) -> String {
        format!(
            "{}:{}:{}",
            self.cell.workload.name(),
            self.cell.protocol.label(),
            self.cell.chiplets
        )
    }

    /// Renders this cell's `campaign.json` row from its outcome: the
    /// identity fields, the fingerprint, then either the parsed metrics
    /// or the failure marker. The batch reducer and the daemon's
    /// streaming responses both go through here, which is what makes
    /// "served cells are byte-identical to batch cells" a structural
    /// guarantee instead of a convention.
    pub fn row(&self, outcome: Result<&Json, &str>) -> Json {
        let mut row = Json::object()
            .with("workload", self.cell.workload.name())
            .with("class", self.cell.workload.class().to_string())
            .with("suite", self.suite.label())
            .with("protocol", self.cell.protocol.label())
            .with("chiplets", self.cell.chiplets)
            .with("fingerprint", self.fingerprint());
        match outcome {
            Ok(metrics) => {
                row.set("metrics", metrics.clone());
            }
            Err(message) => {
                row.set("failed", true).set("error", message);
            }
        }
        row
    }
}

/// Enumerates the full campaign: the Table II suite under every protocol
/// at every Figure 8 chiplet count, the Figure 2 monolithic comparison at
/// 4 chiplets, and the §VI multi-stream suite at 4 chiplets. Honors
/// `CPELIDE_SMOKE` through the same suite/chiplet shrinking as the figure
/// binaries, so smoke campaigns stay CI-cheap.
pub fn cells() -> Vec<CellSpec> {
    let suite = crate::effective_suite();
    let counts = crate::pick(vec![2usize, 4, 6, 7], vec![2, 4]);
    let mut out = Vec::new();
    for &chiplets in &counts {
        for w in &suite {
            for p in PROTOCOLS {
                out.push(CellSpec::new(w, p, chiplets, SuiteTag::Main));
            }
        }
    }
    for w in &suite {
        out.push(CellSpec::new(
            w,
            ProtocolKind::Monolithic,
            4,
            SuiteTag::Main,
        ));
    }
    for w in &crate::effective_multistream_suite() {
        for p in PROTOCOLS {
            out.push(CellSpec::new(w, p, 4, SuiteTag::MultiStream));
        }
    }
    out
}

/// The campaign cache honoring the environment: `results/cache/` under
/// the results dir, or `None` when `CPELIDE_CACHE=0`.
pub fn cache_from_env() -> Option<DiskCache> {
    if std::env::var("CPELIDE_CACHE").is_ok_and(|v| v == "0") {
        return None;
    }
    Some(DiskCache::new(results_dir().join("cache")))
}

/// The `CPELIDE_FAIL_CELL` test hook: a cell id to deliberately panic on,
/// exercising the fleet's poison containment end to end.
pub fn fail_cell_from_env() -> Option<String> {
    std::env::var("CPELIDE_FAIL_CELL")
        .ok()
        .filter(|v| !v.is_empty())
}

/// What one cell execution hands back: to the batch reducer, or to the
/// daemon's scheduler.
pub struct CellOutcome {
    /// The cell's metrics (parsed from the rendered form, so cached and
    /// fresh cells are bit-for-bit interchangeable).
    pub metrics: Json,
    /// Distributions, only when the cell was actually simulated.
    pub hist: Option<RunHistograms>,
    /// Phase breakdown, only when the cell was actually simulated (the
    /// cached JSON deliberately does not carry it).
    pub phases: Option<PhaseProfile>,
}

impl CellOutcome {
    /// True when the cell came from the cache rather than a simulation
    /// (cached outcomes carry no histograms or phase profile).
    pub fn cached(&self) -> bool {
        self.hist.is_none()
    }
}

/// Executes one cell the way the campaign does: consult `cache` under the
/// cell's content fingerprint, parse a hit (a corrupt entry is counted
/// and falls through to re-simulation), otherwise simulate, store the
/// rendered metrics, and re-parse them so cached and fresh cells travel
/// the identical parse→render path. This is the single execution seam
/// shared by the batch runner ([`run`]) and the campaign daemon — cache
/// entries written by one are served, byte-for-byte, by the other.
///
/// # Panics
///
/// Panics if the simulated metrics render to invalid JSON (a simulator
/// bug); under the fleet this is contained as a [`JobFailure`].
pub fn execute_cell(spec: &CellSpec, cache: Option<&DiskCache>) -> CellOutcome {
    let key = spec.fingerprint();
    if let Some(hit) = cache.and_then(|c| c.load(&key)) {
        // A corrupt cache entry falls through to re-simulation.
        match json::parse(&hit) {
            Ok(metrics) => {
                return CellOutcome {
                    metrics,
                    hist: None,
                    phases: None,
                }
            }
            Err(_) => {
                if let Some(c) = cache {
                    c.note_corrupt();
                }
            }
        }
    }
    let m = spec.cell.run();
    let rendered = m.to_json().render();
    if let Some(c) = cache {
        // A read-only cache dir only costs re-simulation next run.
        let _ = c.store(&key, &rendered);
    }
    let metrics = json::parse(&rendered)
        .unwrap_or_else(|e| panic!("cell {} rendered invalid JSON: {e}", spec.id()));
    CellOutcome {
        metrics,
        hist: Some(m.hist),
        phases: Some(m.phases),
    }
}

/// Everything a campaign run produces.
pub struct CampaignOutcome {
    /// The validated `campaign.json` document.
    pub report: Json,
    /// Cells simulated this run.
    pub simulated: usize,
    /// Cells served from the cache.
    pub cached: usize,
    /// Cells whose job panicked.
    pub failed: usize,
    /// Distributions merged over every *simulated* cell, in submission
    /// order (stdout diagnostics; deliberately absent from the report).
    pub hist: RunHistograms,
    /// Phase breakdown merged over every *simulated* cell, in submission
    /// order. Deterministic for a given cell list and cache state.
    pub phases: PhaseProfile,
    /// Host-side fleet telemetry: worker counters, wall-clock latencies,
    /// the per-job execution log. Wall fields are non-deterministic.
    pub telemetry: FleetTelemetry,
    /// Cache hit/miss/corrupt counters for this run (all zero when the
    /// cache was disabled).
    pub cache_counts: CacheCounts,
    /// The failed jobs, labelled with their cell ids, in submission order.
    pub failures: Vec<JobFailure>,
    /// Per cell, in submission order: was it served from the cache?
    pub cell_cached: Vec<bool>,
}

/// Live counters behind the `--progress` stderr ticker: shared by the
/// fleet jobs via plain atomics (the `fleet-capture` lint bans lock-based
/// sharing inside job closures, and the ticker must never perturb
/// results). Ticks go to stderr only, so stdout and every artifact stay
/// byte-identical with the ticker on or off.
struct ProgressTicker {
    enabled: bool,
    total: usize,
    done: AtomicUsize,
    hits: AtomicUsize,
    failed: AtomicUsize,
}

impl ProgressTicker {
    fn new(enabled: bool, total: usize) -> Self {
        ProgressTicker {
            enabled,
            total,
            done: AtomicUsize::new(0),
            hits: AtomicUsize::new(0),
            failed: AtomicUsize::new(0),
        }
    }

    fn guard(&self) -> ProgressGuard<'_> {
        ProgressGuard {
            ticker: self,
            ok: false,
            hit: false,
        }
    }
}

/// Per-job RAII tick: counts the job on drop, so a panicking cell still
/// registers (as a failure) when its stack unwinds through the fleet's
/// `catch_unwind`.
struct ProgressGuard<'a> {
    ticker: &'a ProgressTicker,
    ok: bool,
    hit: bool,
}

impl Drop for ProgressGuard<'_> {
    fn drop(&mut self) {
        let t = self.ticker;
        let done = t.done.fetch_add(1, Ordering::Relaxed) + 1;
        if self.hit {
            t.hits.fetch_add(1, Ordering::Relaxed);
        }
        if !self.ok {
            t.failed.fetch_add(1, Ordering::Relaxed);
        }
        if t.enabled {
            eprintln!(
                "campaign: {done}/{} cells ({} cache hits, {} failed)",
                t.total,
                t.hits.load(Ordering::Relaxed),
                t.failed.load(Ordering::Relaxed),
            );
        }
    }
}

/// Runs the campaign: fans `specs` out across `workers` fleet threads,
/// consults `cache` per cell, and reduces the results — in submission
/// order — into the `campaign.json` document plus run statistics.
/// `fail_cell` poisons the matching job (test hook). Failed cells land in
/// the report as `"failed": true` entries and suppress the summary.
/// `progress` turns on a stderr-only done/total ticker; it never touches
/// stdout or the artifacts.
pub fn run(
    specs: &[CellSpec],
    workers: usize,
    cache: Option<&DiskCache>,
    fail_cell: Option<&str>,
    progress: bool,
) -> CampaignOutcome {
    let ticker = ProgressTicker::new(progress, specs.len());
    let (outcomes, telemetry) = fleet::parallel_map_telemetry(
        specs,
        workers,
        |spec| spec.id(),
        |spec| {
            let mut tick = ticker.guard();
            if fail_cell.is_some_and(|id| id == spec.id()) {
                panic!("CPELIDE_FAIL_CELL poisoned cell {}", spec.id());
            }
            let outcome = execute_cell(spec, cache);
            tick.hit = outcome.cached();
            tick.ok = true;
            outcome
        },
    );

    let mut simulated = 0usize;
    let mut cached = 0usize;
    let mut failed = 0usize;
    let mut hist = RunHistograms::new();
    let mut phases = PhaseProfile::new();
    let mut failures: Vec<JobFailure> = Vec::new();
    let mut cell_cached: Vec<bool> = Vec::with_capacity(specs.len());
    let mut rows: Vec<Json> = Vec::with_capacity(specs.len());
    let mut parsed: Vec<Option<Json>> = Vec::with_capacity(specs.len());
    for (spec, outcome) in specs.iter().zip(outcomes) {
        let row = match outcome {
            Ok(cell) => {
                match &cell.hist {
                    Some(h) => {
                        simulated += 1;
                        hist.merge(h);
                    }
                    None => cached += 1,
                }
                cell_cached.push(cell.cached());
                if let Some(p) = &cell.phases {
                    phases.merge(p);
                }
                parsed.push(Some(cell.metrics.clone()));
                spec.row(Ok(&cell.metrics))
            }
            Err(e) => {
                failed += 1;
                cell_cached.push(false);
                parsed.push(None);
                let row = spec.row(Err(e.message.as_str()));
                failures.push(e);
                row
            }
        };
        rows.push(row);
    }

    let summary = if failed == 0 {
        summarize(specs, &parsed)
    } else {
        Json::object().with("incomplete", true)
    };
    let report = Json::object()
        .with("schema", SCHEMA)
        .with("model_revision", MODEL_REVISION)
        .with("mode", if crate::smoke() { "smoke" } else { "full" })
        .with("cells", Json::Arr(rows))
        .with("summary", summary);
    CampaignOutcome {
        report,
        simulated,
        cached,
        failed,
        hist,
        phases,
        telemetry,
        cache_counts: cache.map(DiskCache::counts).unwrap_or_default(),
        failures,
        cell_cached,
    }
}

/// A metric extracted from one cell's parsed JSON.
fn num(metrics: &Json, key: &str) -> f64 {
    metrics.get(key).and_then(Json::as_f64).unwrap_or(f64::NAN)
}

fn total_flits(metrics: &Json) -> f64 {
    let t = metrics.get("traffic").unwrap_or(&Json::Null);
    num(t, "l1_l2_flits") + num(t, "l2_l3_flits") + num(t, "remote_flits")
}

fn l2l3_flits(metrics: &Json) -> f64 {
    num(metrics.get("traffic").unwrap_or(&Json::Null), "l2_l3_flits")
}

/// Derives the headline summary from the parsed cell metrics. Pure
/// arithmetic over already-committed values, so it inherits the cells'
/// worker-count independence.
fn summarize(specs: &[CellSpec], parsed: &[Option<Json>]) -> Json {
    let find = |suite: SuiteTag, workload: &str, protocol: ProtocolKind, chiplets: usize| {
        specs
            .iter()
            .zip(parsed)
            .find(|(s, _)| {
                s.suite == suite
                    && s.cell.workload.name() == workload
                    && s.cell.protocol == protocol
                    && s.cell.chiplets == chiplets
            })
            .and_then(|(_, m)| m.as_ref())
    };
    let main_workloads: Vec<(&str, ReuseClass)> = {
        let mut seen = Vec::new();
        for s in specs.iter().filter(|s| s.suite == SuiteTag::Main) {
            let entry = (s.cell.workload.name(), s.cell.workload.class());
            if !seen.contains(&entry) {
                seen.push(entry);
            }
        }
        seen
    };
    let counts: Vec<usize> = {
        let mut seen = Vec::new();
        for s in specs.iter().filter(|s| s.suite == SuiteTag::Main) {
            if s.cell.protocol != ProtocolKind::Monolithic && !seen.contains(&s.cell.chiplets) {
                seen.push(s.cell.chiplets);
            }
        }
        seen
    };

    // Figure 2: baseline-vs-monolithic loss at 4 chiplets.
    let losses: Vec<f64> = main_workloads
        .iter()
        .filter_map(|&(w, _)| {
            let base = find(SuiteTag::Main, w, ProtocolKind::Baseline, 4)?;
            let mono = find(SuiteTag::Main, w, ProtocolKind::Monolithic, 4)?;
            Some(num(base, "cycles") / num(mono, "cycles") - 1.0)
        })
        .collect();
    let fig2 = Json::object()
        .with(
            "avg_loss",
            losses.iter().sum::<f64>() / losses.len().max(1) as f64,
        )
        .with(
            "min_loss",
            losses.iter().copied().fold(f64::INFINITY, f64::min),
        )
        .with("max_loss", losses.iter().copied().fold(0.0, f64::max));

    // Figure 8: per-chiplet-count speedup geomeans.
    let mut fig8 = Vec::new();
    for &chiplets in &counts {
        let trip = |w: &str| {
            Some((
                num(
                    find(SuiteTag::Main, w, ProtocolKind::Baseline, chiplets)?,
                    "cycles",
                ),
                num(
                    find(SuiteTag::Main, w, ProtocolKind::CpElide, chiplets)?,
                    "cycles",
                ),
                num(
                    find(SuiteTag::Main, w, ProtocolKind::Hmg, chiplets)?,
                    "cycles",
                ),
            ))
        };
        let trips: Vec<(ReuseClass, (f64, f64, f64))> = main_workloads
            .iter()
            .filter_map(|&(w, class)| Some((class, trip(w)?)))
            .collect();
        let cpe = geomean(trips.iter().map(|(_, (b, c, _))| b / c));
        let hmg = geomean(trips.iter().map(|(_, (b, _, h))| b / h));
        let reuse = geomean(
            trips
                .iter()
                .filter(|(class, _)| *class == ReuseClass::ModerateHigh)
                .map(|(_, (b, c, _))| b / c),
        );
        let low_min = trips
            .iter()
            .filter(|(class, _)| *class == ReuseClass::Low)
            .map(|(_, (b, c, _))| b / c)
            .fold(f64::INFINITY, f64::min);
        fig8.push(
            Json::object()
                .with("chiplets", chiplets)
                .with("cpelide_vs_baseline", cpe)
                .with("hmg_vs_baseline", hmg)
                .with("cpelide_vs_hmg", cpe / hmg)
                .with("cpelide_vs_baseline_reuse", reuse)
                .with(
                    "low_reuse_min_speedup",
                    if low_min.is_finite() { low_min } else { 1.0 },
                ),
        );
    }

    // Figures 9/10: energy and traffic ratios at 4 chiplets.
    let ratios = |f: &dyn Fn(&Json) -> f64| -> (f64, f64, f64) {
        let per: Vec<(f64, f64, f64)> = main_workloads
            .iter()
            .filter_map(|&(w, _)| {
                let b = f(find(SuiteTag::Main, w, ProtocolKind::Baseline, 4)?);
                let c = f(find(SuiteTag::Main, w, ProtocolKind::CpElide, 4)?);
                let h = f(find(SuiteTag::Main, w, ProtocolKind::Hmg, 4)?);
                Some((c / b, c / h, h / b))
            })
            .collect();
        (
            geomean(per.iter().map(|r| r.0)),
            geomean(per.iter().map(|r| r.1)),
            geomean(per.iter().map(|r| r.2)),
        )
    };
    let (e_cb, e_ch, e_hb) = ratios(&|m| num(m, "energy_total_uj"));
    let (t_cb, t_ch, t_hb) = ratios(&total_flits);
    let (_, l2l3_ch, _) = ratios(&l2l3_flits);

    // §III-A occupancy over the CPElide cells at 4 chiplets.
    let (mut max_live, mut evictions) = (0.0f64, 0.0f64);
    for &(w, _) in &main_workloads {
        if let Some(t) =
            find(SuiteTag::Main, w, ProtocolKind::CpElide, 4).and_then(|m| m.get("table"))
        {
            max_live = max_live.max(num(t, "max_live_entries"));
            evictions += num(t, "evictions");
        }
    }

    // §VI multi-stream: CPElide vs HMG at 4 chiplets.
    let ms_workloads: Vec<&str> = {
        let mut seen = Vec::new();
        for s in specs.iter().filter(|s| s.suite == SuiteTag::MultiStream) {
            if !seen.contains(&s.cell.workload.name()) {
                seen.push(s.cell.workload.name());
            }
        }
        seen
    };
    let ms: Vec<f64> = ms_workloads
        .iter()
        .filter_map(|&w| {
            let c = find(SuiteTag::MultiStream, w, ProtocolKind::CpElide, 4)?;
            let h = find(SuiteTag::MultiStream, w, ProtocolKind::Hmg, 4)?;
            Some(num(h, "cycles") / num(c, "cycles"))
        })
        .collect();

    Json::object()
        .with("fig2", fig2)
        .with("fig8", Json::Arr(fig8))
        .with(
            "energy",
            Json::object()
                .with("cpelide_vs_baseline", e_cb)
                .with("cpelide_vs_hmg", e_ch)
                .with("hmg_vs_baseline", e_hb),
        )
        .with(
            "traffic",
            Json::object()
                .with("cpelide_vs_baseline", t_cb)
                .with("cpelide_vs_hmg", t_ch)
                .with("hmg_vs_baseline", t_hb)
                .with("l2l3_cpelide_vs_hmg", l2l3_ch),
        )
        .with(
            "occupancy",
            Json::object()
                .with("max_live_entries", max_live)
                .with("evictions", evictions),
        )
        .with(
            "multistream",
            Json::object()
                .with("workloads", ms.len())
                .with("cpelide_vs_hmg", geomean(ms.iter().copied())),
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumeration_covers_every_suite_protocol_and_count() {
        // Outside smoke mode env the full enumeration is in effect only
        // when CPELIDE_SMOKE is unset; assert the structural invariants
        // that hold either way.
        let specs = cells();
        assert!(!specs.is_empty());
        assert!(specs
            .iter()
            .any(|s| s.cell.protocol == ProtocolKind::Monolithic && s.cell.chiplets == 4));
        assert!(specs.iter().any(|s| s.suite == SuiteTag::MultiStream));
        // Every main-suite workload appears under all three protocols at
        // every enumerated count.
        let counts: Vec<usize> = {
            let mut seen = Vec::new();
            for s in &specs {
                if s.suite == SuiteTag::Main
                    && s.cell.protocol != ProtocolKind::Monolithic
                    && !seen.contains(&s.cell.chiplets)
                {
                    seen.push(s.cell.chiplets);
                }
            }
            seen
        };
        for &c in &counts {
            for p in PROTOCOLS {
                let n = specs
                    .iter()
                    .filter(|s| {
                        s.suite == SuiteTag::Main && s.cell.protocol == p && s.cell.chiplets == c
                    })
                    .count();
                assert!(n > 0, "no {p:?} cells at {c} chiplets");
            }
        }
    }

    #[test]
    fn fingerprints_differ_across_every_cell_axis() {
        let w = chiplet_workloads::lookup("square").unwrap_or_else(|e| panic!("{e}"));
        let base = CellSpec::new(&w, ProtocolKind::CpElide, 4, SuiteTag::Main);
        let by_protocol = CellSpec::new(&w, ProtocolKind::Hmg, 4, SuiteTag::Main);
        let by_count = CellSpec::new(&w, ProtocolKind::CpElide, 2, SuiteTag::Main);
        let by_suite = CellSpec::new(&w, ProtocolKind::CpElide, 4, SuiteTag::MultiStream);
        let other = chiplet_workloads::lookup("btree").unwrap_or_else(|e| panic!("{e}"));
        let by_workload = CellSpec::new(&other, ProtocolKind::CpElide, 4, SuiteTag::Main);
        let prints = [
            base.fingerprint(),
            by_protocol.fingerprint(),
            by_count.fingerprint(),
            by_suite.fingerprint(),
            by_workload.fingerprint(),
        ];
        for (i, a) in prints.iter().enumerate() {
            assert_eq!(a, &prints[i], "fingerprints are stable");
            for b in &prints[i + 1..] {
                assert_ne!(a, b, "axes must separate cache keys");
            }
        }
        assert_eq!(base.fingerprint(), base.clone().fingerprint());
    }

    #[test]
    fn cell_ids_are_colon_joined() {
        let w = chiplet_workloads::lookup("square").unwrap_or_else(|e| panic!("{e}"));
        let spec = CellSpec::new(&w, ProtocolKind::Baseline, 7, SuiteTag::Main);
        assert_eq!(spec.id(), "square:Baseline:7");
    }
}
