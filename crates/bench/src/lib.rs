//! Shared reporting helpers for the figure-regeneration binaries and
//! the wall-clock benches.
//!
//! The evaluation sweep runs in one of two modes:
//!
//! * **Batch** ([`campaign`], `--bin campaign`): one process owns the
//!   whole cell list, fans it out across the `chiplet_harness::fleet`
//!   worker pool with content-hash caching, writes
//!   `results/campaign.json`, and exits. [`report`] (`--bin report`)
//!   regenerates the paper-vs-measured tables in EXPERIMENTS.md from
//!   that document.
//! * **Service** ([`serve`], `--bin serve`): a long-running multi-tenant
//!   daemon that keeps the fleet warm and accepts sweep requests over a
//!   hand-rolled HTTP/1.1 protocol (DESIGN.md §16), streaming each
//!   cell's row — byte-identical to the batch row — as it completes.
//!   Both modes share the `results/cache/` `DiskCache`, so cells run in
//!   one mode are cache hits in the other.
//!
//! Each paper artifact additionally keeps a dedicated narrow binary
//! (`cargo run --release -p cpelide-bench --bin fig8`, etc.); `--bin all`
//! regenerates everything. Every binary honours these environment
//! variables (the full table lives in README.md):
//!
//! - `CPELIDE_SMOKE=1` shrinks the run to a tiny configuration (two
//!   workloads, fewer chiplet counts) so CI can smoke-run every artifact.
//! - `CPELIDE_RESULTS_DIR` redirects the JSON reports (default
//!   `results/`).
//! - `CPELIDE_JOBS` sets the fleet worker count (default: available
//!   parallelism; forced to 1 under smoke). Reports are byte-identical
//!   at every setting.
//! - `CPELIDE_CACHE=0` disables the campaign's `results/cache/` result
//!   cache.
//!
//! The `probe` binary additionally honours `CPELIDE_TRACE=<path>` (or the
//! `--trace <path>` flag) to export a Chrome/Perfetto timeline of its
//! CPElide run, loadable at <https://ui.perfetto.dev>.

// chiplet-check: allow-file(no-panic) — artifact writers abort by contract:
// a malformed or unwritable report must kill the figure run loudly rather
// than let a silent skip masquerade as regenerated results.

pub mod campaign;
pub mod perfgate;
pub mod report;
pub mod serve;
pub mod telemetry;

use chiplet_harness::json::{self, Json};
use chiplet_sim::experiments::Fig8Row;
use chiplet_workloads::{ReuseClass, Workload};
use std::path::PathBuf;

/// True when `CPELIDE_SMOKE=1`: binaries run a tiny configuration.
pub fn smoke() -> bool {
    std::env::var("CPELIDE_SMOKE").is_ok_and(|v| v == "1")
}

fn shrink(mut s: Vec<Workload>) -> Vec<Workload> {
    if smoke() {
        // Simulation cost scales with kernels × footprint (each kernel
        // walks a trace over its arrays), so rank by that product rather
        // than footprint alone — the smallest-footprint suite members are
        // the most kernel-heavy.
        s.sort_by_key(|w| w.kernel_count() as u64 * w.footprint_bytes());
        s.truncate(2);
    }
    s
}

/// The paper suite, truncated to the two cheapest-to-simulate members in
/// smoke mode so debug-build smoke runs stay fast.
pub fn effective_suite() -> Vec<Workload> {
    shrink(chiplet_workloads::suite())
}

/// The multi-stream suite, truncated the same way in smoke mode.
pub fn effective_multistream_suite() -> Vec<Workload> {
    shrink(chiplet_workloads::multi_stream_suite())
}

/// Picks `full` for a real run and `tiny` under smoke.
pub fn pick<T>(full: Vec<T>, tiny: Vec<T>) -> Vec<T> {
    if smoke() {
        tiny
    } else {
        full
    }
}

/// The cargo workspace root, resolved at compile time from this crate's
/// manifest directory (`crates/bench` → two levels up).
pub fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(std::path::Path::parent)
        .map(std::path::Path::to_path_buf)
        .unwrap_or(manifest)
}

/// Where JSON reports land: `CPELIDE_RESULTS_DIR`, default `results/`.
///
/// Relative paths (including the default) are resolved against the
/// *workspace root*, not the process cwd: `cargo bench` and `cargo test`
/// run their binaries with the package directory as cwd, and a cwd-relative
/// default would scatter stray `crates/*/results/` directories. Absolute
/// paths are honoured verbatim.
pub fn results_dir() -> PathBuf {
    let raw = std::env::var_os("CPELIDE_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));
    if raw.is_absolute() {
        raw
    } else {
        workspace_root().join(raw)
    }
}

/// Validates `report` and writes it to `<results_dir>/<artifact>.json`,
/// returning the path. Every figure binary funnels its machine-readable
/// output through here, so a malformed document can never land on disk.
pub fn write_report(artifact: &str, report: &Json) -> PathBuf {
    let rendered = report.render();
    json::validate(&rendered).expect("report must render as well-formed JSON");
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join(format!("{artifact}.json"));
    std::fs::write(&path, rendered).expect("write report");
    path
}

/// The trace destination requested via `CPELIDE_TRACE`, if any.
pub fn trace_path_from_env() -> Option<PathBuf> {
    std::env::var_os("CPELIDE_TRACE")
        .filter(|v| !v.is_empty())
        .map(PathBuf::from)
}

/// Validates and writes a Chrome/Perfetto trace to `path`: spans must
/// balance and the rendered document must be well-formed JSON, so a
/// half-broken trace can never land on disk.
pub fn write_trace(tracer: &chiplet_harness::trace::Tracer, path: &std::path::Path) {
    tracer.balanced().expect("trace spans must pair up");
    let rendered = tracer.to_chrome_json();
    json::validate(&rendered).expect("trace must render as well-formed JSON");
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create trace dir");
        }
    }
    std::fs::write(path, rendered).expect("write trace");
}

/// Writes a plain-text artifact (e.g. a Prometheus exposition) into the
/// results directory, returning the path.
pub fn write_text(artifact: &str, content: &str) -> PathBuf {
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join(artifact);
    std::fs::write(&path, content).expect("write text artifact");
    path
}

/// Renders a horizontal rule sized for the report tables.
pub fn rule(width: usize) -> String {
    "-".repeat(width)
}

/// Formats a normalized value (1.0 = Baseline) to two decimals.
pub fn norm(x: f64) -> String {
    format!("{x:.2}")
}

/// Renders the Figure 8 rows as a fixed-width table grouped by reuse class.
pub fn render_fig8(rows: &[Fig8Row], chiplets: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Figure 8 — normalized performance vs Baseline ({chiplets} chiplets)\n"
    ));
    out.push_str(&format!(
        "{:<16} {:>9} {:>9}\n",
        "workload", "CPElide", "HMG"
    ));
    out.push_str(&rule(36));
    out.push('\n');
    for class in [ReuseClass::ModerateHigh, ReuseClass::Low] {
        out.push_str(&format!("[{class} inter-kernel reuse]\n"));
        for r in rows.iter().filter(|r| r.class == class) {
            out.push_str(&format!(
                "{:<16} {:>9} {:>9}\n",
                r.workload,
                norm(r.cpelide),
                norm(r.hmg)
            ));
        }
    }
    out
}

/// Simple aligned two-column list.
pub fn kv(label: &str, value: impl std::fmt::Display) -> String {
    format!("{label:<44} {value}\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_fig8_groups_by_class() {
        let rows = vec![
            Fig8Row {
                workload: "square".into(),
                class: ReuseClass::ModerateHigh,
                cpelide: 1.3,
                hmg: 0.9,
            },
            Fig8Row {
                workload: "btree".into(),
                class: ReuseClass::Low,
                cpelide: 1.0,
                hmg: 0.85,
            },
        ];
        let s = render_fig8(&rows, 4);
        assert!(s.contains("square"));
        assert!(s.contains("btree"));
        assert!(s.contains("1.30"));
        let hi = s.find("moderate-high").unwrap();
        let lo = s.find("low inter-kernel").unwrap();
        assert!(hi < lo);
    }

    #[test]
    fn workspace_root_holds_the_workspace_manifest() {
        assert!(workspace_root().join("Cargo.toml").is_file());
        assert!(workspace_root().join("crates/bench/Cargo.toml").is_file());
    }

    #[test]
    fn default_results_dir_is_workspace_rooted() {
        // `cargo bench`/`cargo test` run binaries with the package dir as
        // cwd; the default must still land in the workspace's results/.
        if std::env::var_os("CPELIDE_RESULTS_DIR").is_some() {
            return; // honour an explicit override in the environment
        }
        let d = results_dir();
        assert!(d.is_absolute());
        assert_eq!(d, workspace_root().join("results"));
    }

    #[test]
    fn helpers_format() {
        assert_eq!(norm(1.234), "1.23");
        assert_eq!(rule(3), "---");
        assert!(kv("a", 1).starts_with('a'));
    }
}
