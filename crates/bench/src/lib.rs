//! Shared reporting helpers for the figure-regeneration binaries and
//! Criterion benches.
//!
//! Each paper artifact has a dedicated binary (`cargo run --release -p
//! cpelide-bench --bin fig8`, etc.); `--bin all` regenerates everything.

use chiplet_sim::experiments::Fig8Row;
use chiplet_workloads::ReuseClass;

/// Renders a horizontal rule sized for the report tables.
pub fn rule(width: usize) -> String {
    "-".repeat(width)
}

/// Formats a normalized value (1.0 = Baseline) to two decimals.
pub fn norm(x: f64) -> String {
    format!("{x:.2}")
}

/// Renders the Figure 8 rows as a fixed-width table grouped by reuse class.
pub fn render_fig8(rows: &[Fig8Row], chiplets: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Figure 8 — normalized performance vs Baseline ({chiplets} chiplets)\n"
    ));
    out.push_str(&format!("{:<16} {:>9} {:>9}\n", "workload", "CPElide", "HMG"));
    out.push_str(&rule(36));
    out.push('\n');
    for class in [ReuseClass::ModerateHigh, ReuseClass::Low] {
        out.push_str(&format!("[{class} inter-kernel reuse]\n"));
        for r in rows.iter().filter(|r| r.class == class) {
            out.push_str(&format!(
                "{:<16} {:>9} {:>9}\n",
                r.workload,
                norm(r.cpelide),
                norm(r.hmg)
            ));
        }
    }
    out
}

/// Simple aligned two-column list.
pub fn kv(label: &str, value: impl std::fmt::Display) -> String {
    format!("{label:<44} {value}\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_fig8_groups_by_class() {
        let rows = vec![
            Fig8Row {
                workload: "square".into(),
                class: ReuseClass::ModerateHigh,
                cpelide: 1.3,
                hmg: 0.9,
            },
            Fig8Row {
                workload: "btree".into(),
                class: ReuseClass::Low,
                cpelide: 1.0,
                hmg: 0.85,
            },
        ];
        let s = render_fig8(&rows, 4);
        assert!(s.contains("square"));
        assert!(s.contains("btree"));
        assert!(s.contains("1.30"));
        let hi = s.find("moderate-high").unwrap();
        let lo = s.find("low inter-kernel").unwrap();
        assert!(hi < lo);
    }

    #[test]
    fn helpers_format() {
        assert_eq!(norm(1.234), "1.23");
        assert_eq!(rule(3), "---");
        assert!(kv("a", 1).starts_with('a'));
    }
}
