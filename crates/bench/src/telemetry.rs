//! Host-side campaign observability: the `results/campaign.prom`
//! Prometheus exposition and the wall-clock Perfetto fleet trace.
//!
//! Two clock domains, kept strictly apart (DESIGN.md §13):
//!
//! * **Deterministic section** — cell counts, cache hit/miss/corrupt
//!   counters, the merged per-phase cycle/op breakdown and the merged
//!   simulated-time histograms. For a given cell list and cache state
//!   these are byte-identical at any `CPELIDE_JOBS`; CI compares the
//!   prefix of `campaign.prom` up to [`NONDET_MARKER`] across worker
//!   counts.
//! * **Wall-clock section** — everything below the marker: worker
//!   utilization, steal counts, host job latencies, queue depths. Honest
//!   measurements of this machine, this run; never compared, never fed
//!   into reports that must reproduce.
//!
//! The fleet trace ([`host_trace`]) is the same telemetry as a timeline:
//! one `pid 0` process ("campaign fleet"), one `tid` per worker, an `X`
//! span per cell labelled `workload:protocol:chiplets`, `cache_hit`
//! instants, and a cumulative `steals` counter track. Its JSON is stamped
//! `clockDomain: "wall"` so it can never be confused with the simulator's
//! deterministic traces.

use crate::campaign::{CampaignOutcome, CellSpec};
use chiplet_harness::trace::{PromText, Tracer};

/// The comment line separating `campaign.prom`'s deterministic prefix
/// from the wall-clock section (written via [`PromText::comment`], so the
/// file carries it as `# --- ... ---`).
pub const NONDET_MARKER: &str = "--- non-deterministic below: host wall-clock domain ---";

/// Renders `results/campaign.prom`: the deterministic campaign metrics,
/// then [`NONDET_MARKER`], then the host wall-clock fleet metrics.
pub fn campaign_prom(outcome: &CampaignOutcome) -> String {
    let mut out = PromText::new();
    out.comment("cpelide campaign host telemetry");
    out.comment(
        "deterministic section: byte-identical at any CPELIDE_JOBS for a \
         given cell list and cache state",
    );

    let cells = outcome.simulated + outcome.cached + outcome.failed;
    out.counter(
        "cpelide_campaign_cells_total",
        "campaign cells enumerated",
        "",
        cells as u64,
    );
    for (state, n) in [
        ("simulated", outcome.simulated),
        ("cached", outcome.cached),
        ("failed", outcome.failed),
    ] {
        out.gauge(
            "cpelide_campaign_cells",
            "campaign cells by outcome",
            &format!("state=\"{state}\""),
            n,
        );
    }

    let cc = outcome.cache_counts;
    for (result, n) in [
        ("hit", cc.hits),
        ("miss", cc.misses),
        ("corrupt", cc.corrupt),
    ] {
        out.counter(
            "cpelide_campaign_cache_lookups",
            "result-cache lookups by outcome (corrupt = hit that failed to parse)",
            &format!("result=\"{result}\""),
            n,
        );
    }
    out.gauge(
        "cpelide_campaign_cache_hit_rate",
        "fraction of lookups served a usable cached result",
        "",
        format!("{:.6}", cc.hit_rate()),
    );

    for (p, st) in outcome.phases.entries() {
        let labels = format!("phase=\"{}\"", p.label());
        out.gauge(
            "cpelide_campaign_phase_cycles",
            "simulated cycles attributed to an engine pipeline phase, summed over simulated cells",
            &labels,
            format!("{:.0}", st.cycles),
        );
        out.gauge(
            "cpelide_campaign_phase_ops",
            "operations attributed to an engine pipeline phase, summed over simulated cells",
            &labels,
            st.ops,
        );
        out.gauge(
            "cpelide_campaign_phase_fraction",
            "phase share of total simulated cycles",
            &labels,
            format!("{:.6}", outcome.phases.fraction(p)),
        );
    }
    outcome.hist.prometheus_text("", &mut out);

    out.comment(NONDET_MARKER);
    let t = &outcome.telemetry;
    out.gauge(
        "cpelide_fleet_workers",
        "fleet worker threads this run",
        "",
        t.workers,
    );
    out.gauge(
        "cpelide_fleet_elapsed_us",
        "wall microseconds from pool launch to full join",
        "",
        t.elapsed_us,
    );
    out.counter(
        "cpelide_fleet_jobs_stolen_total",
        "jobs that ran on a worker other than the one they were striped to",
        "",
        t.stolen_total(),
    );
    for (w, wt) in t.per_worker.iter().enumerate() {
        let labels = format!("worker=\"{w}\"");
        out.gauge(
            "cpelide_fleet_worker_jobs",
            "jobs executed per worker",
            &labels,
            wt.executed,
        );
        out.gauge(
            "cpelide_fleet_worker_stolen",
            "stolen jobs per worker",
            &labels,
            wt.stolen,
        );
        out.gauge(
            "cpelide_fleet_worker_utilization",
            "fraction of the pool lifetime spent inside job bodies",
            &labels,
            format!("{:.6}", t.utilization(w)),
        );
    }
    t.job_latency_us.prometheus_text(
        "cpelide_fleet",
        "",
        "per-job wall-clock latency in microseconds",
        &mut out,
    );
    t.queue_depth.prometheus_text(
        "cpelide_fleet",
        "",
        "own-deque depth observed before each pop",
        &mut out,
    );
    out.finish()
}

/// The deterministic prefix of a rendered `campaign.prom`: every line up
/// to (excluding) the [`NONDET_MARKER`] comment. This is the portion CI
/// byte-compares across `CPELIDE_JOBS` settings.
pub fn deterministic_prefix(prom: &str) -> &str {
    match prom.find(NONDET_MARKER) {
        Some(pos) => {
            // Back up to the start of the marker's comment line.
            let line_start = prom[..pos].rfind('\n').map(|i| i + 1).unwrap_or(0);
            &prom[..line_start]
        }
        None => prom,
    }
}

/// Builds the host-side fleet timeline from the campaign's per-job
/// execution log: worker lanes, one span per cell, cache-hit instants and
/// a cumulative steal counter, all stamped in wall microseconds.
pub fn host_trace(specs: &[CellSpec], outcome: &CampaignOutcome) -> Tracer {
    let t = &outcome.telemetry;
    let mut tr = Tracer::new_wall();
    tr.name_process(0, "campaign fleet");
    for w in 0..t.workers {
        tr.name_thread(0, w as u32, format!("worker {w}"));
    }
    // Seed the counter track at t=0 so it exists even on steal-free runs.
    tr.counter("steals", "fleet", 0.0, 0, vec![("stolen", 0.0)]);

    let mut stolen_so_far = 0.0f64;
    let mut by_start: Vec<usize> = (0..t.jobs_log.len()).collect();
    by_start.sort_by_key(|&i| t.jobs_log[i].start_us);
    for i in by_start {
        let rec = t.jobs_log[i];
        let label = specs
            .get(rec.index)
            .map(CellSpec::id)
            .unwrap_or_else(|| format!("job {}", rec.index));
        tr.complete(
            label,
            "cell",
            rec.start_us as f64,
            rec.dur_us as f64,
            0,
            rec.worker as u32,
            vec![
                ("index", rec.index as f64),
                ("stolen", f64::from(u8::from(rec.stolen))),
            ],
        );
        if outcome.cell_cached.get(rec.index).copied().unwrap_or(false) {
            tr.instant(
                "cache_hit",
                "cache",
                rec.start_us as f64,
                0,
                rec.worker as u32,
                vec![("index", rec.index as f64)],
            );
        }
        if rec.stolen {
            stolen_so_far += 1.0;
            tr.counter(
                "steals",
                "fleet",
                rec.start_us as f64,
                0,
                vec![("stolen", stolen_so_far)],
            );
        }
    }
    tr
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiplet_harness::fleet;

    fn smoke_outcome(workers: usize) -> (Vec<CellSpec>, CampaignOutcome) {
        let w = chiplet_workloads::lookup("btree").unwrap_or_else(|e| panic!("{e}"));
        let specs: Vec<CellSpec> = crate::campaign::PROTOCOLS
            .iter()
            .map(|&p| CellSpec {
                cell: chiplet_sim::experiments::Cell::new(w.clone(), p, 2),
                suite: crate::campaign::SuiteTag::Main,
            })
            .collect();
        let outcome = crate::campaign::run(&specs, workers, None, None, false);
        (specs, outcome)
    }

    #[test]
    fn campaign_prom_is_valid_exposition_with_both_sections() {
        let (_, outcome) = smoke_outcome(2);
        let prom = campaign_prom(&outcome);
        let samples = chiplet_harness::trace::prom::parse(&prom)
            .unwrap_or_else(|e| panic!("invalid exposition: {e}"));
        assert!(!samples.is_empty());
        assert!(prom.contains(NONDET_MARKER));
        let det = deterministic_prefix(&prom);
        assert!(det.contains("cpelide_campaign_phase_cycles"));
        assert!(det.contains("cpelide_campaign_cache_hit_rate"));
        assert!(
            !det.contains("cpelide_fleet_"),
            "wall metrics leaked above the marker"
        );
        assert!(prom.contains("cpelide_fleet_worker_utilization"));
        assert!(prom.contains("cpelide_fleet_job_wall_us_count"));
    }

    #[test]
    fn deterministic_prefix_stops_at_the_marker() {
        let prom = "a 1\n# other comment\nb 2\n# ".to_owned() + NONDET_MARKER + "\nc 3\n";
        let det = deterministic_prefix(&prom);
        assert_eq!(det, "a 1\n# other comment\nb 2\n");
        assert_eq!(deterministic_prefix("a 1\n"), "a 1\n");
    }

    #[test]
    fn host_trace_covers_every_cell_on_worker_lanes() {
        let (specs, outcome) = smoke_outcome(2);
        let tr = host_trace(&specs, &outcome);
        assert_eq!(tr.clock(), chiplet_harness::trace::ClockDomain::WallMicros);
        tr.balanced().unwrap_or_else(|e| panic!("{e}"));
        let spans: Vec<_> = tr.events().iter().filter(|e| e.cat == "cell").collect();
        assert_eq!(spans.len(), specs.len());
        for spec in &specs {
            assert!(
                spans.iter().any(|e| e.name == spec.id()),
                "no span for {}",
                spec.id()
            );
        }
        let json = tr.to_chrome_json();
        chiplet_harness::json::validate(&json).unwrap_or_else(|e| panic!("{e}"));
        assert!(json.contains("\"clockDomain\":\"wall\""));
        assert!(json.contains("worker 0"));
        assert!(
            tr.events()
                .iter()
                .any(|e| e.name == "steals" && e.cat == "fleet"),
            "steal counter track missing"
        );
    }

    #[test]
    fn obs_section_renders_tables_from_campaign_prom() {
        let (_, outcome) = smoke_outcome(2);
        let prom = campaign_prom(&outcome);
        let s = crate::report::obs_section(&prom).unwrap_or_else(|e| panic!("{e}"));
        assert!(s.contains("Campaign cells"));
        assert!(s.contains("Engine phase breakdown"));
        assert!(s.contains("access_replay"));
        assert!(s.contains("Fleet (wall clock"));
        assert!(s.contains("utilization"));
        assert!(
            crate::report::obs_section("cpelide_campaign_cells 1\n").is_err(),
            "missing families must be reported, not skipped"
        );
    }

    #[test]
    fn fleet_telemetry_is_consistent_with_the_run() {
        let (specs, outcome) = smoke_outcome(fleet::workers().clamp(2, 4));
        let t = &outcome.telemetry;
        assert_eq!(t.jobs as usize, specs.len());
        assert_eq!(t.executed_total() as usize, specs.len());
        assert_eq!(t.jobs_log.len(), specs.len());
        assert_eq!(outcome.cell_cached.len(), specs.len());
        assert_eq!(outcome.simulated, specs.len(), "no cache: all simulated");
        assert!(outcome.phases.total_ops() > 0);
    }
}
