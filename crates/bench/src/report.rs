//! The docs generator: turns `results/campaign.json` into the
//! paper-vs-measured blocks of EXPERIMENTS.md.
//!
//! Generated content lives between `<!-- generated: NAME -->` /
//! `<!-- /generated: NAME -->` marker pairs; everything outside the
//! markers (analysis, deviations, per-app spot checks) is hand-written
//! and untouched. `--bin report` rewrites the blocks in place; `--bin
//! report -- --check` fails when the committed document no longer matches
//! the committed campaign results — the CI docs-drift gate.
//!
//! Verdicts are mechanical so they cannot editorialize: a measured delta
//! within five percentage points of the paper's is a `match`; otherwise
//! the verdict reports the sign agreement and whether the effect came out
//! stronger or weaker than published.

use crate::campaign::SCHEMA;
use chiplet_harness::json::Json;
use std::path::PathBuf;

/// Tolerance (in absolute fractional delta, i.e. five percentage points)
/// inside which a measured headline value counts as a `match`.
pub const MATCH_TOLERANCE: f64 = 0.05;

/// Where EXPERIMENTS.md lives: `CPELIDE_EXPERIMENTS` when set (tests), or
/// the workspace copy next to this crate.
pub fn experiments_path() -> PathBuf {
    std::env::var_os("CPELIDE_EXPERIMENTS")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("..")
                .join("..")
                .join("EXPERIMENTS.md")
        })
}

/// Where the campaign report lives: `<results_dir>/campaign.json`.
pub fn campaign_path() -> PathBuf {
    crate::results_dir().join("campaign.json")
}

fn get<'a>(j: &'a Json, path: &[&str]) -> Result<&'a Json, String> {
    let mut cur = j;
    for key in path {
        cur = cur
            .get(key)
            .ok_or_else(|| format!("campaign.json is missing `{}`", path.join(".")))?;
    }
    Ok(cur)
}

fn getf(j: &Json, path: &[&str]) -> Result<f64, String> {
    get(j, path)?
        .as_f64()
        .ok_or_else(|| format!("campaign.json `{}` is not a number", path.join(".")))
}

/// `+13.3 %` — signed percentage with one decimal, from a fraction.
fn pct(x: f64) -> String {
    format!("{:+.1} %", x * 100.0)
}

/// `81 %` — unsigned whole percentage, from a fraction.
fn pct0(x: f64) -> String {
    format!("{:.0} %", x * 100.0)
}

fn verdict(paper: f64, measured: f64) -> &'static str {
    if (measured - paper).abs() <= MATCH_TOLERANCE {
        "match"
    } else if paper.signum() != measured.signum() {
        "opposite sign"
    } else if measured.abs() > paper.abs() {
        "same sign, stronger"
    } else {
        "same sign, weaker"
    }
}

/// Validates the document header and returns its summary object. Refuses
/// unknown schemas and incomplete (failed-cell) campaigns.
pub fn summary_of(campaign: &Json) -> Result<&Json, String> {
    let schema = get(campaign, &["schema"])?
        .as_str()
        .unwrap_or("<not a string>");
    if schema != SCHEMA {
        return Err(format!(
            "campaign.json has schema `{schema}`, this report generator expects `{SCHEMA}`"
        ));
    }
    let summary = get(campaign, &["summary"])?;
    if summary.get("incomplete").and_then(Json::as_bool) == Some(true) {
        return Err("campaign.json is incomplete (failed cells); re-run the campaign".to_owned());
    }
    Ok(summary)
}

/// Generates every `(block name, markdown content)` pair from a parsed
/// `campaign.json`.
///
/// # Errors
///
/// Returns a description of the first missing or mistyped field.
pub fn generate_blocks(campaign: &Json) -> Result<Vec<(String, String)>, String> {
    let summary = summary_of(campaign)?;
    let fig8 = get(summary, &["fig8"])?
        .as_arr()
        .ok_or("campaign.json `summary.fig8` is not an array")?;
    let at4 = fig8
        .iter()
        .find(|e| e.get("chiplets").and_then(Json::as_f64) == Some(4.0))
        .ok_or("campaign.json has no fig8 entry for 4 chiplets")?;

    let mut blocks = Vec::new();

    // ---- headline table ------------------------------------------------
    let perf = getf(at4, &["cpelide_vs_baseline"])? - 1.0;
    let perf_reuse = getf(at4, &["cpelide_vs_baseline_reuse"])? - 1.0;
    let perf_hmg = getf(at4, &["cpelide_vs_hmg"])? - 1.0;
    let low_min = getf(at4, &["low_reuse_min_speedup"])?;
    let e_base = getf(summary, &["energy", "cpelide_vs_baseline"])? - 1.0;
    let e_hmg = getf(summary, &["energy", "cpelide_vs_hmg"])? - 1.0;
    let t_base = getf(summary, &["traffic", "cpelide_vs_baseline"])? - 1.0;
    let t_hmg = getf(summary, &["traffic", "cpelide_vs_hmg"])? - 1.0;
    let l2l3 = getf(summary, &["traffic", "l2l3_cpelide_vs_hmg"])? - 1.0;
    let rows: [(&str, f64, f64); 8] = [
        ("CPElide performance vs Baseline", 0.13, perf),
        (
            "CPElide vs Baseline, moderate/high-reuse apps",
            0.17,
            perf_reuse,
        ),
        ("CPElide performance vs HMG", 0.19, perf_hmg),
        ("CPElide energy vs Baseline", -0.14, e_base),
        ("CPElide energy vs HMG", -0.11, e_hmg),
        ("CPElide traffic vs Baseline", -0.14, t_base),
        ("CPElide traffic vs HMG", -0.17, t_hmg),
        ("CPElide L2-L3 traffic vs HMG", -0.37, l2l3),
    ];
    let mut table = String::from("| Metric | Paper | Measured | Verdict |\n|---|---|---|---|\n");
    for (metric, paper, measured) in rows {
        table.push_str(&format!(
            "| {metric} | {} | **{}** | {} |\n",
            pct(paper),
            pct(measured),
            verdict(paper, measured)
        ));
    }
    let low_ok = low_min >= 0.97;
    table.push_str(&format!(
        "| CPElide never hurts low-reuse apps | yes | {} (min {low_min:.2}×) | {} |",
        if low_ok { "yes" } else { "no" },
        if low_ok { "match" } else { "opposite sign" }
    ));
    blocks.push(("headline".to_owned(), table));

    // ---- Figure 2 ------------------------------------------------------
    let avg = getf(summary, &["fig2", "avg_loss"])?;
    let min = getf(summary, &["fig2", "min_loss"])?;
    let max = getf(summary, &["fig2", "max_loss"])?;
    blocks.push((
        "fig2".to_owned(),
        format!(
            "Paper: 54 % average performance loss (prior work: 29–45 %). Measured:\n\
             **{} average**, per-app spread {}–{}.",
            pct0(avg),
            pct0(min),
            pct0(max)
        ),
    ));

    // ---- Figure 8 chiplet-count trend ----------------------------------
    let trend = |key: &str| -> Result<String, String> {
        let parts: Result<Vec<String>, String> = fig8
            .iter()
            .map(|e| {
                Ok(format!(
                    "{} ({})",
                    pct(getf(e, &[key])? - 1.0),
                    getf(e, &["chiplets"])? as u64
                ))
            })
            .collect();
        Ok(parts?.join(", "))
    };
    blocks.push((
        "fig8-trend".to_owned(),
        format!(
            "Chiplet-count trend, geomean over the suite — CPElide vs Baseline:\n\
             measured {}; CPElide vs HMG: {}. The paper\n\
             reports the Baseline gap roughly flat (13 % at 4, 17 % at 7).",
            trend("cpelide_vs_baseline")?,
            trend("cpelide_vs_hmg")?
        ),
    ));

    // ---- §III-A table occupancy ----------------------------------------
    let live = getf(summary, &["occupancy", "max_live_entries"])? as u64;
    let evictions = getf(summary, &["occupancy", "evictions"])? as u64;
    blocks.push((
        "occupancy".to_owned(),
        format!(
            "Paper: workloads use up to 11 live entries and never overflow the\n\
             64-entry table. Measured: maximum **{live} live entries** across the\n\
             suite, {evictions} capacity evictions."
        ),
    ));

    // ---- §VI multi-stream ----------------------------------------------
    let ms = getf(summary, &["multistream", "cpelide_vs_hmg"])? - 1.0;
    let ms_n = getf(summary, &["multistream", "workloads"])? as u64;
    blocks.push((
        "multistream".to_owned(),
        format!(
            "Paper: CPElide outperforms HMG by ~12 % on multi-stream workloads\n\
             (`streams` + multi-stream extensions of Table II apps). Measured:\n\
             **{}** geomean over a {ms_n}-workload multi-stream suite.",
            pct(ms)
        ),
    ));

    Ok(blocks)
}

/// Renders the `report --obs` summary from a `campaign.prom` exposition:
/// the per-phase cycle breakdown, the cache counters, and the wall-clock
/// fleet utilization table. Printed to stdout only — never spliced into
/// EXPERIMENTS.md, since the fleet section is host-specific.
///
/// # Errors
///
/// Returns an error when the exposition is malformed or missing the
/// campaign metric families.
pub fn obs_section(prom: &str) -> Result<String, String> {
    let samples =
        chiplet_harness::trace::prom::parse(prom).map_err(|e| format!("campaign.prom: {e}"))?;
    let find = |name: &str, label: &str| -> Option<f64> {
        samples
            .iter()
            .find(|s| s.name == name && s.labels.contains(label))
            .map(|s| s.value)
    };
    let need = |name: &str, label: &str| -> Result<f64, String> {
        find(name, label).ok_or_else(|| {
            format!("campaign.prom is missing `{name}{{{label}}}`; re-run `--bin campaign`")
        })
    };

    let mut out = String::new();
    out.push_str("Campaign cells\n");
    for state in ["simulated", "cached", "failed"] {
        let n = need("cpelide_campaign_cells", &format!("state=\"{state}\""))?;
        out.push_str(&format!("  {state:<10} {n:>8.0}\n"));
    }
    out.push_str(&format!(
        "  cache      {:.0} hit / {:.0} miss / {:.0} corrupt (hit rate {:.0} %)\n",
        need("cpelide_campaign_cache_lookups", "result=\"hit\"")?,
        need("cpelide_campaign_cache_lookups", "result=\"miss\"")?,
        need("cpelide_campaign_cache_lookups", "result=\"corrupt\"")?,
        need("cpelide_campaign_cache_hit_rate", "")? * 100.0,
    ));

    out.push('\n');
    out.push_str("Engine phase breakdown (simulated cells, deterministic)\n");
    out.push_str(&format!(
        "  {:<16} {:>16} {:>12} {:>7}\n",
        "phase", "cycles", "ops", "share"
    ));
    out.push_str(&format!("  {}\n", crate::rule(54)));
    for p in chiplet_sim::phase::SimPhase::ALL {
        let labels = format!("phase=\"{}\"", p.label());
        out.push_str(&format!(
            "  {:<16} {:>16.0} {:>12.0} {:>6.1}%\n",
            p.label(),
            need("cpelide_campaign_phase_cycles", &labels)?,
            need("cpelide_campaign_phase_ops", &labels)?,
            need("cpelide_campaign_phase_fraction", &labels)? * 100.0,
        ));
    }

    out.push('\n');
    out.push_str("Fleet (wall clock, this host — not reproducible)\n");
    let workers = need("cpelide_fleet_workers", "")? as usize;
    out.push_str(&format!(
        "  {} worker(s), {:.1} ms wall, {:.0} job(s) stolen\n",
        workers,
        need("cpelide_fleet_elapsed_us", "")? / 1000.0,
        need("cpelide_fleet_jobs_stolen_total", "")?,
    ));
    if let (Some(p50), Some(p99)) = (
        find("cpelide_fleet_job_wall_us_p50", ""),
        find("cpelide_fleet_job_wall_us_p99", ""),
    ) {
        out.push_str(&format!("  job latency p50/p99: {p50:.0}/{p99:.0} us\n"));
    }
    out.push_str(&format!(
        "  {:<8} {:>6} {:>7} {:>12}\n",
        "worker", "jobs", "stolen", "utilization"
    ));
    out.push_str(&format!("  {}\n", crate::rule(36)));
    for w in 0..workers {
        let labels = format!("worker=\"{w}\"");
        out.push_str(&format!(
            "  {:<8} {:>6.0} {:>7.0} {:>11.1}%\n",
            w,
            need("cpelide_fleet_worker_jobs", &labels)?,
            need("cpelide_fleet_worker_stolen", &labels)?,
            need("cpelide_fleet_worker_utilization", &labels)? * 100.0,
        ));
    }
    Ok(out)
}

/// Renders the elision-headroom summary from the static oracle's census
/// (`chiplet-check --oracle`, `results/CHECK_oracle.json`): per-protocol
/// sync/elide totals aggregated over every workload × chiplet count, plus
/// the largest CPElide headroom cells — boundaries the oracle proves
/// elidable that the engine synced anyway. Stdout-only, like the rest of
/// `--obs`; the census itself is drift-gated separately in CI.
///
/// # Errors
///
/// Returns an error naming the first field missing from the census (a
/// hand-edited or truncated artifact), or an unknown protocol name.
pub fn oracle_headroom_section(doc: &Json) -> Result<String, String> {
    let miss = |what: &str| {
        format!("CHECK_oracle.json is missing `{what}`; re-run `chiplet-check -- --oracle`")
    };
    let num = |j: &Json, key: &str| -> Result<f64, String> {
        j.get(key).and_then(Json::as_f64).ok_or_else(|| miss(key))
    };
    let protocols: Vec<&str> = doc
        .get("protocols")
        .and_then(Json::as_arr)
        .ok_or_else(|| miss("protocols"))?
        .iter()
        .filter_map(Json::as_str)
        .collect();
    let workloads = doc
        .get("workloads")
        .and_then(Json::as_arr)
        .ok_or_else(|| miss("workloads"))?;

    // Per-protocol running sums over every workload × chiplet-count cell:
    // boundaries, synced, elided, headroom boundaries, headroom cycles.
    let mut totals: Vec<(&str, [f64; 5])> = protocols.iter().map(|p| (*p, [0.0; 5])).collect();
    let mut cpelide_cells: Vec<(String, u64, f64, f64)> = Vec::new();
    for w in workloads {
        let name = w
            .get("workload")
            .and_then(Json::as_str)
            .ok_or_else(|| miss("workload"))?;
        let cells = w
            .get("differential")
            .and_then(Json::as_arr)
            .ok_or_else(|| miss("differential"))?;
        for c in cells {
            let proto = c
                .get("protocol")
                .and_then(Json::as_str)
                .ok_or_else(|| miss("protocol"))?;
            let row = totals
                .iter_mut()
                .find(|(p, _)| *p == proto)
                .ok_or_else(|| format!("CHECK_oracle.json names unknown protocol `{proto}`"))?;
            let vals = [
                num(c, "boundaries")?,
                num(c, "synced")?,
                num(c, "elided")?,
                num(c, "headroom_boundaries")?,
                num(c, "headroom_sync_cycles")?,
            ];
            for (t, v) in row.1.iter_mut().zip(vals) {
                *t += v;
            }
            if proto == "CPElide" && vals[3] > 0.0 {
                cpelide_cells.push((
                    name.to_owned(),
                    num(c, "chiplets")? as u64,
                    vals[3],
                    vals[4],
                ));
            }
        }
    }

    let mut out = String::new();
    out.push_str("Elision headroom (static oracle vs engine replay, CHECK_oracle.json)\n");
    out.push_str(&format!(
        "  {} workload(s), {:.0} soundness violation(s)\n",
        workloads.len(),
        num(doc, "soundness_violations")?,
    ));
    out.push_str(&format!(
        "  {:<9} {:>10} {:>8} {:>8} {:>9} {:>14}\n",
        "protocol", "boundaries", "synced", "elided", "headroom", "wasted cycles"
    ));
    out.push_str(&format!("  {}\n", crate::rule(63)));
    for (p, [b, s, e, hb, hc]) in &totals {
        out.push_str(&format!(
            "  {p:<9} {b:>10.0} {s:>8.0} {e:>8.0} {hb:>9.0} {hc:>14.0}\n"
        ));
    }
    cpelide_cells.sort_by(|a, b| {
        b.3.total_cmp(&a.3)
            .then_with(|| a.0.cmp(&b.0))
            .then(a.1.cmp(&b.1))
    });
    if !cpelide_cells.is_empty() {
        out.push_str("  largest CPElide headroom cells (provably elidable, still synced):\n");
        for (name, n, hb, hc) in cpelide_cells.iter().take(3) {
            out.push_str(&format!(
                "    {name:<14} n={n}  {hb:>3.0} boundaries  {hc:>12.0} sync cycles\n"
            ));
        }
    }
    Ok(out)
}

/// Splices each block between its marker pair in `doc`, leaving the
/// markers and all hand-written text intact.
///
/// # Errors
///
/// Returns an error naming the first block whose markers are missing or
/// out of order — a deleted marker would otherwise silently orphan the
/// block.
pub fn splice(doc: &str, blocks: &[(String, String)]) -> Result<String, String> {
    let mut out = doc.to_owned();
    for (name, content) in blocks {
        let open = format!("<!-- generated: {name} -->");
        let close = format!("<!-- /generated: {name} -->");
        let start = out
            .find(&open)
            .ok_or_else(|| format!("EXPERIMENTS.md is missing the `{open}` marker"))?
            + open.len();
        let end = out[start..]
            .find(&close)
            .ok_or_else(|| format!("EXPERIMENTS.md is missing the `{close}` marker"))?
            + start;
        out.replace_range(start..end, &format!("\n{content}\n"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig8_entry(chiplets: u64) -> Json {
        Json::object()
            .with("chiplets", chiplets)
            .with("cpelide_vs_baseline", 1.133)
            .with("hmg_vs_baseline", 1.037)
            .with("cpelide_vs_hmg", 1.092)
            .with("cpelide_vs_baseline_reuse", 1.173)
            .with("low_reuse_min_speedup", 0.98)
    }

    fn sample_campaign() -> Json {
        Json::object()
            .with("schema", SCHEMA)
            .with("model_revision", "test")
            .with("mode", "full")
            .with("cells", Json::Arr(vec![]))
            .with(
                "summary",
                Json::object()
                    .with(
                        "fig2",
                        Json::object()
                            .with("avg_loss", 0.81)
                            .with("min_loss", 0.03)
                            .with("max_loss", 1.59),
                    )
                    .with("fig8", Json::Arr(vec![fig8_entry(2), fig8_entry(4)]))
                    .with(
                        "energy",
                        Json::object()
                            .with("cpelide_vs_baseline", 0.66)
                            .with("cpelide_vs_hmg", 0.84)
                            .with("hmg_vs_baseline", 0.79),
                    )
                    .with(
                        "traffic",
                        Json::object()
                            .with("cpelide_vs_baseline", 0.76)
                            .with("cpelide_vs_hmg", 0.92)
                            .with("hmg_vs_baseline", 0.83)
                            .with("l2l3_cpelide_vs_hmg", 0.51),
                    )
                    .with(
                        "occupancy",
                        Json::object()
                            .with("max_live_entries", 7u64)
                            .with("evictions", 0u64),
                    )
                    .with(
                        "multistream",
                        Json::object()
                            .with("workloads", 4u64)
                            .with("cpelide_vs_hmg", 1.078),
                    ),
            )
    }

    #[test]
    fn verdicts_are_mechanical() {
        assert_eq!(verdict(0.13, 0.133), "match");
        assert_eq!(verdict(0.19, 0.092), "same sign, weaker");
        assert_eq!(verdict(-0.14, -0.34), "same sign, stronger");
        assert_eq!(verdict(-0.11, -0.16), "match");
        assert_eq!(verdict(0.10, -0.10), "opposite sign");
    }

    #[test]
    fn blocks_render_expected_values() {
        let blocks = generate_blocks(&sample_campaign()).expect("generates");
        let names: Vec<&str> = blocks.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            ["headline", "fig2", "fig8-trend", "occupancy", "multistream"]
        );
        let headline = &blocks[0].1;
        assert!(headline.contains("**+13.3 %** | match"), "{headline}");
        assert!(headline.contains("**+9.2 %** | same sign, weaker"));
        assert!(headline.contains("min 0.98×) | match"));
        assert!(blocks[1].1.contains("**81 % average**"));
        assert!(blocks[2].1.contains("+13.3 % (4)"));
        assert!(blocks[3].1.contains("**7 live entries**"));
        assert!(blocks[4].1.contains("**+7.8 %**"));
    }

    #[test]
    fn generate_refuses_wrong_schema_and_incomplete_runs() {
        let wrong = sample_campaign().with("schema", "other-v9");
        assert!(generate_blocks(&wrong).is_err());
        let incomplete = sample_campaign().with("summary", Json::object().with("incomplete", true));
        assert!(generate_blocks(&incomplete).is_err());
    }

    #[test]
    fn splice_replaces_only_marked_regions() {
        let doc = "intro\n<!-- generated: a -->\nstale\n<!-- /generated: a -->\nmiddle\n\
                   <!-- generated: b -->old<!-- /generated: b -->\ntail\n";
        let blocks = vec![
            ("a".to_owned(), "fresh A".to_owned()),
            ("b".to_owned(), "fresh B".to_owned()),
        ];
        let out = splice(doc, &blocks).expect("splices");
        assert!(out.contains("intro\n<!-- generated: a -->\nfresh A\n<!-- /generated: a -->"));
        assert!(out.contains("<!-- generated: b -->\nfresh B\n<!-- /generated: b -->"));
        assert!(out.contains("middle"), "hand-written text survives");
        assert!(!out.contains("stale"));
        // Idempotent: splicing the same blocks again changes nothing.
        assert_eq!(splice(&out, &blocks).expect("re-splices"), out);
    }

    #[test]
    fn splice_errors_on_missing_markers() {
        let err =
            splice("no markers here", &[("a".to_owned(), "x".to_owned())]).expect_err("must fail");
        assert!(err.contains("generated: a"), "{err}");
    }

    fn diff_cell(protocol: &str, chiplets: u64, synced: u64, headroom: u64, cycles: f64) -> Json {
        Json::object()
            .with("protocol", protocol)
            .with("chiplets", chiplets)
            .with("boundaries", 10u64)
            .with("synced", synced)
            .with("elided", 10 - synced)
            .with("violations", 0u64)
            .with("headroom_boundaries", headroom)
            .with("headroom_sync_cycles", cycles)
    }

    fn sample_oracle_census() -> Json {
        let w = |name: &str, cpelide_headroom: u64, cycles: f64| {
            Json::object().with("workload", name).with(
                "differential",
                vec![
                    diff_cell("Baseline", 2, 9, 9, 900.0),
                    diff_cell("HMG", 2, 0, 0, 0.0),
                    diff_cell("CPElide", 2, 3, cpelide_headroom, cycles),
                ],
            )
        };
        Json::object()
            .with("soundness_violations", 0u64)
            .with(
                "protocols",
                vec![Json::from("Baseline"), "HMG".into(), "CPElide".into()],
            )
            .with("workloads", vec![w("alpha", 2, 250.0), w("beta", 0, 0.0)])
    }

    #[test]
    fn oracle_headroom_aggregates_per_protocol_and_ranks_cells() {
        let out = oracle_headroom_section(&sample_oracle_census()).expect("renders");
        assert!(
            out.contains("2 workload(s), 0 soundness violation(s)"),
            "{out}"
        );
        // Baseline: 2 workloads × 10 boundaries, 18 synced, 18 headroom.
        assert!(out.contains("Baseline          20       18        2        18           1800"));
        assert!(out.contains("HMG               20        0       20         0              0"));
        assert!(out.contains("CPElide           20        6       14         2            250"));
        // Only alpha has CPElide headroom; beta must not be listed.
        assert!(out.contains("alpha          n=2    2 boundaries           250 sync cycles"));
        assert!(!out.contains("beta           n="), "{out}");
    }

    #[test]
    fn oracle_headroom_errors_name_the_missing_field() {
        let truncated = sample_oracle_census().with("workloads", Json::Arr(vec![Json::object()]));
        let err = oracle_headroom_section(&truncated).expect_err("must fail");
        assert!(err.contains("`workload`"), "{err}");
        let unknown = sample_oracle_census().with(
            "workloads",
            vec![Json::object()
                .with("workload", "x")
                .with("differential", vec![diff_cell("Mystery", 2, 0, 0, 0.0)])],
        );
        let err = oracle_headroom_section(&unknown).expect_err("must fail");
        assert!(err.contains("Mystery"), "{err}");
    }

    #[test]
    fn oracle_headroom_renders_the_committed_census() {
        // The committed artifact must stay renderable — this is what
        // `report -- --obs` prints in CI when the census is present.
        let path = crate::results_dir().join("CHECK_oracle.json");
        let Ok(text) = std::fs::read_to_string(&path) else {
            return; // scratch results dir (CPELIDE_RESULTS_DIR) — nothing to check
        };
        let doc = chiplet_harness::json::parse(&text).expect("census parses");
        let out = oracle_headroom_section(&doc).expect("renders");
        assert!(out.contains("0 soundness violation(s)"), "{out}");
        assert!(out.contains("Baseline"), "{out}");
    }

    #[test]
    fn generated_blocks_splice_into_the_committed_doc() {
        // The real EXPERIMENTS.md must carry a marker pair for every block
        // the generator emits, in splice-able positions.
        let doc = std::fs::read_to_string(experiments_path()).expect("EXPERIMENTS.md readable");
        let blocks = generate_blocks(&sample_campaign()).expect("generates");
        splice(&doc, &blocks).expect("all markers present in EXPERIMENTS.md");
    }
}
