//! Validates the §III-A Chiplet Coherence Table sizing: the maximum live
//! entries per workload. Paper: up to 11 entries, never overflowing the
//! 64-entry table.
//!
//! Usage: `cargo run --release -p cpelide-bench --bin table_occupancy`

use chiplet_harness::json::Json;
use chiplet_sim::experiments::table_occupancy;
use cpelide_bench::{effective_suite, write_report};

fn main() {
    let suite = effective_suite();
    println!("SIII-A table occupancy (4 chiplets, capacity 64)");
    println!(
        "{:<16} {:>12} {:>10}",
        "workload", "max entries", "evictions"
    );
    println!("{}", "-".repeat(40));
    let rows = table_occupancy(&suite);
    for (name, max, ev) in &rows {
        println!("{:<16} {:>12} {:>10}", name, max, ev);
    }
    let overall = rows.iter().map(|(_, m, _)| *m).max().unwrap_or(0);
    println!("{}", "-".repeat(40));
    println!("max across suite: {overall} (paper: 11; capacity 64, never overflows)");

    let report = Json::object()
        .with("artifact", "table_occupancy")
        .with("max_across_suite", overall)
        .with(
            "rows",
            rows.iter()
                .map(|(name, max, ev)| {
                    Json::object()
                        .with("workload", name.as_str())
                        .with("max_entries", *max)
                        .with("evictions", *ev)
                })
                .collect::<Vec<_>>(),
        );
    let path = write_report("table_occupancy", &report);
    println!("report: {}", path.display());
}
