//! Regenerates the §VI "Managing Implicit Synchronization at Driver"
//! discussion: running CPElide's algorithm in the host driver instead of
//! the global CP costs an exposed host round trip per launch, eroding the
//! benefit — especially for many-kernel applications.
//!
//! Usage: `cargo run --release -p cpelide-bench --bin driver_study`

use chiplet_harness::json::Json;
use chiplet_sim::experiments::driver_study;
use chiplet_sim::metrics::geomean;
use cpelide_bench::{effective_suite, write_report};

fn main() {
    let suite = effective_suite();
    let rows = driver_study(&suite);
    println!("SVI driver-managed ablation (4 chiplets, speedups vs Baseline)");
    println!("{:<16} {:>10} {:>10}", "workload", "CP", "driver");
    println!("{}", "-".repeat(38));
    for (name, cp, driver) in &rows {
        println!("{:<16} {:>9.2}x {:>9.2}x", name, cp, driver);
    }
    println!("{}", "-".repeat(38));
    let geo_cp = geomean(rows.iter().map(|r| r.1));
    let geo_driver = geomean(rows.iter().map(|r| r.2));
    println!("geomean: CP {geo_cp:.2}x, driver {geo_driver:.2}x");
    println!("\npaper: driver-level management adds significant latency [28,79,140];");
    println!("CPElide is integrated at the CP, where scheduling decisions are made.");

    let report = Json::object()
        .with("artifact", "driver_study")
        .with("geomean_cp_speedup", geo_cp)
        .with("geomean_driver_speedup", geo_driver)
        .with(
            "rows",
            rows.iter()
                .map(|(name, cp, driver)| {
                    Json::object()
                        .with("workload", name.as_str())
                        .with("cp_speedup", *cp)
                        .with("driver_speedup", *driver)
                })
                .collect::<Vec<_>>(),
        );
    let path = write_report("driver_study", &report);
    println!("report: {}", path.display());
}
