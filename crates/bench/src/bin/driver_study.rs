//! Regenerates the §VI "Managing Implicit Synchronization at Driver"
//! discussion: running CPElide's algorithm in the host driver instead of
//! the global CP costs an exposed host round trip per launch, eroding the
//! benefit — especially for many-kernel applications.
//!
//! Usage: `cargo run --release -p cpelide-bench --bin driver_study`

use chiplet_sim::experiments::driver_study;
use chiplet_sim::metrics::geomean;

fn main() {
    let suite = chiplet_workloads::suite();
    let rows = driver_study(&suite);
    println!("SVI driver-managed ablation (4 chiplets, speedups vs Baseline)");
    println!("{:<16} {:>10} {:>10}", "workload", "CP", "driver");
    println!("{}", "-".repeat(38));
    for (name, cp, driver) in &rows {
        println!("{:<16} {:>9.2}x {:>9.2}x", name, cp, driver);
    }
    println!("{}", "-".repeat(38));
    println!(
        "geomean: CP {:.2}x, driver {:.2}x",
        geomean(rows.iter().map(|r| r.1)),
        geomean(rows.iter().map(|r| r.2))
    );
    println!("\npaper: driver-level management adds significant latency [28,79,140];");
    println!("CPElide is integrated at the CP, where scheduling decisions are made.");
}
