//! Design-choice ablations (DESIGN.md §5): Chiplet Coherence Table
//! capacity, CP crossbar latency, and inter-chiplet link bandwidth sweeps.
//!
//! Usage: `cargo run --release -p cpelide-bench --bin sensitivity [workload]`

use chiplet_harness::json::Json;
use chiplet_sim::experiments::{
    crossbar_latency_sweep, link_bandwidth_sweep, table_capacity_sweep, SweepPoint,
};
use cpelide_bench::{effective_suite, pick, smoke, write_report};

fn sweep_json(points: &[SweepPoint]) -> Vec<Json> {
    points
        .iter()
        .map(|p| {
            Json::object()
                .with("value", p.value)
                .with("cpelide_speedup", p.cpelide_speedup)
                .with("sync_ops", p.sync_ops)
        })
        .collect()
}

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| {
        if smoke() {
            effective_suite()[0].name().to_owned()
        } else {
            "lud".to_owned()
        }
    });
    let w = chiplet_workloads::by_name(&name).unwrap_or_else(|| panic!("unknown workload {name}"));
    println!("sensitivity sweeps on {name} (4 chiplets)\n");

    println!("Chiplet Coherence Table capacity (paper sizing: 64 entries):");
    println!("{:<10} {:>10} {:>10}", "entries", "speedup", "sync ops");
    let capacities = pick(vec![2usize, 4, 8, 16, 32, 64], vec![2, 64]);
    let cap = table_capacity_sweep(&w, &capacities);
    for p in &cap {
        println!(
            "{:<10} {:>9.3}x {:>10}",
            p.value as usize, p.cpelide_speedup, p.sync_ops
        );
    }

    println!("\nCP crossbar round-trip latency (paper: 230 cycles):");
    println!("{:<10} {:>10} {:>10}", "cycles", "speedup", "sync ops");
    let latencies = pick(vec![115.0, 230.0, 460.0, 920.0, 1840.0], vec![230.0]);
    let xbar = crossbar_latency_sweep(&w, &latencies);
    for p in &xbar {
        println!(
            "{:<10} {:>9.3}x {:>10}",
            p.value as u64, p.cpelide_speedup, p.sync_ops
        );
    }

    println!("\ninter-chiplet link bandwidth (Table I: 768 GB/s):");
    println!("{:<10} {:>10} {:>10}", "GB/s", "speedup", "sync ops");
    let bandwidths = pick(vec![192.0, 384.0, 768.0, 1536.0], vec![768.0]);
    let link = link_bandwidth_sweep(&w, &bandwidths);
    for p in &link {
        println!(
            "{:<10} {:>9.3}x {:>10}",
            p.value as u64, p.cpelide_speedup, p.sync_ops
        );
    }

    let report = Json::object()
        .with("artifact", "sensitivity")
        .with("workload", name.as_str())
        .with("table_capacity", sweep_json(&cap))
        .with("crossbar_latency", sweep_json(&xbar))
        .with("link_bandwidth", sweep_json(&link));
    let path = write_report("sensitivity", &report);
    println!("\nreport: {}", path.display());
}
