//! Design-choice ablations (DESIGN.md §5): Chiplet Coherence Table
//! capacity, CP crossbar latency, and inter-chiplet link bandwidth sweeps.
//!
//! Usage: `cargo run --release -p cpelide-bench --bin sensitivity [workload]`

use chiplet_sim::experiments::{crossbar_latency_sweep, link_bandwidth_sweep, table_capacity_sweep};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "lud".to_owned());
    let w = chiplet_workloads::by_name(&name).unwrap_or_else(|| panic!("unknown workload {name}"));
    println!("sensitivity sweeps on {name} (4 chiplets)\n");

    println!("Chiplet Coherence Table capacity (paper sizing: 64 entries):");
    println!("{:<10} {:>10} {:>10}", "entries", "speedup", "sync ops");
    for p in table_capacity_sweep(&w, &[2, 4, 8, 16, 32, 64]) {
        println!("{:<10} {:>9.3}x {:>10}", p.value as usize, p.cpelide_speedup, p.sync_ops);
    }

    println!("\nCP crossbar round-trip latency (paper: 230 cycles):");
    println!("{:<10} {:>10} {:>10}", "cycles", "speedup", "sync ops");
    for p in crossbar_latency_sweep(&w, &[115.0, 230.0, 460.0, 920.0, 1840.0]) {
        println!("{:<10} {:>9.3}x {:>10}", p.value as u64, p.cpelide_speedup, p.sync_ops);
    }

    println!("\ninter-chiplet link bandwidth (Table I: 768 GB/s):");
    println!("{:<10} {:>10} {:>10}", "GB/s", "speedup", "sync ops");
    for p in link_bandwidth_sweep(&w, &[192.0, 384.0, 768.0, 1536.0]) {
        println!("{:<10} {:>9.3}x {:>10}", p.value as u64, p.cpelide_speedup, p.sync_ops);
    }
}
