//! The campaign daemon: simulation-as-a-service over HTTP/1.1.
//!
//! Usage: `cargo run --release -p cpelide-bench --bin serve [-- --smoke]`
//!
//! Without flags the daemon binds `CPELIDE_SERVE_ADDR` (default
//! `127.0.0.1:8642`), keeps a warm `chiplet_harness::fleet` worker pool,
//! and serves the wire protocol of DESIGN.md §16 until a client POSTs
//! `/v1/shutdown`. With `--smoke` it runs the hermetic self-test instead
//! (boot on an ephemeral port, stream a sweep, validate `/metrics`, shut
//! down) — the CI smoke step.
//!
//! Environment:
//! - `CPELIDE_SERVE_ADDR=<host:port>`  bind address (port 0 = ephemeral).
//! - `CPELIDE_SERVE_QUEUE=<n>`         admission bound on queued cells
//!   (default 1024); overflowing requests are rejected whole with a 429.
//! - `CPELIDE_SERVE_TIMEOUT_MS=<ms>`   default per-request deadline
//!   (default: none); a request's own `timeout_ms` overrides it.
//! - `CPELIDE_JOBS=<n>`                worker threads (default: available
//!   parallelism; 1 under `CPELIDE_SMOKE=1`).
//! - `CPELIDE_RESULTS_DIR`, `CPELIDE_CACHE=0`  the shared `DiskCache`
//!   location, exactly as for `--bin campaign`.

use cpelide_bench::serve;

fn main() {
    if std::env::args().skip(1).any(|a| a == "--smoke") {
        match serve::smoke_self_test() {
            Ok(()) => println!("serve smoke: ok"),
            Err(e) => {
                eprintln!("serve smoke: FAILED: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let config = serve::ServeConfig::from_env();
    let server = match serve::spawn(&config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve: cannot bind {}: {e}", config.addr);
            std::process::exit(1);
        }
    };
    println!(
        "serve: listening on http://{} ({} workers, queue bound {}, default timeout {})",
        server.addr(),
        config.workers,
        config.queue_bound,
        match config.default_timeout {
            Some(t) => format!("{} ms", t.as_millis()),
            None => "none".to_owned(),
        }
    );
    println!("serve: POST /v1/shutdown to stop");
    server.join();
    println!("serve: stopped");
}
