//! Regenerates the paper-vs-measured blocks of EXPERIMENTS.md from
//! `results/campaign.json` (see `cpelide_bench::report` for the block
//! definitions and marker syntax).
//!
//! Usage:
//! - `cargo run --release -p cpelide-bench --bin report` — rewrite the
//!   generated blocks in place.
//! - `cargo run --release -p cpelide-bench --bin report -- --check` — exit
//!   1 if the committed document is out of sync with the committed
//!   campaign results (the CI docs-drift gate), touching nothing.
//!
//! Environment: `CPELIDE_RESULTS_DIR` locates `campaign.json`;
//! `CPELIDE_EXPERIMENTS` overrides the EXPERIMENTS.md path (tests).
//! Exit codes: 0 in sync / regenerated, 1 drift detected, 2 usage or I/O.

use chiplet_harness::json;
use cpelide_bench::report::{campaign_path, experiments_path, generate_blocks, splice};

fn fail(msg: &str) -> ! {
    eprintln!("report: {msg}");
    std::process::exit(2);
}

fn main() {
    let check = std::env::args().skip(1).any(|a| a == "--check");

    let campaign_file = campaign_path();
    let campaign_text = std::fs::read_to_string(&campaign_file).unwrap_or_else(|e| {
        fail(&format!(
            "cannot read {} ({e}); run `--bin campaign` first",
            campaign_file.display()
        ))
    });
    let campaign = json::parse(&campaign_text).unwrap_or_else(|e| {
        fail(&format!(
            "{} is not valid JSON: {e}",
            campaign_file.display()
        ))
    });
    let blocks = generate_blocks(&campaign).unwrap_or_else(|e| fail(&e));

    let doc_path = experiments_path();
    let doc = std::fs::read_to_string(&doc_path)
        .unwrap_or_else(|e| fail(&format!("cannot read {} ({e})", doc_path.display())));
    let updated = splice(&doc, &blocks).unwrap_or_else(|e| fail(&e));

    if check {
        if updated == doc {
            println!(
                "report: {} is in sync with {}",
                doc_path.display(),
                campaign_file.display()
            );
        } else {
            eprintln!(
                "report: {} is OUT OF SYNC with {}; \
                 run `cargo run --release -p cpelide-bench --bin report` and commit",
                doc_path.display(),
                campaign_file.display()
            );
            std::process::exit(1);
        }
    } else if updated == doc {
        println!("report: {} already up to date", doc_path.display());
    } else {
        std::fs::write(&doc_path, &updated)
            .unwrap_or_else(|e| fail(&format!("cannot write {} ({e})", doc_path.display())));
        println!(
            "report: regenerated {} block(s) in {}",
            blocks.len(),
            doc_path.display()
        );
    }
}
