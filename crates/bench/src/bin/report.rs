//! Regenerates the paper-vs-measured blocks of EXPERIMENTS.md from
//! `results/campaign.json` (see `cpelide_bench::report` for the block
//! definitions and marker syntax).
//!
//! Usage:
//! - `cargo run --release -p cpelide-bench --bin report` — rewrite the
//!   generated blocks in place.
//! - `cargo run --release -p cpelide-bench --bin report -- --check` — exit
//!   1 if the committed document is out of sync with the committed
//!   campaign results (the CI docs-drift gate), touching nothing.
//! - `cargo run --release -p cpelide-bench --bin report -- --obs` — print
//!   the host-observability summary (phase breakdown, cache counters,
//!   fleet utilization) from `results/campaign.prom` to stdout, plus the
//!   elision-headroom summary when `results/CHECK_oracle.json` exists
//!   (silently skipped otherwise). Nothing is written: the fleet half is
//!   wall-clock and host-specific, so it never lands in EXPERIMENTS.md.
//! - `cargo run --release -p cpelide-bench --bin report -- --perf-check` —
//!   the CI perf-regression gate: compare the fresh
//!   `results/BENCH_hotpath.json` (run the hotpath bench first) against
//!   the committed `results/BENCH_baseline.json`; exit 1 when a gated
//!   speedup ratio regressed beyond tolerance. With
//!   `CPELIDE_BLESS_BENCH=1`, rewrite the baseline from the fresh report
//!   instead of checking.
//!
//! Environment: `CPELIDE_RESULTS_DIR` locates `campaign.json` and the
//! bench reports; `CPELIDE_EXPERIMENTS` overrides the EXPERIMENTS.md path
//! (tests); `CPELIDE_BLESS_BENCH=1` re-blesses the perf baseline.
//! Exit codes: 0 in sync / regenerated / gate passed, 1 drift or perf
//! regression detected, 2 usage or I/O.

use chiplet_harness::json;
use cpelide_bench::perfgate;
use cpelide_bench::report::{
    campaign_path, experiments_path, generate_blocks, obs_section, oracle_headroom_section, splice,
};

fn fail(msg: &str) -> ! {
    eprintln!("report: {msg}");
    std::process::exit(2);
}

fn read_json(path: &std::path::Path, hint: &str) -> json::Json {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("cannot read {} ({e}); {hint}", path.display())));
    json::parse(&text)
        .unwrap_or_else(|e| fail(&format!("{} is not valid JSON: {e}", path.display())))
}

/// The `--perf-check` mode: gate fresh hotpath ratios against the
/// committed baseline, or re-bless the baseline under
/// `CPELIDE_BLESS_BENCH=1`.
fn perf_check() -> ! {
    let dir = cpelide_bench::results_dir();
    let hotpath_path = dir.join("BENCH_hotpath.json");
    let fresh_doc = read_json(
        &hotpath_path,
        "run `cargo bench -p cpelide-bench --bench hotpath` first",
    );
    let fresh = perfgate::ratios_from_hotpath(&fresh_doc).unwrap_or_else(|e| fail(&e));

    let baseline_path = dir.join("BENCH_baseline.json");
    if std::env::var("CPELIDE_BLESS_BENCH").is_ok_and(|v| v == "1") {
        let doc = perfgate::baseline_doc(&fresh);
        std::fs::write(&baseline_path, doc.render())
            .unwrap_or_else(|e| fail(&format!("cannot write {} ({e})", baseline_path.display())));
        println!(
            "report: blessed {} from {}",
            baseline_path.display(),
            hotpath_path.display()
        );
        std::process::exit(0);
    }

    let baseline_doc = read_json(
        &baseline_path,
        "bless one with CPELIDE_BLESS_BENCH=1 and commit it",
    );
    let baseline = perfgate::ratios_from_baseline(&baseline_doc).unwrap_or_else(|e| fail(&e));
    let failures = perfgate::check(&fresh, &baseline, perfgate::TOLERANCE);
    if failures.is_empty() {
        println!(
            "report: perf gate passed — campaign grid {:.2}x (baseline {:.2}x), \
             oracle {:.2}x ({:.2}x), placement {:.2}x ({:.2}x)",
            fresh.campaign_grid_event_vs_scan,
            baseline.campaign_grid_event_vs_scan,
            fresh.oracle_replay_flat_vs_hashmap,
            baseline.oracle_replay_flat_vs_hashmap,
            fresh.placement_flat_vs_hashmap,
            baseline.placement_flat_vs_hashmap,
        );
        std::process::exit(0);
    }
    for f in &failures {
        eprintln!("report: perf gate FAILED: {f}");
    }
    eprintln!(
        "report: if the regression is intended, re-bless with \
         CPELIDE_BLESS_BENCH=1 and commit results/BENCH_baseline.json"
    );
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--perf-check") {
        perf_check();
    }
    if args.iter().any(|a| a == "--obs") {
        let prom_path = cpelide_bench::results_dir().join("campaign.prom");
        let prom = std::fs::read_to_string(&prom_path).unwrap_or_else(|e| {
            fail(&format!(
                "cannot read {} ({e}); run `--bin campaign` first",
                prom_path.display()
            ))
        });
        let section = obs_section(&prom).unwrap_or_else(|e| fail(&e));
        print!("{section}");
        // The oracle census comes from chiplet-check, not the campaign:
        // summarize it when present, stay silent when absent (the CI
        // telemetry smoke runs --obs in a scratch results dir that only
        // the campaign populated).
        let oracle_path = cpelide_bench::results_dir().join("CHECK_oracle.json");
        if let Ok(text) = std::fs::read_to_string(&oracle_path) {
            let doc = json::parse(&text).unwrap_or_else(|e| {
                fail(&format!("{} is not valid JSON: {e}", oracle_path.display()))
            });
            let section = oracle_headroom_section(&doc).unwrap_or_else(|e| fail(&e));
            print!("\n{section}");
        }
        std::process::exit(0);
    }
    let check = args.iter().any(|a| a == "--check");

    let campaign_file = campaign_path();
    let campaign_text = std::fs::read_to_string(&campaign_file).unwrap_or_else(|e| {
        fail(&format!(
            "cannot read {} ({e}); run `--bin campaign` first",
            campaign_file.display()
        ))
    });
    let campaign = json::parse(&campaign_text).unwrap_or_else(|e| {
        fail(&format!(
            "{} is not valid JSON: {e}",
            campaign_file.display()
        ))
    });
    let blocks = generate_blocks(&campaign).unwrap_or_else(|e| fail(&e));

    let doc_path = experiments_path();
    let doc = std::fs::read_to_string(&doc_path)
        .unwrap_or_else(|e| fail(&format!("cannot read {} ({e})", doc_path.display())));
    let updated = splice(&doc, &blocks).unwrap_or_else(|e| fail(&e));

    if check {
        if updated == doc {
            println!(
                "report: {} is in sync with {}",
                doc_path.display(),
                campaign_file.display()
            );
        } else {
            eprintln!(
                "report: {} is OUT OF SYNC with {}; \
                 run `cargo run --release -p cpelide-bench --bin report` and commit",
                doc_path.display(),
                campaign_file.display()
            );
            std::process::exit(1);
        }
    } else if updated == doc {
        println!("report: {} already up to date", doc_path.display());
    } else {
        std::fs::write(&doc_path, &updated)
            .unwrap_or_else(|e| fail(&format!("cannot write {} ({e})", doc_path.display())));
        println!(
            "report: regenerated {} block(s) in {}",
            blocks.len(),
            doc_path.display()
        );
    }
}
