//! Regenerates Figure 10: 4-chiplet interconnect traffic (flits) for
//! Baseline (B), CPElide (C) and HMG (H), split into L1-L2, L2-L3 and
//! remote, normalized to Baseline. Paper: CPElide −14 % vs Baseline and
//! −17 % vs HMG overall, −37 % L2-L3 vs HMG, and HMG carries ~23 % more
//! remote traffic than CPElide.
//!
//! Usage: `cargo run --release -p cpelide-bench --bin fig10 [chiplets]`

use chiplet_noc::traffic::FlitCounter;
use chiplet_sim::experiments::{fig10_summary, pct, protocol_triples};
use chiplet_sim::metrics::geomean;
use cpelide_bench::rule;

fn row(label: &str, t: FlitCounter, base_total: f64) -> String {
    format!(
        "  {label}: L1-L2 {:.3} | L2-L3 {:.3} | remote {:.3} || total {:.3}",
        t.l1_l2 as f64 / base_total,
        t.l2_l3 as f64 / base_total,
        t.remote as f64 / base_total,
        t.total() as f64 / base_total,
    )
}

fn main() {
    let chiplets: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("chiplet count"))
        .unwrap_or(4);
    let suite = chiplet_workloads::suite();
    let triples = protocol_triples(&suite, chiplets);

    println!("Figure 10 — interconnect traffic in flits, normalized to Baseline ({chiplets} chiplets)");
    println!("{}", rule(72));
    for t in &triples {
        let base = t.baseline.traffic.total() as f64;
        println!("{}", t.workload);
        println!("{}", row("B", t.baseline.traffic, base));
        println!("{}", row("C", t.cpelide.traffic, base));
        println!("{}", row("H", t.hmg.traffic, base));
    }
    println!("{}", rule(72));
    let (cpe, hmg) = fig10_summary(&triples);
    println!("geomean CPElide traffic vs Baseline: {}", pct(cpe - 1.0));
    println!("geomean HMG     traffic vs Baseline: {}", pct(hmg - 1.0));
    println!("geomean CPElide traffic vs HMG:      {}", pct(cpe / hmg - 1.0));
    let l2l3 = geomean(triples.iter().filter(|t| t.hmg.traffic.l2_l3 > 0 && t.cpelide.traffic.l2_l3 > 0).map(|t| {
        t.cpelide.traffic.l2_l3 as f64 / t.hmg.traffic.l2_l3 as f64
    }));
    println!("geomean CPElide L2-L3 traffic vs HMG: {}", pct(l2l3 - 1.0));
    let remote = geomean(triples.iter().filter(|t| t.cpelide.traffic.remote > 0 && t.hmg.traffic.remote > 0).map(|t| {
        t.hmg.traffic.remote as f64 / t.cpelide.traffic.remote as f64
    }));
    println!("geomean HMG remote traffic vs CPElide: {}", pct(remote - 1.0));
    println!("\npaper: CPElide -14% vs Baseline, -17% vs HMG; -37% L2-L3 vs HMG; HMG +23% remote vs CPElide");
}
