//! Regenerates Figure 10: 4-chiplet interconnect traffic (flits) for
//! Baseline (B), CPElide (C) and HMG (H), split into L1-L2, L2-L3 and
//! remote, normalized to Baseline. Paper: CPElide −14 % vs Baseline and
//! −17 % vs HMG overall, −37 % L2-L3 vs HMG, and HMG carries ~23 % more
//! remote traffic than CPElide.
//!
//! Usage: `cargo run --release -p cpelide-bench --bin fig10 [chiplets]`

use chiplet_harness::json::Json;
use chiplet_noc::traffic::FlitCounter;
use chiplet_sim::experiments::{fig10_summary, pct, protocol_triples};
use chiplet_sim::metrics::geomean;
use cpelide_bench::{effective_suite, rule, write_report};

fn row(label: &str, t: FlitCounter, base_total: f64) -> String {
    format!(
        "  {label}: L1-L2 {:.3} | L2-L3 {:.3} | remote {:.3} || total {:.3}",
        t.l1_l2 as f64 / base_total,
        t.l2_l3 as f64 / base_total,
        t.remote as f64 / base_total,
        t.total() as f64 / base_total,
    )
}

fn traffic_json(t: FlitCounter) -> Json {
    Json::object()
        .with("l1_l2_flits", t.l1_l2)
        .with("l2_l3_flits", t.l2_l3)
        .with("remote_flits", t.remote)
        .with("remote_bytes", t.remote_bytes())
}

fn main() {
    let chiplets: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("chiplet count"))
        .unwrap_or(4);
    let suite = effective_suite();
    let triples = protocol_triples(&suite, chiplets);

    println!(
        "Figure 10 — interconnect traffic in flits, normalized to Baseline ({chiplets} chiplets)"
    );
    println!("{}", rule(72));
    let mut rows = Vec::new();
    for t in &triples {
        let base = t.baseline.traffic.total() as f64;
        println!("{}", t.workload);
        println!("{}", row("B", t.baseline.traffic, base));
        println!("{}", row("C", t.cpelide.traffic, base));
        println!("{}", row("H", t.hmg.traffic, base));
        rows.push(
            Json::object()
                .with("workload", t.workload.as_str())
                .with("baseline", traffic_json(t.baseline.traffic))
                .with("cpelide", traffic_json(t.cpelide.traffic))
                .with("hmg", traffic_json(t.hmg.traffic)),
        );
    }
    println!("{}", rule(72));
    let (cpe, hmg) = fig10_summary(&triples);
    println!("geomean CPElide traffic vs Baseline: {}", pct(cpe - 1.0));
    println!("geomean HMG     traffic vs Baseline: {}", pct(hmg - 1.0));
    println!(
        "geomean CPElide traffic vs HMG:      {}",
        pct(cpe / hmg - 1.0)
    );
    let l2l3 = geomean(
        triples
            .iter()
            .filter(|t| t.hmg.traffic.l2_l3 > 0 && t.cpelide.traffic.l2_l3 > 0)
            .map(|t| t.cpelide.traffic.l2_l3 as f64 / t.hmg.traffic.l2_l3 as f64),
    );
    println!("geomean CPElide L2-L3 traffic vs HMG: {}", pct(l2l3 - 1.0));
    let remote = geomean(
        triples
            .iter()
            .filter(|t| t.cpelide.traffic.remote > 0 && t.hmg.traffic.remote > 0)
            .map(|t| t.hmg.traffic.remote as f64 / t.cpelide.traffic.remote as f64),
    );
    println!(
        "geomean HMG remote traffic vs CPElide: {}",
        pct(remote - 1.0)
    );
    println!("\npaper: CPElide -14% vs Baseline, -17% vs HMG; -37% L2-L3 vs HMG; HMG +23% remote vs CPElide");

    let report = Json::object()
        .with("artifact", "fig10")
        .with("chiplets", chiplets)
        .with("geomean_cpelide_vs_baseline", cpe)
        .with("geomean_hmg_vs_baseline", hmg)
        .with("geomean_cpelide_l2_l3_vs_hmg", l2l3)
        .with("rows", rows);
    let path = write_report("fig10", &report);
    println!("report: {}", path.display());
}
