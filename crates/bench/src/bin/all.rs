//! Regenerates every paper artifact in one run and writes the reports to
//! the results directory (fig2.txt, fig8.txt, fig9.txt, fig10.txt,
//! tables.txt, studies.txt, all.json) plus a summary to stdout.
//!
//! Usage: `cargo run --release -p cpelide-bench --bin all`

use chiplet_harness::json::Json;
use chiplet_sim::experiments as ex;
use chiplet_sim::metrics::geomean;
use chiplet_sim::SimConfig;
use cpelide_bench::{
    effective_multistream_suite, effective_suite, kv, pick, render_fig8, results_dir, rule,
    write_report,
};
use std::fmt::Write as _;
use std::fs;

fn main() {
    let dir = results_dir();
    fs::create_dir_all(&dir).expect("create results dir");
    let suite = effective_suite();
    let mut summary = String::new();
    let mut report = Json::object().with("artifact", "all");

    // ---------------- Figure 2 ----------------
    let mut out = String::new();
    let (rows, avg) = ex::fig2(&suite, 4);
    writeln!(
        out,
        "Figure 2 - perf loss vs equivalent monolithic GPU (4 chiplets)"
    )
    .unwrap();
    for r in &rows {
        writeln!(out, "{:<16} {:>8.1}%", r.workload, 100.0 * r.loss).unwrap();
    }
    writeln!(
        out,
        "{}\naverage {:>16.1}%  (paper: 54%)",
        rule(26),
        100.0 * avg
    )
    .unwrap();
    fs::write(dir.join("fig2.txt"), &out).unwrap();
    writeln!(
        summary,
        "fig2   avg monolithic loss: {:.1}% (paper 54%)",
        100.0 * avg
    )
    .unwrap();
    report.set("fig2_average_loss", avg);

    // ---------------- Figure 8 ----------------
    let mut out = String::new();
    for n in pick(vec![2usize, 4, 6, 7], vec![2, 4]) {
        let (rows, s) = ex::fig8(&suite, n);
        out.push_str(&render_fig8(&rows, n));
        out.push_str(&kv(
            "geomean CPElide vs Baseline",
            ex::pct(s.cpelide_vs_baseline - 1.0),
        ));
        out.push_str(&kv(
            "geomean CPElide vs Baseline (mod/high reuse)",
            ex::pct(s.cpelide_vs_baseline_reuse - 1.0),
        ));
        out.push_str(&kv(
            "geomean HMG vs Baseline",
            ex::pct(s.hmg_vs_baseline - 1.0),
        ));
        out.push_str(&kv(
            "geomean CPElide vs HMG",
            ex::pct(s.cpelide_vs_hmg - 1.0),
        ));
        out.push('\n');
        if n == 4 {
            writeln!(
                summary,
                "fig8   4-chiplet CPElide: {} vs Baseline ({} mod/high), {} vs HMG \
                 (paper: +13%, +17%, +19%)",
                ex::pct(s.cpelide_vs_baseline - 1.0),
                ex::pct(s.cpelide_vs_baseline_reuse - 1.0),
                ex::pct(s.cpelide_vs_hmg - 1.0)
            )
            .unwrap();
            report.set("fig8_cpelide_vs_baseline", s.cpelide_vs_baseline);
            report.set("fig8_cpelide_vs_hmg", s.cpelide_vs_hmg);
        } else {
            writeln!(
                summary,
                "fig8   {n}-chiplet CPElide: {} vs Baseline, {} vs HMG",
                ex::pct(s.cpelide_vs_baseline - 1.0),
                ex::pct(s.cpelide_vs_hmg - 1.0)
            )
            .unwrap();
        }
    }
    fs::write(dir.join("fig8.txt"), &out).unwrap();

    // ---------------- Figures 9 and 10 (shared triples) ----------------
    let triples = ex::protocol_triples(&suite, 4);
    let mut out9 = String::new();
    let mut out10 = String::new();
    for t in &triples {
        let be = t.baseline.energy.total();
        writeln!(
            out9,
            "{:<16} C {:.3} | H {:.3}  (L1I/L1D/LDS/L2/L3/NOC/DRAM C: \
             {:.2}/{:.2}/{:.2}/{:.2}/{:.2}/{:.2}/{:.2})",
            t.workload,
            t.cpelide.energy.total() / be,
            t.hmg.energy.total() / be,
            t.cpelide.energy.l1i / be,
            t.cpelide.energy.l1d / be,
            t.cpelide.energy.lds / be,
            t.cpelide.energy.l2 / be,
            t.cpelide.energy.l3 / be,
            t.cpelide.energy.noc / be,
            t.cpelide.energy.dram / be,
        )
        .unwrap();
        let bt = t.baseline.traffic.total() as f64;
        writeln!(
            out10,
            "{:<16} C {:.3} | H {:.3}  (C split L1L2/L2L3/remote: {:.2}/{:.2}/{:.2}; \
             H split: {:.2}/{:.2}/{:.2})",
            t.workload,
            t.cpelide.traffic.total() as f64 / bt,
            t.hmg.traffic.total() as f64 / bt,
            t.cpelide.traffic.l1_l2 as f64 / bt,
            t.cpelide.traffic.l2_l3 as f64 / bt,
            t.cpelide.traffic.remote as f64 / bt,
            t.hmg.traffic.l1_l2 as f64 / bt,
            t.hmg.traffic.l2_l3 as f64 / bt,
            t.hmg.traffic.remote as f64 / bt,
        )
        .unwrap();
    }
    let (e_cpe, e_hmg) = ex::fig9_summary(&triples);
    let (t_cpe, t_hmg) = ex::fig10_summary(&triples);
    writeln!(
        out9,
        "\ngeomean energy: CPElide {} vs Baseline, HMG {} vs Baseline, CPElide {} vs HMG\n\
         (paper: CPElide -14% vs Baseline, -11% vs HMG)",
        ex::pct(e_cpe - 1.0),
        ex::pct(e_hmg - 1.0),
        ex::pct(e_cpe / e_hmg - 1.0)
    )
    .unwrap();
    let l2l3 = geomean(
        triples
            .iter()
            .filter(|t| t.hmg.traffic.l2_l3 > 0 && t.cpelide.traffic.l2_l3 > 0)
            .map(|t| t.cpelide.traffic.l2_l3 as f64 / t.hmg.traffic.l2_l3 as f64),
    );
    writeln!(
        out10,
        "\ngeomean traffic: CPElide {} vs Baseline, HMG {} vs Baseline, CPElide {} vs HMG, \
         CPElide L2-L3 {} vs HMG\n(paper: -14% vs Baseline, -17% vs HMG, -37% L2-L3 vs HMG)",
        ex::pct(t_cpe - 1.0),
        ex::pct(t_hmg - 1.0),
        ex::pct(t_cpe / t_hmg - 1.0),
        ex::pct(l2l3 - 1.0)
    )
    .unwrap();
    fs::write(dir.join("fig9.txt"), &out9).unwrap();
    fs::write(dir.join("fig10.txt"), &out10).unwrap();
    writeln!(
        summary,
        "fig9   energy: CPElide {} vs Baseline, {} vs HMG (paper: -14%, -11%)",
        ex::pct(e_cpe - 1.0),
        ex::pct(e_cpe / e_hmg - 1.0)
    )
    .unwrap();
    writeln!(
        summary,
        "fig10  traffic: CPElide {} vs Baseline, {} vs HMG, L2-L3 {} vs HMG \
         (paper: -14%, -17%, -37%)",
        ex::pct(t_cpe - 1.0),
        ex::pct(t_cpe / t_hmg - 1.0),
        ex::pct(l2l3 - 1.0)
    )
    .unwrap();
    report.set("fig9_cpelide_energy_vs_baseline", e_cpe);
    report.set("fig10_cpelide_traffic_vs_baseline", t_cpe);

    // ---------------- Tables and studies ----------------
    let mut out = String::new();
    out.push_str(&SimConfig::table1_text(4));
    out.push('\n');
    let occupancy = ex::table_occupancy(&suite);
    for (name, max, ev) in &occupancy {
        writeln!(
            out,
            "occupancy {:<16} max {:>2} entries, {} evictions",
            name, max, ev
        )
        .unwrap();
    }
    fs::write(dir.join("tables.txt"), &out).unwrap();
    let max_occ = occupancy.iter().map(|(_, m, _)| *m).max().unwrap();
    writeln!(
        summary,
        "tabIII max table occupancy: {max_occ} (paper: 11, capacity 64)"
    )
    .unwrap();
    report.set("max_table_occupancy", max_occ);

    let mut out = String::new();
    for (mimicked, overhead) in ex::scaling_study(&suite) {
        writeln!(
            out,
            "mimicked {mimicked:>2}-chiplet: {} slowdown",
            ex::pct(overhead)
        )
        .unwrap();
        writeln!(
            summary,
            "svi    mimicked {mimicked}-chiplet overhead: {} (paper ~{}%)",
            ex::pct(overhead),
            if mimicked == 8 { 1 } else { 2 }
        )
        .unwrap();
    }
    let (ms_rows, ms) = ex::multistream_study(&effective_multistream_suite());
    for r in &ms_rows {
        writeln!(
            out,
            "multistream {:<16} CPElide {:.2} HMG {:.2}",
            r.workload, r.cpelide, r.hmg
        )
        .unwrap();
    }
    writeln!(
        out,
        "multistream geomean CPElide vs HMG: {}",
        ex::pct(ms - 1.0)
    )
    .unwrap();
    writeln!(
        summary,
        "svi    multi-stream CPElide vs HMG: {} (paper ~+12%)",
        ex::pct(ms - 1.0)
    )
    .unwrap();
    let wb = ex::hmg_writeback_ablation(&suite);
    writeln!(
        out,
        "HMG write-back ablation: {} slowdown vs write-through",
        ex::pct(wb)
    )
    .unwrap();
    writeln!(
        summary,
        "sivC   HMG-WB ablation: {} (paper ~+13%)",
        ex::pct(wb)
    )
    .unwrap();
    fs::write(dir.join("studies.txt"), &out).unwrap();
    report.set("multistream_cpelide_vs_hmg", ms);
    report.set("hmg_writeback_slowdown", wb);

    let path = write_report("all", &report);
    println!("{summary}");
    println!("full reports written to {}", dir.display());
    println!("report: {}", path.display());
}
