//! Regenerates Figure 8: CPElide and HMG performance normalized to
//! Baseline for 2-, 4-, 6- and 7-chiplet GPUs across all 24 workloads.
//!
//! Usage: `cargo run --release -p cpelide-bench --bin fig8 [chiplets...]`

use chiplet_sim::experiments::{fig8, pct};
use cpelide_bench::{kv, render_fig8};

fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .map(|a| a.parse().expect("chiplet counts are integers"))
        .collect();
    let chiplet_counts = if args.is_empty() { vec![2, 4, 6, 7] } else { args };
    let suite = chiplet_workloads::suite();

    for &n in &chiplet_counts {
        let (rows, summary) = fig8(&suite, n);
        println!("{}", render_fig8(&rows, n));
        print!(
            "{}",
            kv(
                "geomean CPElide vs Baseline",
                pct(summary.cpelide_vs_baseline - 1.0)
            )
        );
        print!(
            "{}",
            kv(
                "geomean CPElide vs Baseline (mod/high reuse)",
                pct(summary.cpelide_vs_baseline_reuse - 1.0)
            )
        );
        print!(
            "{}",
            kv("geomean HMG vs Baseline", pct(summary.hmg_vs_baseline - 1.0))
        );
        print!(
            "{}",
            kv("geomean CPElide vs HMG", pct(summary.cpelide_vs_hmg - 1.0))
        );
        println!();
    }
    println!("paper (4 chiplets): CPElide +13% vs Baseline (+17% mod/high), +19% vs HMG");
}
