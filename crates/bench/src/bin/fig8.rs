//! Regenerates Figure 8: CPElide and HMG performance normalized to
//! Baseline for 2-, 4-, 6- and 7-chiplet GPUs across all 24 workloads.
//!
//! Usage: `cargo run --release -p cpelide-bench --bin fig8 [chiplets...]`

use chiplet_harness::json::Json;
use chiplet_sim::experiments::{fig8, pct};
use cpelide_bench::{effective_suite, kv, pick, render_fig8, write_report};

fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .map(|a| a.parse().expect("chiplet counts are integers"))
        .collect();
    let chiplet_counts = if args.is_empty() {
        pick(vec![2, 4, 6, 7], vec![2])
    } else {
        args
    };
    let suite = effective_suite();

    let mut configs = Vec::new();
    for &n in &chiplet_counts {
        let (rows, summary) = fig8(&suite, n);
        println!("{}", render_fig8(&rows, n));
        print!(
            "{}",
            kv(
                "geomean CPElide vs Baseline",
                pct(summary.cpelide_vs_baseline - 1.0)
            )
        );
        print!(
            "{}",
            kv(
                "geomean CPElide vs Baseline (mod/high reuse)",
                pct(summary.cpelide_vs_baseline_reuse - 1.0)
            )
        );
        print!(
            "{}",
            kv(
                "geomean HMG vs Baseline",
                pct(summary.hmg_vs_baseline - 1.0)
            )
        );
        print!(
            "{}",
            kv("geomean CPElide vs HMG", pct(summary.cpelide_vs_hmg - 1.0))
        );
        println!();

        configs.push(
            Json::object()
                .with("chiplets", n)
                .with("geomean_cpelide_vs_baseline", summary.cpelide_vs_baseline)
                .with(
                    "geomean_cpelide_vs_baseline_reuse",
                    summary.cpelide_vs_baseline_reuse,
                )
                .with("geomean_hmg_vs_baseline", summary.hmg_vs_baseline)
                .with("geomean_cpelide_vs_hmg", summary.cpelide_vs_hmg)
                .with(
                    "rows",
                    rows.iter()
                        .map(|r| {
                            Json::object()
                                .with("workload", r.workload.as_str())
                                .with("class", r.class.to_string())
                                .with("cpelide", r.cpelide)
                                .with("hmg", r.hmg)
                        })
                        .collect::<Vec<_>>(),
                ),
        );
    }
    println!("paper (4 chiplets): CPElide +13% vs Baseline (+17% mod/high), +19% vs HMG");

    let report = Json::object()
        .with("artifact", "fig8")
        .with("configs", configs);
    let path = write_report("fig8", &report);
    println!("report: {}", path.display());
}
