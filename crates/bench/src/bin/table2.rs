//! Regenerates Table II: the evaluated benchmarks, their inputs, reuse
//! grouping, and model characteristics (kernels, footprint, streams).
//!
//! Usage: `cargo run --release -p cpelide-bench --bin table2`

use chiplet_harness::json::Json;
use chiplet_workloads::ReuseClass;
use cpelide_bench::write_report;

fn main() {
    println!("Table II — evaluated benchmarks");
    println!(
        "{:<16} {:<34} {:>8} {:>12} {:>8}",
        "application", "input", "kernels", "footprint", "arrays"
    );
    println!("{}", "-".repeat(84));
    let mut rows = Vec::new();
    for class in [ReuseClass::ModerateHigh, ReuseClass::Low] {
        println!("[{class} inter-kernel reuse]");
        for w in chiplet_workloads::suite()
            .iter()
            .filter(|w| w.class() == class)
        {
            println!(
                "{:<16} {:<34} {:>8} {:>9.1} MB {:>8}",
                w.name(),
                w.input(),
                w.kernel_count(),
                w.footprint_bytes() as f64 / (1 << 20) as f64,
                w.arrays().len()
            );
            rows.push(
                Json::object()
                    .with("workload", w.name())
                    .with("input", w.input())
                    .with("class", class.to_string())
                    .with("kernels", w.kernel_count())
                    .with("footprint_bytes", w.footprint_bytes())
                    .with("arrays", w.arrays().len()),
            );
        }
    }

    let report = Json::object().with("artifact", "table2").with("rows", rows);
    let path = write_report("table2", &report);
    println!("report: {}", path.display());
}
