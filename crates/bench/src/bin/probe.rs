//! Diagnostic deep-dive for one workload: every protocol's cycles, L2 hit
//! rate, traffic split, sync costs and energy at a given chiplet count,
//! plus the full per-run JSON export (sync counters, histograms,
//! per-boundary event log) written to `results/probe.json` and a
//! Prometheus exposition in `results/probe.prom`.
//!
//! Usage: `cargo run --release -p cpelide-bench --bin probe -- <workload>
//! [chiplets] [--trace out.json]`
//!
//! `--trace <path>` (or `CPELIDE_TRACE=<path>`) additionally exports the
//! CPElide run's timeline as Chrome/Perfetto trace-event JSON, loadable at
//! <https://ui.perfetto.dev>.

use chiplet_coherence::ProtocolKind;
use chiplet_harness::json::Json;
use chiplet_sim::{SimConfig, Simulator};
use cpelide_bench::{
    effective_suite, smoke, trace_path_from_env, write_report, write_text, write_trace,
};
use std::path::PathBuf;

fn main() {
    let mut positional = Vec::new();
    let mut trace_to: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--trace" {
            let p = args.next().expect("--trace requires a path");
            trace_to = Some(PathBuf::from(p));
        } else {
            positional.push(a);
        }
    }
    let trace_to = trace_to.or_else(trace_path_from_env);
    let name = positional.first().cloned().unwrap_or_else(|| {
        if smoke() {
            effective_suite()[0].name().to_owned()
        } else {
            "square".to_owned()
        }
    });
    let chiplets: usize = positional
        .get(1)
        .map(|a| a.parse().expect("chiplets must be a number"))
        .unwrap_or(4);
    let w = chiplet_workloads::lookup(&name).unwrap_or_else(|e| panic!("{e}"));

    println!(
        "{} (input {}, {} kernels, {:.1} MiB footprint, {} chiplets)",
        w.name(),
        w.input(),
        w.kernel_count(),
        w.footprint_bytes() as f64 / (1 << 20) as f64,
        chiplets
    );
    println!(
        "{:<11} {:>12} {:>12} {:>12} {:>7} {:>8} {:>10} {:>10} {:>10} {:>9} {:>8}",
        "protocol",
        "cycles",
        "exec",
        "sync",
        "L2hit%",
        "L3hit%",
        "L1-L2",
        "L2-L3",
        "remote",
        "dram",
        "uJ"
    );
    let mut runs = Vec::new();
    // One shared writer across protocols so each `# HELP`/`# TYPE` header
    // appears exactly once per metric family in probe.prom.
    let mut prom = chiplet_harness::trace::PromText::new();
    for p in [
        ProtocolKind::Baseline,
        ProtocolKind::CpElide,
        ProtocolKind::Hmg,
        ProtocolKind::HmgWriteBack,
        ProtocolKind::Monolithic,
    ] {
        let mut cfg = SimConfig::table1(chiplets, p);
        // The deep-dive records the per-boundary event log for the CPElide
        // run so the JSON report shows where each sync was paid; the
        // timeline trace (when requested) covers the same run.
        cfg.record_events = p == ProtocolKind::CpElide;
        cfg.record_trace = trace_to.is_some() && p == ProtocolKind::CpElide;
        let m = Simulator::new(cfg).run(&w);
        println!(
            "{:<11} {:>12.0} {:>12.0} {:>12.0} {:>7.1} {:>8.1} {:>10} {:>10} {:>10} {:>9} {:>8.1}",
            p.label(),
            m.cycles,
            m.exec_cycles,
            m.sync_cycles,
            100.0 * m.l2_hit_rate(),
            100.0 * m.l3.hit_rate(),
            m.traffic.l1_l2,
            m.traffic.l2_l3,
            m.traffic.remote,
            m.dram_accesses,
            m.energy.total() / 1e6,
        );
        println!(
            "            sync: {} acq / {} rel performed, {} acq / {} rel elided, \
             {} lines invalidated, {} flushed, {} remote bytes",
            m.sync.acquires_performed,
            m.sync.releases_performed,
            m.sync.acquires_elided,
            m.sync.releases_elided,
            m.sync.invalidated_lines,
            m.sync.flushed_lines,
            m.sync.remote_bytes,
        );
        if let Some(t) = &m.table {
            println!(
                "            table: {} acq / {} rel issued, {} acq / {} rel elided, max {} entries",
                t.acquires_issued,
                t.releases_issued,
                t.acquires_elided,
                t.releases_elided,
                t.max_live_entries
            );
        }
        if let Some(a) = &m.audit {
            for l in a.summary_text().lines() {
                println!("            {l}");
            }
        }
        println!(
            "            hist: kernel p50/p99 {}/{} cyc, stall p50/p99 {}/{} cyc, link util {:.2}%",
            m.hist.kernel_cycles.p50(),
            m.hist.kernel_cycles.p99(),
            m.hist.boundary_stall_cycles.p50(),
            m.hist.boundary_stall_cycles.p99(),
            100.0 * m.link_util.utilization(m.cycles as u64),
        );
        if m.trace.is_enabled() {
            let path = trace_to
                .as_ref()
                .expect("trace recording implies a destination");
            write_trace(&m.trace, path);
            println!(
                "            trace: {} events -> {} (open at ui.perfetto.dev)",
                m.trace.len(),
                path.display()
            );
        }
        m.metrics_text_into(&mut prom);
        runs.push(m.to_json());
    }

    let report = Json::object()
        .with("artifact", "probe")
        .with("workload", name.as_str())
        .with("chiplets", chiplets)
        .with("runs", runs);
    let path = write_report("probe", &report);
    println!("report: {}", path.display());
    let prom_path = write_text("probe.prom", &prom.finish());
    println!("metrics: {}", prom_path.display());
}
