//! Diagnostic deep-dive for one workload: every protocol's cycles, L2 hit
//! rate, traffic split, sync costs and energy at a given chiplet count.
//!
//! Usage: `cargo run --release -p cpelide-bench --bin probe -- <workload> [chiplets]`

use chiplet_coherence::ProtocolKind;
use chiplet_sim::experiments::run_one;

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "square".to_owned());
    let chiplets: usize = args.next().map(|a| a.parse().unwrap()).unwrap_or(4);
    let w = chiplet_workloads::by_name(&name)
        .or_else(|| {
            chiplet_workloads::multi_stream_suite()
                .into_iter()
                .find(|w| w.name() == name)
        })
        .unwrap_or_else(|| panic!("unknown workload {name}"));

    println!(
        "{} (input {}, {} kernels, {:.1} MiB footprint, {} chiplets)",
        w.name(),
        w.input(),
        w.kernel_count(),
        w.footprint_bytes() as f64 / (1 << 20) as f64,
        chiplets
    );
    println!(
        "{:<11} {:>12} {:>12} {:>12} {:>7} {:>8} {:>10} {:>10} {:>10} {:>9} {:>8}",
        "protocol",
        "cycles",
        "exec",
        "sync",
        "L2hit%",
        "L3hit%",
        "L1-L2",
        "L2-L3",
        "remote",
        "dram",
        "uJ"
    );
    for p in [
        ProtocolKind::Baseline,
        ProtocolKind::CpElide,
        ProtocolKind::Hmg,
        ProtocolKind::HmgWriteBack,
        ProtocolKind::Monolithic,
    ] {
        let m = run_one(&w, p, chiplets);
        println!(
            "{:<11} {:>12.0} {:>12.0} {:>12.0} {:>7.1} {:>8.1} {:>10} {:>10} {:>10} {:>9} {:>8.1}",
            p.label(),
            m.cycles,
            m.exec_cycles,
            m.sync_cycles,
            100.0 * m.l2_hit_rate(),
            100.0 * m.l3.hit_rate(),
            m.traffic.l1_l2,
            m.traffic.l2_l3,
            m.traffic.remote,
            m.dram_accesses,
            m.energy.total() / 1e6,
        );
        if let Some(t) = m.table {
            println!(
                "            table: {} acq / {} rel issued, {} acq / {} rel elided, max {} entries",
                t.acquires_issued,
                t.releases_issued,
                t.acquires_elided,
                t.releases_elided,
                t.max_live_entries
            );
        }
    }
}
